//! `slj` — command-line front end for the standing-long-jump pose
//! estimation system.
//!
//! ```text
//! slj generate --out data/ --clips 12            # render labelled clips
//! slj train --data data/ --model jump.model      # quantitative training
//! slj eval --model jump.model --data data/       # per-frame accuracy
//! slj coach --model jump.model --data data/      # standards assessment
//! slj stream --model jump.model --clip data/clip_000 --timings
//!                                                # online, frame-by-frame
//! slj trace --model jump.model --data data/ --out trace.jsonl
//!                                                # per-frame decision traces
//! ```
//!
//! Clips are directories of PPM frames plus a `labels.tsv` manifest (see
//! `slj_sim::io`); models use the versioned text format of
//! `slj_core::model_io`. `eval`, `stream`, `bench` and `trace` accept
//! `--metrics FILE` to dump an `slj_obs` registry snapshot as JSON.

use slj_repro::core::config::PipelineConfig;
use slj_repro::core::engine::JumpSession;
use slj_repro::core::model::PoseModel;
use slj_repro::core::model_io;
use slj_repro::core::scoring::assess_with_taxonomy;
use slj_repro::core::training::Trainer;
use slj_repro::obs::Registry;
use slj_repro::sim::io::{load_clip, save_clip, StoredClip};
use slj_repro::sim::{ClipSpec, JumpFault, JumpSimulator, NoiseConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("eval") => cmd_eval(&args[1..]),
        Some("coach") => cmd_coach(&args[1..]),
        Some("stream") => cmd_stream(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("quality") => cmd_quality(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        Some("taxonomy") => cmd_taxonomy(&args[1..]),
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?} (try `slj help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "slj — pose estimation for standing long jumps (paper reproduction)\n\
         \n\
         commands:\n\
         \x20 generate --out DIR [--clips N] [--frames N] [--seed S] [--fault F] [--rare]\n\
         \x20          render labelled synthetic clips into DIR/clip_NNN/\n\
         \x20          faults: no-arm-swing no-crouch no-tuck stiff-landing overbalance\n\
         \x20 train    --data DIR [--model FILE]\n\
         \x20          train on every clip_* directory under DIR, save the model\n\
         \x20 eval     --model FILE --data DIR [--metrics FILE]\n\
         \x20          classify every clip under DIR, report per-frame accuracy\n\
         \x20 coach    --model FILE --data DIR\n\
         \x20          assess each clip against the standing-long-jump standard\n\
         \x20 stream   --model FILE --clip DIR [--timings] [--metrics FILE]\n\
         \x20          feed one clip frame-by-frame, printing each committed pose\n\
         \x20          as it is decided; --timings adds per-stage wall-clock cost\n\
         \x20 trace    --model FILE --data DIR [--out FILE] [--metrics FILE]\n\
         \x20          [--no-quality] [--quality-config FILE]\n\
         \x20          stream every clip, emitting one JSONL decision record per\n\
         \x20          frame: stage timings, posterior, Th_Pose margin, Unknown/\n\
         \x20          carry-forward flags, the jumping stage, and (schema 3)\n\
         \x20          the silhouette foreground count plus quality flags\n\
         \x20 quality  --model FILE --data DIR | --trace FILE\n\
         \x20          [--ensemble FILE[,FILE...]] [--config FILE] [--threads N]\n\
         \x20          [--gate FILE] [--out FILE]\n\
         \x20          score stored clips (or an slj-trace JSONL) with the\n\
         \x20          pose-quality diagnostics: per-clip confidence in [0,1]\n\
         \x20          with reason codes; --gate fails when any clip drops\n\
         \x20          below the committed floor (CI regression gate)\n\
         \x20 bench    [--quick] [--clips N] [--frames N] [--seed S] [--out FILE]\n\
         \x20          [--metrics FILE]\n\
         \x20          time the serial vs parallel execution paths on synthetic\n\
         \x20          clips, verify bit-identical outputs, emit a JSON baseline\n\
         \x20 check    [--workspace] [--root DIR] [--baseline FILE]\n\
         \x20          [--write-baseline] [--model FILE] [--config FILE] [--json]\n\
         \x20          [--list-rules] [--schemas] [--call-graph] [--why QUERY]\n\
         \x20          static analysis: lint workspace sources against the\n\
         \x20          direct + interprocedural determinism/perf/robustness/\n\
         \x20          concurrency rules (ratcheted by the committed baseline),\n\
         \x20          cross-check schema constants against fixtures, dump the\n\
         \x20          call graph, explain findings with their call chains,\n\
         \x20          and/or audit a trained model artifact\n\
         \x20 serve    [--model FILE] [--addr HOST:PORT] [--threads N]\n\
         \x20          [--max-sessions N] [--queue-depth N] [--deadline-ms MS]\n\
         \x20          [--session-ttl-ms MS] [--max-body-mb MB] [--seed S]\n\
         \x20          [--no-quality] [--quality-config FILE]\n\
         \x20          serve the pipeline over HTTP (POST /v1/evaluate, streaming\n\
         \x20          /v1/sessions, GET /healthz, GET /metrics); without --model\n\
         \x20          a demo model is trained on synthetic clips at startup\n\
         \x20 loadgen  [--addr HOST:PORT] [--requests N] [--concurrency N]\n\
         \x20          [--frames N] [--seed S] [--timeout-ms MS] [--out FILE]\n\
         \x20          [--replay ARCHIVE]\n\
         \x20          closed-loop load generator: POST a simulator-synthesized\n\
         \x20          clip repeatedly, report throughput and p50/p95/p99 latency;\n\
         \x20          --replay re-synthesises the request stream an slj-corpus\n\
         \x20          archive recorded (per-clip seeds and frame counts)\n\
         \x20 corpus   ingest --out FILE (--data DIR | --sim N | --trace FILE)\n\
         \x20          [--model FILE] [--frames N] [--seed S] [--threads N]\n\
         \x20          [--no-quality] [--quality-config FILE] [--metrics FILE]\n\
         \x20 corpus   stats --archive FILE [--threads N] [--out FILE]\n\
         \x20 corpus   query --archive FILE --where EXPR [--limit N]\n\
         \x20          [--threads N] [--out FILE] [--metrics FILE]\n\
         \x20 corpus   bench [--clips N] [--frames N] [--seed S] [--threads N]\n\
         \x20          [--out FILE]\n\
         \x20          columnar decision-record archives: batch-run stored clip\n\
         \x20          directories (or N simulated clips, or a recorded slj-trace\n\
         \x20          JSONL) through the pipeline into a versioned slj-corpus v1\n\
         \x20          archive, aggregate stats, and mine it with predicates like\n\
         \x20          'fault=no_tuck_fault stage=landing min_run=5 clip_score<0.8'\n\
         \x20 taxonomy export [--out FILE] [--model FILE] [--artifact FILE]\n\
         \x20 taxonomy describe [--model FILE] [--artifact FILE]\n\
         \x20          export the pose/stage/fault vocabulary as a versioned\n\
         \x20          text artifact, or print a human-readable summary; the\n\
         \x20          default is the shipped standing-long-jump taxonomy\n\
         \n\
         --metrics FILE writes an slj_obs registry snapshot (counters, gauges,\n\
         histograms with p50/p95/p99) as JSON when the command finishes."
    );
}

/// Minimal flag parser: `--key value` pairs plus boolean flags.
struct Flags {
    values: std::collections::HashMap<String, String>,
    switches: std::collections::HashSet<String>,
}

impl Flags {
    fn parse(args: &[String], switches: &[&str]) -> Result<Flags, String> {
        let mut values = std::collections::HashMap::new();
        let mut found = std::collections::HashSet::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got {arg:?}"))?;
            if switches.contains(&key) {
                found.insert(key.to_string());
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{key} needs a value"))?;
                values.insert(key.to_string(), value.clone());
                i += 2;
            }
        }
        Ok(Flags {
            values,
            switches: found,
        })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("--{key} is required"))
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for --{key}: {v:?}")),
        }
    }

    fn switch(&self, key: &str) -> bool {
        self.switches.contains(key)
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["rare"])?;
    let out = PathBuf::from(flags.require("out")?);
    let clips: usize = flags.parse_or("clips", 3)?;
    let frames: usize = flags.parse_or("frames", 44)?;
    let seed: u64 = flags.parse_or("seed", 7)?;
    let fault = match flags.get("fault") {
        None => None,
        Some("no-arm-swing") => Some(JumpFault::NoArmSwing),
        Some("no-crouch") => Some(JumpFault::NoCrouch),
        Some("no-tuck") => Some(JumpFault::NoTuck),
        Some("stiff-landing") => Some(JumpFault::StiffLanding),
        Some("overbalance") => Some(JumpFault::Overbalance),
        Some(other) => return Err(format!("unknown fault {other:?}")),
    };
    let sim = JumpSimulator::new(seed);
    for i in 0..clips {
        let clip = sim.generate_clip(&ClipSpec {
            total_frames: frames,
            seed: i as u64,
            noise: NoiseConfig::default(),
            rare_poses: flags.switch("rare") || i % 3 == 2,
            fault,
            ..ClipSpec::default()
        });
        let dir = out.join(format!("clip_{i:03}"));
        save_clip(&dir, &clip).map_err(|e| e.to_string())?;
        println!("wrote {} ({} frames)", dir.display(), clip.len());
    }
    Ok(())
}

fn clip_dirs(data: &Path) -> Result<Vec<PathBuf>, String> {
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(data)
        .map_err(|e| format!("cannot read {}: {e}", data.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.is_dir()
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("clip_"))
        })
        .collect();
    dirs.sort();
    if dirs.is_empty() {
        return Err(format!("no clip_* directories under {}", data.display()));
    }
    Ok(dirs)
}

fn load_clips(data: &Path) -> Result<Vec<StoredClip>, String> {
    clip_dirs(data)?
        .iter()
        .map(|d| load_clip(d).map_err(|e| format!("{}: {e}", d.display())))
        .collect()
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let data = PathBuf::from(flags.require("data")?);
    let model_path = PathBuf::from(flags.get("model").unwrap_or("jump.model"));
    let clips = load_clips(&data)?;
    let frames: usize = clips.iter().map(|c| c.frames.len()).sum();
    println!("training on {} clips ({frames} frames)...", clips.len());
    let model = Trainer::new(PipelineConfig::default())
        .and_then(|t| t.train_from_stored(&clips))
        .map_err(|e| e.to_string())?;
    model_io::save(&model, &model_path).map_err(|e| e.to_string())?;
    println!("model written to {}", model_path.display());
    Ok(())
}

/// Writes a registry snapshot to `path` when `--metrics` was given.
fn write_metrics(flags: &Flags, registry: &Registry) -> Result<(), String> {
    if let Some(path) = flags.get("metrics") {
        std::fs::write(path, registry.snapshot_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("metrics written to {path}");
    }
    Ok(())
}

/// Parses `--metrics` into the registry every session of the command
/// will record into (`None` when the flag is absent — observation off).
fn metrics_registry(flags: &Flags) -> Option<Registry> {
    flags.get("metrics").map(|_| Registry::new())
}

fn classify_stored(
    model: &PoseModel,
    clip: &StoredClip,
    registry: Option<&Registry>,
) -> Result<Vec<Option<usize>>, String> {
    let mut session =
        JumpSession::new(model, clip.background.clone()).map_err(|e| e.to_string())?;
    if let Some(registry) = registry {
        session.attach_metrics(registry);
    }
    clip.frames
        .iter()
        .map(|frame| Ok(session.push_frame(frame).map_err(|e| e.to_string())?.pose))
        .collect()
}

fn cmd_eval(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let model = model_io::load(flags.require("model")?).map_err(|e| e.to_string())?;
    let data = PathBuf::from(flags.require("data")?);
    let clips = load_clips(&data)?;
    let registry = metrics_registry(&flags);
    let mut total = 0usize;
    let mut correct = 0usize;
    for (i, clip) in clips.iter().enumerate() {
        let predicted = classify_stored(&model, clip, registry.as_ref())?;
        let ok = predicted
            .iter()
            .zip(&clip.labels)
            .filter(|(p, (_, truth))| **p == Some(truth.index()))
            .count();
        println!(
            "clip {i:3}: {ok}/{} correct ({:.1}%)",
            clip.frames.len(),
            100.0 * ok as f64 / clip.frames.len() as f64
        );
        total += clip.frames.len();
        correct += ok;
    }
    println!(
        "overall: {correct}/{total} correct ({:.1}%)",
        100.0 * correct as f64 / total as f64
    );
    if let Some(registry) = &registry {
        write_metrics(&flags, registry)?;
    }
    Ok(())
}

/// Streams one clip through a [`JumpSession`], reading each frame from
/// disk only when the previous one has been classified — the online loop
/// the paper describes, without ever holding the whole clip in memory.
fn cmd_stream(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["timings"])?;
    let model = model_io::load(flags.require("model")?).map_err(|e| e.to_string())?;
    let dir = PathBuf::from(flags.require("clip")?);
    let registry = metrics_registry(&flags);
    let open_ppm = |path: PathBuf| -> Result<slj_repro::imaging::image::RgbImage, String> {
        let file = std::fs::File::open(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        slj_repro::imaging::io::read_ppm(file).map_err(|e| format!("{}: {e}", path.display()))
    };
    let background = open_ppm(dir.join("background.ppm"))?;
    let mut session = JumpSession::new(&model, background).map_err(|e| e.to_string())?;
    if let Some(registry) = &registry {
        session.attach_metrics(registry);
    }
    loop {
        let path = dir.join(format!("frame_{:03}.ppm", session.frames_processed()));
        if !path.exists() {
            break;
        }
        let frame = open_ppm(path)?;
        let est = session.push_frame(&frame).map_err(|e| e.to_string())?;
        let taxonomy = session.taxonomy();
        let pose = est
            .pose
            .map(|p| taxonomy.pose_display(p).to_string())
            .unwrap_or_else(|| "UNKNOWN".to_string());
        println!(
            "frame {:3}: {pose} (stage {})",
            session.frames_processed() - 1,
            taxonomy.stage_ident(est.stage)
        );
        if flags.switch("timings") {
            let timings = session.last_timings();
            let per_stage = timings
                .iter()
                .map(|(name, d)| format!("{name} {:.2}ms", d.as_secs_f64() * 1e3))
                .collect::<Vec<_>>()
                .join(", ");
            println!(
                "  stages ({:.2}ms total): {per_stage}",
                timings.total().as_secs_f64() * 1e3
            );
        }
    }
    if session.frames_processed() == 0 {
        return Err(format!("no frame_*.ppm files under {}", dir.display()));
    }
    println!("streamed {} frames", session.frames_processed());
    if let Some(registry) = &registry {
        write_metrics(&flags, registry)?;
    }
    Ok(())
}

/// Streams every clip under `--data` through a [`JumpSession`] with
/// tracing on, writing one JSONL decision record per frame: stage
/// timings, the full pose posterior, the `Th_Pose` margin, Unknown and
/// carry-forward flags, and the jumping stage. Records go to `--out`
/// (default stdout); `--metrics` additionally snapshots the registry.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    use std::io::Write;

    let flags = Flags::parse(args, &["no-quality"])?;
    let model = model_io::load(flags.require("model")?).map_err(|e| e.to_string())?;
    let data = PathBuf::from(flags.require("data")?);
    let clips = load_clips(&data)?;
    let quality = if flags.switch("no-quality") {
        None
    } else {
        Some(load_quality_config(&flags, "quality-config")?)
    };
    let registry = metrics_registry(&flags);
    let mut out: Box<dyn Write> = match flags.get("out") {
        Some(path) => Box::new(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?,
        )),
        None => Box::new(std::io::stdout().lock()),
    };
    let mut frames = 0usize;
    for (clip_index, clip) in clips.iter().enumerate() {
        let mut session =
            JumpSession::new(&model, clip.background.clone()).map_err(|e| e.to_string())?;
        if let Some(registry) = &registry {
            session.attach_metrics(registry);
        }
        if let Some(config) = &quality {
            session.attach_quality(config.clone());
        }
        for frame in &clip.frames {
            let estimate = session.push_frame(frame).map_err(|e| e.to_string())?;
            let mut record = session.frame_record(&estimate);
            record.clip = Some(clip_index as u64);
            writeln!(out, "{}", record.to_json()).map_err(|e| e.to_string())?;
            frames += 1;
        }
    }
    out.flush().map_err(|e| e.to_string())?;
    if let Some(path) = flags.get("out") {
        eprintln!(
            "traced {frames} frames across {} clips to {path}",
            clips.len()
        );
    }
    if let Some(registry) = &registry {
        write_metrics(&flags, registry)?;
    }
    Ok(())
}

/// Loads the quality-config artifact named by `--{flag}`, or the
/// defaults when the flag is absent.
fn load_quality_config(
    flags: &Flags,
    flag: &str,
) -> Result<slj_repro::quality::QualityConfig, String> {
    match flags.get(flag) {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            slj_repro::quality::QualityConfig::parse(&text).map_err(|e| format!("{path}: {e}"))
        }
        None => Ok(slj_repro::quality::QualityConfig::default()),
    }
}

/// Extracts the raw text of `"key":<scalar>` from JSON, or `None` when
/// the key is absent. Good enough for the flat scalar fields this CLI
/// reads back out of its own JSONL records and gate files.
fn json_scalar<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = &text[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn json_f64(text: &str, key: &str) -> Option<f64> {
    json_scalar(text, key)?.parse().ok()
}

fn json_u64(text: &str, key: &str) -> Option<u64> {
    json_scalar(text, key)?.parse().ok()
}

fn json_bool(text: &str, key: &str) -> Option<bool> {
    json_scalar(text, key)?.parse().ok()
}

/// Scores one stored clip: every model in `models` filters the clip in
/// lockstep; the primary model supplies decisions, silhouettes and key
/// points, and with two or more models the per-frame posterior spread
/// feeds the ensemble-divergence signal.
fn score_stored_clip(
    models: &[PoseModel],
    clip: &StoredClip,
    config: &slj_repro::quality::QualityConfig,
) -> Result<slj_repro::quality::QualityReport, String> {
    use slj_repro::core::quality::{frame_signals, part_layout};
    use slj_repro::quality::{posterior_spread, ClipAnalyzer};

    let primary = models.first().ok_or("no model loaded")?;
    let mut sessions = models
        .iter()
        .map(|m| JumpSession::new(m, clip.background.clone()).map_err(|e| e.to_string()))
        .collect::<Result<Vec<_>, String>>()?;
    let mut analyzer = ClipAnalyzer::new(config.clone(), part_layout(primary.taxonomy()));
    for frame in &clip.frames {
        let mut posteriors: Vec<Vec<f64>> = Vec::with_capacity(sessions.len());
        for session in sessions.iter_mut() {
            let estimate = session.push_frame(frame).map_err(|e| e.to_string())?;
            posteriors.push(estimate.posterior);
        }
        let decision = sessions[0].last_decision();
        let mut signals = frame_signals(sessions[0].slots(), decision.as_ref());
        if posteriors.len() > 1 {
            let rows: Vec<&[f64]> = posteriors.iter().map(Vec::as_slice).collect();
            signals.ensemble = Some(posterior_spread(&rows));
        }
        analyzer.observe(&signals);
    }
    Ok(analyzer.report())
}

/// Re-scores an `slj trace` JSONL stream offline: decision fields and
/// the schema-3 `foreground_px` column are enough for the likelihood,
/// carry-forward, empty-silhouette and spike signals (key-point
/// constraints need the frames themselves and are skipped).
fn score_trace(
    path: &str,
    config: &slj_repro::quality::QualityConfig,
) -> Result<Vec<slj_repro::quality::QualityReport>, String> {
    use slj_repro::quality::{
        ClipAnalyzer, DecisionSignals, FrameSignals, PartLayout, SilhouetteSignals, MAX_PARTS,
    };

    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut reports = Vec::new();
    let mut analyzer = ClipAnalyzer::new(config.clone(), PartLayout::anonymous(0));
    let mut current_clip: Option<u64> = None;
    let mut any = false;
    for (index, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let clip = json_u64(line, "clip");
        if any && clip != current_clip {
            reports.push(analyzer.report());
            analyzer.reset();
        }
        current_clip = clip;
        any = true;
        let th_margin = json_f64(line, "th_margin")
            .ok_or_else(|| format!("{path}:{}: record has no th_margin", index + 1))?;
        let signals = FrameSignals {
            decision: Some(DecisionSignals {
                best_prob: json_f64(line, "best_prob").unwrap_or(0.0),
                th_margin,
                accepted: json_bool(line, "accepted").unwrap_or(false),
                carry_forward: json_bool(line, "carry_forward").unwrap_or(false),
            }),
            // Dimensions are not recorded, so the analyzer applies only
            // the area-free silhouette signals (empty runs, spikes).
            silhouette: json_u64(line, "foreground_px").map(|px| SilhouetteSignals {
                foreground: px,
                width: 0,
                height: 0,
            }),
            parts: [None; MAX_PARTS],
            ensemble: None,
        };
        analyzer.observe(&signals);
    }
    if !any {
        return Err(format!("{path}: no trace records"));
    }
    reports.push(analyzer.report());
    Ok(reports)
}

/// Scores stored clips (or an existing trace) with the pose-quality
/// diagnostics and emits a JSON summary; `--gate FILE` turns the run
/// into a CI regression gate that fails when any clip's score drops
/// below the committed floor.
fn cmd_quality(args: &[String]) -> Result<(), String> {
    use slj_repro::obs::JsonWriter;
    use slj_repro::runtime::{Parallelism, ThreadPool};

    let flags = Flags::parse(args, &[])?;
    let config = load_quality_config(&flags, "config")?;

    let reports = match flags.get("trace") {
        Some(trace_path) => score_trace(trace_path, &config)?,
        None => {
            let data = PathBuf::from(flags.require("data")?);
            let mut models =
                vec![model_io::load(flags.require("model")?).map_err(|e| e.to_string())?];
            if let Some(extra) = flags.get("ensemble") {
                for path in extra.split(',').filter(|p| !p.is_empty()) {
                    models.push(model_io::load(path).map_err(|e| e.to_string())?);
                }
            }
            let clips = load_clips(&data)?;
            let threads: usize = flags.parse_or("threads", 1)?;
            let pool = if threads == 0 {
                ThreadPool::new(Parallelism::Auto)
            } else {
                ThreadPool::fixed(threads)
            };
            pool.scoped_map(&clips, |_, clip| score_stored_clip(&models, clip, &config))
                .map_err(|e| e.to_string())?
                .into_iter()
                .collect::<Result<Vec<_>, String>>()?
        }
    };

    let min_score = reports
        .iter()
        .map(|r| r.clip_score)
        .fold(f64::INFINITY, f64::min);
    let mean_score =
        reports.iter().map(|r| r.clip_score).sum::<f64>() / reports.len().max(1) as f64;
    let flagged_clips = reports.iter().filter(|r| !r.is_clean()).count();

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.u64(1);
    w.key("tool");
    w.string("slj.quality");
    w.key("profile");
    w.string(&config.profile);
    w.key("clips");
    w.u64(reports.len() as u64);
    w.key("min_score");
    w.f64(min_score);
    w.key("mean_score");
    w.f64(mean_score);
    w.key("flagged_clips");
    w.u64(flagged_clips as u64);
    w.key("reports");
    w.begin_array();
    for report in &reports {
        report.write_summary(&mut w);
    }
    w.end_array();
    w.end_object();
    let mut json = w.finish();
    json.push('\n');
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("quality: summary written to {path}");
        }
        None => print!("{json}"),
    }

    if let Some(gate_path) = flags.get("gate") {
        let gate = std::fs::read_to_string(gate_path).map_err(|e| format!("{gate_path}: {e}"))?;
        let floor = json_f64(&gate, "min_clip_score")
            .ok_or_else(|| format!("{gate_path}: no min_clip_score field"))?;
        let max_flagged = json_u64(&gate, "max_flagged_frames");
        let mut violations = Vec::new();
        for (i, report) in reports.iter().enumerate() {
            if report.clip_score < floor {
                violations.push(format!(
                    "clip {i}: score {} below the floor {floor}",
                    report.clip_score
                ));
            }
            if let Some(limit) = max_flagged {
                if u64::from(report.flagged_frames) > limit {
                    violations.push(format!(
                        "clip {i}: {} flagged frame(s), limit {limit}",
                        report.flagged_frames
                    ));
                }
            }
        }
        if !violations.is_empty() {
            return Err(format!(
                "quality gate {gate_path} failed: {}",
                violations.join("; ")
            ));
        }
        eprintln!(
            "quality: gate {gate_path} passed ({} clip(s), min score {min_score} >= {floor})",
            reports.len()
        );
    }
    Ok(())
}

/// Times the serial vs parallel execution paths on synthetic clips,
/// verifies the deterministic-parity contract, and emits a JSON baseline
/// — independent of `cargo bench`, so CI and the BENCH_*.json records at
/// the repo root need only the `slj` binary.
///
/// The output is versioned (`"schema": `[`BENCH_SCHEMA_VERSION`]) and
/// every key is always present, so downstream consumers can diff records
/// across hosts without probing for optional fields. Schema 3 added the
/// traced steady-state streaming cost (`push_frame_traced_ns`,
/// `trace_overhead_pct`) next to the untraced one; schema 5 adds the
/// per-kernel before/after attribution (`kernels`: each rewritten
/// hot-path kernel timed against its retained `_reference`
/// implementation) and measures `push_frame_ns` as a median of repeated
/// timing windows instead of one window. The kernel table later gained
/// a `dbn_step` row (forward-filter step, Cow-based elimination vs the
/// clone-everything reference) without a schema bump — `kernels` is an
/// open-ended array.
/// Schema version of the `slj bench` JSON record (`BENCH_PR*.json`).
const BENCH_SCHEMA_VERSION: u64 = 5;

fn cmd_bench(args: &[String]) -> Result<(), String> {
    use slj_repro::core::evaluation::{evaluate_with, EvalReport};
    use slj_repro::obs::{JsonWriter, Tracer};
    use slj_repro::runtime::{Parallelism, ThreadPool};
    use std::time::Instant;

    let flags = Flags::parse(args, &["quick"])?;
    let quick = flags.switch("quick");
    let clips_n: usize = flags.parse_or("clips", if quick { 3 } else { 8 })?;
    let frames_n: usize = flags.parse_or("frames", if quick { 30 } else { 44 })?;
    let seed: u64 = flags.parse_or("seed", 20080617)?;
    let reps: usize = if quick { 1 } else { 3 };

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "bench: {clips_n} clips x {frames_n} frames, seed {seed}, host cores {host_cores}{}",
        if quick { " (quick)" } else { "" }
    );

    // Fixture: train on a few clips, evaluate on the full set.
    let sim = JumpSimulator::new(seed);
    let clips: Vec<_> = (0..clips_n)
        .map(|i| {
            sim.generate_clip(&ClipSpec {
                total_frames: frames_n,
                seed: i as u64,
                noise: NoiseConfig::default(),
                rare_poses: i % 3 == 2,
                ..ClipSpec::default()
            })
        })
        .collect();
    let model = Trainer::new(PipelineConfig::default())
        .and_then(|t| t.train(&clips[..clips_n.min(4)]))
        .map_err(|e| e.to_string())?;

    // Steady-state per-frame streaming cost (always single-session),
    // measured untraced and with tracing + metrics enabled, to keep the
    // observability layer honest about its overhead.
    let measure_push_frame = |traced: bool| -> Result<f64, String> {
        let clip = &clips[0];
        let mut session =
            JumpSession::new(&model, clip.background.clone()).map_err(|e| e.to_string())?;
        let registry = Registry::new();
        if traced {
            session.attach_metrics(&registry);
            let (tracer, _ring) = Tracer::ring(1024);
            session.set_tracer(tracer);
        }
        let warmup = clip.frames.len().min(8);
        for frame in &clip.frames[..warmup] {
            session.push_frame(frame).map_err(|e| e.to_string())?;
        }
        // Median of several timing windows: one long window is at the
        // mercy of a single scheduler hiccup, which showed up as a
        // spurious negative "trace overhead" in earlier records.
        let iters = if quick { 20 } else { 100 };
        let repeats = if quick { 3 } else { 5 };
        let mut samples = Vec::with_capacity(repeats);
        for _ in 0..repeats {
            let start = Instant::now();
            for i in 0..iters {
                let frame = &clip.frames[warmup + i % (clip.frames.len() - warmup)];
                session.push_frame(frame).map_err(|e| e.to_string())?;
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        Ok(samples[repeats / 2])
    };
    let push_frame_ns = measure_push_frame(false)?;
    let push_frame_traced_ns = measure_push_frame(true)?;
    let trace_overhead_pct = 100.0 * (push_frame_traced_ns - push_frame_ns) / push_frame_ns;
    eprintln!(
        "  streaming push_frame steady state: {push_frame_ns:.0} ns/frame \
         ({push_frame_traced_ns:.0} ns traced, {trace_overhead_pct:+.1}% overhead)"
    );

    // Per-kernel before/after attribution: each rewritten hot-path kernel
    // timed against its retained `_reference` implementation on the same
    // simulated fixture, median of repeated windows.
    let kernel_rows: Vec<(&str, f64, f64)> = {
        use slj_repro::imaging::background::{
            BackgroundSubtractor, ExtractScratch, ExtractionConfig,
        };
        use slj_repro::imaging::binary::BinaryImage;
        use slj_repro::imaging::filter::{
            median_filter_binary_into, median_filter_binary_reference, median_filter_gray_into,
            median_filter_gray_reference, FilterScratch,
        };
        use slj_repro::imaging::image::GrayImage;
        use slj_repro::skeleton::thinning::{
            zhang_suen_into, zhang_suen_reference, ThinningScratch,
        };

        let clip = &clips[0];
        let frame = &clip.frames[clip.frames.len() / 2];
        let sub = BackgroundSubtractor::new(clip.background.clone(), ExtractionConfig::default())
            .map_err(|e| e.to_string())?;
        let gray = sub.foreground_matrix(frame).map_err(|e| e.to_string())?;
        let mask = sub.extract(frame).map_err(|e| e.to_string())?;
        let window = 3usize;
        let time_kernel = |f: &mut dyn FnMut()| -> f64 {
            let (repeats, iters) = if quick { (3, 2) } else { (5, 8) };
            f(); // warm caches and grow scratch buffers
            let mut samples = Vec::with_capacity(repeats);
            for _ in 0..repeats {
                let start = Instant::now();
                for _ in 0..iters {
                    f();
                }
                samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
            }
            samples.sort_by(f64::total_cmp);
            samples[repeats / 2]
        };

        let mut extract_scratch = ExtractScratch::new();
        let mut bin_out = BinaryImage::new(1, 1);
        let extract_old = time_kernel(&mut || {
            sub.extract_reference_into(frame, &mut bin_out, &mut extract_scratch)
                .unwrap();
        });
        let extract_new = time_kernel(&mut || {
            sub.extract_into(frame, &mut bin_out, &mut extract_scratch)
                .unwrap();
        });

        let mut gray_out = GrayImage::new(1, 1);
        let gray_old = time_kernel(&mut || {
            median_filter_gray_reference(&gray, window).unwrap();
        });
        let gray_new = time_kernel(&mut || {
            median_filter_gray_into(&gray, window, &mut gray_out).unwrap();
        });

        let mut filter_scratch = FilterScratch::new();
        let binary_old = time_kernel(&mut || {
            median_filter_binary_reference(&mask, window).unwrap();
        });
        let binary_new = time_kernel(&mut || {
            median_filter_binary_into(&mask, window, &mut bin_out, &mut filter_scratch).unwrap();
        });

        let smoothed = median_filter_binary_reference(&mask, window).map_err(|e| e.to_string())?;
        let mut thin_scratch = ThinningScratch::new();
        let mut thin_out = BinaryImage::new(1, 1);
        let thin_old = time_kernel(&mut || {
            zhang_suen_reference(&smoothed);
        });
        let thin_new = time_kernel(&mut || {
            zhang_suen_into(&smoothed, &mut thin_out, &mut thin_scratch);
        });

        // DBN forward-filter step: the borrow-templates-by-default
        // elimination working set against the retained clone-everything
        // reference, on the textbook umbrella fixture.
        use slj_repro::bayes::{ForwardFilter, TableCpd, TwoSliceDbnBuilder};
        let (dbn, umbrella) = {
            let mut b = TwoSliceDbnBuilder::new();
            let (rain, rain_prev) = b.interface_variable("rain", 2);
            let umbrella = b.slice_variable("umbrella", 2);
            b.prior_cpd(TableCpd::new(rain, vec![], vec![0.5, 0.5]).map_err(|e| e.to_string())?);
            b.transition_cpd(
                TableCpd::new(rain, vec![rain_prev], vec![0.7, 0.3, 0.3, 0.7])
                    .map_err(|e| e.to_string())?,
            );
            b.shared_cpd(
                TableCpd::new(umbrella, vec![rain], vec![0.8, 0.2, 0.1, 0.9])
                    .map_err(|e| e.to_string())?,
            );
            (b.build().map_err(|e| e.to_string())?, umbrella)
        };
        let mut ref_filter = ForwardFilter::new(&dbn);
        let mut cow_filter = ForwardFilter::new(&dbn);
        let mut flip = 0usize;
        let dbn_old = time_kernel(&mut || {
            flip += 1;
            ref_filter
                .step_with_likelihood_reference(&[(umbrella, flip % 2)], None)
                .unwrap();
        });
        let dbn_new = time_kernel(&mut || {
            flip += 1;
            cow_filter
                .step_with_likelihood(&[(umbrella, flip % 2)], None)
                .unwrap();
        });

        vec![
            ("bg_extract", extract_old, extract_new),
            ("median_gray", gray_old, gray_new),
            ("median_binary", binary_old, binary_new),
            ("thinning", thin_old, thin_new),
            ("dbn_step", dbn_old, dbn_new),
        ]
    };
    for (name, old_ns, new_ns) in &kernel_rows {
        eprintln!(
            "  kernel {name}: {old_ns:.0} ns -> {new_ns:.0} ns (x{:.2})",
            old_ns / new_ns
        );
    }

    // Clip-set evaluation at several pool sizes; best-of-reps wall time.
    let reports_equal = |a: &EvalReport, b: &EvalReport| -> bool {
        a.confusion == b.confusion
            && a.clips.len() == b.clips.len()
            && a.clips.iter().zip(&b.clips).all(|(x, y)| {
                x.clip_id == y.clip_id
                    && x.correct == y.correct
                    && x.unknown == y.unknown
                    && x.estimates == y.estimates
                    && x.truth == y.truth
            })
    };
    let registry = metrics_registry(&flags);
    let observe = |pool: ThreadPool| match &registry {
        Some(r) => pool.observed(r),
        None => pool,
    };
    let mut baseline: Option<EvalReport> = None;
    let mut serial_ms = 0.0f64;
    let mut parity_checked = true;
    let mut eval_rows: Vec<(&str, usize, f64, f64)> = Vec::new();
    let pools = [
        ("1", observe(ThreadPool::serial())),
        ("2", observe(ThreadPool::fixed(2))),
        ("auto", observe(ThreadPool::new(Parallelism::Auto))),
    ];
    for (label, pool) in &pools {
        let mut best_ms = f64::INFINITY;
        let mut report = None;
        for _ in 0..reps {
            let start = Instant::now();
            let r = evaluate_with(&model, &clips, pool).map_err(|e| e.to_string())?;
            best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
            report = Some(r);
        }
        let Some(report) = report else {
            return Err("bench: --reps must be at least 1".into());
        };
        match &baseline {
            None => {
                serial_ms = best_ms;
                baseline = Some(report);
            }
            Some(base) => parity_checked &= reports_equal(base, &report),
        }
        let speedup = serial_ms / best_ms;
        eprintln!(
            "  evaluate threads={label} ({} workers): {best_ms:.1} ms (speedup x{speedup:.2})",
            pool.threads()
        );
        eval_rows.push((label, pool.threads(), best_ms, speedup));
    }
    if !parity_checked {
        return Err("parity check failed: parallel evaluation diverged from serial".into());
    }
    eprintln!("  parity: parallel reports bit-identical to serial");

    // Every key below is always present, in this order.
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.u64(BENCH_SCHEMA_VERSION);
    w.key("quick");
    w.bool(quick);
    w.key("seed");
    w.u64(seed);
    w.key("host_cores");
    w.u64(host_cores as u64);
    w.key("clips");
    w.u64(clips_n as u64);
    w.key("frames_per_clip");
    w.u64(frames_n as u64);
    w.key("push_frame_ns");
    w.f64(push_frame_ns);
    w.key("push_frame_traced_ns");
    w.f64(push_frame_traced_ns);
    w.key("trace_overhead_pct");
    w.f64(trace_overhead_pct);
    w.key("kernels");
    w.begin_array();
    for (name, old_ns, new_ns) in &kernel_rows {
        w.begin_object();
        w.key("name");
        w.string(name);
        w.key("old_ns");
        w.f64(*old_ns);
        w.key("new_ns");
        w.f64(*new_ns);
        w.key("speedup");
        w.f64(old_ns / new_ns);
        w.end_object();
    }
    w.end_array();
    w.key("evaluate");
    w.begin_array();
    for (label, workers, wall_ms, speedup) in &eval_rows {
        w.begin_object();
        w.key("threads");
        w.string(label);
        w.key("workers");
        w.u64(*workers as u64);
        w.key("wall_ms");
        w.f64(*wall_ms);
        w.key("speedup_vs_serial");
        w.f64(*speedup);
        w.end_object();
    }
    w.end_array();
    w.key("parity_checked");
    w.bool(parity_checked);
    w.end_object();
    let mut json = w.finish();
    json.push('\n');
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("baseline written to {path}");
        }
        None => print!("{json}"),
    }
    if let Some(registry) = &registry {
        write_metrics(&flags, registry)?;
    }
    Ok(())
}

fn cmd_coach(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let model = model_io::load(flags.require("model")?).map_err(|e| e.to_string())?;
    let data = PathBuf::from(flags.require("data")?);
    let clips = load_clips(&data)?;
    for (i, clip) in clips.iter().enumerate() {
        let predicted = classify_stored(&model, clip, None)?;
        let findings = assess_with_taxonomy(model.taxonomy(), &predicted);
        println!("clip {i:3}:");
        if findings.is_empty() {
            println!("  meets the standing-long-jump standard");
        } else {
            for f in findings {
                println!("  ✗ {f}");
            }
        }
    }
    Ok(())
}

/// Resolves which taxonomy a `taxonomy` subcommand operates on:
/// `--artifact FILE` parses a standalone artifact, `--model FILE` uses
/// the taxonomy embedded in a trained model, and with neither the
/// shipped standing-long-jump default is used.
fn resolve_taxonomy(flags: &Flags) -> Result<slj_repro::taxonomy::Taxonomy, String> {
    if let Some(path) = flags.get("artifact") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        return slj_repro::taxonomy::Taxonomy::from_artifact_str(&text)
            .map_err(|e| format!("{path}: {e}"));
    }
    if let Some(path) = flags.get("model") {
        let model = model_io::load(path).map_err(|e| e.to_string())?;
        return Ok(model.taxonomy().clone());
    }
    Ok(slj_repro::sim::default_taxonomy())
}

fn cmd_taxonomy(args: &[String]) -> Result<(), String> {
    let verb = args
        .first()
        .map(String::as_str)
        .ok_or("taxonomy needs a verb: export or describe")?;
    let flags = Flags::parse(&args[1..], &[])?;
    let taxonomy = resolve_taxonomy(&flags)?;
    match verb {
        "export" => {
            let artifact = taxonomy.to_artifact_string();
            match flags.get("out") {
                Some(path) => {
                    std::fs::write(path, &artifact).map_err(|e| format!("{path}: {e}"))?;
                    eprintln!("taxonomy written to {path}");
                }
                None => print!("{artifact}"),
            }
            Ok(())
        }
        "describe" => {
            println!(
                "taxonomy {:?}: {} poses, {} stages, {} body parts, {} fault rules",
                taxonomy.name(),
                taxonomy.pose_count(),
                taxonomy.stage_count(),
                taxonomy.parts(),
                taxonomy.faults().len()
            );
            for stage_idx in 0..taxonomy.stage_count() {
                println!(
                    "stage {stage_idx} {} ({}):",
                    taxonomy.stage_ident(stage_idx),
                    taxonomy.stage_display(stage_idx)
                );
                for pose in taxonomy.poses_in_stage(stage_idx) {
                    let mut tags = Vec::new();
                    if pose == taxonomy.initial_pose() {
                        tags.push("initial");
                    }
                    if Some(pose) == taxonomy.majority_pose() {
                        tags.push("majority");
                    }
                    let tags = if tags.is_empty() {
                        String::new()
                    } else {
                        format!("  [{}]", tags.join(", "))
                    };
                    println!(
                        "  {pose:3}  {:<28} {}{tags}",
                        taxonomy.pose_ident(pose),
                        taxonomy.pose_display(pose)
                    );
                }
            }
            println!("fault rules:");
            for rule in taxonomy.faults() {
                let poses = rule
                    .poses
                    .iter()
                    .map(|&p| taxonomy.pose_ident(p))
                    .collect::<Vec<_>>()
                    .join(", ");
                let polarity = match rule.polarity {
                    slj_repro::taxonomy::Polarity::Require => "require",
                    slj_repro::taxonomy::Polarity::Forbid => "forbid",
                };
                println!(
                    "  {:<16} [{}] {polarity} >= {} frame(s) of {{{poses}}}",
                    rule.ident,
                    taxonomy.stage_ident(rule.stage),
                    rule.min_frames
                );
                println!("      {}: {}", rule.display, rule.advice);
            }
            Ok(())
        }
        other => Err(format!("unknown taxonomy verb {other:?} (export|describe)")),
    }
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    use slj_repro::check::audit::audit_model_file;
    use slj_repro::check::baseline::Baseline;
    use slj_repro::check::lint::{lint_workspace, RULES};
    use slj_repro::check::reach::{
        analyze_workspace, render_call_graph, workspace_sources, REACH_RULES,
    };
    use slj_repro::check::report::{render_human, render_json, Finding};
    use slj_repro::check::schemas::{check_schemas, SCHEMA_RULES};

    let flags = Flags::parse(
        args,
        &[
            "workspace",
            "write-baseline",
            "json",
            "list-rules",
            "schemas",
            "call-graph",
        ],
    )?;
    if flags.switch("list-rules") {
        println!("slj-check rules:");
        for (rule, desc) in RULES {
            println!("  {rule:<38} {desc}");
        }
        println!("\ninterprocedural rules (call-graph reachability; findings carry chains):");
        for (rule, desc) in REACH_RULES {
            println!("  {rule:<38} {desc}");
        }
        println!("\nschema-drift rules (--schemas):");
        for (rule, desc) in SCHEMA_RULES {
            println!("  {rule:<38} {desc}");
        }
        println!("\nsuppress one finding with: // slj-check: allow(<rule>) — <reason>");
        return Ok(());
    }

    let root = PathBuf::from(flags.get("root").unwrap_or("."));

    // Explainers: dump the call graph, or print the chains behind
    // findings matching a query. Both are informational (exit 0).
    if flags.switch("call-graph") {
        let sources = workspace_sources(&root).map_err(|e| e.to_string())?;
        print!("{}", render_call_graph(&sources));
        return Ok(());
    }
    if let Some(query) = flags.get("why") {
        let mut all = lint_workspace(&root).map_err(|e| e.to_string())?;
        all.extend(analyze_workspace(&root).map_err(|e| e.to_string())?);
        let matching: Vec<Finding> = all
            .into_iter()
            .filter(|f| {
                f.rule.contains(query) || f.file.contains(query) || f.message.contains(query)
            })
            .collect();
        if matching.is_empty() {
            eprintln!("check: no finding matches {query:?}");
        } else {
            print!("{}", render_human(&matching));
        }
        return Ok(());
    }

    let mut findings: Vec<Finding> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut ratchet = None;
    let mut ran_anything = false;

    // Artifact audits.
    for (key, config_only) in [("model", false), ("config", true)] {
        if let Some(path) = flags.get(key) {
            ran_anything = true;
            let audit =
                audit_model_file(Path::new(path), config_only).map_err(|e| e.to_string())?;
            let bad = audit.iter().filter(|f| f.is_active()).count();
            if bad > 0 {
                failures.push(format!("{path}: {bad} artifact finding(s)"));
            } else {
                eprintln!("check: {path}: artifact OK");
            }
            findings.extend(audit);
        }
    }

    // Schema-drift check.
    if flags.switch("schemas") {
        ran_anything = true;
        let schema_findings = check_schemas(&root).map_err(|e| e.to_string())?;
        let bad = schema_findings.iter().filter(|f| f.is_active()).count();
        if bad > 0 {
            failures.push(format!("{bad} schema-drift finding(s)"));
        } else {
            eprintln!("check: schema constants match committed fixtures");
        }
        findings.extend(schema_findings);
    }

    // Source lint: direct rules + interprocedural reachability, one
    // combined finding set feeding one ratchet.
    if flags.switch("workspace") || !ran_anything {
        let mut lint = lint_workspace(&root).map_err(|e| e.to_string())?;
        lint.extend(analyze_workspace(&root).map_err(|e| e.to_string())?);
        let current = Baseline::from_findings(&lint);
        let active = lint.iter().filter(|f| f.is_active()).count();
        let allowed = lint.iter().filter(|f| f.allowed.is_some()).count();
        if flags.switch("write-baseline") {
            let path = flags.get("baseline").unwrap_or("check-baseline.json");
            std::fs::write(root.join(path), current.to_json() + "\n")
                .map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("check: wrote {path} ({active} grandfathered finding(s), {allowed} allowed)");
        } else if let Some(bp) = flags.get("baseline") {
            let base = Baseline::load(&root.join(bp)).map_err(|e| e.to_string())?;
            let report = base.compare(&current);
            if report.regressions.is_empty() {
                eprintln!(
                    "check: workspace OK against {bp} ({active} baselined finding(s), \
                     {allowed} allowed; {} cell(s) improved)",
                    report.improvements.len()
                );
                if !report.improvements.is_empty() {
                    eprintln!(
                        "check: ratchet can tighten — rerun with --write-baseline to commit \
                         the lower counts"
                    );
                }
            } else {
                for d in &report.regressions {
                    eprintln!(
                        "check: REGRESSION {} in {}: baseline {}, now {}",
                        d.rule, d.file, d.baseline, d.current
                    );
                }
                failures.push(format!(
                    "{} ratchet regression(s) against {bp}",
                    report.regressions.len()
                ));
            }
            ratchet = Some(report);
        } else if active > 0 {
            failures.push(format!(
                "{active} active lint finding(s) (no baseline given)"
            ));
        }
        findings.extend(lint);
    }

    let ok = failures.is_empty();
    if flags.switch("json") {
        let deltas = ratchet
            .as_ref()
            .map(|r| (r.regressions.as_slice(), r.improvements.as_slice()));
        println!("{}", render_json(&findings, deltas, ok));
    } else if !ok {
        // Without --json, print the findings that caused the failure:
        // everything active when no baseline is in play, otherwise the
        // regressions were already listed above.
        if ratchet.is_none() {
            print!("{}", render_human(&findings));
        }
    }
    if ok {
        Ok(())
    } else {
        Err(format!("check failed: {}", failures.join("; ")))
    }
}

/// Trains a small demo model on synthetic clips so `slj serve` can run
/// without a model file (smoke tests, demos).
fn demo_model(seed: u64) -> Result<PoseModel, String> {
    let sim = JumpSimulator::new(seed);
    let clips: Vec<_> = (0..4)
        .map(|i| {
            sim.generate_clip(&ClipSpec {
                total_frames: 24,
                seed: seed.wrapping_add(i),
                ..ClipSpec::default()
            })
        })
        .collect();
    Trainer::new(PipelineConfig::default())
        .and_then(|t| t.train(&clips))
        .map_err(|e| e.to_string())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use slj_repro::serve::{Server, ServerConfig};

    let flags = Flags::parse(args, &["no-quality"])?;
    let model = match flags.get("model") {
        Some(path) => model_io::load(path).map_err(|e| e.to_string())?,
        None => {
            eprintln!("serve: no --model given; training a demo model on synthetic clips");
            demo_model(flags.parse_or("seed", 7u64)?)?
        }
    };
    let quality = if flags.switch("no-quality") {
        None
    } else {
        Some(load_quality_config(&flags, "quality-config")?)
    };
    let mut config = ServerConfig {
        addr: flags.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        threads: flags.parse_or("threads", 0usize)?,
        queue_depth: flags.parse_or("queue-depth", 64usize)?,
        max_sessions: flags.parse_or("max-sessions", 64usize)?,
        deadline_ms: flags.parse_or("deadline-ms", 10_000u64)?,
        session_ttl_ms: flags.parse_or("session-ttl-ms", 60_000u64)?,
        quality,
        ..ServerConfig::default()
    };
    config.limits.max_body = flags
        .parse_or("max-body-mb", 64usize)?
        .saturating_mul(1 << 20);

    let server = Server::bind(config, model).map_err(|e| e.to_string())?;
    println!("serving on http://{}", server.local_addr());
    println!(
        "stop with: curl -X POST http://{}/admin/shutdown",
        server.local_addr()
    );
    let report = server.run().map_err(|e| e.to_string())?;
    println!(
        "drained: {} request(s) handled, {} rejected with 429, {} deadline 503(s), \
         {} session(s) reaped",
        report.requests, report.rejected_429, report.deadline_503, report.sessions_reaped
    );
    Ok(())
}

fn cmd_loadgen(args: &[String]) -> Result<(), String> {
    use slj_repro::serve::{loadgen, LoadgenConfig};

    let flags = Flags::parse(args, &[])?;
    let config = LoadgenConfig {
        addr: flags.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        requests: flags.parse_or("requests", 100usize)?,
        concurrency: flags.parse_or("concurrency", 4usize)?,
        frames: flags.parse_or("frames", 24usize)?,
        seed: flags.parse_or("seed", 7u64)?,
        timeout_ms: flags.parse_or("timeout-ms", 30_000u64)?,
        replay: flags.get("replay").map(String::from),
    };
    eprintln!(
        "loadgen: {} request(s), {} client(s) against {}{}",
        config.requests,
        config.concurrency,
        config.addr,
        config
            .replay
            .as_deref()
            .map(|p| format!(", replaying {p}"))
            .unwrap_or_default()
    );
    let report = loadgen::run(&config).map_err(|e| e.to_string())?;
    let json = report.report_json();
    println!("{json}");
    if let Some(path) = flags.get("out") {
        std::fs::write(path, json + "\n").map_err(|e| format!("{path}: {e}"))?;
        eprintln!("loadgen: report written to {path}");
    }
    Ok(())
}

/// Shared `--threads` handling for the corpus subcommands: 0 = auto.
fn corpus_pool(flags: &Flags) -> Result<slj_repro::runtime::ThreadPool, String> {
    use slj_repro::runtime::{Parallelism, ThreadPool};
    let threads: usize = flags.parse_or("threads", 0)?;
    Ok(if threads == 0 {
        ThreadPool::new(Parallelism::Auto)
    } else {
        ThreadPool::fixed(threads)
    })
}

/// Reads and parses an `slj-corpus v1` archive named by `--archive`.
fn read_archive(flags: &Flags) -> Result<slj_repro::corpus::Corpus, String> {
    let path = flags.require("archive")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    slj_repro::corpus::Corpus::from_archive_str(&text).map_err(|e| format!("{path}: {e}"))
}

/// Writes `json` (newline-terminated) to `--out`, or stdout without it.
fn emit_json(flags: &Flags, what: &str, mut json: String) -> Result<(), String> {
    json.push('\n');
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("corpus: {what} written to {path}");
        }
        None => print!("{json}"),
    }
    Ok(())
}

/// Builds the ingestion work list from the selected source: stored
/// `clip_*` directories, or `--sim N` freshly simulated clips. The seed
/// recorded per clip follows the `slj generate` convention (clip index),
/// so `slj loadgen --replay` can re-synthesise equivalent bodies.
fn corpus_work_list(flags: &Flags) -> Result<Vec<slj_repro::corpus::IngestClip>, String> {
    use slj_repro::corpus::IngestClip;
    if let Some(data) = flags.get("data") {
        let dirs = clip_dirs(Path::new(data))?;
        return dirs
            .iter()
            .map(|dir| {
                let source = dir
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or("clip_unnamed")
                    .to_string();
                // clip_NNN directories carry their generation seed in
                // the name; anything else falls back to seed 0.
                let seed = source
                    .rsplit('_')
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or(0);
                let clip = load_clip(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
                Ok(IngestClip { source, seed, clip })
            })
            .collect();
    }
    let count: usize = flags.parse_or("sim", 0)?;
    if count == 0 {
        return Err("corpus ingest needs --data DIR, --sim N or --trace FILE".into());
    }
    let frames: usize = flags.parse_or("frames", 24)?;
    let base_seed: u64 = flags.parse_or("seed", 7)?;
    let sim = JumpSimulator::new(base_seed);
    Ok((0..count)
        .map(|i| {
            let clip = sim.generate_clip(&ClipSpec {
                total_frames: frames,
                seed: i as u64,
                noise: NoiseConfig::default(),
                rare_poses: i % 3 == 2,
                ..ClipSpec::default()
            });
            IngestClip {
                source: format!("sim_{i:06}"),
                seed: i as u64,
                clip: StoredClip {
                    labels: clip.truth.iter().map(|t| (t.stage, t.pose)).collect(),
                    frames: clip.frames,
                    background: clip.background,
                },
            }
        })
        .collect())
}

fn cmd_corpus_ingest(flags: &Flags) -> Result<(), String> {
    use slj_repro::corpus::{ingest_stored_clips, ingest_trace, IngestOptions};
    use std::time::Instant;

    let out = flags.require("out")?.to_string();
    let registry = metrics_registry(flags);

    let corpus = if let Some(trace_path) = flags.get("trace") {
        // Trace bridge: mine a recorded `slj trace` JSONL stream without
        // re-running the pipeline. The taxonomy comes from --model when
        // given (matching whatever produced the trace), else the shipped
        // standing-long-jump vocabulary.
        let taxonomy = match flags.get("model") {
            Some(path) => model_io::load(path)
                .map_err(|e| e.to_string())?
                .taxonomy()
                .clone(),
            None => slj_repro::sim::default_taxonomy(),
        };
        let text = std::fs::read_to_string(trace_path).map_err(|e| format!("{trace_path}: {e}"))?;
        ingest_trace(&text, &taxonomy).map_err(|e| format!("{trace_path}: {e}"))?
    } else {
        let model = match flags.get("model") {
            Some(path) => model_io::load(path).map_err(|e| e.to_string())?,
            None => {
                eprintln!("corpus: no --model given; training a demo model");
                demo_model(flags.parse_or("seed", 7u64)?)?
            }
        };
        let items = corpus_work_list(flags)?;
        let options = IngestOptions {
            quality: if flags.switch("no-quality") {
                None
            } else {
                Some(load_quality_config(flags, "quality-config")?)
            },
        };
        let pool = corpus_pool(flags)?;
        eprintln!(
            "corpus: ingesting {} clip(s) over {} worker(s)...",
            items.len(),
            pool.threads()
        );
        let start = Instant::now();
        let corpus = ingest_stored_clips(&model, &items, &options, &pool, registry.as_ref())
            .map_err(|e| e.to_string())?;
        let wall = start.elapsed().as_secs_f64();
        eprintln!(
            "corpus: {} frame(s) in {wall:.2}s ({:.0} frames/s)",
            corpus.total_frames(),
            corpus.total_frames() as f64 / wall.max(1e-9)
        );
        corpus
    };

    let archive = corpus.to_archive_string();
    std::fs::write(&out, &archive).map_err(|e| format!("{out}: {e}"))?;
    eprintln!(
        "corpus: {} clip(s), {} frame(s), {} byte(s) -> {out}",
        corpus.clips.len(),
        corpus.total_frames(),
        archive.len()
    );
    if let Some(registry) = &registry {
        write_metrics(flags, registry)?;
    }
    Ok(())
}

fn cmd_corpus_stats(flags: &Flags) -> Result<(), String> {
    use slj_repro::corpus::ArchiveStats;
    let corpus = read_archive(flags)?;
    let pool = corpus_pool(flags)?;
    let stats = ArchiveStats::compute(&corpus, &pool).map_err(|e| e.to_string())?;
    emit_json(flags, "stats", stats.to_json())
}

fn cmd_corpus_query(flags: &Flags) -> Result<(), String> {
    use slj_repro::corpus::Query;
    let expr = flags.require("where")?;
    let query = Query::parse(expr).map_err(|e| e.to_string())?;
    let corpus = read_archive(flags)?;
    let pool = corpus_pool(flags)?;
    let limit: usize = flags.parse_or("limit", 20)?;
    let registry = metrics_registry(flags);
    let report = query
        .evaluate(&corpus, &pool, registry.as_ref())
        .map_err(|e| e.to_string())?;
    eprintln!(
        "corpus: {} of {} clip(s) match '{}'",
        report.matched(),
        report.clips_scanned,
        query.text()
    );
    emit_json(flags, "query report", report.to_json(limit))?;
    if let Some(registry) = &registry {
        write_metrics(flags, registry)?;
    }
    Ok(())
}

/// End-to-end corpus benchmark: simulate, ingest, archive, parse and
/// query a clip set, reporting wall times and the archive's size
/// against an equivalent per-frame JSONL encoding (`BENCH_PR10.json`).
const CORPUS_BENCH_SCHEMA_VERSION: u64 = 1;

fn cmd_corpus_bench(flags: &Flags) -> Result<(), String> {
    use slj_repro::corpus::{ingest_stored_clips, ArchiveStats, Corpus, IngestOptions, Query};
    use slj_repro::obs::JsonWriter;
    use slj_repro::runtime::ThreadPool;
    use std::time::Instant;

    let clips_n: usize = flags.parse_or("clips", 64)?;
    let frames_n: usize = flags.parse_or("frames", 24)?;
    let seed: u64 = flags.parse_or("seed", 7)?;
    let model = demo_model(seed)?;
    let pool = corpus_pool(flags)?;
    eprintln!(
        "corpus bench: {clips_n} clip(s) x {frames_n} frame(s), {} worker(s)",
        pool.threads()
    );

    let sim = JumpSimulator::new(seed);
    let items: Vec<slj_repro::corpus::IngestClip> = (0..clips_n)
        .map(|i| {
            let clip = sim.generate_clip(&ClipSpec {
                total_frames: frames_n,
                seed: i as u64,
                noise: NoiseConfig::default(),
                rare_poses: i % 3 == 2,
                ..ClipSpec::default()
            });
            slj_repro::corpus::IngestClip {
                source: format!("sim_{i:06}"),
                seed: i as u64,
                clip: StoredClip {
                    labels: clip.truth.iter().map(|t| (t.stage, t.pose)).collect(),
                    frames: clip.frames,
                    background: clip.background,
                },
            }
        })
        .collect();

    let options = IngestOptions {
        quality: Some(slj_repro::quality::QualityConfig::default()),
    };
    let start = Instant::now();
    let corpus =
        ingest_stored_clips(&model, &items, &options, &pool, None).map_err(|e| e.to_string())?;
    let ingest_ms = start.elapsed().as_secs_f64() * 1e3;
    let frames = corpus.total_frames();
    eprintln!(
        "  ingest: {frames} frame(s) in {ingest_ms:.0} ms ({:.0} frames/s)",
        frames as f64 / (ingest_ms / 1e3).max(1e-9)
    );

    let start = Instant::now();
    let archive = corpus.to_archive_string();
    let write_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let reparsed = Corpus::from_archive_str(&archive).map_err(|e| e.to_string())?;
    let parse_ms = start.elapsed().as_secs_f64() * 1e3;
    if reparsed != corpus {
        return Err("corpus bench: archive round trip was not bit-exact".into());
    }

    // The honest size baseline: the same columns, one flat JSON record
    // per frame (what `slj trace`-style storage would cost).
    let mut jsonl_bytes = 0usize;
    for clip in &corpus.clips {
        for f in 0..clip.frames() {
            jsonl_bytes += format!(
                "{{\"clip\":{},\"frame\":{f},\"pose\":{},\"stage\":{},\"online\":{},\
                 \"margin\":{},\"flags\":{}}}\n",
                clip.id, clip.pose[f], clip.stage[f], clip.online[f], clip.margin[f], clip.flags[f]
            )
            .len();
        }
    }
    eprintln!(
        "  archive: {} byte(s) vs {jsonl_bytes} JSONL byte(s) (x{:.2} smaller), \
         write {write_ms:.0} ms, parse {parse_ms:.0} ms",
        archive.len(),
        jsonl_bytes as f64 / archive.len().max(1) as f64
    );

    // Query across thread counts must be bit-identical.
    let fault = corpus
        .taxonomy
        .faults()
        .first()
        .map(|r| r.ident.clone())
        .ok_or("corpus bench: taxonomy has no fault rules")?;
    let query = Query::parse(&format!("fault={fault} min_run=2")).map_err(|e| e.to_string())?;
    let start = Instant::now();
    let report = query
        .evaluate(&corpus, &pool, None)
        .map_err(|e| e.to_string())?;
    let query_ms = start.elapsed().as_secs_f64() * 1e3;
    let serial = query
        .evaluate(&corpus, &ThreadPool::fixed(1), None)
        .map_err(|e| e.to_string())?;
    let parity = report.to_json(usize::MAX) == serial.to_json(usize::MAX)
        && ArchiveStats::compute(&corpus, &pool)
            .map_err(|e| e.to_string())?
            .to_json()
            == ArchiveStats::compute(&corpus, &ThreadPool::fixed(1))
                .map_err(|e| e.to_string())?
                .to_json();
    if !parity {
        return Err("corpus bench: parallel query diverged from serial".into());
    }
    eprintln!(
        "  query '{}': {} match(es) in {query_ms:.2} ms, parallel == serial",
        query.text(),
        report.matched()
    );

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.u64(CORPUS_BENCH_SCHEMA_VERSION);
    w.key("bench");
    w.string("corpus");
    w.key("seed");
    w.u64(seed);
    w.key("workers");
    w.u64(pool.threads() as u64);
    w.key("clips");
    w.u64(corpus.clips.len() as u64);
    w.key("frames");
    w.u64(frames);
    w.key("ingest_ms");
    w.f64(ingest_ms);
    w.key("ingest_frames_per_s");
    w.f64(frames as f64 / (ingest_ms / 1e3).max(1e-9));
    w.key("archive_bytes");
    w.u64(archive.len() as u64);
    w.key("jsonl_bytes");
    w.u64(jsonl_bytes as u64);
    w.key("size_ratio");
    w.f64(jsonl_bytes as f64 / archive.len().max(1) as f64);
    w.key("write_ms");
    w.f64(write_ms);
    w.key("parse_ms");
    w.f64(parse_ms);
    w.key("query_ms");
    w.f64(query_ms);
    w.key("query_matched");
    w.u64(report.matched());
    w.key("round_trip_exact");
    w.bool(true);
    w.key("threads_parity");
    w.bool(parity);
    w.end_object();
    emit_json(flags, "bench record", w.finish())
}

fn cmd_corpus(args: &[String]) -> Result<(), String> {
    let (sub, rest) = args
        .split_first()
        .ok_or("corpus needs a subcommand: ingest, stats, query or bench")?;
    let flags = Flags::parse(rest, &["no-quality"])?;
    match sub.as_str() {
        "ingest" => cmd_corpus_ingest(&flags),
        "stats" => cmd_corpus_stats(&flags),
        "query" => cmd_corpus_query(&flags),
        "bench" => cmd_corpus_bench(&flags),
        other => Err(format!(
            "unknown corpus subcommand {other:?} (try ingest, stats, query or bench)"
        )),
    }
}
