//! Umbrella crate for the standing-long-jump pose-estimation reproduction.
//!
//! This crate re-exports the workspace members so the examples and
//! integration tests at the repository root can exercise the full public
//! API surface through a single dependency:
//!
//! - [`imaging`] — image substrate (silhouette extraction, filtering,
//!   morphology, metrics).
//! - [`sim`] — synthetic articulated-jumper video generator with
//!   ground-truth pose labels.
//! - [`skeleton`] — Zhang-Suen thinning, skeleton-graph clean-up, key-point
//!   extraction and area feature encoding.
//! - [`bayes`] — discrete Bayesian-network / dynamic-Bayesian-network
//!   substrate (factors, CPDs, exact inference, learning, filtering).
//! - [`ga`] — genetic-algorithm stick-model baseline from the authors'
//!   prior work.
//! - [`core`] — the end-to-end pipeline, DBN pose classifier, trainer,
//!   evaluator and standards-based fault scorer.
//! - [`runtime`] — the multi-core execution layer: a scoped worker pool
//!   with a deterministic-parity guarantee (`SLJ_THREADS` overridable).
//! - [`obs`] — dependency-free observability: span/event tracing,
//!   counters/gauges/histograms, and a hand-rolled JSON writer behind
//!   `slj trace` and the `--metrics` flags.
//! - [`check`] — project-invariant static analysis: the `slj check`
//!   source linter (determinism/perf/robustness rules with a ratcheted
//!   baseline) and the trained-model artifact auditor.
//! - [`serve`] — dependency-free HTTP serving layer: `slj serve` exposes
//!   the pipeline over `/v1/evaluate` and streaming session endpoints
//!   with admission control, and `slj loadgen` drives it closed-loop
//!   with simulator-synthesized clips.
//! - [`taxonomy`] — the data-driven exercise vocabulary: pose/stage
//!   names, stage partition, transition priors and declarative fault
//!   rules, loadable from a versioned text artifact (`slj taxonomy`).
//! - [`quality`] — pose-quality diagnostics: per-frame confidence
//!   signals (likelihood runs, temporal jumps, skeleton violations,
//!   silhouette health, ensemble divergence) aggregated into a
//!   deterministic clip score (`slj quality`, `serve.quality.*`).
//! - [`corpus`] — columnar decision-record archives: batch ingestion of
//!   stored clips through the runtime pool with offline Viterbi
//!   decoding, the versioned `slj-corpus v1` archive format, a
//!   predicate-based batch mining query engine, and the replay source
//!   behind `slj loadgen --replay`.
//!
//! # Examples
//!
//! ```
//! use slj_repro::sim::{ClipSpec, JumpSimulator};
//!
//! let clip = JumpSimulator::new(7).generate_clip(&ClipSpec::default());
//! assert!(!clip.frames.is_empty());
//! ```

pub use slj_bayes as bayes;
pub use slj_check as check;
pub use slj_core as core;
pub use slj_corpus as corpus;
pub use slj_ga as ga;
pub use slj_imaging as imaging;
pub use slj_obs as obs;
pub use slj_quality as quality;
pub use slj_runtime as runtime;
pub use slj_serve as serve;
pub use slj_sim as sim;
pub use slj_skeleton as skeleton;
pub use slj_taxonomy as taxonomy;
