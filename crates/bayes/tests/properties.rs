//! Property-based tests of the factor algebra, inference equivalence and
//! learning consistency.

use proptest::prelude::*;
use slj_bayes::factor::Factor;
use slj_bayes::inference::{Enumeration, VariableElimination};
use slj_bayes::learning::CpdEstimator;
use slj_bayes::network::BayesNetBuilder;
use slj_bayes::variable::Variable;

/// Strategy: a scope of 1..=3 variables with cardinalities 2..=4 and a
/// matching non-negative value table.
fn factor_strategy(id_base: usize) -> impl Strategy<Value = Factor> {
    proptest::collection::vec(2usize..=4, 1..=3).prop_flat_map(move |cards| {
        let size: usize = cards.iter().product();
        let scope: Vec<Variable> = cards
            .iter()
            .enumerate()
            .map(|(i, &c)| Variable::new(id_base + i, c))
            .collect();
        proptest::collection::vec(0.0f64..10.0, size)
            .prop_map(move |values| Factor::new(scope.clone(), values).unwrap())
    })
}

/// Strategy: a random 3-node chain network a -> b -> c with random CPDs.
fn chain_network_strategy(
) -> impl Strategy<Value = (slj_bayes::network::DiscreteBayesNet, Vec<Variable>)> {
    let prob = 0.05f64..0.95;
    (
        prob.clone(),
        proptest::collection::vec(0.05f64..0.95, 4),
        proptest::collection::vec(0.05f64..0.95, 4),
    )
        .prop_map(|(pa, pb, pc)| {
            let mut b = BayesNetBuilder::new();
            let a = b.variable("a", 2);
            let bb = b.variable("b", 2);
            let c = b.variable("c", 2);
            b.table_cpd(a, &[], &[pa, 1.0 - pa]).unwrap();
            b.table_cpd(bb, &[a], &[pb[0], 1.0 - pb[0], pb[1], 1.0 - pb[1]])
                .unwrap();
            b.table_cpd(c, &[bb], &[pc[0], 1.0 - pc[0], pc[1], 1.0 - pc[1]])
                .unwrap();
            (b.build().unwrap(), vec![a, bb, c])
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Factor product commutes (as a function of assignments).
    #[test]
    fn product_commutes(f in factor_strategy(0), g in factor_strategy(10)) {
        let fg = f.product(&g).unwrap();
        let gf = g.product(&f).unwrap();
        // Compare at every joint assignment of the union scope.
        let scope = fg.scope().to_vec();
        let assignments =
            slj_bayes::assignment::AssignmentIter::new(&scope);
        for a in assignments {
            let pairs: Vec<(Variable, usize)> =
                scope.iter().copied().zip(a.iter().copied()).collect();
            let x = fg.value_at(&pairs).unwrap();
            let y = gf.value_at(&pairs).unwrap();
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Summing out all variables preserves the factor's total mass.
    #[test]
    fn sum_out_preserves_total(f in factor_strategy(0)) {
        let total = f.total();
        let mut g = f.clone();
        for v in f.scope().to_vec() {
            g = g.sum_out(v).unwrap();
        }
        prop_assert!((g.values()[0] - total).abs() < 1e-9 * total.max(1.0));
    }

    /// Elimination order does not matter.
    #[test]
    fn sum_out_order_independent(f in factor_strategy(0)) {
        let scope = f.scope().to_vec();
        if scope.len() >= 2 {
            let ab = f.sum_out(scope[0]).unwrap().sum_out(scope[1]).unwrap();
            let ba = f.sum_out(scope[1]).unwrap().sum_out(scope[0]).unwrap();
            for (x, y) in ab.values().iter().zip(ba.values()) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }

    /// Reduce then sum equals selecting the slice of the summed factor.
    #[test]
    fn reduce_is_a_slice(f in factor_strategy(0), state in 0usize..2) {
        let scope = f.scope().to_vec();
        let v = scope[0];
        let state = state.min(v.cardinality() - 1);
        let reduced_total = f.reduce(v, state).unwrap().total();
        // Summing all values where v == state must give the same mass.
        let mut manual = 0.0;
        for a in slj_bayes::assignment::AssignmentIter::new(&scope) {
            if a[0] == state {
                let pairs: Vec<(Variable, usize)> =
                    scope.iter().copied().zip(a.iter().copied()).collect();
                manual += f.value_at(&pairs).unwrap();
            }
        }
        prop_assert!((reduced_total - manual).abs() < 1e-9);
    }

    /// Normalised factors sum to one (when not all-zero).
    #[test]
    fn normalized_sums_to_one(f in factor_strategy(0)) {
        if f.total() > 0.0 {
            let n = f.normalized().unwrap();
            prop_assert!((n.total() - 1.0).abs() < 1e-9);
        }
    }

    /// Variable elimination agrees with brute-force enumeration on
    /// random chain networks and random evidence.
    #[test]
    fn ve_equals_enumeration(
        (net, vars) in chain_network_strategy(),
        query_idx in 0usize..3,
        evidence_mask in 0u32..8,
        evidence_vals in proptest::collection::vec(0usize..2, 3),
    ) {
        let query = vars[query_idx];
        let evidence: Vec<(Variable, usize)> = (0..3)
            .filter(|&i| evidence_mask >> i & 1 == 1 && i != query_idx)
            .map(|i| (vars[i], evidence_vals[i]))
            .collect();
        let ve = VariableElimination::new(&net).posterior(query, &evidence);
        let en = Enumeration::new(&net).posterior(query, &evidence);
        match (ve, en) {
            (Ok(a), Ok(b)) => {
                for (x, y) in a.iter().zip(&b) {
                    prop_assert!((x - y).abs() < 1e-9, "{a:?} vs {b:?}");
                }
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "disagreement: {a:?} vs {b:?}"),
        }
    }

    /// The joint distribution of any chain network sums to one.
    #[test]
    fn joint_is_normalized((net, _) in chain_network_strategy()) {
        prop_assert!((net.joint().unwrap().total() - 1.0).abs() < 1e-9);
    }

    /// MLE with zero smoothing reproduces empirical frequencies.
    #[test]
    fn mle_matches_empirical(counts in proptest::collection::vec(1usize..30, 3)) {
        let child = Variable::new(0, 3);
        let mut est = CpdEstimator::new(child, vec![]);
        for (state, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                est.observe(&[], state).unwrap();
            }
        }
        let total: usize = counts.iter().sum();
        let cpd = est.estimate(0.0).unwrap();
        for (state, &n) in counts.iter().enumerate() {
            let p = cpd.prob(&[], state).unwrap();
            prop_assert!((p - n as f64 / total as f64).abs() < 1e-12);
        }
    }

    /// Laplace smoothing keeps every probability strictly positive and
    /// rows normalised.
    #[test]
    fn smoothing_keeps_rows_stochastic(
        counts in proptest::collection::vec(0usize..20, 4),
        alpha in 0.01f64..5.0,
    ) {
        let parent = Variable::new(0, 2);
        let child = Variable::new(1, 2);
        let mut est = CpdEstimator::new(child, vec![parent]);
        for (i, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                est.observe(&[i / 2], i % 2).unwrap();
            }
        }
        let cpd = est.estimate(alpha).unwrap();
        for p_state in 0..2 {
            let mut row = 0.0;
            for c_state in 0..2 {
                let p = cpd.prob(&[p_state], c_state).unwrap();
                prop_assert!(p > 0.0);
                row += p;
            }
            prop_assert!((row - 1.0).abs() < 1e-9);
        }
    }
}
