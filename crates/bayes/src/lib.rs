//! Discrete Bayesian-network and dynamic-Bayesian-network substrate.
//!
//! The paper classifies poses with a DBN (Section 4, Figure 7): per-pose
//! Bayesian networks with observed area nodes, hidden body-part nodes and a
//! root pose node, extended with the previous frame's pose and a jumping-
//! stage flag. Rust has no suitable probabilistic-graphical-model crate, so
//! this one implements everything the paper's classifier needs — and the
//! general machinery a 2008-era BN toolkit would have offered:
//!
//! - [`variable`] / [`assignment`] — discrete variables and joint
//!   assignments over scopes.
//! - [`factor`] — dense table factors with product, marginalisation,
//!   reduction, normalisation and renaming.
//! - [`cpd`] — conditional probability distributions: full tables and
//!   noisy-OR (used for the Area nodes, whose five body-part parents would
//!   otherwise need 9⁵-row tables).
//! - [`network`] — directed acyclic networks of CPDs with validation and
//!   joint-distribution construction.
//! - [`inference`] — exact inference by enumeration (test oracle) and by
//!   variable elimination, plus likelihood-weighting sampling.
//! - [`learning`] — maximum-likelihood / Laplace-smoothed table estimation
//!   from complete data (the paper's "quantitative training").
//! - [`noisy_or`] — closed-form evidence likelihood for banks of noisy-OR
//!   observations by inclusion–exclusion, avoiding 9⁵-state elimination.
//! - [`dbn`] — two-slice temporal networks, unrolling, and the forward
//!   filter the pose classifier runs per frame.
//!
//! # Examples
//!
//! Build the classic sprinkler network and query it:
//!
//! ```
//! use slj_bayes::network::BayesNetBuilder;
//! use slj_bayes::inference::VariableElimination;
//!
//! let mut b = BayesNetBuilder::new();
//! let rain = b.variable("rain", 2);
//! let sprinkler = b.variable("sprinkler", 2);
//! let wet = b.variable("wet", 2);
//! b.table_cpd(rain, &[], &[0.8, 0.2])?;
//! b.table_cpd(sprinkler, &[rain], &[0.6, 0.4, 0.99, 0.01])?;
//! b.table_cpd(
//!     wet,
//!     &[rain, sprinkler],
//!     &[1.0, 0.0, 0.1, 0.9, 0.2, 0.8, 0.01, 0.99],
//! )?;
//! let net = b.build()?;
//! let posterior = VariableElimination::new(&net).posterior(rain, &[(wet, 1)])?;
//! assert!(posterior[1] > 0.2, "rain is more likely given wet grass");
//! # Ok::<(), slj_bayes::BayesError>(())
//! ```

// Grandfathered: this crate predates the unwrap_used/expect_used policy.
// Its findings are baselined in check-baseline.json (see `slj check`);
// new code should return SljError and shrink the ratchet instead.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod assignment;
pub mod cpd;
pub mod dbn;
pub mod error;
pub mod factor;
pub mod inference;
pub mod learning;
pub mod network;
pub mod noisy_or;
pub mod variable;

pub use cpd::{Cpd, NoisyOrCpd, TableCpd};
pub use dbn::{
    ForwardFilter, InferenceMetrics, SmoothingPass, StepInput, TwoSliceDbn, TwoSliceDbnBuilder,
    ViterbiDecoder,
};
pub use error::BayesError;
pub use factor::Factor;
pub use inference::{Enumeration, GibbsSampler, LikelihoodWeighting, VariableElimination};
pub use network::{BayesNetBuilder, DiscreteBayesNet};
pub use variable::Variable;
