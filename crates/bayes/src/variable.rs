//! Discrete random variables.

use std::fmt;

/// A handle to a discrete random variable: an identifier plus its
/// cardinality (number of states, `0..cardinality`).
///
/// Variables are lightweight and `Copy`; the owning
/// [`crate::network::BayesNetBuilder`] keeps names and allocates unique
/// IDs. Carrying the cardinality in the handle lets factor algebra verify
/// shape agreement without a registry lookup.
///
/// # Examples
///
/// ```
/// use slj_bayes::variable::Variable;
///
/// let pose = Variable::new(0, 22);
/// assert_eq!(pose.cardinality(), 22);
/// assert!(pose.contains_state(21));
/// assert!(!pose.contains_state(22));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Variable {
    id: usize,
    cardinality: usize,
}

impl Variable {
    /// Creates a variable handle.
    ///
    /// # Panics
    ///
    /// Panics if `cardinality` is zero.
    pub fn new(id: usize, cardinality: usize) -> Self {
        assert!(cardinality > 0, "variable cardinality must be non-zero");
        Variable { id, cardinality }
    }

    /// The variable's unique identifier.
    pub fn id(self) -> usize {
        self.id
    }

    /// Number of states.
    pub fn cardinality(self) -> usize {
        self.cardinality
    }

    /// Whether `state` lies in the variable's domain.
    pub fn contains_state(self, state: usize) -> bool {
        state < self.cardinality
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}(|{}|)", self.id, self.cardinality)
    }
}

/// Allocates variables with unique IDs and remembers their names.
///
/// # Examples
///
/// ```
/// use slj_bayes::variable::VariablePool;
///
/// let mut pool = VariablePool::new();
/// let a = pool.variable("stage", 4);
/// let b = pool.variable("pose", 22);
/// assert_ne!(a.id(), b.id());
/// assert_eq!(pool.name(a), Some("stage"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct VariablePool {
    names: Vec<String>,
    cardinalities: Vec<usize>,
}

impl VariablePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        VariablePool::default()
    }

    /// Allocates a fresh variable.
    ///
    /// # Panics
    ///
    /// Panics if `cardinality` is zero.
    pub fn variable(&mut self, name: impl Into<String>, cardinality: usize) -> Variable {
        assert!(cardinality > 0, "variable cardinality must be non-zero");
        let id = self.names.len();
        self.names.push(name.into());
        self.cardinalities.push(cardinality);
        Variable { id, cardinality }
    }

    /// Name of a variable allocated from this pool.
    pub fn name(&self, var: Variable) -> Option<&str> {
        self.names.get(var.id()).map(String::as_str)
    }

    /// Number of variables allocated.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no variable has been allocated.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Re-creates the handle for a previously allocated ID.
    pub fn get(&self, id: usize) -> Option<Variable> {
        self.cardinalities
            .get(id)
            .map(|&c| Variable { id, cardinality: c })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_accessors() {
        let v = Variable::new(7, 3);
        assert_eq!(v.id(), 7);
        assert_eq!(v.cardinality(), 3);
        assert!(v.contains_state(0));
        assert!(v.contains_state(2));
        assert!(!v.contains_state(3));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_cardinality_panics() {
        Variable::new(0, 0);
    }

    #[test]
    fn pool_allocates_sequential_ids() {
        let mut pool = VariablePool::new();
        let a = pool.variable("a", 2);
        let b = pool.variable("b", 5);
        assert_eq!(a.id(), 0);
        assert_eq!(b.id(), 1);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.name(b), Some("b"));
        assert_eq!(pool.get(1), Some(b));
        assert_eq!(pool.get(2), None);
    }

    #[test]
    fn display_format() {
        assert_eq!(Variable::new(4, 22).to_string(), "X4(|22|)");
    }
}
