//! Dynamic Bayesian networks: two-slice temporal models, unrolling, and
//! forward filtering.
//!
//! The paper's classifier (Figure 7(b)) is a 2-slice temporal Bayesian
//! network: the current pose depends on the previous pose and the current
//! jumping stage; the stage depends on the previous stage; the per-pose
//! observation network hangs off the current pose. [`TwoSliceDbn`]
//! captures that structure generically: *interface* variables persist
//! across slices, *slice* variables (hidden parts, observed areas) live
//! within one slice, and [`ForwardFilter`] maintains the filtered belief
//! over the interface — the paper's "pose information of previous frame is
//! input into the DBN".

use crate::cpd::{Cpd, NoisyOrCpd, TableCpd};
use crate::error::BayesError;
use crate::factor::Factor;
use crate::inference::Evidence;
use crate::network::{BayesNetBuilder, DiscreteBayesNet};
use crate::variable::{Variable, VariablePool};
use slj_obs::Stopwatch;
use slj_obs::{Histogram, Registry};
use std::collections::{HashMap, HashSet};

/// Metric handles for DBN inference, recorded into an observability
/// registry (see [`ForwardFilter::set_metrics`],
/// [`SmoothingPass::with_metrics`], [`ViterbiDecoder::with_metrics`]).
///
/// Handles are resolved once at construction; recording is a few relaxed
/// atomic adds per step/pass and never changes inference results.
#[derive(Debug, Clone)]
pub struct InferenceMetrics {
    /// `bayes.filter.step_ns` — wall time of one filtering step.
    step_ns: Histogram,
    /// `bayes.filter.factor_cells` — total table cells across the
    /// factors eliminated in one filtering step (the step's work size).
    factor_cells: Histogram,
    /// `bayes.decode_ns` — wall time of one Viterbi decode pass.
    decode_ns: Histogram,
    /// `bayes.smooth_ns` — wall time of one smoothing pass.
    smooth_ns: Histogram,
}

impl InferenceMetrics {
    /// Resolves the DBN inference metrics in `registry`.
    pub fn new(registry: &Registry) -> Self {
        InferenceMetrics {
            step_ns: registry.histogram("bayes.filter.step_ns"),
            factor_cells: registry.histogram("bayes.filter.factor_cells"),
            decode_ns: registry.histogram("bayes.decode_ns"),
            smooth_ns: registry.histogram("bayes.smooth_ns"),
        }
    }
}

/// Builder for [`TwoSliceDbn`].
///
/// Declare interface variables (persistent across time) and slice
/// variables (per-frame), then attach *prior* CPDs (slice 0) and
/// *transition* CPDs (slice t, may reference previous-slice interface
/// variables as parents).
#[derive(Debug, Default)]
pub struct TwoSliceDbnBuilder {
    pool: VariablePool,
    interface: Vec<InterfacePair>,
    slice_vars: Vec<Variable>,
    prior: Vec<Cpd>,
    transition: Vec<Cpd>,
}

#[derive(Debug, Clone, Copy)]
struct InterfacePair {
    cur: Variable,
    prev: Variable,
}

impl TwoSliceDbnBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TwoSliceDbnBuilder::default()
    }

    /// Declares a persistent variable; returns `(current, previous)`
    /// handles. Use `previous` only as a parent in transition CPDs.
    ///
    /// # Panics
    ///
    /// Panics if `cardinality` is zero.
    pub fn interface_variable(
        &mut self,
        name: impl Into<String>,
        cardinality: usize,
    ) -> (Variable, Variable) {
        let name = name.into();
        let cur = self.pool.variable(name.clone(), cardinality);
        let prev = self.pool.variable(format!("{name}[t-1]"), cardinality);
        self.interface.push(InterfacePair { cur, prev });
        (cur, prev)
    }

    /// Declares a per-slice variable (hidden or observed within a frame).
    ///
    /// # Panics
    ///
    /// Panics if `cardinality` is zero.
    pub fn slice_variable(&mut self, name: impl Into<String>, cardinality: usize) -> Variable {
        let v = self.pool.variable(name, cardinality);
        self.slice_vars.push(v);
        v
    }

    /// Attaches a CPD used in slice 0 only.
    pub fn prior_cpd(&mut self, cpd: impl Into<Cpd>) -> &mut Self {
        self.prior.push(cpd.into());
        self
    }

    /// Attaches a CPD used in slices t ≥ 1 (parents may include
    /// previous-slice interface variables).
    pub fn transition_cpd(&mut self, cpd: impl Into<Cpd>) -> &mut Self {
        self.transition.push(cpd.into());
        self
    }

    /// Attaches a CPD used identically in every slice (no previous-slice
    /// parents), e.g. observation models.
    pub fn shared_cpd(&mut self, cpd: impl Into<Cpd>) -> &mut Self {
        let cpd = cpd.into();
        self.prior.push(cpd.clone());
        self.transition.push(cpd);
        self
    }

    /// Validates and finalises the DBN.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::InvalidTemporalStructure`] when a current
    /// variable lacks a prior or transition CPD, a previous-slice handle
    /// is used as a child, or a prior CPD references previous-slice
    /// variables; structural errors from the underlying networks
    /// propagate as-is.
    pub fn build(self) -> Result<TwoSliceDbn, BayesError> {
        let prev_ids: HashSet<usize> = self.interface.iter().map(|p| p.prev.id()).collect();
        // Declaration-order id list: the membership set below must never
        // be iterated (hash order would make which validation error
        // surfaces first nondeterministic).
        let ordered_cur_ids: Vec<usize> = self
            .interface
            .iter()
            .map(|p| p.cur.id())
            .chain(self.slice_vars.iter().map(|v| v.id()))
            .collect();
        let cur_ids: HashSet<usize> = ordered_cur_ids.iter().copied().collect();
        // Every current variable needs both CPDs; previous handles need
        // none and may not be children.
        for (cpds, label) in [(&self.prior, "prior"), (&self.transition, "transition")] {
            let mut seen: HashSet<usize> = HashSet::new();
            for cpd in cpds {
                let child = cpd.child();
                if prev_ids.contains(&child.id()) {
                    return Err(BayesError::InvalidTemporalStructure(format!(
                        "previous-slice variable {} used as a {label} child",
                        child.id()
                    )));
                }
                if !cur_ids.contains(&child.id()) {
                    return Err(BayesError::UnknownVariable(child.id()));
                }
                if !seen.insert(child.id()) {
                    return Err(BayesError::DuplicateCpd(child.id()));
                }
                for p in cpd.parents() {
                    let known = cur_ids.contains(&p.id()) || prev_ids.contains(&p.id());
                    if !known {
                        return Err(BayesError::UnknownVariable(p.id()));
                    }
                    if label == "prior" && prev_ids.contains(&p.id()) {
                        return Err(BayesError::InvalidTemporalStructure(format!(
                            "prior CPD for variable {} references previous slice",
                            child.id()
                        )));
                    }
                }
            }
            for &id in &ordered_cur_ids {
                if !cpds.iter().any(|c| c.child().id() == id) {
                    return Err(BayesError::InvalidTemporalStructure(format!(
                        "variable {id} lacks a {label} CPD"
                    )));
                }
            }
        }
        // Convert the CPD templates to factors once: every filtering
        // step used to redo this table-by-table, which dominated the
        // per-frame step cost (cloning a cached factor is a flat copy).
        let prior_factors: Vec<Factor> = self.prior.iter().map(|c| c.to_factor()).collect();
        let transition_factors: Vec<Factor> =
            self.transition.iter().map(|c| c.to_factor()).collect();
        let interface_ids: HashSet<usize> = self.interface.iter().map(|p| p.cur.id()).collect();
        Ok(TwoSliceDbn {
            pool: self.pool,
            interface: self.interface,
            slice_vars: self.slice_vars,
            prior: self.prior,
            transition: self.transition,
            prior_factors,
            transition_factors,
            interface_ids,
        })
    }
}

/// A validated two-slice temporal Bayesian network.
#[derive(Debug, Clone)]
pub struct TwoSliceDbn {
    pool: VariablePool,
    interface: Vec<InterfacePair>,
    slice_vars: Vec<Variable>,
    prior: Vec<Cpd>,
    transition: Vec<Cpd>,
    /// `prior` converted to factors at build time (never mutated; lent
    /// borrowed into each step's clone-on-write elimination working set).
    prior_factors: Vec<Factor>,
    /// `transition` converted to factors at build time.
    transition_factors: Vec<Factor>,
    /// Current-slice interface ids — the keep-set of every filtering
    /// step (membership queries only, never iterated).
    interface_ids: HashSet<usize>,
}

impl TwoSliceDbn {
    /// Current-slice interface variables (the persistent state).
    pub fn interface_vars(&self) -> Vec<Variable> {
        self.interface.iter().map(|p| p.cur).collect()
    }

    /// Previous-slice handle for a current interface variable.
    pub fn previous_of(&self, cur: Variable) -> Option<Variable> {
        self.interface
            .iter()
            .find(|p| p.cur.id() == cur.id())
            .map(|p| p.prev)
    }

    /// Per-slice (non-persistent) variables.
    pub fn slice_vars(&self) -> &[Variable] {
        &self.slice_vars
    }

    /// A variable's name.
    pub fn name(&self, var: Variable) -> Option<&str> {
        self.pool.name(var)
    }

    /// Unrolls the DBN into a static network over `steps` slices
    /// (`steps ≥ 1`). Returns the network plus, per step, the mapping
    /// from template variables to that step's instances.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::InvalidTemporalStructure`] for `steps == 0`;
    /// construction errors propagate from the static builder.
    pub fn unroll(
        &self,
        steps: usize,
    ) -> Result<(DiscreteBayesNet, Vec<HashMap<usize, Variable>>), BayesError> {
        if steps == 0 {
            return Err(BayesError::InvalidTemporalStructure(
                "cannot unroll zero steps".into(),
            ));
        }
        let mut b = BayesNetBuilder::new();
        let mut step_maps: Vec<HashMap<usize, Variable>> = Vec::with_capacity(steps);
        for t in 0..steps {
            let mut map: HashMap<usize, Variable> = HashMap::new();
            for pair in &self.interface {
                let name = format!("{}@{t}", self.pool.name(pair.cur).unwrap_or("iface"));
                map.insert(pair.cur.id(), b.variable(name, pair.cur.cardinality()));
            }
            for v in &self.slice_vars {
                let name = format!("{}@{t}", self.pool.name(*v).unwrap_or("slice"));
                map.insert(v.id(), b.variable(name, v.cardinality()));
            }
            // Previous-slice handles map to the previous step's instances.
            if t > 0 {
                for pair in &self.interface {
                    let prev_instance = step_maps[t - 1][&pair.cur.id()];
                    map.insert(pair.prev.id(), prev_instance);
                }
            }
            let cpds = if t == 0 {
                &self.prior
            } else {
                &self.transition
            };
            for cpd in cpds {
                b.attach(remap_cpd(cpd, &map)?)?;
            }
            step_maps.push(map);
        }
        Ok((b.build()?, step_maps))
    }
}

/// Rewrites a CPD onto new variable handles with identical cardinalities.
///
/// Remapping preserves every cardinality, so reconstruction can only fail
/// if an unrolled network was built against mismatched handles — surfaced
/// as an error rather than a panic.
fn remap_cpd(cpd: &Cpd, map: &HashMap<usize, Variable>) -> Result<Cpd, BayesError> {
    let remap = |v: Variable| -> Variable { map.get(&v.id()).copied().unwrap_or(v) };
    Ok(match cpd {
        Cpd::Table(t) => {
            let child = remap(t.child());
            let parents: Vec<Variable> = t.parents().iter().map(|&p| remap(p)).collect();
            Cpd::Table(TableCpd::new(child, parents, t.table().to_vec())?)
        }
        Cpd::NoisyOr(n) => {
            let child = remap(n.child());
            let parents: Vec<Variable> = n.parents().iter().map(|&p| remap(p)).collect();
            Cpd::NoisyOr(NoisyOrCpd::new(
                child,
                parents,
                n.activation().to_vec(),
                n.leak(),
            )?)
        }
    })
}

/// Recursive (filtering) state estimation over a [`TwoSliceDbn`].
///
/// Maintains `P(interface_t | evidence_{0..t})`. Each [`ForwardFilter::step`]
/// absorbs one frame of evidence; [`ForwardFilter::step_with_likelihood`]
/// additionally multiplies an externally computed likelihood factor over
/// current-slice variables (the pose classifier injects the closed-form
/// noisy-OR area likelihood this way).
#[derive(Debug, Clone)]
pub struct ForwardFilter<'a> {
    dbn: &'a TwoSliceDbn,
    belief: Option<Factor>,
    steps: usize,
    metrics: Option<InferenceMetrics>,
}

impl<'a> ForwardFilter<'a> {
    /// Creates a filter before any evidence (belief undefined until the
    /// first step).
    pub fn new(dbn: &'a TwoSliceDbn) -> Self {
        ForwardFilter {
            dbn,
            belief: None,
            steps: 0,
            metrics: None,
        }
    }

    /// Records per-step timing and factor sizes into `metrics` from now
    /// on. Observation never changes the belief.
    pub fn set_metrics(&mut self, metrics: InferenceMetrics) {
        self.metrics = Some(metrics);
    }

    /// Number of steps absorbed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The current belief over the interface variables, if at least one
    /// step has run.
    pub fn belief(&self) -> Option<&Factor> {
        self.belief.as_ref()
    }

    /// Replaces the belief (e.g. the paper's carry-forward rule after an
    /// unknown pose). The factor must cover exactly the interface scope.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::VariableNotInScope`] when the scope does not
    /// match the interface and propagates normalisation errors.
    pub fn set_belief(&mut self, belief: Factor) -> Result<(), BayesError> {
        let iface: HashSet<usize> = self.dbn.interface_vars().iter().map(|v| v.id()).collect();
        let scope: HashSet<usize> = belief.scope().iter().map(|v| v.id()).collect();
        if iface != scope {
            let missing = iface
                .symmetric_difference(&scope)
                .next()
                .copied()
                .unwrap_or(0);
            return Err(BayesError::VariableNotInScope(missing));
        }
        self.belief = Some(belief.normalized()?);
        if self.steps == 0 {
            // A seeded belief counts as the slice-0 state, so the next
            // step uses transition CPDs.
            self.steps = 1;
        }
        Ok(())
    }

    /// Absorbs one slice of evidence and returns the updated belief.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::ZeroProbabilityEvidence`] for impossible
    /// evidence (the belief is left unchanged) and propagates factor
    /// errors on malformed evidence.
    pub fn step(&mut self, evidence: &Evidence) -> Result<Factor, BayesError> {
        self.step_with_likelihood(evidence, None)
    }

    /// Absorbs one slice of evidence plus an optional external likelihood
    /// factor over current-slice variables.
    ///
    /// # Errors
    ///
    /// Same as [`ForwardFilter::step`].
    pub fn step_with_likelihood(
        &mut self,
        evidence: &Evidence,
        likelihood: Option<&Factor>,
    ) -> Result<Factor, BayesError> {
        let started = self.metrics.as_ref().map(|_| Stopwatch::start());
        let first = self.steps == 0;
        let template = if first {
            &self.dbn.prior_factors
        } else {
            &self.dbn.transition_factors
        };
        // The cached templates enter the elimination working set
        // borrowed: only factors touched by evidence are ever copied.
        let mut factors: Vec<std::borrow::Cow<'_, Factor>> =
            Vec::with_capacity(template.len() + 2);
        factors.extend(template.iter().map(std::borrow::Cow::Borrowed));
        if !first {
            // Attach the previous belief on the prev-slice handles.
            let Some(mut prior) = self.belief.clone() else {
                return Err(BayesError::InvalidTemporalStructure(
                    "filter stepped past t=0 with no belief set".into(),
                ));
            };
            for pair in &self.dbn.interface {
                prior = prior.rename(pair.cur, pair.prev)?;
            }
            factors.push(std::borrow::Cow::Owned(prior));
        }
        if let Some(lik) = likelihood {
            factors.push(std::borrow::Cow::Borrowed(lik));
        }
        if let Some(metrics) = &self.metrics {
            let cells: usize = factors.iter().map(|f| f.values().len()).sum();
            metrics.factor_cells.record(cells as u64);
        }
        let result = crate::inference::elimination_internal::eliminate_all_cow(
            factors,
            evidence,
            &self.dbn.interface_ids,
        )?;
        let belief = result.normalized()?;
        self.belief = Some(belief.clone());
        self.steps += 1;
        if let (Some(metrics), Some(started)) = (&self.metrics, started) {
            metrics.step_ns.record_duration(started.elapsed());
        }
        Ok(belief)
    }

    /// Reference implementation of
    /// [`ForwardFilter::step_with_likelihood`]: clones the cached factor
    /// templates into an owned working set exactly as the pre-Cow step
    /// did. Kept as the bit-exactness oracle for the borrow-based
    /// production step (parity tests here, delta shown in the
    /// `slj bench` kernels group).
    ///
    /// # Errors
    ///
    /// Same as [`ForwardFilter::step`].
    pub fn step_with_likelihood_reference(
        &mut self,
        evidence: &Evidence,
        likelihood: Option<&Factor>,
    ) -> Result<Factor, BayesError> {
        let first = self.steps == 0;
        let template = if first {
            &self.dbn.prior_factors
        } else {
            &self.dbn.transition_factors
        };
        let mut factors: Vec<Factor> = Vec::with_capacity(template.len() + 2);
        factors.extend(template.iter().cloned());
        if !first {
            let Some(mut prior) = self.belief.clone() else {
                return Err(BayesError::InvalidTemporalStructure(
                    "filter stepped past t=0 with no belief set".into(),
                ));
            };
            for pair in &self.dbn.interface {
                prior = prior.rename(pair.cur, pair.prev)?;
            }
            factors.push(prior);
        }
        if let Some(lik) = likelihood {
            factors.push(lik.clone());
        }
        let result = crate::inference::elimination_internal::eliminate_all_reference(
            factors,
            evidence,
            &self.dbn.interface_ids,
        )?;
        let belief = result.normalized()?;
        self.belief = Some(belief.clone());
        self.steps += 1;
        Ok(belief)
    }

    /// Filtered marginal of one interface variable.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::VariableNotInScope`] before the first step
    /// or for non-interface variables.
    pub fn marginal(&self, var: Variable) -> Result<Vec<f64>, BayesError> {
        self.belief
            .as_ref()
            .ok_or(BayesError::VariableNotInScope(var.id()))?
            .marginal(var)
    }
}

/// One time step's inputs for [`ViterbiDecoder`]: observed slice
/// variables plus an optional externally computed likelihood factor over
/// current-slice variables (same contract as
/// [`ForwardFilter::step_with_likelihood`]).
#[derive(Debug, Clone, Default)]
pub struct StepInput {
    /// Observed `(variable, state)` pairs for the slice.
    pub evidence: Vec<(Variable, usize)>,
    /// Optional external likelihood factor over current-slice variables.
    pub likelihood: Option<Factor>,
}

impl StepInput {
    /// A step with no evidence at all.
    pub fn empty() -> Self {
        StepInput::default()
    }

    /// A step carrying only an external likelihood factor.
    pub fn likelihood(factor: Factor) -> Self {
        StepInput {
            evidence: Vec::new(),
            likelihood: Some(factor),
        }
    }
}

/// Offline smoothing over a [`TwoSliceDbn`]: posterior marginals of the
/// interface variables at every step given the *whole* evidence
/// sequence, by the forward–backward algorithm over the joint interface
/// state space.
///
/// Complements [`ForwardFilter`] (online, causal) and [`ViterbiDecoder`]
/// (offline, jointly most probable sequence): smoothing gives per-step
/// posteriors with hindsight.
#[derive(Debug, Clone)]
pub struct SmoothingPass<'a> {
    dbn: &'a TwoSliceDbn,
    metrics: Option<InferenceMetrics>,
}

impl<'a> SmoothingPass<'a> {
    /// Creates a smoother over `dbn`.
    pub fn new(dbn: &'a TwoSliceDbn) -> Self {
        SmoothingPass { dbn, metrics: None }
    }

    /// This smoother recording pass wall time into `metrics`.
    pub fn with_metrics(mut self, metrics: InferenceMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Computes `P(interface_t | evidence_{0..T})` for every `t`,
    /// returned as normalised factors over the interface scope.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::InvalidTemporalStructure`] for an empty
    /// input and [`BayesError::ZeroProbabilityEvidence`] for impossible
    /// evidence; factor errors propagate.
    pub fn smooth(&self, steps: &[StepInput]) -> Result<Vec<Factor>, BayesError> {
        let started = self.metrics.as_ref().map(|_| Stopwatch::start());
        let result = self.smooth_inner(steps);
        if let (Some(metrics), Some(started)) = (&self.metrics, started) {
            metrics.smooth_ns.record_duration(started.elapsed());
        }
        result
    }

    fn smooth_inner(&self, steps: &[StepInput]) -> Result<Vec<Factor>, BayesError> {
        if steps.is_empty() {
            return Err(BayesError::InvalidTemporalStructure(
                "cannot smooth an empty sequence".into(),
            ));
        }
        let iface: Vec<Variable> = self.dbn.interface_vars();
        let keep_cur: HashSet<usize> = iface.iter().map(|v| v.id()).collect();
        let prev_vars: Vec<Variable> = iface
            .iter()
            .map(|&v| {
                self.dbn.previous_of(v).ok_or_else(|| {
                    BayesError::InvalidTemporalStructure(
                        "interface variable lacks a previous-slice handle".into(),
                    )
                })
            })
            .collect::<Result<_, _>>()?;
        let mut keep_both = keep_cur.clone();
        keep_both.extend(prev_vars.iter().map(|v| v.id()));
        let decoder = ViterbiDecoder::new(self.dbn);

        // Forward messages α_t over the interface (unnormalised but
        // rescaled per step for stability).
        let mut alphas: Vec<Factor> = Vec::with_capacity(steps.len());
        let alpha0 = decoder
            .slice_potential(&self.dbn.prior_factors, &steps[0], &keep_cur, None)?
            .normalized()?;
        alphas.push(alpha0);
        // Transition kernels per step (cached for the backward pass).
        let mut kernels: Vec<Factor> = Vec::with_capacity(steps.len().saturating_sub(1));
        for step in &steps[1..] {
            let kernel = decoder.slice_potential(&self.dbn.transition_factors, step, &keep_both, None)?;
            let mut prior = alphas
                .last()
                .ok_or_else(|| {
                    BayesError::InvalidTemporalStructure("forward pass produced no messages".into())
                })?
                .clone();
            for (cur, prev) in iface.iter().zip(&prev_vars) {
                prior = prior.rename(*cur, *prev)?;
            }
            let mut joint = kernel.product(&prior)?;
            for prev in &prev_vars {
                joint = joint.sum_out(*prev)?;
            }
            alphas.push(joint.normalized()?);
            kernels.push(kernel);
        }

        // Backward messages β_t over the interface.
        let mut betas: Vec<Factor> = vec![Factor::unit(); steps.len()];
        // β_T = 1 over the interface scope.
        let unit_iface = {
            let size: usize = iface.iter().map(|v| v.cardinality()).product();
            Factor::new(iface.clone(), vec![1.0; size])?
        };
        betas[steps.len() - 1] = unit_iface;
        for t in (0..steps.len() - 1).rev() {
            // β_t(x') = Σ_x K_{t+1}(x', x) β_{t+1}(x), rescaled.
            let mut joint = kernels[t].product(&betas[t + 1])?;
            for cur in &iface {
                joint = joint.sum_out(*cur)?;
            }
            // joint is over prev vars; rename back to cur handles.
            for (cur, prev) in iface.iter().zip(&prev_vars) {
                joint = joint.rename(*prev, *cur)?;
            }
            betas[t] = joint.normalized()?;
        }

        // γ_t ∝ α_t · β_t.
        alphas
            .into_iter()
            .zip(betas)
            .map(|(a, b)| a.product(&b)?.normalized())
            .collect()
    }
}

/// Offline most-likely-sequence decoding over a [`TwoSliceDbn`]: finds
/// `argmax P(interface_0..T | evidence_0..T)` with per-slice nuisance
/// variables marginalised out — the batch counterpart of
/// [`ForwardFilter`] (which is constrained to online, per-frame
/// decisions like the paper's classifier).
#[derive(Debug, Clone)]
pub struct ViterbiDecoder<'a> {
    dbn: &'a TwoSliceDbn,
    metrics: Option<InferenceMetrics>,
}

impl<'a> ViterbiDecoder<'a> {
    /// Creates a decoder over `dbn`.
    pub fn new(dbn: &'a TwoSliceDbn) -> Self {
        ViterbiDecoder { dbn, metrics: None }
    }

    /// This decoder recording pass wall time into `metrics`.
    pub fn with_metrics(mut self, metrics: InferenceMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Decodes the most probable interface-state sequence. Each returned
    /// entry maps interface-variable ID → state for one step.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::InvalidTemporalStructure`] for an empty
    /// input and [`BayesError::ZeroProbabilityEvidence`] when no
    /// sequence has positive probability; factor errors propagate.
    pub fn decode(&self, steps: &[StepInput]) -> Result<Vec<HashMap<usize, usize>>, BayesError> {
        let started = self.metrics.as_ref().map(|_| Stopwatch::start());
        let result = self.decode_inner(steps);
        if let (Some(metrics), Some(started)) = (&self.metrics, started) {
            metrics.decode_ns.record_duration(started.elapsed());
        }
        result
    }

    fn decode_inner(&self, steps: &[StepInput]) -> Result<Vec<HashMap<usize, usize>>, BayesError> {
        if steps.is_empty() {
            return Err(BayesError::InvalidTemporalStructure(
                "cannot decode an empty sequence".into(),
            ));
        }
        let iface: Vec<Variable> = self.dbn.interface_vars();
        let keep_cur: HashSet<usize> = iface.iter().map(|v| v.id()).collect();
        let joint_states: usize = iface.iter().map(|v| v.cardinality()).product();

        // δ-table in log space to dodge underflow over long clips;
        // backpointers per step.
        let mut delta = vec![f64::NEG_INFINITY; joint_states];
        let mut backpointers: Vec<Vec<usize>> = Vec::with_capacity(steps.len());

        // Step 0: prior network reduced by evidence, nuisance summed out.
        let alpha0 = self.slice_potential(&self.dbn.prior_factors, &steps[0], &keep_cur, None)?;
        for (x, slot) in delta.iter_mut().enumerate() {
            let asn = crate::assignment::index_to_assignment(&iface, x);
            let pairs: Vec<(Variable, usize)> =
                iface.iter().copied().zip(asn.iter().copied()).collect();
            let v = alpha0.value_at(&pairs)?;
            *slot = v.ln();
        }
        backpointers.push(vec![usize::MAX; joint_states]);

        // Steps 1..T: transition kernel over prev ∪ cur interface.
        let prev_vars: Vec<Variable> = iface
            .iter()
            .map(|&v| {
                self.dbn.previous_of(v).ok_or_else(|| {
                    BayesError::InvalidTemporalStructure(
                        "interface variable lacks a previous-slice handle".into(),
                    )
                })
            })
            .collect::<Result<_, _>>()?;
        let mut keep_both = keep_cur.clone();
        keep_both.extend(prev_vars.iter().map(|v| v.id()));
        for step in &steps[1..] {
            let kernel = self.slice_potential(&self.dbn.transition_factors, step, &keep_both, None)?;
            let mut next = vec![f64::NEG_INFINITY; joint_states];
            let mut back = vec![usize::MAX; joint_states];
            for x in 0..joint_states {
                let cur_asn = crate::assignment::index_to_assignment(&iface, x);
                for (xp, &prev_score) in delta.iter().enumerate() {
                    if prev_score == f64::NEG_INFINITY {
                        continue;
                    }
                    let prev_asn = crate::assignment::index_to_assignment(&iface, xp);
                    let mut pairs: Vec<(Variable, usize)> =
                        iface.iter().copied().zip(cur_asn.iter().copied()).collect();
                    pairs.extend(prev_vars.iter().copied().zip(prev_asn.iter().copied()));
                    let w = kernel.value_at(&pairs)?;
                    if w <= 0.0 {
                        continue;
                    }
                    let score = prev_score + w.ln();
                    if score > next[x] {
                        next[x] = score;
                        back[x] = xp;
                    }
                }
            }
            delta = next;
            backpointers.push(back);
        }

        // Backtrack from the best terminal state.
        let (mut best, best_score) =
            delta
                .iter()
                .enumerate()
                .fold((0usize, f64::NEG_INFINITY), |(bi, bv), (i, &v)| {
                    if v > bv {
                        (i, v)
                    } else {
                        (bi, bv)
                    }
                });
        if best_score == f64::NEG_INFINITY {
            return Err(BayesError::ZeroProbabilityEvidence);
        }
        let mut path = vec![0usize; steps.len()];
        for t in (0..steps.len()).rev() {
            path[t] = best;
            if t > 0 {
                best = backpointers[t][best];
            }
        }
        Ok(path
            .into_iter()
            .map(|x| {
                let asn = crate::assignment::index_to_assignment(&iface, x);
                iface
                    .iter()
                    .zip(asn)
                    .map(|(v, s)| (v.id(), s))
                    .collect::<HashMap<usize, usize>>()
            })
            .collect())
    }

    /// Product of a slice's factor templates with evidence absorbed and
    /// every variable outside `keep` summed out.
    ///
    /// Takes the DBN's cached prior/transition factors borrowed — the
    /// per-step `Cpd::to_factor` re-expansion (a full table rebuild per
    /// CPD per frame) and the template clone are both gone; batch decode
    /// and smoothing only copy factors that evidence actually touches.
    fn slice_potential(
        &self,
        template: &[Factor],
        step: &StepInput,
        keep: &HashSet<usize>,
        extra: Option<&Factor>,
    ) -> Result<Factor, BayesError> {
        let mut factors: Vec<std::borrow::Cow<'_, Factor>> =
            Vec::with_capacity(template.len() + 2);
        factors.extend(template.iter().map(std::borrow::Cow::Borrowed));
        if let Some(lik) = &step.likelihood {
            factors.push(std::borrow::Cow::Borrowed(lik));
        }
        if let Some(f) = extra {
            factors.push(std::borrow::Cow::Borrowed(f));
        }
        crate::inference::elimination_internal::eliminate_all_cow(factors, &step.evidence, keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::VariableElimination;

    /// The Russell–Norvig umbrella world, with slice 0 being day 1.
    fn umbrella_dbn() -> (TwoSliceDbn, Variable, Variable, Variable) {
        let mut b = TwoSliceDbnBuilder::new();
        let (rain, rain_prev) = b.interface_variable("rain", 2);
        let umbrella = b.slice_variable("umbrella", 2);
        // Day-1 prior: P(rain) = Σ_r0 P(rain|r0) P(r0) = 0.5.
        b.prior_cpd(TableCpd::new(rain, vec![], vec![0.5, 0.5]).unwrap());
        b.transition_cpd(TableCpd::new(rain, vec![rain_prev], vec![0.7, 0.3, 0.3, 0.7]).unwrap());
        b.shared_cpd(TableCpd::new(umbrella, vec![rain], vec![0.8, 0.2, 0.1, 0.9]).unwrap());
        let dbn = b.build().unwrap();
        (dbn, rain, rain_prev, umbrella)
    }

    #[test]
    fn umbrella_filtering_matches_textbook() {
        let (dbn, rain, _, umbrella) = umbrella_dbn();
        let mut filter = ForwardFilter::new(&dbn);
        filter.step(&[(umbrella, 1)]).unwrap();
        let p1 = filter.marginal(rain).unwrap();
        assert!((p1[1] - 0.818).abs() < 1e-3, "day 1: {p1:?}");
        filter.step(&[(umbrella, 1)]).unwrap();
        let p2 = filter.marginal(rain).unwrap();
        assert!((p2[1] - 0.883).abs() < 1e-3, "day 2: {p2:?}");
    }

    #[test]
    fn filter_matches_unrolled_network() {
        let (dbn, rain, _, umbrella) = umbrella_dbn();
        let observations = [1usize, 1, 0, 1, 0];
        // Filtered via the forward filter.
        let mut filter = ForwardFilter::new(&dbn);
        let mut filtered = Vec::new();
        for &o in &observations {
            filter.step(&[(umbrella, o)]).unwrap();
            filtered.push(filter.marginal(rain).unwrap());
        }
        // Filtered via VE on the unrolled network.
        let (net, maps) = dbn.unroll(observations.len()).unwrap();
        let ve = VariableElimination::new(&net);
        for t in 0..observations.len() {
            let evidence: Vec<(Variable, usize)> = (0..=t)
                .map(|s| (maps[s][&umbrella.id()], observations[s]))
                .collect();
            let exact = ve.posterior(maps[t][&rain.id()], &evidence).unwrap();
            assert!(
                (exact[1] - filtered[t][1]).abs() < 1e-9,
                "t={t}: unrolled {exact:?} vs filtered {:?}",
                filtered[t]
            );
        }
    }

    #[test]
    fn no_evidence_steps_follow_the_markov_chain() {
        let (dbn, rain, ..) = umbrella_dbn();
        let mut filter = ForwardFilter::new(&dbn);
        filter.step(&[]).unwrap();
        let p = filter.marginal(rain).unwrap();
        assert!((p[1] - 0.5).abs() < 1e-12);
        // With a symmetric chain and uniform belief it stays uniform.
        filter.step(&[]).unwrap();
        let p2 = filter.marginal(rain).unwrap();
        assert!((p2[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn set_belief_overrides_state() {
        let (dbn, rain, _, umbrella) = umbrella_dbn();
        let mut filter = ForwardFilter::new(&dbn);
        filter
            .set_belief(Factor::indicator(rain, 1).unwrap())
            .unwrap();
        // Next step must use the transition from certain rain.
        filter.step(&[]).unwrap();
        let p = filter.marginal(rain).unwrap();
        assert!((p[1] - 0.7).abs() < 1e-12, "{p:?}");
        // Scope mismatch is rejected.
        let mut f2 = ForwardFilter::new(&dbn);
        assert!(f2
            .set_belief(Factor::indicator(umbrella, 1).unwrap())
            .is_err());
    }

    #[test]
    fn step_with_likelihood_equals_evidence() {
        let (dbn, rain, _, umbrella) = umbrella_dbn();
        // Observing umbrella=1 must equal injecting the likelihood column
        // P(umbrella=1 | rain) as an external factor.
        let mut f_ev = ForwardFilter::new(&dbn);
        f_ev.step(&[(umbrella, 1)]).unwrap();
        let mut f_lik = ForwardFilter::new(&dbn);
        let lik = Factor::new(vec![rain], vec![0.2, 0.9]).unwrap();
        f_lik.step_with_likelihood(&[], Some(&lik)).unwrap();
        let a = f_ev.marginal(rain).unwrap();
        let b = f_lik.marginal(rain).unwrap();
        // Note: the umbrella variable also gets marginalised in the
        // likelihood variant, contributing a constant 1 per state.
        assert!((a[1] - b[1]).abs() < 1e-12, "{a:?} vs {b:?}");
    }

    #[test]
    fn step_is_bit_identical_to_reference() {
        let (dbn, _, _, umbrella) = umbrella_dbn();
        let mut fast = ForwardFilter::new(&dbn);
        let mut reference = ForwardFilter::new(&dbn);
        let lik = Factor::new(vec![umbrella], vec![0.3, 0.7]).unwrap();
        for (t, &o) in [1usize, 1, 0, 1, 0, 0, 1].iter().enumerate() {
            let likelihood = (t % 2 == 0).then_some(&lik);
            let a = fast
                .step_with_likelihood(&[(umbrella, o)], likelihood)
                .unwrap();
            let b = reference
                .step_with_likelihood_reference(&[(umbrella, o)], likelihood)
                .unwrap();
            assert_eq!(a.scope(), b.scope(), "t={t}");
            for (x, y) in a.values().iter().zip(b.values()) {
                assert_eq!(x.to_bits(), y.to_bits(), "t={t}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn impossible_evidence_leaves_belief_unchanged() {
        let mut b = TwoSliceDbnBuilder::new();
        let (x, x_prev) = b.interface_variable("x", 2);
        let y = b.slice_variable("y", 2);
        b.prior_cpd(TableCpd::new(x, vec![], vec![1.0, 0.0]).unwrap());
        b.transition_cpd(TableCpd::new(x, vec![x_prev], vec![1.0, 0.0, 0.0, 1.0]).unwrap());
        b.shared_cpd(TableCpd::new(y, vec![x], vec![1.0, 0.0, 0.0, 1.0]).unwrap());
        let dbn = b.build().unwrap();
        let mut filter = ForwardFilter::new(&dbn);
        filter.step(&[(y, 0)]).unwrap();
        let before = filter.belief().unwrap().clone();
        // y=1 is impossible when x is locked to 0.
        assert!(matches!(
            filter.step(&[(y, 1)]),
            Err(BayesError::ZeroProbabilityEvidence)
        ));
        assert_eq!(filter.belief().unwrap(), &before);
        assert_eq!(filter.steps(), 1);
    }

    #[test]
    fn builder_validates_structure() {
        // Missing transition CPD.
        let mut b = TwoSliceDbnBuilder::new();
        let (x, _) = b.interface_variable("x", 2);
        b.prior_cpd(TableCpd::new(x, vec![], vec![0.5, 0.5]).unwrap());
        assert!(matches!(
            b.build(),
            Err(BayesError::InvalidTemporalStructure(_))
        ));

        // Previous handle as a child.
        let mut b = TwoSliceDbnBuilder::new();
        let (x, x_prev) = b.interface_variable("x", 2);
        b.prior_cpd(TableCpd::new(x, vec![], vec![0.5, 0.5]).unwrap());
        b.transition_cpd(TableCpd::new(x_prev, vec![], vec![0.5, 0.5]).unwrap());
        assert!(b.build().is_err());

        // Prior referencing the previous slice.
        let mut b = TwoSliceDbnBuilder::new();
        let (x, x_prev) = b.interface_variable("x", 2);
        b.prior_cpd(TableCpd::new(x, vec![x_prev], vec![0.5, 0.5, 0.5, 0.5]).unwrap());
        b.transition_cpd(TableCpd::new(x, vec![x_prev], vec![0.5, 0.5, 0.5, 0.5]).unwrap());
        assert!(b.build().is_err());
    }

    #[test]
    fn unroll_zero_steps_rejected() {
        let (dbn, ..) = umbrella_dbn();
        assert!(dbn.unroll(0).is_err());
    }

    #[test]
    fn unroll_names_and_shapes() {
        let (dbn, rain, _, umbrella) = umbrella_dbn();
        let (net, maps) = dbn.unroll(3).unwrap();
        assert_eq!(net.len(), 6);
        assert_eq!(maps.len(), 3);
        let r2 = maps[2][&rain.id()];
        assert_eq!(net.name(r2), Some("rain@2"));
        assert_eq!(r2.cardinality(), 2);
        let u0 = maps[0][&umbrella.id()];
        assert_eq!(net.name(u0), Some("umbrella@0"));
    }

    /// Brute-force most-likely sequence: unroll, absorb evidence, sum
    /// out the slice variables, argmax over the joint interface states.
    fn brute_force_viterbi(
        dbn: &TwoSliceDbn,
        observations: &[usize],
        obs_var: Variable,
        rain: Variable,
    ) -> Vec<usize> {
        let (net, maps) = dbn.unroll(observations.len()).unwrap();
        let mut joint = net.joint().unwrap();
        for (t, &o) in observations.iter().enumerate() {
            joint = joint.reduce(maps[t][&obs_var.id()], o).unwrap();
        }
        let (asn, _) = joint.argmax();
        // Scope order equals construction order; find each step's rain.
        let scope = joint.scope().to_vec();
        observations
            .iter()
            .enumerate()
            .map(|(t, _)| {
                let v = maps[t][&rain.id()];
                let pos = scope.iter().position(|u| u.id() == v.id()).unwrap();
                asn[pos]
            })
            .collect()
    }

    #[test]
    fn smoothing_matches_unrolled_network() {
        let (dbn, rain, _, umbrella) = umbrella_dbn();
        let observations = [1usize, 1, 0, 1];
        let steps: Vec<StepInput> = observations
            .iter()
            .map(|&o| StepInput {
                evidence: vec![(umbrella, o)],
                likelihood: None,
            })
            .collect();
        let smoothed = SmoothingPass::new(&dbn).smooth(&steps).unwrap();
        // Oracle: VE on the unrolled network with all evidence.
        let (net, maps) = dbn.unroll(observations.len()).unwrap();
        let evidence: Vec<(Variable, usize)> = observations
            .iter()
            .enumerate()
            .map(|(t, &o)| (maps[t][&umbrella.id()], o))
            .collect();
        let ve = VariableElimination::new(&net);
        for (t, gamma) in smoothed.iter().enumerate() {
            let exact = ve.posterior(maps[t][&rain.id()], &evidence).unwrap();
            let mine = gamma.marginal(rain).unwrap();
            for (x, y) in mine.iter().zip(&exact) {
                assert!(
                    (x - y).abs() < 1e-9,
                    "t={t}: smoothed {mine:?} vs exact {exact:?}"
                );
            }
        }
    }

    #[test]
    fn smoothing_matches_textbook_umbrella_value() {
        // Russell & Norvig: P(rain_1 | u_1, u_2) = 0.883 when smoothing
        // over two umbrella days.
        let (dbn, rain, _, umbrella) = umbrella_dbn();
        let steps = vec![
            StepInput {
                evidence: vec![(umbrella, 1)],
                likelihood: None,
            },
            StepInput {
                evidence: vec![(umbrella, 1)],
                likelihood: None,
            },
        ];
        let smoothed = SmoothingPass::new(&dbn).smooth(&steps).unwrap();
        let p1 = smoothed[0].marginal(rain).unwrap();
        assert!((p1[1] - 0.883).abs() < 1e-3, "day 1 smoothed: {p1:?}");
    }

    #[test]
    fn smoothing_last_step_equals_filtering() {
        let (dbn, rain, _, umbrella) = umbrella_dbn();
        let observations = [1usize, 0, 1, 1, 0];
        let steps: Vec<StepInput> = observations
            .iter()
            .map(|&o| StepInput {
                evidence: vec![(umbrella, o)],
                likelihood: None,
            })
            .collect();
        let smoothed = SmoothingPass::new(&dbn).smooth(&steps).unwrap();
        let mut filter = ForwardFilter::new(&dbn);
        for &o in &observations {
            filter.step(&[(umbrella, o)]).unwrap();
        }
        let filtered = filter.marginal(rain).unwrap();
        let last = smoothed.last().unwrap().marginal(rain).unwrap();
        for (x, y) in last.iter().zip(&filtered) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn smoothing_rejects_empty() {
        let (dbn, ..) = umbrella_dbn();
        assert!(SmoothingPass::new(&dbn).smooth(&[]).is_err());
    }

    #[test]
    fn viterbi_matches_brute_force_on_umbrella() {
        let (dbn, rain, _, umbrella) = umbrella_dbn();
        for observations in [
            vec![1usize, 1, 0],
            vec![0, 0, 1, 1],
            vec![1, 0, 1, 0, 1],
            vec![0, 0, 0],
        ] {
            let steps: Vec<StepInput> = observations
                .iter()
                .map(|&o| StepInput {
                    evidence: vec![(umbrella, o)],
                    likelihood: None,
                })
                .collect();
            let decoded = ViterbiDecoder::new(&dbn).decode(&steps).unwrap();
            let mine: Vec<usize> = decoded.iter().map(|m| m[&rain.id()]).collect();
            let brute = brute_force_viterbi(&dbn, &observations, umbrella, rain);
            assert_eq!(mine, brute, "observations {observations:?}");
        }
    }

    #[test]
    fn viterbi_with_likelihood_equals_evidence() {
        let (dbn, rain, _, umbrella) = umbrella_dbn();
        let obs = [1usize, 0, 1];
        let ev_steps: Vec<StepInput> = obs
            .iter()
            .map(|&o| StepInput {
                evidence: vec![(umbrella, o)],
                likelihood: None,
            })
            .collect();
        let lik_steps: Vec<StepInput> = obs
            .iter()
            .map(|&o| {
                // P(umbrella = o | rain) as an external factor.
                let col = if o == 1 { [0.2, 0.9] } else { [0.8, 0.1] };
                StepInput::likelihood(Factor::new(vec![rain], col.to_vec()).unwrap())
            })
            .collect();
        let a = ViterbiDecoder::new(&dbn).decode(&ev_steps).unwrap();
        let b = ViterbiDecoder::new(&dbn).decode(&lik_steps).unwrap();
        let pa: Vec<usize> = a.iter().map(|m| m[&rain.id()]).collect();
        let pb: Vec<usize> = b.iter().map(|m| m[&rain.id()]).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn viterbi_rejects_empty_and_impossible() {
        let (dbn, _, _, umbrella) = umbrella_dbn();
        assert!(matches!(
            ViterbiDecoder::new(&dbn).decode(&[]),
            Err(BayesError::InvalidTemporalStructure(_))
        ));
        // Deterministic world where the evidence is impossible.
        let mut b = TwoSliceDbnBuilder::new();
        let (x, x_prev) = b.interface_variable("x", 2);
        let y = b.slice_variable("y", 2);
        b.prior_cpd(TableCpd::new(x, vec![], vec![1.0, 0.0]).unwrap());
        b.transition_cpd(TableCpd::new(x, vec![x_prev], vec![1.0, 0.0, 0.0, 1.0]).unwrap());
        b.shared_cpd(TableCpd::new(y, vec![x], vec![1.0, 0.0, 0.0, 1.0]).unwrap());
        let det = b.build().unwrap();
        let steps = vec![StepInput {
            evidence: vec![(y, 1)],
            likelihood: None,
        }];
        assert!(matches!(
            ViterbiDecoder::new(&det).decode(&steps),
            Err(BayesError::ZeroProbabilityEvidence)
        ));
        let _ = umbrella; // silence unused in some cfgs
    }

    #[test]
    fn viterbi_long_sequence_is_stable() {
        // 60 steps of alternating evidence must not underflow (log
        // space) and must produce a plausible alternating-ish path.
        let (dbn, rain, _, umbrella) = umbrella_dbn();
        let steps: Vec<StepInput> = (0..60)
            .map(|t| StepInput {
                evidence: vec![(umbrella, usize::from(t % 6 < 3))],
                likelihood: None,
            })
            .collect();
        let decoded = ViterbiDecoder::new(&dbn).decode(&steps).unwrap();
        assert_eq!(decoded.len(), 60);
        let rains: Vec<usize> = decoded.iter().map(|m| m[&rain.id()]).collect();
        assert!(rains.iter().any(|&r| r == 1));
        assert!(rains.iter().any(|&r| r == 0));
    }

    #[test]
    fn accessors() {
        let (dbn, rain, rain_prev, umbrella) = umbrella_dbn();
        assert_eq!(dbn.interface_vars(), vec![rain]);
        assert_eq!(dbn.previous_of(rain), Some(rain_prev));
        assert_eq!(dbn.previous_of(umbrella), None);
        assert_eq!(dbn.slice_vars(), &[umbrella]);
        assert_eq!(dbn.name(rain), Some("rain"));
    }
}
