//! Exact inference by full joint enumeration.
//!
//! Exponential in the number of variables; exists as the trusted oracle
//! that the variable-elimination engine and the sampler are tested
//! against.

use crate::error::BayesError;
use crate::factor::Factor;
use crate::inference::Evidence;
use crate::network::DiscreteBayesNet;
use crate::variable::Variable;

/// Exact posterior queries by materialising the full joint distribution.
///
/// # Examples
///
/// ```
/// use slj_bayes::network::BayesNetBuilder;
/// use slj_bayes::inference::Enumeration;
///
/// let mut b = BayesNetBuilder::new();
/// let coin = b.variable("coin", 2);
/// b.table_cpd(coin, &[], &[0.5, 0.5])?;
/// let net = b.build()?;
/// let p = Enumeration::new(&net).posterior(coin, &[])?;
/// assert!((p[0] - 0.5).abs() < 1e-12);
/// # Ok::<(), slj_bayes::BayesError>(())
/// ```
#[derive(Debug)]
pub struct Enumeration<'a> {
    net: &'a DiscreteBayesNet,
}

impl<'a> Enumeration<'a> {
    /// Creates an engine over `net`.
    pub fn new(net: &'a DiscreteBayesNet) -> Self {
        Enumeration { net }
    }

    /// Posterior `P(query | evidence)`.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::ZeroProbabilityEvidence`] for impossible
    /// evidence and propagates factor-algebra errors on malformed
    /// queries.
    pub fn posterior(&self, query: Variable, evidence: &Evidence) -> Result<Vec<f64>, BayesError> {
        let mut joint = self.net.joint()?;
        for &(var, state) in evidence {
            joint = joint.reduce(var, state)?;
        }
        joint.marginal(query)
    }

    /// Joint posterior factor over several query variables (normalised).
    ///
    /// # Errors
    ///
    /// Same as [`Enumeration::posterior`].
    pub fn joint_posterior(
        &self,
        query: &[Variable],
        evidence: &Evidence,
    ) -> Result<Factor, BayesError> {
        let mut joint = self.net.joint()?;
        for &(var, state) in evidence {
            joint = joint.reduce(var, state)?;
        }
        for v in self.net.variables() {
            let in_query = query.iter().any(|q| q.id() == v.id());
            let in_evidence = evidence.iter().any(|&(e, _)| e.id() == v.id());
            if !in_query && !in_evidence && joint.contains(v) {
                joint = joint.sum_out(v)?;
            }
        }
        joint.normalized()
    }

    /// Probability of the evidence `P(evidence)`.
    ///
    /// # Errors
    ///
    /// Propagates factor-algebra errors on malformed evidence.
    pub fn evidence_probability(&self, evidence: &Evidence) -> Result<f64, BayesError> {
        let mut joint = self.net.joint()?;
        for &(var, state) in evidence {
            joint = joint.reduce(var, state)?;
        }
        Ok(joint.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::BayesNetBuilder;

    fn sprinkler() -> (DiscreteBayesNet, Variable, Variable, Variable) {
        let mut b = BayesNetBuilder::new();
        let rain = b.variable("rain", 2);
        let sprinkler = b.variable("sprinkler", 2);
        let wet = b.variable("wet", 2);
        b.table_cpd(rain, &[], &[0.8, 0.2]).unwrap();
        b.table_cpd(sprinkler, &[rain], &[0.6, 0.4, 0.99, 0.01])
            .unwrap();
        b.table_cpd(
            wet,
            &[rain, sprinkler],
            &[1.0, 0.0, 0.1, 0.9, 0.2, 0.8, 0.01, 0.99],
        )
        .unwrap();
        (b.build().unwrap(), rain, sprinkler, wet)
    }

    #[test]
    fn prior_matches_cpd() {
        let (net, rain, ..) = sprinkler();
        let p = Enumeration::new(&net).posterior(rain, &[]).unwrap();
        assert!((p[0] - 0.8).abs() < 1e-12);
        assert!((p[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn posterior_explaining_away() {
        let (net, rain, sprinkler, wet) = sprinkler();
        let eng = Enumeration::new(&net);
        let p_rain_given_wet = eng.posterior(rain, &[(wet, 1)]).unwrap()[1];
        // Hand-computed: P(rain=1, wet=1) / P(wet=1).
        // P(wet=1) = Σ P(r)P(s|r)P(w=1|r,s)
        let p_wet: f64 = 0.8 * 0.6 * 0.0 + 0.8 * 0.4 * 0.9 + 0.2 * 0.99 * 0.8 + 0.2 * 0.01 * 0.99;
        let p_rain_wet: f64 = 0.2 * 0.99 * 0.8 + 0.2 * 0.01 * 0.99;
        assert!((p_rain_given_wet - p_rain_wet / p_wet).abs() < 1e-12);
        // Knowing the sprinkler ran explains the wetness away.
        let p_rain_given_wet_sprinkler =
            eng.posterior(rain, &[(wet, 1), (sprinkler, 1)]).unwrap()[1];
        assert!(p_rain_given_wet_sprinkler < p_rain_given_wet);
    }

    #[test]
    fn evidence_probability() {
        let (net, _, _, wet) = sprinkler();
        let eng = Enumeration::new(&net);
        let p_wet = eng.evidence_probability(&[(wet, 1)]).unwrap();
        let expected: f64 =
            0.8 * 0.6 * 0.0 + 0.8 * 0.4 * 0.9 + 0.2 * 0.99 * 0.8 + 0.2 * 0.01 * 0.99;
        assert!((p_wet - expected).abs() < 1e-12);
        assert!((eng.evidence_probability(&[]).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn joint_posterior_over_two_variables() {
        let (net, rain, sprinkler, wet) = sprinkler();
        let eng = Enumeration::new(&net);
        let f = eng
            .joint_posterior(&[rain, sprinkler], &[(wet, 1)])
            .unwrap();
        assert_eq!(f.scope().len(), 2);
        assert!((f.total() - 1.0).abs() < 1e-9);
        // Consistency with the single-variable posterior.
        let p_rain = eng.posterior(rain, &[(wet, 1)]).unwrap();
        let m = f.marginal(rain).unwrap();
        assert!((m[0] - p_rain[0]).abs() < 1e-12);
    }

    #[test]
    fn impossible_evidence_detected() {
        let mut b = BayesNetBuilder::new();
        let a = b.variable("a", 2);
        let c = b.variable("c", 2);
        b.table_cpd(a, &[], &[1.0, 0.0]).unwrap();
        b.table_cpd(c, &[a], &[1.0, 0.0, 0.0, 1.0]).unwrap();
        let net = b.build().unwrap();
        let eng = Enumeration::new(&net);
        // c=1 requires a=1 which has prior 0.
        assert!(matches!(
            eng.posterior(a, &[(c, 1)]),
            Err(BayesError::ZeroProbabilityEvidence)
        ));
    }
}
