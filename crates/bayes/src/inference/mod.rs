//! Inference engines: exact enumeration (test oracle), variable
//! elimination (the production engine) and likelihood-weighting sampling.

mod elimination;
mod enumeration;
mod gibbs;
mod sampling;

pub use elimination::VariableElimination;
pub use enumeration::Enumeration;
pub use gibbs::GibbsSampler;
pub use sampling::LikelihoodWeighting;

pub(crate) mod elimination_internal {
    pub(crate) use super::elimination::{eliminate_all_cow, eliminate_all_reference};
}

use crate::variable::Variable;

/// Evidence: observed `(variable, state)` pairs.
pub type Evidence = [(Variable, usize)];
