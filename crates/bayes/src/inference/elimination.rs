//! Exact inference by variable elimination.

use crate::error::BayesError;
use crate::factor::Factor;
use crate::inference::Evidence;
use crate::network::DiscreteBayesNet;
use crate::variable::Variable;
use std::borrow::Cow;
use std::collections::HashSet;

/// Variable elimination with a min-fill/min-degree style greedy ordering.
///
/// The production inference engine: polynomial for the tree-like networks
/// the paper uses (pose → parts → areas plus the temporal chain).
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug)]
pub struct VariableElimination<'a> {
    net: &'a DiscreteBayesNet,
}

impl<'a> VariableElimination<'a> {
    /// Creates an engine over `net`.
    pub fn new(net: &'a DiscreteBayesNet) -> Self {
        VariableElimination { net }
    }

    /// Posterior `P(query | evidence)`.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::ZeroProbabilityEvidence`] for impossible
    /// evidence; propagates factor-algebra errors on malformed inputs.
    pub fn posterior(&self, query: Variable, evidence: &Evidence) -> Result<Vec<f64>, BayesError> {
        let f = self.joint_posterior(&[query], evidence)?;
        f.marginal(query)
    }

    /// Joint posterior factor over the query variables (normalised).
    ///
    /// # Errors
    ///
    /// Same as [`VariableElimination::posterior`].
    pub fn joint_posterior(
        &self,
        query: &[Variable],
        evidence: &Evidence,
    ) -> Result<Factor, BayesError> {
        let factors = self.net.factors();
        let keep: HashSet<usize> = query.iter().map(|v| v.id()).collect();
        let result = eliminate_all(factors, evidence, &keep)?;
        result.normalized()
    }

    /// Probability of the evidence `P(evidence)`.
    ///
    /// # Errors
    ///
    /// Propagates factor-algebra errors on malformed evidence.
    pub fn evidence_probability(&self, evidence: &Evidence) -> Result<f64, BayesError> {
        let factors = self.net.factors();
        let keep = HashSet::new();
        let result = eliminate_all(factors, evidence, &keep)?;
        Ok(result.total())
    }
}

/// Reduces evidence into `factors`, then greedily eliminates every
/// variable not in `keep`, returning the product of what remains
/// (unnormalised).
///
pub(crate) fn eliminate_all(
    factors: Vec<Factor>,
    evidence: &Evidence,
    keep: &HashSet<usize>,
) -> Result<Factor, BayesError> {
    eliminate_all_cow(
        factors.into_iter().map(Cow::Owned).collect(),
        evidence,
        keep,
    )
}

/// The pre-Cow owned-working-set implementation, kept verbatim as the
/// bit-exactness oracle for [`eliminate_all_cow`]: both perform the same
/// factor operations in the same order, so results must agree to the
/// bit (enforced by parity tests here and in `dbn.rs`).
pub(crate) fn eliminate_all_reference(
    mut factors: Vec<Factor>,
    evidence: &Evidence,
    keep: &HashSet<usize>,
) -> Result<Factor, BayesError> {
    for &(var, state) in evidence {
        for f in &mut factors {
            if f.contains(var) {
                *f = f.reduce(var, state)?;
            }
        }
    }
    let mut to_eliminate: Vec<Variable> = Vec::new();
    let mut seen: HashSet<usize> = HashSet::new();
    for f in &factors {
        for &v in f.scope() {
            if !keep.contains(&v.id()) && seen.insert(v.id()) {
                to_eliminate.push(v);
            }
        }
    }
    loop {
        let pick = to_eliminate
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let mut size = 1usize;
                let mut scope_ids: HashSet<usize> = HashSet::new();
                for f in &factors {
                    if f.contains(v) {
                        for &u in f.scope() {
                            if scope_ids.insert(u.id()) {
                                size = size.saturating_mul(u.cardinality());
                            }
                        }
                    }
                }
                (i, size)
            })
            .min_by_key(|&(i, size)| (size, i));
        let Some((pick_idx, _)) = pick else { break };
        let var = to_eliminate.swap_remove(pick_idx);
        let (mentioning, rest): (Vec<Factor>, Vec<Factor>) =
            factors.into_iter().partition(|f| f.contains(var));
        let mut product = Factor::unit();
        for f in &mentioning {
            product = product.product(f)?;
        }
        let summed = product.sum_out(var)?;
        factors = rest;
        factors.push(summed);
    }
    let mut result = Factor::unit();
    for f in &factors {
        result = result.product(f)?;
    }
    Ok(result)
}

/// [`eliminate_all`] over a clone-on-write working set: callers with
/// long-lived factor templates (the DBN filter's cached prior/transition
/// factors) lend them borrowed, and a factor is only materialised when
/// evidence reduction rewrites it or elimination consumes it — the flat
/// per-step template clone the filter used to pay is gone entirely.
pub(crate) fn eliminate_all_cow(
    mut factors: Vec<Cow<'_, Factor>>,
    evidence: &Evidence,
    keep: &HashSet<usize>,
) -> Result<Factor, BayesError> {
    // 1. Absorb evidence (reduction builds a fresh smaller table, so a
    //    borrowed template is never copied wholesale here either).
    for &(var, state) in evidence {
        for f in &mut factors {
            if f.contains(var) {
                *f = Cow::Owned(f.reduce(var, state)?);
            }
        }
    }
    // 2. Collect the variables still present that must be eliminated.
    let mut to_eliminate: Vec<Variable> = Vec::new();
    let mut seen: HashSet<usize> = HashSet::new();
    for f in &factors {
        for &v in f.scope() {
            if !keep.contains(&v.id()) && seen.insert(v.id()) {
                to_eliminate.push(v);
            }
        }
    }
    // 3. Greedy elimination: repeatedly pick the variable whose
    //    elimination produces the smallest intermediate factor.
    loop {
        let pick = to_eliminate
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let mut size = 1usize;
                let mut scope_ids: HashSet<usize> = HashSet::new();
                for f in &factors {
                    if f.contains(v) {
                        for &u in f.scope() {
                            if scope_ids.insert(u.id()) {
                                size = size.saturating_mul(u.cardinality());
                            }
                        }
                    }
                }
                (i, size)
            })
            .min_by_key(|&(i, size)| (size, i));
        let Some((pick_idx, _)) = pick else { break };
        let var = to_eliminate.swap_remove(pick_idx);
        // Multiply all factors mentioning `var`, then sum it out.
        let (mentioning, rest): (Vec<Cow<'_, Factor>>, Vec<Cow<'_, Factor>>) =
            factors.into_iter().partition(|f| f.contains(var));
        let mut product = Factor::unit();
        for f in &mentioning {
            product = product.product(f)?;
        }
        let summed = product.sum_out(var)?;
        factors = rest;
        factors.push(Cow::Owned(summed));
    }
    // 4. Multiply the survivors.
    let mut result = Factor::unit();
    for f in &factors {
        result = result.product(f)?;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::Enumeration;
    use crate::network::BayesNetBuilder;

    fn sprinkler() -> (DiscreteBayesNet, Variable, Variable, Variable) {
        let mut b = BayesNetBuilder::new();
        let rain = b.variable("rain", 2);
        let sprinkler = b.variable("sprinkler", 2);
        let wet = b.variable("wet", 2);
        b.table_cpd(rain, &[], &[0.8, 0.2]).unwrap();
        b.table_cpd(sprinkler, &[rain], &[0.6, 0.4, 0.99, 0.01])
            .unwrap();
        b.table_cpd(
            wet,
            &[rain, sprinkler],
            &[1.0, 0.0, 0.1, 0.9, 0.2, 0.8, 0.01, 0.99],
        )
        .unwrap();
        (b.build().unwrap(), rain, sprinkler, wet)
    }

    #[test]
    fn matches_enumeration_on_sprinkler() {
        let (net, rain, sprinkler, wet) = sprinkler();
        let ve = VariableElimination::new(&net);
        let en = Enumeration::new(&net);
        for evidence in [
            vec![],
            vec![(wet, 1)],
            vec![(wet, 0)],
            vec![(wet, 1), (sprinkler, 0)],
        ] {
            let a = ve.posterior(rain, &evidence).unwrap();
            let b = en.posterior(rain, &evidence).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!(
                    (x - y).abs() < 1e-10,
                    "evidence {evidence:?}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn matches_enumeration_on_chain() {
        // A 5-node chain with asymmetric CPDs.
        let mut b = BayesNetBuilder::new();
        let vars: Vec<Variable> = (0..5).map(|i| b.variable(format!("x{i}"), 2)).collect();
        b.table_cpd(vars[0], &[], &[0.3, 0.7]).unwrap();
        for i in 1..5 {
            let p = 0.1 + 0.15 * i as f64;
            b.table_cpd(vars[i], &[vars[i - 1]], &[1.0 - p, p, p, 1.0 - p])
                .unwrap();
        }
        let net = b.build().unwrap();
        let ve = VariableElimination::new(&net);
        let en = Enumeration::new(&net);
        let ev = vec![(vars[4], 1)];
        for &q in &vars[..4] {
            let a = ve.posterior(q, &ev).unwrap();
            let b2 = en.posterior(q, &ev).unwrap();
            assert!((a[0] - b2[0]).abs() < 1e-10);
        }
    }

    #[test]
    fn matches_enumeration_with_noisy_or() {
        let mut b = BayesNetBuilder::new();
        let p1 = b.variable("p1", 3);
        let p2 = b.variable("p2", 3);
        let area = b.variable("area", 2);
        b.table_cpd(p1, &[], &[0.5, 0.3, 0.2]).unwrap();
        b.table_cpd(p2, &[], &[0.1, 0.6, 0.3]).unwrap();
        b.noisy_or_cpd(
            area,
            &[p1, p2],
            vec![vec![0.0, 0.9, 0.1], vec![0.2, 0.0, 0.7]],
            0.05,
        )
        .unwrap();
        let net = b.build().unwrap();
        let ve = VariableElimination::new(&net);
        let en = Enumeration::new(&net);
        let a = ve.posterior(p1, &[(area, 1)]).unwrap();
        let b2 = en.posterior(p1, &[(area, 1)]).unwrap();
        for (x, y) in a.iter().zip(&b2) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn evidence_probability_matches_enumeration() {
        let (net, _, sprinkler, wet) = sprinkler();
        let ve = VariableElimination::new(&net);
        let en = Enumeration::new(&net);
        let p_ve = ve
            .evidence_probability(&[(wet, 1), (sprinkler, 1)])
            .unwrap();
        let p_en = en
            .evidence_probability(&[(wet, 1), (sprinkler, 1)])
            .unwrap();
        assert!((p_ve - p_en).abs() < 1e-12);
    }

    #[test]
    fn joint_posterior_normalised() {
        let (net, rain, sprinkler, wet) = sprinkler();
        let ve = VariableElimination::new(&net);
        let f = ve.joint_posterior(&[rain, sprinkler], &[(wet, 1)]).unwrap();
        assert!((f.total() - 1.0).abs() < 1e-9);
        assert_eq!(f.scope().len(), 2);
    }

    #[test]
    fn impossible_evidence_detected() {
        let mut b = BayesNetBuilder::new();
        let a = b.variable("a", 2);
        let c = b.variable("c", 2);
        b.table_cpd(a, &[], &[1.0, 0.0]).unwrap();
        b.table_cpd(c, &[a], &[1.0, 0.0, 0.0, 1.0]).unwrap();
        let net = b.build().unwrap();
        assert!(matches!(
            VariableElimination::new(&net).posterior(a, &[(c, 1)]),
            Err(BayesError::ZeroProbabilityEvidence)
        ));
    }

    #[test]
    fn cow_elimination_is_bit_identical_to_reference() {
        let (net, rain, sprinkler, wet) = sprinkler();
        for (keep, evidence) in [
            (vec![rain.id()], vec![(wet, 1)]),
            (vec![rain.id(), sprinkler.id()], vec![(wet, 0)]),
            (vec![], vec![(wet, 1), (sprinkler, 0)]),
            (vec![wet.id()], vec![]),
        ] {
            let keep: HashSet<usize> = keep.into_iter().collect();
            let reference = eliminate_all_reference(net.factors(), &evidence, &keep).unwrap();
            let templates = net.factors();
            let cow = eliminate_all_cow(
                templates.iter().map(Cow::Borrowed).collect(),
                &evidence,
                &keep,
            )
            .unwrap();
            assert_eq!(reference.scope(), cow.scope());
            for (a, b) in reference.values().iter().zip(cow.values()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{reference:?} vs {cow:?}");
            }
        }
    }

    #[test]
    fn query_variable_observed_elsewhere_still_works() {
        let (net, rain, _, wet) = sprinkler();
        let ve = VariableElimination::new(&net);
        // Query a variable with no evidence at all on a diamond-free net.
        let p = ve.posterior(wet, &[(rain, 0)]).unwrap();
        // P(wet=1 | rain=0) = 0.6*0 + 0.4*0.9
        assert!((p[1] - 0.36).abs() < 1e-12);
    }
}
