//! Approximate inference by Gibbs sampling.

use crate::cpd::Cpd;
use crate::error::BayesError;
use crate::inference::Evidence;
use crate::network::DiscreteBayesNet;
use crate::variable::Variable;
use rand::Rng;
use std::collections::HashMap;

/// Gibbs sampler: resamples each non-evidence variable from its full
/// conditional (Markov blanket) in turn, collecting state counts after a
/// burn-in period.
///
/// Complements [`crate::inference::LikelihoodWeighting`]: likelihood
/// weighting degrades when evidence sits at the bottom of a deep network
/// (weights collapse), while Gibbs conditions on the evidence at every
/// step.
///
/// # Examples
///
/// ```
/// use slj_bayes::network::BayesNetBuilder;
/// use slj_bayes::inference::GibbsSampler;
/// use rand::SeedableRng;
///
/// let mut b = BayesNetBuilder::new();
/// let coin = b.variable("coin", 2);
/// b.table_cpd(coin, &[], &[0.25, 0.75])?;
/// let net = b.build()?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let p = GibbsSampler::new(&net).posterior(coin, &[], 20_000, 1_000, &mut rng)?;
/// assert!((p[1] - 0.75).abs() < 0.03);
/// # Ok::<(), slj_bayes::BayesError>(())
/// ```
#[derive(Debug)]
pub struct GibbsSampler<'a> {
    net: &'a DiscreteBayesNet,
}

impl<'a> GibbsSampler<'a> {
    /// Creates a sampler over `net`.
    pub fn new(net: &'a DiscreteBayesNet) -> Self {
        GibbsSampler { net }
    }

    /// Estimates `P(query | evidence)` from `sweeps` full Gibbs sweeps
    /// after discarding `burn_in` sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::InvalidTrainingData`] when `sweeps` is zero
    /// and [`BayesError::StateOutOfRange`] for malformed evidence.
    pub fn posterior<R: Rng>(
        &self,
        query: Variable,
        evidence: &Evidence,
        sweeps: usize,
        burn_in: usize,
        rng: &mut R,
    ) -> Result<Vec<f64>, BayesError> {
        if sweeps == 0 {
            return Err(BayesError::InvalidTrainingData(
                "sweep count must be non-zero".into(),
            ));
        }
        for &(v, s) in evidence {
            if !v.contains_state(s) {
                return Err(BayesError::StateOutOfRange {
                    variable: v.id(),
                    state: s,
                    cardinality: v.cardinality(),
                });
            }
        }
        let ev: HashMap<usize, usize> = evidence.iter().map(|&(v, s)| (v.id(), s)).collect();
        let order = self.net.topological_order();
        // Children index: for each variable, the CPDs it appears in as a
        // parent (needed for the Markov-blanket conditional).
        let mut children: HashMap<usize, Vec<Variable>> = HashMap::new();
        for var in &order {
            let cpd = self.net.cpd(*var).expect("validated network");
            for p in cpd.parents() {
                children.entry(p.id()).or_default().push(*var);
            }
        }
        // Initialise by forward sampling (respecting evidence).
        let mut state: HashMap<usize, usize> = HashMap::new();
        for var in &order {
            let cpd = self.net.cpd(*var).expect("validated network");
            let parent_states: Vec<usize> = cpd.parents().iter().map(|p| state[&p.id()]).collect();
            let s = if let Some(&observed) = ev.get(&var.id()) {
                observed
            } else {
                sample_from(cpd, &parent_states, rng)
            };
            state.insert(var.id(), s);
        }

        let free: Vec<Variable> = order
            .iter()
            .copied()
            .filter(|v| !ev.contains_key(&v.id()))
            .collect();
        let mut counts = vec![0u64; query.cardinality()];
        for sweep in 0..burn_in + sweeps {
            for &var in &free {
                // Full conditional ∝ P(var | parents) Π_c P(c | parents(c)).
                let cpd = self.net.cpd(var).expect("validated network");
                let parent_states: Vec<usize> =
                    cpd.parents().iter().map(|p| state[&p.id()]).collect();
                let card = var.cardinality();
                let mut weights = Vec::with_capacity(card);
                for s in 0..card {
                    let mut w = conditional(cpd, &parent_states, s);
                    if w > 0.0 {
                        if let Some(kids) = children.get(&var.id()) {
                            for &child in kids {
                                let child_cpd = self.net.cpd(child).expect("validated network");
                                let child_parents: Vec<usize> = child_cpd
                                    .parents()
                                    .iter()
                                    .map(|p| {
                                        if p.id() == var.id() {
                                            s
                                        } else {
                                            state[&p.id()]
                                        }
                                    })
                                    .collect();
                                w *= conditional(child_cpd, &child_parents, state[&child.id()]);
                                if w == 0.0 {
                                    break;
                                }
                            }
                        }
                    }
                    weights.push(w);
                }
                let total: f64 = weights.iter().sum();
                let s = if total <= 0.0 {
                    // The current configuration has zero support; keep
                    // the old state rather than dividing by zero.
                    state[&var.id()]
                } else {
                    let u: f64 = rng.gen::<f64>() * total;
                    let mut acc = 0.0;
                    let mut pick = card - 1;
                    for (i, &w) in weights.iter().enumerate() {
                        acc += w;
                        if u < acc {
                            pick = i;
                            break;
                        }
                    }
                    pick
                };
                state.insert(var.id(), s);
            }
            if sweep >= burn_in {
                counts[state[&query.id()]] += 1;
            }
        }
        let total: u64 = counts.iter().sum();
        Ok(counts
            .into_iter()
            .map(|c| c as f64 / total as f64)
            .collect())
    }
}

fn conditional(cpd: &Cpd, parent_states: &[usize], state: usize) -> f64 {
    match cpd {
        Cpd::Table(t) => t
            .prob(parent_states, state)
            .expect("states from a validated network are in range"),
        Cpd::NoisyOr(n) => {
            let off = n.prob_off(parent_states);
            if state == 0 {
                off
            } else {
                1.0 - off
            }
        }
    }
}

fn sample_from<R: Rng>(cpd: &Cpd, parent_states: &[usize], rng: &mut R) -> usize {
    let card = cpd.child().cardinality();
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for s in 0..card {
        acc += conditional(cpd, parent_states, s);
        if u < acc {
            return s;
        }
    }
    card - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::Enumeration;
    use crate::network::BayesNetBuilder;
    use rand::SeedableRng;

    fn sprinkler() -> (DiscreteBayesNet, Variable, Variable, Variable) {
        let mut b = BayesNetBuilder::new();
        let rain = b.variable("rain", 2);
        let sprinkler = b.variable("sprinkler", 2);
        let wet = b.variable("wet", 2);
        b.table_cpd(rain, &[], &[0.8, 0.2]).unwrap();
        b.table_cpd(sprinkler, &[rain], &[0.6, 0.4, 0.99, 0.01])
            .unwrap();
        b.table_cpd(
            wet,
            &[rain, sprinkler],
            &[0.99, 0.01, 0.1, 0.9, 0.2, 0.8, 0.01, 0.99],
        )
        .unwrap();
        (b.build().unwrap(), rain, sprinkler, wet)
    }

    #[test]
    fn converges_to_exact_posterior() {
        let (net, rain, _, wet) = sprinkler();
        let exact = Enumeration::new(&net).posterior(rain, &[(wet, 1)]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let approx = GibbsSampler::new(&net)
            .posterior(rain, &[(wet, 1)], 120_000, 4_000, &mut rng)
            .unwrap();
        assert!(
            (exact[1] - approx[1]).abs() < 0.02,
            "exact {exact:?} vs gibbs {approx:?}"
        );
    }

    #[test]
    fn prior_sampling_without_evidence() {
        let (net, rain, ..) = sprinkler();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let p = GibbsSampler::new(&net)
            .posterior(rain, &[], 30_000, 1_000, &mut rng)
            .unwrap();
        assert!((p[1] - 0.2).abs() < 0.02, "{p:?}");
    }

    #[test]
    fn works_with_noisy_or() {
        let mut b = BayesNetBuilder::new();
        let p1 = b.variable("p1", 3);
        let area = b.variable("area", 2);
        b.table_cpd(p1, &[], &[0.5, 0.3, 0.2]).unwrap();
        b.noisy_or_cpd(area, &[p1], vec![vec![0.05, 0.9, 0.1]], 0.05)
            .unwrap();
        let net = b.build().unwrap();
        let exact = Enumeration::new(&net).posterior(p1, &[(area, 1)]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let approx = GibbsSampler::new(&net)
            .posterior(p1, &[(area, 1)], 60_000, 2_000, &mut rng)
            .unwrap();
        for (e, a) in exact.iter().zip(&approx) {
            assert!((e - a).abs() < 0.02, "exact {exact:?} vs gibbs {approx:?}");
        }
    }

    #[test]
    fn zero_sweeps_rejected() {
        let (net, rain, ..) = sprinkler();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        assert!(GibbsSampler::new(&net)
            .posterior(rain, &[], 0, 10, &mut rng)
            .is_err());
    }

    #[test]
    fn bad_evidence_rejected() {
        let (net, rain, _, wet) = sprinkler();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        assert!(matches!(
            GibbsSampler::new(&net).posterior(rain, &[(wet, 7)], 100, 10, &mut rng),
            Err(BayesError::StateOutOfRange { .. })
        ));
    }

    #[test]
    fn deterministic_with_fixed_seed() {
        let (net, rain, _, wet) = sprinkler();
        let run = |seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            GibbsSampler::new(&net)
                .posterior(rain, &[(wet, 1)], 2_000, 100, &mut rng)
                .unwrap()
        };
        assert_eq!(run(8), run(8));
    }
}
