//! Approximate inference by likelihood weighting.

use crate::cpd::Cpd;
use crate::error::BayesError;
use crate::inference::Evidence;
use crate::network::DiscreteBayesNet;
use crate::variable::Variable;
use rand::Rng;
use std::collections::HashMap;

/// Likelihood-weighting sampler: forward-samples non-evidence variables
/// in topological order and weights each sample by the likelihood of the
/// evidence variables.
///
/// # Examples
///
/// ```
/// use slj_bayes::network::BayesNetBuilder;
/// use slj_bayes::inference::LikelihoodWeighting;
/// use rand::SeedableRng;
///
/// let mut b = BayesNetBuilder::new();
/// let coin = b.variable("coin", 2);
/// b.table_cpd(coin, &[], &[0.25, 0.75])?;
/// let net = b.build()?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let p = LikelihoodWeighting::new(&net).posterior(coin, &[], 20_000, &mut rng)?;
/// assert!((p[1] - 0.75).abs() < 0.02);
/// # Ok::<(), slj_bayes::BayesError>(())
/// ```
#[derive(Debug)]
pub struct LikelihoodWeighting<'a> {
    net: &'a DiscreteBayesNet,
}

impl<'a> LikelihoodWeighting<'a> {
    /// Creates a sampler over `net`.
    pub fn new(net: &'a DiscreteBayesNet) -> Self {
        LikelihoodWeighting { net }
    }

    /// Estimates `P(query | evidence)` from `samples` weighted samples.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::InvalidTrainingData`] when `samples` is zero
    /// and [`BayesError::ZeroProbabilityEvidence`] when every sample had
    /// zero weight.
    pub fn posterior<R: Rng>(
        &self,
        query: Variable,
        evidence: &Evidence,
        samples: usize,
        rng: &mut R,
    ) -> Result<Vec<f64>, BayesError> {
        if samples == 0 {
            return Err(BayesError::InvalidTrainingData(
                "sample count must be non-zero".into(),
            ));
        }
        let ev: HashMap<usize, usize> = evidence.iter().map(|&(v, s)| (v.id(), s)).collect();
        let order = self.net.topological_order();
        let mut totals = vec![0.0f64; query.cardinality()];
        let mut weight_sum = 0.0f64;
        let mut assignment: HashMap<usize, usize> = HashMap::new();
        for _ in 0..samples {
            assignment.clear();
            let mut weight = 1.0f64;
            for &var in &order {
                let cpd = self.net.cpd(var).expect("validated network");
                let parent_states: Vec<usize> =
                    cpd.parents().iter().map(|p| assignment[&p.id()]).collect();
                if let Some(&observed) = ev.get(&var.id()) {
                    weight *= conditional_prob(cpd, &parent_states, observed);
                    assignment.insert(var.id(), observed);
                } else {
                    let state = sample_state(cpd, &parent_states, rng);
                    assignment.insert(var.id(), state);
                }
                if weight == 0.0 {
                    break;
                }
            }
            if weight > 0.0 {
                weight_sum += weight;
                totals[assignment[&query.id()]] += weight;
            }
        }
        if weight_sum <= 0.0 {
            return Err(BayesError::ZeroProbabilityEvidence);
        }
        Ok(totals.into_iter().map(|t| t / weight_sum).collect())
    }
}

fn conditional_prob(cpd: &Cpd, parent_states: &[usize], state: usize) -> f64 {
    match cpd {
        Cpd::Table(t) => t
            .prob(parent_states, state)
            .expect("states from a validated network are in range"),
        Cpd::NoisyOr(n) => {
            let off = n.prob_off(parent_states);
            if state == 0 {
                off
            } else {
                1.0 - off
            }
        }
    }
}

fn sample_state<R: Rng>(cpd: &Cpd, parent_states: &[usize], rng: &mut R) -> usize {
    let card = cpd.child().cardinality();
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for s in 0..card {
        acc += conditional_prob(cpd, parent_states, s);
        if u < acc {
            return s;
        }
    }
    card - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::Enumeration;
    use crate::network::BayesNetBuilder;
    use rand::SeedableRng;

    fn sprinkler() -> (DiscreteBayesNet, Variable, Variable, Variable) {
        let mut b = BayesNetBuilder::new();
        let rain = b.variable("rain", 2);
        let sprinkler = b.variable("sprinkler", 2);
        let wet = b.variable("wet", 2);
        b.table_cpd(rain, &[], &[0.8, 0.2]).unwrap();
        b.table_cpd(sprinkler, &[rain], &[0.6, 0.4, 0.99, 0.01])
            .unwrap();
        b.table_cpd(
            wet,
            &[rain, sprinkler],
            &[1.0, 0.0, 0.1, 0.9, 0.2, 0.8, 0.01, 0.99],
        )
        .unwrap();
        (b.build().unwrap(), rain, sprinkler, wet)
    }

    #[test]
    fn converges_to_exact_posterior() {
        let (net, rain, _, wet) = sprinkler();
        let exact = Enumeration::new(&net).posterior(rain, &[(wet, 1)]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let approx = LikelihoodWeighting::new(&net)
            .posterior(rain, &[(wet, 1)], 50_000, &mut rng)
            .unwrap();
        assert!(
            (exact[1] - approx[1]).abs() < 0.02,
            "exact {exact:?} vs approx {approx:?}"
        );
    }

    #[test]
    fn prior_sampling_without_evidence() {
        let (net, rain, ..) = sprinkler();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = LikelihoodWeighting::new(&net)
            .posterior(rain, &[], 30_000, &mut rng)
            .unwrap();
        assert!((p[1] - 0.2).abs() < 0.02);
    }

    #[test]
    fn works_with_noisy_or() {
        let mut b = BayesNetBuilder::new();
        let p1 = b.variable("p1", 3);
        let area = b.variable("area", 2);
        b.table_cpd(p1, &[], &[0.5, 0.3, 0.2]).unwrap();
        b.noisy_or_cpd(area, &[p1], vec![vec![0.0, 0.9, 0.1]], 0.05)
            .unwrap();
        let net = b.build().unwrap();
        let exact = Enumeration::new(&net).posterior(p1, &[(area, 1)]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let approx = LikelihoodWeighting::new(&net)
            .posterior(p1, &[(area, 1)], 60_000, &mut rng)
            .unwrap();
        for (e, a) in exact.iter().zip(&approx) {
            assert!((e - a).abs() < 0.02, "exact {exact:?} vs approx {approx:?}");
        }
    }

    #[test]
    fn zero_samples_rejected() {
        let (net, rain, ..) = sprinkler();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert!(LikelihoodWeighting::new(&net)
            .posterior(rain, &[], 0, &mut rng)
            .is_err());
    }

    #[test]
    fn impossible_evidence_detected() {
        let mut b = BayesNetBuilder::new();
        let a = b.variable("a", 2);
        let c = b.variable("c", 2);
        b.table_cpd(a, &[], &[1.0, 0.0]).unwrap();
        b.table_cpd(c, &[a], &[1.0, 0.0, 0.0, 1.0]).unwrap();
        let net = b.build().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert!(matches!(
            LikelihoodWeighting::new(&net).posterior(a, &[(c, 1)], 1000, &mut rng),
            Err(BayesError::ZeroProbabilityEvidence)
        ));
    }

    #[test]
    fn deterministic_with_fixed_seed() {
        let (net, rain, _, wet) = sprinkler();
        let run = |seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            LikelihoodWeighting::new(&net)
                .posterior(rain, &[(wet, 1)], 5_000, &mut rng)
                .unwrap()
        };
        assert_eq!(run(5), run(5));
    }
}
