//! Conditional probability distributions.

use crate::assignment::{assignment_to_index, AssignmentIter};
use crate::error::BayesError;
use crate::factor::Factor;
use crate::variable::Variable;

/// A conditional probability distribution `P(child | parents)`.
#[derive(Debug, Clone, PartialEq)]
pub enum Cpd {
    /// Fully tabulated CPD.
    Table(TableCpd),
    /// Noisy-OR CPD over a binary child.
    NoisyOr(NoisyOrCpd),
}

impl Cpd {
    /// The child variable.
    pub fn child(&self) -> Variable {
        match self {
            Cpd::Table(t) => t.child(),
            Cpd::NoisyOr(n) => n.child(),
        }
    }

    /// The parent variables.
    pub fn parents(&self) -> &[Variable] {
        match self {
            Cpd::Table(t) => t.parents(),
            Cpd::NoisyOr(n) => n.parents(),
        }
    }

    /// Converts to a factor over `parents ∪ {child}`.
    pub fn to_factor(&self) -> Factor {
        match self {
            Cpd::Table(t) => t.to_factor(),
            Cpd::NoisyOr(n) => n.to_factor(),
        }
    }
}

impl From<TableCpd> for Cpd {
    fn from(t: TableCpd) -> Self {
        Cpd::Table(t)
    }
}

impl From<NoisyOrCpd> for Cpd {
    fn from(n: NoisyOrCpd) -> Self {
        Cpd::NoisyOr(n)
    }
}

/// A fully tabulated CPD: one probability row per parent configuration.
///
/// Rows are laid out row-major over the parents (last parent fastest) and
/// each row lists the child's states in order.
///
/// # Examples
///
/// ```
/// use slj_bayes::cpd::TableCpd;
/// use slj_bayes::variable::Variable;
///
/// let rain = Variable::new(0, 2);
/// let wet = Variable::new(1, 2);
/// // P(wet | rain): dry day mostly dry, rainy day mostly wet.
/// let cpd = TableCpd::new(wet, vec![rain], vec![0.9, 0.1, 0.2, 0.8])?;
/// assert!((cpd.prob(&[1], 1)? - 0.8).abs() < 1e-12);
/// # Ok::<(), slj_bayes::BayesError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TableCpd {
    child: Variable,
    parents: Vec<Variable>,
    /// Row-major over parents, child fastest within a row.
    table: Vec<f64>,
}

/// Tolerance for CPD row sums.
const ROW_SUM_TOLERANCE: f64 = 1e-6;

impl TableCpd {
    /// Creates a table CPD.
    ///
    /// # Errors
    ///
    /// - [`BayesError::WrongTableSize`] when the table length is not
    ///   `child_card × Π parent_card`.
    /// - [`BayesError::InvalidProbability`] on negative/non-finite values.
    /// - [`BayesError::UnnormalizedRow`] when a row does not sum to 1.
    /// - [`BayesError::DuplicateCpd`] when a variable appears twice in
    ///   `parents ++ [child]` (the scope of the factor expansion).
    pub fn new(
        child: Variable,
        parents: Vec<Variable>,
        table: Vec<f64>,
    ) -> Result<Self, BayesError> {
        validate_unique_scope(child, &parents)?;
        let rows: usize = parents.iter().map(|p| p.cardinality()).product();
        let expected = rows * child.cardinality();
        if table.len() != expected {
            return Err(BayesError::WrongTableSize {
                expected,
                found: table.len(),
            });
        }
        for &x in &table {
            if !x.is_finite() || x < 0.0 {
                return Err(BayesError::InvalidProbability(x));
            }
        }
        for row in 0..rows {
            let sum: f64 = table[row * child.cardinality()..(row + 1) * child.cardinality()]
                .iter()
                .sum();
            if (sum - 1.0).abs() > ROW_SUM_TOLERANCE {
                return Err(BayesError::UnnormalizedRow { row, sum });
            }
        }
        Ok(TableCpd {
            child,
            parents,
            table,
        })
    }

    /// A uniform CPD (every row uniform over the child).
    pub fn uniform(child: Variable, parents: Vec<Variable>) -> Self {
        let rows: usize = parents.iter().map(|p| p.cardinality()).product();
        let c = child.cardinality();
        TableCpd {
            child,
            parents,
            table: vec![1.0 / c as f64; rows * c],
        }
    }

    /// The child variable.
    pub fn child(&self) -> Variable {
        self.child
    }

    /// The parent variables.
    pub fn parents(&self) -> &[Variable] {
        &self.parents
    }

    /// The raw table (rows over parent configurations, child fastest).
    pub fn table(&self) -> &[f64] {
        &self.table
    }

    /// `P(child = state | parents = parent_states)`.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::StateOutOfRange`] on bad indices.
    pub fn prob(&self, parent_states: &[usize], state: usize) -> Result<f64, BayesError> {
        if !self.child.contains_state(state) {
            return Err(BayesError::StateOutOfRange {
                variable: self.child.id(),
                state,
                cardinality: self.child.cardinality(),
            });
        }
        if parent_states.len() != self.parents.len() {
            return Err(BayesError::WrongTableSize {
                expected: self.parents.len(),
                found: parent_states.len(),
            });
        }
        for (p, &s) in self.parents.iter().zip(parent_states) {
            if !p.contains_state(s) {
                return Err(BayesError::StateOutOfRange {
                    variable: p.id(),
                    state: s,
                    cardinality: p.cardinality(),
                });
            }
        }
        let row = assignment_to_index(&self.parents, parent_states);
        Ok(self.table[row * self.child.cardinality() + state])
    }

    /// Converts to a factor over `parents ++ [child]`.
    pub fn to_factor(&self) -> Factor {
        let mut scope = self.parents.clone();
        scope.push(self.child);
        // The table layout (parents row-major, child fastest) is exactly
        // the factor layout for this scope order, and construction
        // validated size, values, and scope uniqueness.
        Factor::from_validated(scope, self.table.clone())
    }
}

/// Rejects a CPD whose factor scope (`parents ++ [child]`) would repeat
/// a variable — such a CPD can never expand to a well-formed factor.
fn validate_unique_scope(child: Variable, parents: &[Variable]) -> Result<(), BayesError> {
    let mut seen = std::collections::HashSet::with_capacity(parents.len() + 1);
    seen.insert(child.id());
    for p in parents {
        if !seen.insert(p.id()) {
            return Err(BayesError::DuplicateCpd(p.id()));
        }
    }
    Ok(())
}

/// A noisy-OR CPD for a binary child with discrete parents.
///
/// Each parent state contributes an independent activation probability;
/// the child fires unless every contribution (and the leak) fails:
///
/// `P(child = 0 | s₁..sₙ) = (1 − leak) · Π (1 − activation[i][sᵢ])`.
///
/// The paper's Area nodes fit this exactly: five body-part parents, each
/// of whose states either lands in the area (high activation) or does not
/// (zero activation). A full table would need `2 · 9⁵` entries per area.
///
/// # Examples
///
/// ```
/// use slj_bayes::cpd::NoisyOrCpd;
/// use slj_bayes::variable::Variable;
///
/// let part = Variable::new(0, 3);
/// let area = Variable::new(1, 2);
/// // The part activates the area only from state 1.
/// let cpd = NoisyOrCpd::new(area, vec![part], vec![vec![0.0, 0.95, 0.0]], 0.01)?;
/// let f = cpd.to_factor();
/// let p_fire = f.value_at(&[(part, 1), (area, 1)])?;
/// assert!(p_fire > 0.95);
/// # Ok::<(), slj_bayes::BayesError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NoisyOrCpd {
    child: Variable,
    parents: Vec<Variable>,
    /// `activation[i][s]` = probability that parent `i` in state `s`
    /// activates the child.
    activation: Vec<Vec<f64>>,
    leak: f64,
}

impl NoisyOrCpd {
    /// Creates a noisy-OR CPD.
    ///
    /// # Errors
    ///
    /// - [`BayesError::InvalidProbability`] when `leak` or any activation
    ///   falls outside `[0, 1]`.
    /// - [`BayesError::WrongTableSize`] when `activation` does not match
    ///   the parents' shapes.
    /// - [`BayesError::CardinalityMismatch`] when the child is not binary.
    /// - [`BayesError::DuplicateCpd`] when a variable appears twice in
    ///   `parents ++ [child]`.
    pub fn new(
        child: Variable,
        parents: Vec<Variable>,
        activation: Vec<Vec<f64>>,
        leak: f64,
    ) -> Result<Self, BayesError> {
        validate_unique_scope(child, &parents)?;
        if child.cardinality() != 2 {
            return Err(BayesError::CardinalityMismatch {
                variable: child.id(),
                expected: 2,
                found: child.cardinality(),
            });
        }
        if !(0.0..=1.0).contains(&leak) || !leak.is_finite() {
            return Err(BayesError::InvalidProbability(leak));
        }
        if activation.len() != parents.len() {
            return Err(BayesError::WrongTableSize {
                expected: parents.len(),
                found: activation.len(),
            });
        }
        for (p, acts) in parents.iter().zip(&activation) {
            if acts.len() != p.cardinality() {
                return Err(BayesError::WrongTableSize {
                    expected: p.cardinality(),
                    found: acts.len(),
                });
            }
            for &a in acts {
                if !(0.0..=1.0).contains(&a) || !a.is_finite() {
                    return Err(BayesError::InvalidProbability(a));
                }
            }
        }
        Ok(NoisyOrCpd {
            child,
            parents,
            activation,
            leak,
        })
    }

    /// The child variable.
    pub fn child(&self) -> Variable {
        self.child
    }

    /// The parent variables.
    pub fn parents(&self) -> &[Variable] {
        &self.parents
    }

    /// The activation table `activation[parent][state]`.
    pub fn activation(&self) -> &[Vec<f64>] {
        &self.activation
    }

    /// The leak probability.
    pub fn leak(&self) -> f64 {
        self.leak
    }

    /// `P(child = 0 | parent states)` in closed form.
    pub fn prob_off(&self, parent_states: &[usize]) -> f64 {
        let mut off = 1.0 - self.leak;
        for (acts, &s) in self.activation.iter().zip(parent_states) {
            off *= 1.0 - acts[s];
        }
        off
    }

    /// Expands to a dense factor over `parents ++ [child]`.
    pub fn to_factor(&self) -> Factor {
        let mut scope = self.parents.clone();
        scope.push(self.child);
        let mut values = Vec::new();
        for parent_states in AssignmentIter::new(&self.parents) {
            let off = self.prob_off(&parent_states);
            values.push(off);
            values.push(1.0 - off);
        }
        // Scope uniqueness and activation ranges were validated at
        // construction; the iteration order matches the factor layout.
        Factor::from_validated(scope, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary(id: usize) -> Variable {
        Variable::new(id, 2)
    }

    #[test]
    fn table_cpd_validates_row_sums() {
        let a = binary(0);
        let c = binary(1);
        assert!(TableCpd::new(c, vec![a], vec![0.9, 0.2, 0.2, 0.8]).is_err());
        assert!(TableCpd::new(c, vec![a], vec![0.9, 0.1, 0.2, 0.8]).is_ok());
    }

    #[test]
    fn table_cpd_validates_size() {
        let a = binary(0);
        let c = binary(1);
        assert!(matches!(
            TableCpd::new(c, vec![a], vec![0.5, 0.5]),
            Err(BayesError::WrongTableSize { expected: 4, .. })
        ));
    }

    #[test]
    fn table_cpd_prob_lookup() {
        let a = Variable::new(0, 3);
        let c = binary(1);
        let t = TableCpd::new(c, vec![a], vec![0.9, 0.1, 0.5, 0.5, 0.2, 0.8]).unwrap();
        assert!((t.prob(&[0], 1).unwrap() - 0.1).abs() < 1e-12);
        assert!((t.prob(&[2], 0).unwrap() - 0.2).abs() < 1e-12);
        assert!(t.prob(&[3], 0).is_err());
        assert!(t.prob(&[0], 2).is_err());
        assert!(t.prob(&[0, 0], 0).is_err());
    }

    #[test]
    fn table_cpd_to_factor_rows_sum_to_one_per_parent_config() {
        let a = Variable::new(0, 3);
        let c = binary(1);
        let t = TableCpd::new(c, vec![a], vec![0.9, 0.1, 0.5, 0.5, 0.2, 0.8]).unwrap();
        let f = t.to_factor();
        for s in 0..3 {
            let sum: f64 = (0..2)
                .map(|cs| f.value_at(&[(a, s), (c, cs)]).unwrap())
                .sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_cpd() {
        let a = binary(0);
        let c = Variable::new(1, 4);
        let u = TableCpd::uniform(c, vec![a]);
        assert!(u.table().iter().all(|&x| (x - 0.25).abs() < 1e-12));
        assert_eq!(u.table().len(), 8);
    }

    #[test]
    fn root_cpd_without_parents() {
        let c = Variable::new(0, 3);
        let t = TableCpd::new(c, vec![], vec![0.2, 0.3, 0.5]).unwrap();
        assert!((t.prob(&[], 2).unwrap() - 0.5).abs() < 1e-12);
        let f = t.to_factor();
        assert_eq!(f.scope(), &[c]);
    }

    #[test]
    fn noisy_or_rejects_non_binary_child() {
        let c = Variable::new(0, 3);
        assert!(NoisyOrCpd::new(c, vec![], vec![], 0.0).is_err());
    }

    #[test]
    fn noisy_or_rejects_bad_activation() {
        let c = binary(0);
        let p = Variable::new(1, 2);
        assert!(NoisyOrCpd::new(c, vec![p], vec![vec![0.5, 1.5]], 0.0).is_err());
        assert!(NoisyOrCpd::new(c, vec![p], vec![vec![0.5]], 0.0).is_err());
        assert!(NoisyOrCpd::new(c, vec![p], vec![vec![0.5, 0.5]], -0.1).is_err());
    }

    #[test]
    fn noisy_or_closed_form_matches_semantics() {
        let c = binary(0);
        let p1 = Variable::new(1, 2);
        let p2 = Variable::new(2, 2);
        let n =
            NoisyOrCpd::new(c, vec![p1, p2], vec![vec![0.0, 0.8], vec![0.0, 0.5]], 0.1).unwrap();
        // Neither active: only the leak can fire.
        assert!((n.prob_off(&[0, 0]) - 0.9).abs() < 1e-12);
        // Both active.
        let expected_off = 0.9 * 0.2 * 0.5;
        assert!((n.prob_off(&[1, 1]) - expected_off).abs() < 1e-12);
    }

    #[test]
    fn noisy_or_factor_is_normalized_per_row() {
        let c = binary(0);
        let p1 = Variable::new(1, 3);
        let p2 = Variable::new(2, 2);
        let n = NoisyOrCpd::new(
            c,
            vec![p1, p2],
            vec![vec![0.1, 0.9, 0.0], vec![0.3, 0.6]],
            0.05,
        )
        .unwrap();
        let f = n.to_factor();
        for s1 in 0..3 {
            for s2 in 0..2 {
                let sum: f64 = (0..2)
                    .map(|cs| f.value_at(&[(p1, s1), (p2, s2), (c, cs)]).unwrap())
                    .sum();
                assert!((sum - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn noisy_or_monotone_in_activations() {
        // More active parents can only raise the firing probability.
        let c = binary(0);
        let p1 = binary(1);
        let p2 = binary(2);
        let n =
            NoisyOrCpd::new(c, vec![p1, p2], vec![vec![0.0, 0.7], vec![0.0, 0.4]], 0.0).unwrap();
        let none = 1.0 - n.prob_off(&[0, 0]);
        let one = 1.0 - n.prob_off(&[1, 0]);
        let both = 1.0 - n.prob_off(&[1, 1]);
        assert!(none <= one && one <= both);
        assert_eq!(none, 0.0);
    }

    #[test]
    fn cpd_enum_dispatch() {
        let c = binary(0);
        let p = binary(1);
        let table: Cpd = TableCpd::new(c, vec![p], vec![0.9, 0.1, 0.2, 0.8])
            .unwrap()
            .into();
        assert_eq!(table.child(), c);
        assert_eq!(table.parents(), &[p]);
        let nor: Cpd = NoisyOrCpd::new(c, vec![p], vec![vec![0.0, 0.9]], 0.0)
            .unwrap()
            .into();
        assert_eq!(nor.to_factor().scope().len(), 2);
    }
}
