//! Closed-form evidence likelihood for a *bank* of noisy-OR observations.
//!
//! The paper's per-pose network observes N binary Area nodes whose parents
//! are the five body-part nodes. Eliminating the parts naively costs
//! `O(9⁵)` per pose per frame. Because every Area node is noisy-OR and the
//! parts are conditionally independent given the pose, the evidence
//! likelihood has a closed form by inclusion–exclusion over the *positive*
//! findings:
//!
//! ```text
//! P(e | π) = Σ_{S ⊆ F} (−1)^|S| · Π_{k ∈ Z∪S} (1 − leak_k)
//!            · Π_p  Σ_s π_p(s) · Π_{k ∈ Z∪S} (1 − act_k[p][s])
//! ```
//!
//! where `F` are the areas observed on, `Z` those observed off and `π_p`
//! the part priors given the pose. Cost: `O(2^|F| · P · S · K)` — with at
//! most five occupied areas this is thousands of flops instead of
//! hundreds of thousands.

use crate::cpd::NoisyOrCpd;
use crate::error::BayesError;

/// A set of noisy-OR observation nodes sharing one ordered parent list.
///
/// # Examples
///
/// ```
/// use slj_bayes::cpd::NoisyOrCpd;
/// use slj_bayes::noisy_or::NoisyOrBank;
/// use slj_bayes::variable::Variable;
///
/// let part = Variable::new(0, 2);
/// let a0 = Variable::new(1, 2);
/// let a1 = Variable::new(2, 2);
/// let bank = NoisyOrBank::new(vec![
///     NoisyOrCpd::new(a0, vec![part], vec![vec![0.9, 0.0]], 0.01)?,
///     NoisyOrCpd::new(a1, vec![part], vec![vec![0.0, 0.9]], 0.01)?,
/// ])?;
/// // A part almost surely in state 1 makes area 1 likely and area 0 not.
/// let lik = bank.evidence_likelihood(&[vec![0.05, 0.95]], &[false, true])?;
/// assert!(lik > 0.7);
/// # Ok::<(), slj_bayes::BayesError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NoisyOrBank {
    areas: Vec<NoisyOrCpd>,
    parent_cards: Vec<usize>,
}

impl NoisyOrBank {
    /// Builds a bank, verifying that all CPDs share the same parent list
    /// (IDs and cardinalities, in order).
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::InvalidTemporalStructure`] when the bank is
    /// empty or [`BayesError::CardinalityMismatch`] when the parents
    /// disagree.
    pub fn new(areas: Vec<NoisyOrCpd>) -> Result<Self, BayesError> {
        let first = areas.first().ok_or_else(|| {
            BayesError::InvalidTemporalStructure("noisy-OR bank must not be empty".into())
        })?;
        let parents = first.parents().to_vec();
        for cpd in &areas[1..] {
            if cpd.parents().len() != parents.len()
                || cpd
                    .parents()
                    .iter()
                    .zip(&parents)
                    .any(|(a, b)| a.id() != b.id() || a.cardinality() != b.cardinality())
            {
                return Err(BayesError::CardinalityMismatch {
                    variable: cpd.child().id(),
                    expected: parents.len(),
                    found: cpd.parents().len(),
                });
            }
        }
        let parent_cards = parents.iter().map(|p| p.cardinality()).collect();
        Ok(NoisyOrBank {
            areas,
            parent_cards,
        })
    }

    /// Number of observation nodes.
    pub fn len(&self) -> usize {
        self.areas.len()
    }

    /// Whether the bank is empty (never true for a constructed bank).
    pub fn is_empty(&self) -> bool {
        self.areas.is_empty()
    }

    /// The observation CPDs.
    pub fn areas(&self) -> &[NoisyOrCpd] {
        &self.areas
    }

    /// `P(evidence | parent distributions)` by inclusion–exclusion.
    ///
    /// `parent_dists[p][s]` is the probability of parent `p` being in
    /// state `s` (e.g. `P(part | pose)`); `evidence[k]` is the observed
    /// value of area `k`. Rows are borrowed (`&[Vec<f64>]` and
    /// `&[&[f64]]` both work), so per-frame callers can pass views into
    /// their CPTs without copying them.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::WrongTableSize`] when the shapes do not
    /// match the bank and [`BayesError::InvalidProbability`] on negative
    /// or non-finite entries.
    pub fn evidence_likelihood<D: AsRef<[f64]>>(
        &self,
        parent_dists: &[D],
        evidence: &[bool],
    ) -> Result<f64, BayesError> {
        if evidence.len() != self.areas.len() {
            return Err(BayesError::WrongTableSize {
                expected: self.areas.len(),
                found: evidence.len(),
            });
        }
        if parent_dists.len() != self.parent_cards.len() {
            return Err(BayesError::WrongTableSize {
                expected: self.parent_cards.len(),
                found: parent_dists.len(),
            });
        }
        for (dist, &card) in parent_dists.iter().zip(&self.parent_cards) {
            let dist = dist.as_ref();
            if dist.len() != card {
                return Err(BayesError::WrongTableSize {
                    expected: card,
                    found: dist.len(),
                });
            }
            for &p in dist {
                if !p.is_finite() || p < 0.0 {
                    return Err(BayesError::InvalidProbability(p));
                }
            }
        }
        let negative: Vec<usize> = (0..self.areas.len()).filter(|&k| !evidence[k]).collect();
        let positive: Vec<usize> = (0..self.areas.len()).filter(|&k| evidence[k]).collect();
        let mut total = 0.0f64;
        // One scratch buffer for the active set, reused across all 2^|P|
        // subsets instead of cloning `negative` per iteration.
        let mut active: Vec<usize> = Vec::with_capacity(self.areas.len());
        // Iterate subsets S of the positive findings.
        for subset in 0u64..(1u64 << positive.len()) {
            let sign = if subset.count_ones() % 2 == 0 {
                1.0
            } else {
                -1.0
            };
            active.clear();
            active.extend_from_slice(&negative);
            for (bit, &k) in positive.iter().enumerate() {
                if subset >> bit & 1 == 1 {
                    active.push(k);
                }
            }
            // Leak term.
            let mut term: f64 = active.iter().map(|&k| 1.0 - self.areas[k].leak()).product();
            // Per-parent expectation of the joint off-probabilities.
            for (p, dist) in parent_dists.iter().enumerate() {
                let mut expect = 0.0f64;
                for (s, &pi) in dist.as_ref().iter().enumerate() {
                    if pi == 0.0 {
                        continue;
                    }
                    let mut off = 1.0f64;
                    for &k in &active {
                        off *= 1.0 - self.areas[k].activation()[p][s];
                    }
                    expect += pi * off;
                }
                term *= expect;
            }
            total += sign * term;
        }
        // Clamp tiny negative values from floating-point cancellation.
        Ok(total.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::AssignmentIter;
    use crate::variable::Variable;

    /// Brute-force reference: enumerate all parent states.
    fn brute_force(bank: &NoisyOrBank, parent_dists: &[Vec<f64>], evidence: &[bool]) -> f64 {
        let parents = bank.areas()[0].parents().to_vec();
        let mut total = 0.0;
        for states in AssignmentIter::new(&parents) {
            let mut p_states: f64 = states
                .iter()
                .enumerate()
                .map(|(p, &s)| parent_dists[p][s])
                .product();
            for (k, cpd) in bank.areas().iter().enumerate() {
                let off = cpd.prob_off(&states);
                p_states *= if evidence[k] { 1.0 - off } else { off };
            }
            total += p_states;
        }
        total
    }

    fn make_bank(n_parents: usize, parent_card: usize, n_areas: usize, seed: u64) -> NoisyOrBank {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let parents: Vec<Variable> = (0..n_parents)
            .map(|i| Variable::new(i, parent_card))
            .collect();
        let areas: Vec<NoisyOrCpd> = (0..n_areas)
            .map(|k| {
                let child = Variable::new(100 + k, 2);
                let activation: Vec<Vec<f64>> = (0..n_parents)
                    .map(|_| (0..parent_card).map(|_| rng.gen::<f64>() * 0.9).collect())
                    .collect();
                NoisyOrCpd::new(child, parents.clone(), activation, rng.gen::<f64>() * 0.1).unwrap()
            })
            .collect();
        NoisyOrBank::new(areas).unwrap()
    }

    fn random_dists(n_parents: usize, card: usize, seed: u64) -> Vec<Vec<f64>> {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n_parents)
            .map(|_| {
                let raw: Vec<f64> = (0..card).map(|_| rng.gen::<f64>() + 0.01).collect();
                let z: f64 = raw.iter().sum();
                raw.into_iter().map(|x| x / z).collect()
            })
            .collect()
    }

    #[test]
    fn matches_brute_force_on_random_banks() {
        for seed in 0..5u64 {
            let bank = make_bank(3, 4, 4, seed);
            let dists = random_dists(3, 4, seed + 100);
            for ev_bits in 0..16u32 {
                let evidence: Vec<bool> = (0..4).map(|k| ev_bits >> k & 1 == 1).collect();
                let fast = bank.evidence_likelihood(&dists, &evidence).unwrap();
                let slow = brute_force(&bank, &dists, &evidence);
                assert!(
                    (fast - slow).abs() < 1e-10,
                    "seed {seed} ev {evidence:?}: fast {fast} vs slow {slow}"
                );
            }
        }
    }

    #[test]
    fn all_evidence_configs_sum_to_one() {
        let bank = make_bank(2, 3, 3, 7);
        let dists = random_dists(2, 3, 8);
        let mut total = 0.0;
        for ev_bits in 0..8u32 {
            let evidence: Vec<bool> = (0..3).map(|k| ev_bits >> k & 1 == 1).collect();
            total += bank.evidence_likelihood(&dists, &evidence).unwrap();
        }
        assert!((total - 1.0).abs() < 1e-10, "likelihoods sum to {total}");
    }

    #[test]
    fn deterministic_parts_give_deterministic_areas() {
        let part = Variable::new(0, 2);
        let a0 = Variable::new(1, 2);
        let a1 = Variable::new(2, 2);
        let bank = NoisyOrBank::new(vec![
            NoisyOrCpd::new(a0, vec![part], vec![vec![1.0, 0.0]], 0.0).unwrap(),
            NoisyOrCpd::new(a1, vec![part], vec![vec![0.0, 1.0]], 0.0).unwrap(),
        ])
        .unwrap();
        // Part certainly in state 0 → area 0 fires, area 1 does not.
        let lik = bank
            .evidence_likelihood(&[vec![1.0, 0.0]], &[true, false])
            .unwrap();
        assert!((lik - 1.0).abs() < 1e-12);
        let lik2 = bank
            .evidence_likelihood(&[vec![1.0, 0.0]], &[false, true])
            .unwrap();
        assert!(lik2.abs() < 1e-12);
    }

    #[test]
    fn rejects_shape_mismatches() {
        let bank = make_bank(2, 3, 2, 1);
        let dists = random_dists(2, 3, 2);
        assert!(bank.evidence_likelihood(&dists, &[true]).is_err());
        assert!(bank
            .evidence_likelihood(&dists[..1], &[true, false])
            .is_err());
        let bad = vec![vec![0.5, 0.5], vec![0.3, 0.3, 0.4]];
        assert!(bank.evidence_likelihood(&bad, &[true, false]).is_err());
    }

    #[test]
    fn rejects_mismatched_parents() {
        let p1 = Variable::new(0, 2);
        let p2 = Variable::new(1, 2);
        let a0 = Variable::new(2, 2);
        let a1 = Variable::new(3, 2);
        let c1 = NoisyOrCpd::new(a0, vec![p1], vec![vec![0.5, 0.5]], 0.0).unwrap();
        let c2 = NoisyOrCpd::new(a1, vec![p2], vec![vec![0.5, 0.5]], 0.0).unwrap();
        assert!(NoisyOrBank::new(vec![c1, c2]).is_err());
        assert!(NoisyOrBank::new(vec![]).is_err());
    }

    #[test]
    fn empty_positive_set_is_product_form() {
        // With no positive findings the likelihood factorises exactly.
        let bank = make_bank(2, 2, 3, 11);
        let dists = random_dists(2, 2, 12);
        let fast = bank
            .evidence_likelihood(&dists, &[false, false, false])
            .unwrap();
        let slow = brute_force(&bank, &dists, &[false, false, false]);
        assert!((fast - slow).abs() < 1e-12);
    }
}
