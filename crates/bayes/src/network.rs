//! Discrete Bayesian networks: a DAG of variables with one CPD each.

use crate::cpd::{Cpd, NoisyOrCpd, TableCpd};
use crate::error::BayesError;
use crate::factor::Factor;
use crate::variable::{Variable, VariablePool};
use std::collections::HashMap;

/// Builder for [`DiscreteBayesNet`].
///
/// Declare variables first, then attach exactly one CPD per variable, then
/// [`BayesNetBuilder::build`], which validates acyclicity and completeness.
#[derive(Debug, Default)]
pub struct BayesNetBuilder {
    pool: VariablePool,
    cpds: HashMap<usize, Cpd>,
}

impl BayesNetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        BayesNetBuilder::default()
    }

    /// Declares a fresh variable.
    ///
    /// # Panics
    ///
    /// Panics if `cardinality` is zero.
    pub fn variable(&mut self, name: impl Into<String>, cardinality: usize) -> Variable {
        self.pool.variable(name, cardinality)
    }

    /// Attaches a table CPD to `child`.
    ///
    /// # Errors
    ///
    /// Propagates CPD validation errors, [`BayesError::UnknownVariable`]
    /// for undeclared variables and [`BayesError::DuplicateCpd`] when the
    /// child already has one.
    pub fn table_cpd(
        &mut self,
        child: Variable,
        parents: &[Variable],
        table: &[f64],
    ) -> Result<&mut Self, BayesError> {
        let cpd = TableCpd::new(child, parents.to_vec(), table.to_vec())?;
        self.attach(cpd.into())
    }

    /// Attaches a noisy-OR CPD to `child`.
    ///
    /// # Errors
    ///
    /// Propagates CPD validation errors and the same structural errors as
    /// [`BayesNetBuilder::table_cpd`].
    pub fn noisy_or_cpd(
        &mut self,
        child: Variable,
        parents: &[Variable],
        activation: Vec<Vec<f64>>,
        leak: f64,
    ) -> Result<&mut Self, BayesError> {
        let cpd = NoisyOrCpd::new(child, parents.to_vec(), activation, leak)?;
        self.attach(cpd.into())
    }

    /// Attaches an already-constructed CPD.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::UnknownVariable`] for undeclared variables
    /// and [`BayesError::DuplicateCpd`] for a second CPD on one child.
    pub fn attach(&mut self, cpd: Cpd) -> Result<&mut Self, BayesError> {
        let child = cpd.child();
        self.check_declared(child)?;
        for p in cpd.parents() {
            self.check_declared(*p)?;
        }
        if self.cpds.contains_key(&child.id()) {
            return Err(BayesError::DuplicateCpd(child.id()));
        }
        self.cpds.insert(child.id(), cpd);
        Ok(self)
    }

    fn check_declared(&self, var: Variable) -> Result<(), BayesError> {
        match self.pool.get(var.id()) {
            Some(declared) if declared.cardinality() == var.cardinality() => Ok(()),
            Some(declared) => Err(BayesError::CardinalityMismatch {
                variable: var.id(),
                expected: declared.cardinality(),
                found: var.cardinality(),
            }),
            None => Err(BayesError::UnknownVariable(var.id())),
        }
    }

    /// Validates and finalises the network.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::UnknownVariable`] when a declared variable
    /// lacks a CPD and [`BayesError::CyclicStructure`] when the parent
    /// relation has a cycle.
    pub fn build(self) -> Result<DiscreteBayesNet, BayesError> {
        let n = self.pool.len();
        for id in 0..n {
            if !self.cpds.contains_key(&id) {
                return Err(BayesError::UnknownVariable(id));
            }
        }
        // Kahn's algorithm for the topological order.
        let mut indegree = vec![0usize; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, cpd) in &self.cpds {
            indegree[*id] = cpd.parents().len();
            for p in cpd.parents() {
                children[p.id()].push(*id);
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        queue.sort_unstable();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            topo.push(v);
            for &c in &children[v] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    queue.push(c);
                }
            }
        }
        if topo.len() != n {
            return Err(BayesError::CyclicStructure);
        }
        Ok(DiscreteBayesNet {
            pool: self.pool,
            cpds: self.cpds,
            topo_order: topo,
        })
    }
}

/// A validated discrete Bayesian network.
///
/// See the crate-level example for construction and querying.
#[derive(Debug, Clone)]
pub struct DiscreteBayesNet {
    pool: VariablePool,
    cpds: HashMap<usize, Cpd>,
    topo_order: Vec<usize>,
}

impl DiscreteBayesNet {
    /// Number of variables.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// Whether the network is empty.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// All variables in declaration order.
    pub fn variables(&self) -> Vec<Variable> {
        (0..self.pool.len())
            .map(|id| self.pool.get(id).expect("pool ids are dense"))
            .collect()
    }

    /// The variable with the given ID.
    pub fn variable(&self, id: usize) -> Option<Variable> {
        self.pool.get(id)
    }

    /// A variable's name.
    pub fn name(&self, var: Variable) -> Option<&str> {
        self.pool.name(var)
    }

    /// The CPD of `var`.
    pub fn cpd(&self, var: Variable) -> Option<&Cpd> {
        self.cpds.get(&var.id())
    }

    /// Variables in a topological order (parents before children).
    pub fn topological_order(&self) -> Vec<Variable> {
        self.topo_order
            .iter()
            .map(|&id| self.pool.get(id).expect("pool ids are dense"))
            .collect()
    }

    /// All CPDs converted to factors.
    pub fn factors(&self) -> Vec<Factor> {
        self.topo_order
            .iter()
            .map(|id| self.cpds[id].to_factor())
            .collect()
    }

    /// The full joint distribution as a single factor. Exponential in the
    /// number of variables — intended for tests and small models.
    ///
    /// # Errors
    ///
    /// Propagates factor-product errors (none expected on a validated
    /// network).
    pub fn joint(&self) -> Result<Factor, BayesError> {
        let mut joint = Factor::unit();
        for f in self.factors() {
            joint = joint.product(&f)?;
        }
        Ok(joint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sprinkler() -> (DiscreteBayesNet, Variable, Variable, Variable) {
        let mut b = BayesNetBuilder::new();
        let rain = b.variable("rain", 2);
        let sprinkler = b.variable("sprinkler", 2);
        let wet = b.variable("wet", 2);
        b.table_cpd(rain, &[], &[0.8, 0.2]).unwrap();
        b.table_cpd(sprinkler, &[rain], &[0.6, 0.4, 0.99, 0.01])
            .unwrap();
        b.table_cpd(
            wet,
            &[rain, sprinkler],
            &[1.0, 0.0, 0.1, 0.9, 0.2, 0.8, 0.01, 0.99],
        )
        .unwrap();
        (b.build().unwrap(), rain, sprinkler, wet)
    }

    #[test]
    fn build_validates_missing_cpd() {
        let mut b = BayesNetBuilder::new();
        let a = b.variable("a", 2);
        let _b2 = b.variable("b", 2);
        b.table_cpd(a, &[], &[0.5, 0.5]).unwrap();
        assert!(matches!(b.build(), Err(BayesError::UnknownVariable(1))));
    }

    #[test]
    fn build_rejects_cycle() {
        let mut b = BayesNetBuilder::new();
        let a = b.variable("a", 2);
        let c = b.variable("c", 2);
        b.table_cpd(a, &[c], &[0.5, 0.5, 0.5, 0.5]).unwrap();
        b.table_cpd(c, &[a], &[0.5, 0.5, 0.5, 0.5]).unwrap();
        assert!(matches!(b.build(), Err(BayesError::CyclicStructure)));
    }

    #[test]
    fn attach_rejects_duplicate_and_unknown() {
        let mut b = BayesNetBuilder::new();
        let a = b.variable("a", 2);
        b.table_cpd(a, &[], &[0.5, 0.5]).unwrap();
        assert!(matches!(
            b.table_cpd(a, &[], &[0.4, 0.6]),
            Err(BayesError::DuplicateCpd(_))
        ));
        let ghost = Variable::new(42, 2);
        assert!(matches!(
            b.table_cpd(ghost, &[], &[0.5, 0.5]),
            Err(BayesError::UnknownVariable(42))
        ));
    }

    #[test]
    fn attach_rejects_cardinality_lie() {
        let mut b = BayesNetBuilder::new();
        let _a = b.variable("a", 2);
        let lie = Variable::new(0, 3);
        assert!(matches!(
            b.table_cpd(lie, &[], &[0.2, 0.3, 0.5]),
            Err(BayesError::CardinalityMismatch { .. })
        ));
    }

    #[test]
    fn topological_order_respects_parents() {
        let (net, rain, sprinkler, wet) = sprinkler();
        let topo = net.topological_order();
        let pos = |v: Variable| topo.iter().position(|u| u.id() == v.id()).unwrap();
        assert!(pos(rain) < pos(sprinkler));
        assert!(pos(rain) < pos(wet));
        assert!(pos(sprinkler) < pos(wet));
    }

    #[test]
    fn joint_sums_to_one() {
        let (net, ..) = sprinkler();
        let joint = net.joint().unwrap();
        assert_eq!(joint.values().len(), 8);
        assert!((joint.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn joint_matches_chain_rule() {
        let (net, rain, sprinkler, wet) = sprinkler();
        let joint = net.joint().unwrap();
        // P(rain=1, sprinkler=0, wet=1) = 0.2 * 0.99 * 0.8
        let p = joint
            .value_at(&[(rain, 1), (sprinkler, 0), (wet, 1)])
            .unwrap();
        assert!((p - 0.2 * 0.99 * 0.8).abs() < 1e-12);
    }

    #[test]
    fn accessors() {
        let (net, rain, ..) = sprinkler();
        assert_eq!(net.len(), 3);
        assert!(!net.is_empty());
        assert_eq!(net.name(rain), Some("rain"));
        assert!(net.cpd(rain).is_some());
        assert_eq!(net.variables().len(), 3);
        assert_eq!(net.variable(0), Some(rain));
        assert_eq!(net.variable(9), None);
    }
}
