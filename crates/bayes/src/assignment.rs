//! Joint assignments over scopes of discrete variables.

use crate::variable::Variable;

/// Iterates over every joint assignment of a scope in row-major order
/// (the **last** variable in the scope varies fastest, matching
/// [`crate::factor::Factor`]'s value layout).
///
/// # Examples
///
/// ```
/// use slj_bayes::assignment::AssignmentIter;
/// use slj_bayes::variable::Variable;
///
/// let a = Variable::new(0, 2);
/// let b = Variable::new(1, 3);
/// let all: Vec<Vec<usize>> = AssignmentIter::new(&[a, b]).collect();
/// assert_eq!(all.len(), 6);
/// assert_eq!(all[0], vec![0, 0]);
/// assert_eq!(all[1], vec![0, 1]);
/// assert_eq!(all[5], vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct AssignmentIter {
    cards: Vec<usize>,
    current: Vec<usize>,
    done: bool,
}

impl AssignmentIter {
    /// Creates an iterator over the scope's assignments.
    pub fn new(scope: &[Variable]) -> Self {
        let cards: Vec<usize> = scope.iter().map(|v| v.cardinality()).collect();
        let done = false;
        let current = vec![0; cards.len()];
        AssignmentIter {
            cards,
            current,
            done,
        }
    }

    /// Total number of assignments (the product of cardinalities).
    pub fn total(&self) -> usize {
        self.cards.iter().product()
    }
}

impl Iterator for AssignmentIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let out = self.current.clone();
        // Advance like an odometer, last position fastest.
        let mut i = self.cards.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            self.current[i] += 1;
            if self.current[i] < self.cards[i] {
                break;
            }
            self.current[i] = 0;
        }
        Some(out)
    }
}

/// Converts a joint assignment (aligned with `scope`) to its row-major
/// linear index.
///
/// # Panics
///
/// Panics if lengths differ or a state is out of range.
pub fn assignment_to_index(scope: &[Variable], assignment: &[usize]) -> usize {
    assert_eq!(
        scope.len(),
        assignment.len(),
        "assignment length must match scope"
    );
    let mut index = 0usize;
    for (v, &s) in scope.iter().zip(assignment) {
        assert!(
            s < v.cardinality(),
            "state {s} out of range for variable with cardinality {}",
            v.cardinality()
        );
        index = index * v.cardinality() + s;
    }
    index
}

/// Converts a row-major linear index back into a joint assignment.
///
/// # Panics
///
/// Panics if `index` exceeds the scope's assignment count.
pub fn index_to_assignment(scope: &[Variable], index: usize) -> Vec<usize> {
    let total: usize = scope.iter().map(|v| v.cardinality()).product();
    assert!(index < total.max(1), "index {index} out of range");
    let mut out = vec![0; scope.len()];
    let mut rem = index;
    for i in (0..scope.len()).rev() {
        let c = scope[i].cardinality();
        out[i] = rem % c;
        rem /= c;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope() -> Vec<Variable> {
        vec![
            Variable::new(0, 2),
            Variable::new(1, 3),
            Variable::new(2, 2),
        ]
    }

    #[test]
    fn iterates_all_assignments_in_order() {
        let s = scope();
        let all: Vec<_> = AssignmentIter::new(&s).collect();
        assert_eq!(all.len(), 12);
        assert_eq!(all[0], vec![0, 0, 0]);
        assert_eq!(all[1], vec![0, 0, 1]);
        assert_eq!(all[2], vec![0, 1, 0]);
        assert_eq!(all[11], vec![1, 2, 1]);
    }

    #[test]
    fn empty_scope_has_one_assignment() {
        let all: Vec<_> = AssignmentIter::new(&[]).collect();
        assert_eq!(all, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn index_round_trip() {
        let s = scope();
        for (i, a) in AssignmentIter::new(&s).enumerate() {
            assert_eq!(assignment_to_index(&s, &a), i);
            assert_eq!(index_to_assignment(&s, i), a);
        }
    }

    #[test]
    fn total_counts() {
        assert_eq!(AssignmentIter::new(&scope()).total(), 12);
        assert_eq!(AssignmentIter::new(&[]).total(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_state_panics() {
        let s = scope();
        assignment_to_index(&s, &[0, 3, 0]);
    }

    #[test]
    #[should_panic(expected = "match scope")]
    fn bad_length_panics() {
        let s = scope();
        assignment_to_index(&s, &[0, 0]);
    }
}
