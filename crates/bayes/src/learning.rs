//! Parameter learning from complete data (the paper's "quantitative
//! training").
//!
//! The paper fixes the network structure (qualitative training) and learns
//! the conditional probabilities from labelled frames. With complete data
//! that is count-and-normalise; Laplace smoothing keeps rare poses — the
//! class-imbalance problem Section 4.2 discusses — from collapsing to
//! zero probability.

use crate::cpd::TableCpd;
use crate::error::BayesError;
use crate::variable::Variable;
use std::collections::HashMap;

/// Accumulates child-given-parents counts and converts them into a
/// smoothed [`TableCpd`].
///
/// # Examples
///
/// ```
/// use slj_bayes::learning::CpdEstimator;
/// use slj_bayes::variable::Variable;
///
/// let parent = Variable::new(0, 2);
/// let child = Variable::new(1, 2);
/// let mut est = CpdEstimator::new(child, vec![parent]);
/// est.observe(&[0], 0)?;
/// est.observe(&[0], 0)?;
/// est.observe(&[0], 1)?;
/// est.observe(&[1], 1)?;
/// let cpd = est.estimate(0.0)?;
/// assert!((cpd.prob(&[0], 0)? - 2.0 / 3.0).abs() < 1e-12);
/// assert!((cpd.prob(&[1], 1)? - 1.0).abs() < 1e-12);
/// # Ok::<(), slj_bayes::BayesError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CpdEstimator {
    child: Variable,
    parents: Vec<Variable>,
    /// counts[row][state]
    counts: Vec<Vec<f64>>,
}

impl CpdEstimator {
    /// Creates an estimator for `P(child | parents)` with zero counts.
    pub fn new(child: Variable, parents: Vec<Variable>) -> Self {
        let rows: usize = parents.iter().map(|p| p.cardinality()).product();
        CpdEstimator {
            child,
            parents,
            counts: vec![vec![0.0; child.cardinality()]; rows],
        }
    }

    /// The child variable.
    pub fn child(&self) -> Variable {
        self.child
    }

    /// The parent variables.
    pub fn parents(&self) -> &[Variable] {
        &self.parents
    }

    /// Records one observation of `child = state` under the given parent
    /// states, with unit weight.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::StateOutOfRange`] /
    /// [`BayesError::WrongTableSize`] on malformed observations.
    pub fn observe(&mut self, parent_states: &[usize], state: usize) -> Result<(), BayesError> {
        self.observe_weighted(parent_states, state, 1.0)
    }

    /// Records a fractionally weighted observation (for EM-style soft
    /// counts).
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::InvalidProbability`] on a negative or
    /// non-finite weight plus the errors of [`CpdEstimator::observe`].
    pub fn observe_weighted(
        &mut self,
        parent_states: &[usize],
        state: usize,
        weight: f64,
    ) -> Result<(), BayesError> {
        if !weight.is_finite() || weight < 0.0 {
            return Err(BayesError::InvalidProbability(weight));
        }
        if parent_states.len() != self.parents.len() {
            return Err(BayesError::WrongTableSize {
                expected: self.parents.len(),
                found: parent_states.len(),
            });
        }
        if !self.child.contains_state(state) {
            return Err(BayesError::StateOutOfRange {
                variable: self.child.id(),
                state,
                cardinality: self.child.cardinality(),
            });
        }
        let row = self.row_index(parent_states)?;
        self.counts[row][state] += weight;
        Ok(())
    }

    fn row_index(&self, parent_states: &[usize]) -> Result<usize, BayesError> {
        let mut row = 0usize;
        for (p, &s) in self.parents.iter().zip(parent_states) {
            if !p.contains_state(s) {
                return Err(BayesError::StateOutOfRange {
                    variable: p.id(),
                    state: s,
                    cardinality: p.cardinality(),
                });
            }
            row = row * p.cardinality() + s;
        }
        Ok(row)
    }

    /// Total observation weight in a parent-configuration row.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::StateOutOfRange`] on bad parent states.
    pub fn row_total(&self, parent_states: &[usize]) -> Result<f64, BayesError> {
        Ok(self.counts[self.row_index(parent_states)?].iter().sum())
    }

    /// Produces the smoothed CPD: each row is
    /// `(count + alpha) / (row_total + alpha·child_card)`.
    ///
    /// Rows with zero total and `alpha == 0` fall back to uniform (no
    /// evidence means no preference).
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::InvalidProbability`] on a negative or
    /// non-finite `alpha`.
    pub fn estimate(&self, alpha: f64) -> Result<TableCpd, BayesError> {
        if !alpha.is_finite() || alpha < 0.0 {
            return Err(BayesError::InvalidProbability(alpha));
        }
        let c = self.child.cardinality();
        let mut table = Vec::with_capacity(self.counts.len() * c);
        for row in &self.counts {
            let total: f64 = row.iter().sum();
            if total + alpha * c as f64 <= 0.0 {
                table.extend(std::iter::repeat(1.0 / c as f64).take(c));
            } else {
                let denom = total + alpha * c as f64;
                table.extend(row.iter().map(|&n| (n + alpha) / denom));
            }
        }
        TableCpd::new(self.child, self.parents.clone(), table)
    }
}

/// Learns a full set of table CPDs from complete data.
///
/// `data` holds one row per observation; `columns` names the variable of
/// each column. For every `(child, parents)` pair in `structure` the
/// estimator counts co-occurrences and emits a smoothed CPD.
///
/// # Errors
///
/// Returns [`BayesError::InvalidTrainingData`] when the data are empty or
/// rows have the wrong width, plus per-observation errors.
pub fn learn_table_cpds(
    columns: &[Variable],
    data: &[Vec<usize>],
    structure: &[(Variable, Vec<Variable>)],
    alpha: f64,
) -> Result<Vec<TableCpd>, BayesError> {
    if data.is_empty() {
        return Err(BayesError::InvalidTrainingData("empty data set".into()));
    }
    let col_of: HashMap<usize, usize> = columns
        .iter()
        .enumerate()
        .map(|(i, v)| (v.id(), i))
        .collect();
    for (i, row) in data.iter().enumerate() {
        if row.len() != columns.len() {
            return Err(BayesError::InvalidTrainingData(format!(
                "row {i} has {} columns, expected {}",
                row.len(),
                columns.len()
            )));
        }
    }
    let mut out = Vec::with_capacity(structure.len());
    for (child, parents) in structure {
        let child_col = *col_of
            .get(&child.id())
            .ok_or(BayesError::UnknownVariable(child.id()))?;
        let parent_cols: Vec<usize> = parents
            .iter()
            .map(|p| {
                col_of
                    .get(&p.id())
                    .copied()
                    .ok_or(BayesError::UnknownVariable(p.id()))
            })
            .collect::<Result<_, _>>()?;
        let mut est = CpdEstimator::new(*child, parents.clone());
        for row in data {
            let parent_states: Vec<usize> = parent_cols.iter().map(|&c| row[c]).collect();
            est.observe(&parent_states, row[child_col])?;
        }
        out.push(est.estimate(alpha)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mle_recovers_frequencies() {
        let child = Variable::new(0, 3);
        let mut est = CpdEstimator::new(child, vec![]);
        for _ in 0..6 {
            est.observe(&[], 0).unwrap();
        }
        for _ in 0..3 {
            est.observe(&[], 1).unwrap();
        }
        est.observe(&[], 2).unwrap();
        let cpd = est.estimate(0.0).unwrap();
        assert!((cpd.prob(&[], 0).unwrap() - 0.6).abs() < 1e-12);
        assert!((cpd.prob(&[], 1).unwrap() - 0.3).abs() < 1e-12);
        assert!((cpd.prob(&[], 2).unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn laplace_smoothing_avoids_zeros() {
        let parent = Variable::new(0, 2);
        let child = Variable::new(1, 2);
        let mut est = CpdEstimator::new(child, vec![parent]);
        est.observe(&[0], 0).unwrap();
        est.observe(&[0], 0).unwrap();
        let cpd = est.estimate(1.0).unwrap();
        // (0 + 1) / (2 + 2) for the unseen state.
        assert!((cpd.prob(&[0], 1).unwrap() - 0.25).abs() < 1e-12);
        // Unseen parent row: uniform via pure smoothing.
        assert!((cpd.prob(&[1], 0).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_row_without_smoothing_is_uniform() {
        let child = Variable::new(0, 4);
        let est = CpdEstimator::new(child, vec![]);
        let cpd = est.estimate(0.0).unwrap();
        for s in 0..4 {
            assert!((cpd.prob(&[], s).unwrap() - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_observations() {
        let child = Variable::new(0, 2);
        let mut est = CpdEstimator::new(child, vec![]);
        est.observe_weighted(&[], 0, 3.0).unwrap();
        est.observe_weighted(&[], 1, 1.0).unwrap();
        let cpd = est.estimate(0.0).unwrap();
        assert!((cpd.prob(&[], 0).unwrap() - 0.75).abs() < 1e-12);
        assert!(est.observe_weighted(&[], 0, -1.0).is_err());
        assert!((est.row_total(&[]).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_observations() {
        let parent = Variable::new(0, 2);
        let child = Variable::new(1, 2);
        let mut est = CpdEstimator::new(child, vec![parent]);
        assert!(est.observe(&[2], 0).is_err());
        assert!(est.observe(&[0], 2).is_err());
        assert!(est.observe(&[], 0).is_err());
        assert!(est.estimate(-1.0).is_err());
    }

    #[test]
    fn learn_full_structure_from_data() {
        let a = Variable::new(0, 2);
        let b = Variable::new(1, 2);
        // b follows a 80% of the time in this data set.
        let data = vec![
            vec![0, 0],
            vec![0, 0],
            vec![0, 0],
            vec![0, 0],
            vec![0, 1],
            vec![1, 1],
            vec![1, 1],
            vec![1, 1],
            vec![1, 1],
            vec![1, 0],
        ];
        let cpds = learn_table_cpds(&[a, b], &data, &[(a, vec![]), (b, vec![a])], 0.0).unwrap();
        assert!((cpds[0].prob(&[], 0).unwrap() - 0.5).abs() < 1e-12);
        assert!((cpds[1].prob(&[0], 0).unwrap() - 0.8).abs() < 1e-12);
        assert!((cpds[1].prob(&[1], 1).unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn learn_rejects_bad_data() {
        let a = Variable::new(0, 2);
        assert!(learn_table_cpds(&[a], &[], &[(a, vec![])], 0.0).is_err());
        assert!(learn_table_cpds(&[a], &[vec![0, 1]], &[(a, vec![])], 0.0).is_err());
        let ghost = Variable::new(9, 2);
        assert!(learn_table_cpds(&[a], &[vec![0]], &[(ghost, vec![])], 0.0).is_err());
    }

    #[test]
    fn learned_cpd_converges_with_more_data() {
        // Draw from a known conditional and verify the estimate tightens.
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = Variable::new(0, 2);
        let b = Variable::new(1, 2);
        let p_b_given_a = [0.9, 0.3]; // P(b=1 | a)
        let mut data = Vec::new();
        for _ in 0..20_000 {
            let s_a = usize::from(rng.gen::<f64>() < 0.4);
            let s_b = usize::from(rng.gen::<f64>() < p_b_given_a[s_a]);
            data.push(vec![s_a, s_b]);
        }
        let cpds = learn_table_cpds(&[a, b], &data, &[(b, vec![a])], 1.0).unwrap();
        assert!((cpds[0].prob(&[0], 1).unwrap() - 0.9).abs() < 0.02);
        assert!((cpds[0].prob(&[1], 1).unwrap() - 0.3).abs() < 0.02);
    }
}
