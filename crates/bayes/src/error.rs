//! Error type shared by the Bayesian-network crate.

use std::fmt;

/// Errors returned by network construction, factor algebra and inference.
#[derive(Debug, Clone, PartialEq)]
pub enum BayesError {
    /// Two uses of the same variable ID disagree on cardinality.
    CardinalityMismatch {
        /// Offending variable ID.
        variable: usize,
        /// Cardinality seen first.
        expected: usize,
        /// Conflicting cardinality.
        found: usize,
    },
    /// A CPD table has the wrong number of entries.
    WrongTableSize {
        /// Entries expected (`child_card × Π parent_card`).
        expected: usize,
        /// Entries supplied.
        found: usize,
    },
    /// A CPD row does not sum to 1 (within tolerance).
    UnnormalizedRow {
        /// Index of the parent configuration.
        row: usize,
        /// The row's sum.
        sum: f64,
    },
    /// A probability is negative or non-finite.
    InvalidProbability(f64),
    /// A variable was referenced but never declared, or has no CPD.
    UnknownVariable(usize),
    /// A variable received two CPDs.
    DuplicateCpd(usize),
    /// The parent structure contains a directed cycle.
    CyclicStructure,
    /// A state index is outside a variable's domain.
    StateOutOfRange {
        /// Offending variable ID.
        variable: usize,
        /// Offending state.
        state: usize,
        /// The variable's cardinality.
        cardinality: usize,
    },
    /// An operation received a variable absent from the factor's scope.
    VariableNotInScope(usize),
    /// Evidence or structure left nothing to normalise (all-zero factor).
    ZeroProbabilityEvidence,
    /// A data set passed to learning is unusable (e.g. empty).
    InvalidTrainingData(String),
    /// DBN construction error.
    InvalidTemporalStructure(String),
}

impl fmt::Display for BayesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BayesError::CardinalityMismatch {
                variable,
                expected,
                found,
            } => write!(
                f,
                "variable {variable} used with cardinality {found}, expected {expected}"
            ),
            BayesError::WrongTableSize { expected, found } => {
                write!(f, "CPD table has {found} entries, expected {expected}")
            }
            BayesError::UnnormalizedRow { row, sum } => {
                write!(f, "CPD row {row} sums to {sum}, expected 1")
            }
            BayesError::InvalidProbability(p) => write!(f, "invalid probability {p}"),
            BayesError::UnknownVariable(v) => write!(f, "unknown variable {v}"),
            BayesError::DuplicateCpd(v) => write!(f, "variable {v} already has a CPD"),
            BayesError::CyclicStructure => write!(f, "network structure contains a cycle"),
            BayesError::StateOutOfRange {
                variable,
                state,
                cardinality,
            } => write!(
                f,
                "state {state} out of range for variable {variable} with cardinality {cardinality}"
            ),
            BayesError::VariableNotInScope(v) => {
                write!(f, "variable {v} is not in the factor's scope")
            }
            BayesError::ZeroProbabilityEvidence => {
                write!(f, "evidence has zero probability under the model")
            }
            BayesError::InvalidTrainingData(msg) => write!(f, "invalid training data: {msg}"),
            BayesError::InvalidTemporalStructure(msg) => {
                write!(f, "invalid temporal structure: {msg}")
            }
        }
    }
}

impl std::error::Error for BayesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            BayesError::UnknownVariable(3).to_string(),
            "unknown variable 3"
        );
        assert_eq!(
            BayesError::WrongTableSize {
                expected: 8,
                found: 6
            }
            .to_string(),
            "CPD table has 6 entries, expected 8"
        );
        assert!(BayesError::CyclicStructure.to_string().contains("cycle"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BayesError>();
    }
}
