//! Dense table factors over discrete variables.

use crate::assignment::{assignment_to_index, index_to_assignment};
use crate::error::BayesError;
use crate::variable::Variable;
use std::collections::HashMap;

/// Row-major strides of a scope: `strides[i]` is how far the linear
/// index moves when variable `i` advances one state (last variable has
/// stride 1, matching [`assignment_to_index`]).
fn scope_strides(scope: &[Variable]) -> Vec<usize> {
    let mut strides = vec![0usize; scope.len()];
    let mut acc = 1usize;
    for i in (0..scope.len()).rev() {
        strides[i] = acc;
        acc *= scope[i].cardinality();
    }
    strides
}

/// A non-negative function over the joint states of a variable scope,
/// stored as a dense row-major table (last scope variable fastest).
///
/// Factors are the workhorse of exact inference: CPDs convert to factors,
/// evidence reduces them, elimination multiplies and marginalises them.
///
/// # Examples
///
/// ```
/// use slj_bayes::factor::Factor;
/// use slj_bayes::variable::Variable;
///
/// let a = Variable::new(0, 2);
/// let b = Variable::new(1, 2);
/// let f = Factor::new(vec![a, b], vec![0.1, 0.2, 0.3, 0.4])?;
/// let marginal = f.sum_out(a)?;
/// assert!((marginal.values()[0] - 0.4).abs() < 1e-12);
/// assert!((marginal.values()[1] - 0.6).abs() < 1e-12);
/// # Ok::<(), slj_bayes::BayesError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Factor {
    scope: Vec<Variable>,
    values: Vec<f64>,
}

impl Factor {
    /// Creates a factor from a scope and its row-major value table.
    ///
    /// # Errors
    ///
    /// - [`BayesError::WrongTableSize`] when `values.len()` differs from
    ///   the product of cardinalities.
    /// - [`BayesError::InvalidProbability`] on negative or non-finite
    ///   entries.
    /// - [`BayesError::CardinalityMismatch`] when the same variable ID
    ///   appears twice in the scope.
    pub fn new(scope: Vec<Variable>, values: Vec<f64>) -> Result<Self, BayesError> {
        let expected: usize = scope.iter().map(|v| v.cardinality()).product();
        if values.len() != expected {
            return Err(BayesError::WrongTableSize {
                expected,
                found: values.len(),
            });
        }
        let mut seen = HashMap::new();
        for v in &scope {
            if let Some(prev) = seen.insert(v.id(), v.cardinality()) {
                return Err(BayesError::CardinalityMismatch {
                    variable: v.id(),
                    expected: prev,
                    found: v.cardinality(),
                });
            }
        }
        for &x in &values {
            if !x.is_finite() || x < 0.0 {
                return Err(BayesError::InvalidProbability(x));
            }
        }
        Ok(Factor { scope, values })
    }

    /// Crate-internal constructor for tables whose invariants were
    /// already established elsewhere (a validated CPD's expansion is a
    /// well-formed factor by construction): skips re-validation so
    /// conversion sites need no panic or error path.
    pub(crate) fn from_validated(scope: Vec<Variable>, values: Vec<f64>) -> Self {
        Factor { scope, values }
    }

    /// The constant factor 1 over the empty scope.
    pub fn unit() -> Self {
        Factor {
            scope: Vec::new(),
            values: vec![1.0],
        }
    }

    /// A uniform distribution over one variable.
    pub fn uniform(var: Variable) -> Self {
        let c = var.cardinality();
        Factor {
            scope: vec![var],
            values: vec![1.0 / c as f64; c],
        }
    }

    /// A point-mass distribution on `state` of `var`.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::StateOutOfRange`] for a bad state.
    pub fn indicator(var: Variable, state: usize) -> Result<Self, BayesError> {
        if !var.contains_state(state) {
            return Err(BayesError::StateOutOfRange {
                variable: var.id(),
                state,
                cardinality: var.cardinality(),
            });
        }
        let mut values = vec![0.0; var.cardinality()];
        values[state] = 1.0;
        Ok(Factor {
            scope: vec![var],
            values,
        })
    }

    /// The factor's scope, in table order.
    pub fn scope(&self) -> &[Variable] {
        &self.scope
    }

    /// The raw value table, row-major over [`Self::scope`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Whether `var` is in the scope.
    pub fn contains(&self, var: Variable) -> bool {
        self.scope.iter().any(|v| v.id() == var.id())
    }

    /// Value at a joint assignment given as `(variable, state)` pairs
    /// covering at least the scope. Extra pairs are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::VariableNotInScope`] if a scope variable has
    /// no pair, [`BayesError::StateOutOfRange`] on a bad state.
    pub fn value_at(&self, assignment: &[(Variable, usize)]) -> Result<f64, BayesError> {
        let lookup: HashMap<usize, usize> = assignment.iter().map(|&(v, s)| (v.id(), s)).collect();
        let mut idx = Vec::with_capacity(self.scope.len());
        for v in &self.scope {
            let s = *lookup
                .get(&v.id())
                .ok_or(BayesError::VariableNotInScope(v.id()))?;
            if !v.contains_state(s) {
                return Err(BayesError::StateOutOfRange {
                    variable: v.id(),
                    state: s,
                    cardinality: v.cardinality(),
                });
            }
            idx.push(s);
        }
        Ok(self.values[assignment_to_index(&self.scope, &idx)])
    }

    /// Pointwise product. The result's scope is the union of the operand
    /// scopes (this factor's variables first).
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::CardinalityMismatch`] when a shared variable
    /// ID carries different cardinalities.
    pub fn product(&self, other: &Factor) -> Result<Factor, BayesError> {
        // Verify shared variables agree.
        for v in &self.scope {
            for w in &other.scope {
                if v.id() == w.id() && v.cardinality() != w.cardinality() {
                    return Err(BayesError::CardinalityMismatch {
                        variable: v.id(),
                        expected: v.cardinality(),
                        found: w.cardinality(),
                    });
                }
            }
        }
        let mut scope = self.scope.clone();
        for w in &other.scope {
            if !scope.iter().any(|v| v.id() == w.id()) {
                scope.push(*w);
            }
        }
        let size: usize = scope.iter().map(|v| v.cardinality()).product();
        let mut values = Vec::with_capacity(size);
        // Strides of each union-scope position within each operand's
        // table (0 when the operand lacks the variable): both source
        // indices then advance with a single odometer over the union
        // scope, visiting output cells in the same row-major order as
        // before with no per-cell allocation or index recomputation.
        let self_strides = scope_strides(&self.scope);
        let other_strides = scope_strides(&other.scope);
        let mut stride_a = vec![0usize; scope.len()];
        let mut stride_b = vec![0usize; scope.len()];
        let mut cards = vec![0usize; scope.len()];
        for (p, u) in scope.iter().enumerate() {
            cards[p] = u.cardinality();
            if let Some(i) = self.scope.iter().position(|v| v.id() == u.id()) {
                stride_a[p] = self_strides[i];
            }
            if let Some(i) = other.scope.iter().position(|v| v.id() == u.id()) {
                stride_b[p] = other_strides[i];
            }
        }
        let mut digits = vec![0usize; scope.len()];
        let mut ia = 0usize;
        let mut ib = 0usize;
        for _ in 0..size {
            values.push(self.values[ia] * other.values[ib]);
            let mut p = scope.len();
            while p > 0 {
                p -= 1;
                digits[p] += 1;
                ia += stride_a[p];
                ib += stride_b[p];
                if digits[p] < cards[p] {
                    break;
                }
                digits[p] = 0;
                ia -= stride_a[p] * cards[p];
                ib -= stride_b[p] * cards[p];
            }
        }
        Ok(Factor { scope, values })
    }

    /// Marginalises `var` out by summation.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::VariableNotInScope`] when absent.
    pub fn sum_out(&self, var: Variable) -> Result<Factor, BayesError> {
        let pos = self
            .scope
            .iter()
            .position(|v| v.id() == var.id())
            .ok_or(BayesError::VariableNotInScope(var.id()))?;
        let new_scope: Vec<Variable> = self
            .scope
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != pos)
            .map(|(_, &v)| v)
            .collect();
        let size: usize = new_scope.iter().map(|v| v.cardinality()).product();
        let mut values = vec![0.0; size.max(1)];
        // Walk the input table in ascending index order while tracking
        // the output index incrementally (the summed-out position gets
        // stride 0), so each slot accumulates in exactly the order the
        // per-cell index recomputation used to produce.
        let (out_stride, cards) = self.drop_position_strides(pos, &new_scope);
        let mut digits = vec![0usize; self.scope.len()];
        let mut oi = 0usize;
        for &x in &self.values {
            values[oi] += x;
            let mut p = cards.len();
            while p > 0 {
                p -= 1;
                digits[p] += 1;
                oi += out_stride[p];
                if digits[p] < cards[p] {
                    break;
                }
                digits[p] = 0;
                oi -= out_stride[p] * cards[p];
            }
        }
        Ok(Factor {
            scope: new_scope,
            values,
        })
    }

    /// Per-position output strides (and cardinalities) for iterating this
    /// factor's table while projecting away the variable at `pos`.
    fn drop_position_strides(
        &self,
        pos: usize,
        new_scope: &[Variable],
    ) -> (Vec<usize>, Vec<usize>) {
        let new_strides = scope_strides(new_scope);
        let mut out_stride = vec![0usize; self.scope.len()];
        let mut j = 0;
        for (i, s) in out_stride.iter_mut().enumerate() {
            if i != pos {
                *s = new_strides[j];
                j += 1;
            }
        }
        let cards: Vec<usize> = self.scope.iter().map(|v| v.cardinality()).collect();
        (out_stride, cards)
    }

    /// Restricts the factor to `var = state`, removing `var` from the
    /// scope.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::VariableNotInScope`] or
    /// [`BayesError::StateOutOfRange`].
    pub fn reduce(&self, var: Variable, state: usize) -> Result<Factor, BayesError> {
        let pos = self
            .scope
            .iter()
            .position(|v| v.id() == var.id())
            .ok_or(BayesError::VariableNotInScope(var.id()))?;
        if !var.contains_state(state) {
            return Err(BayesError::StateOutOfRange {
                variable: var.id(),
                state,
                cardinality: var.cardinality(),
            });
        }
        let new_scope: Vec<Variable> = self
            .scope
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != pos)
            .map(|(_, &v)| v)
            .collect();
        let size: usize = new_scope.iter().map(|v| v.cardinality()).product();
        let mut values = Vec::with_capacity(size.max(1));
        // Source indices of the selected slice, visited in the output's
        // row-major order via an odometer over the remaining variables.
        let old_strides = scope_strides(&self.scope);
        let src_stride: Vec<usize> = (0..self.scope.len())
            .filter(|&i| i != pos)
            .map(|i| old_strides[i])
            .collect();
        let cards: Vec<usize> = new_scope.iter().map(|v| v.cardinality()).collect();
        let mut digits = vec![0usize; new_scope.len()];
        let mut si = state * old_strides[pos];
        for _ in 0..size.max(1) {
            values.push(self.values[si]);
            let mut p = cards.len();
            while p > 0 {
                p -= 1;
                digits[p] += 1;
                si += src_stride[p];
                if digits[p] < cards[p] {
                    break;
                }
                digits[p] = 0;
                si -= src_stride[p] * cards[p];
            }
        }
        Ok(Factor {
            scope: new_scope,
            values,
        })
    }

    /// Replaces `old` with `new` in the scope (same cardinality), keeping
    /// the table untouched. Used to retarget a belief factor onto the
    /// previous-slice variables of a DBN.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::VariableNotInScope`] when `old` is absent or
    /// [`BayesError::CardinalityMismatch`] when shapes differ.
    pub fn rename(&self, old: Variable, new: Variable) -> Result<Factor, BayesError> {
        let pos = self
            .scope
            .iter()
            .position(|v| v.id() == old.id())
            .ok_or(BayesError::VariableNotInScope(old.id()))?;
        if old.cardinality() != new.cardinality() {
            return Err(BayesError::CardinalityMismatch {
                variable: new.id(),
                expected: old.cardinality(),
                found: new.cardinality(),
            });
        }
        let mut scope = self.scope.clone();
        scope[pos] = new;
        Ok(Factor {
            scope,
            values: self.values.clone(),
        })
    }

    /// Eliminates `var` by maximisation instead of summation (the
    /// max-product operation of Viterbi-style decoding).
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::VariableNotInScope`] when absent.
    pub fn max_out(&self, var: Variable) -> Result<Factor, BayesError> {
        let pos = self
            .scope
            .iter()
            .position(|v| v.id() == var.id())
            .ok_or(BayesError::VariableNotInScope(var.id()))?;
        let new_scope: Vec<Variable> = self
            .scope
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != pos)
            .map(|(_, &v)| v)
            .collect();
        let size: usize = new_scope.iter().map(|v| v.cardinality()).product();
        let mut values = vec![f64::NEG_INFINITY; size.max(1)];
        let (out_stride, cards) = self.drop_position_strides(pos, &new_scope);
        let mut digits = vec![0usize; self.scope.len()];
        let mut oi = 0usize;
        for &x in &self.values {
            let slot = &mut values[oi];
            if x > *slot {
                *slot = x;
            }
            let mut p = cards.len();
            while p > 0 {
                p -= 1;
                digits[p] += 1;
                oi += out_stride[p];
                if digits[p] < cards[p] {
                    break;
                }
                digits[p] = 0;
                oi -= out_stride[p] * cards[p];
            }
        }
        Ok(Factor {
            scope: new_scope,
            values,
        })
    }

    /// Sum of all entries.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Normalises the factor to sum to 1.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::ZeroProbabilityEvidence`] when the factor is
    /// all zero.
    pub fn normalized(&self) -> Result<Factor, BayesError> {
        let z = self.total();
        if z <= 0.0 {
            return Err(BayesError::ZeroProbabilityEvidence);
        }
        Ok(Factor {
            scope: self.scope.clone(),
            values: self.values.iter().map(|&x| x / z).collect(),
        })
    }

    /// The joint assignment with the highest value (ties to the lowest
    /// index) and that value.
    pub fn argmax(&self) -> (Vec<usize>, f64) {
        let (best, &val) =
            self.values
                .iter()
                .enumerate()
                .fold(
                    (0, &self.values[0]),
                    |(bi, bv), (i, v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    },
                );
        (index_to_assignment(&self.scope, best), val)
    }

    /// Marginal distribution of a single variable (normalised).
    ///
    /// # Errors
    ///
    /// Propagates scope and normalisation errors.
    pub fn marginal(&self, var: Variable) -> Result<Vec<f64>, BayesError> {
        let mut f = self.clone();
        let others: Vec<Variable> = self
            .scope
            .iter()
            .copied()
            .filter(|v| v.id() != var.id())
            .collect();
        if !self.contains(var) {
            return Err(BayesError::VariableNotInScope(var.id()));
        }
        for v in others {
            f = f.sum_out(v)?;
        }
        Ok(f.normalized()?.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars() -> (Variable, Variable, Variable) {
        (
            Variable::new(0, 2),
            Variable::new(1, 3),
            Variable::new(2, 2),
        )
    }

    #[test]
    fn new_validates_size() {
        let (a, b, _) = vars();
        assert!(Factor::new(vec![a, b], vec![0.0; 5]).is_err());
        assert!(Factor::new(vec![a, b], vec![0.0; 6]).is_ok());
    }

    #[test]
    fn new_rejects_negative_and_nan() {
        let (a, _, _) = vars();
        assert!(Factor::new(vec![a], vec![-0.1, 1.1]).is_err());
        assert!(Factor::new(vec![a], vec![f64::NAN, 0.5]).is_err());
    }

    #[test]
    fn new_rejects_duplicate_variable() {
        let a = Variable::new(0, 2);
        let a2 = Variable::new(0, 2);
        assert!(Factor::new(vec![a, a2], vec![0.0; 4]).is_err());
    }

    #[test]
    fn product_of_independent_factors() {
        let (a, b, _) = vars();
        let fa = Factor::new(vec![a], vec![0.3, 0.7]).unwrap();
        let fb = Factor::new(vec![b], vec![0.2, 0.3, 0.5]).unwrap();
        let p = fa.product(&fb).unwrap();
        assert_eq!(p.scope().len(), 2);
        assert!((p.value_at(&[(a, 1), (b, 2)]).unwrap() - 0.35).abs() < 1e-12);
        assert!((p.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn product_with_shared_variable() {
        let (a, b, _) = vars();
        let f1 = Factor::new(vec![a, b], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let f2 = Factor::new(vec![b], vec![10.0, 0.0, 1.0]).unwrap();
        let p = f1.product(&f2).unwrap();
        assert_eq!(p.scope().len(), 2);
        assert_eq!(p.value_at(&[(a, 0), (b, 0)]).unwrap(), 10.0);
        assert_eq!(p.value_at(&[(a, 0), (b, 1)]).unwrap(), 0.0);
        assert_eq!(p.value_at(&[(a, 1), (b, 2)]).unwrap(), 6.0);
    }

    #[test]
    fn product_is_commutative_up_to_scope_order() {
        let (a, b, c) = vars();
        let f1 = Factor::new(vec![a, b], (1..=6).map(|x| x as f64).collect()).unwrap();
        let f2 = Factor::new(vec![b, c], (1..=6).map(|x| x as f64 / 10.0).collect()).unwrap();
        let p12 = f1.product(&f2).unwrap();
        let p21 = f2.product(&f1).unwrap();
        for s_a in 0..2 {
            for s_b in 0..3 {
                for s_c in 0..2 {
                    let asn = [(a, s_a), (b, s_b), (c, s_c)];
                    assert!(
                        (p12.value_at(&asn).unwrap() - p21.value_at(&asn).unwrap()).abs() < 1e-12
                    );
                }
            }
        }
    }

    #[test]
    fn product_rejects_cardinality_conflict() {
        let a = Variable::new(0, 2);
        let a3 = Variable::new(0, 3);
        let f1 = Factor::new(vec![a], vec![0.5, 0.5]).unwrap();
        let f2 = Factor::new(vec![a3], vec![0.2, 0.3, 0.5]).unwrap();
        assert!(matches!(
            f1.product(&f2),
            Err(BayesError::CardinalityMismatch { .. })
        ));
    }

    #[test]
    fn sum_out_collapses_correctly() {
        let (a, b, _) = vars();
        let f = Factor::new(vec![a, b], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let fb = f.sum_out(a).unwrap();
        assert_eq!(fb.scope(), &[b]);
        assert_eq!(fb.values(), &[5.0, 7.0, 9.0]);
        let fa = f.sum_out(b).unwrap();
        assert_eq!(fa.values(), &[6.0, 15.0]);
    }

    #[test]
    fn sum_out_to_empty_scope() {
        let (a, _, _) = vars();
        let f = Factor::new(vec![a], vec![0.4, 0.6]).unwrap();
        let s = f.sum_out(a).unwrap();
        assert!(s.scope().is_empty());
        assert!((s.values()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reduce_selects_slice() {
        let (a, b, _) = vars();
        let f = Factor::new(vec![a, b], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let r = f.reduce(b, 1).unwrap();
        assert_eq!(r.scope(), &[a]);
        assert_eq!(r.values(), &[2.0, 5.0]);
        let r2 = f.reduce(a, 0).unwrap();
        assert_eq!(r2.values(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn reduce_then_sum_equals_sum_of_slice() {
        let (a, b, c) = vars();
        let vals: Vec<f64> = (1..=12).map(|x| x as f64).collect();
        let f = Factor::new(vec![a, b, c], vals).unwrap();
        let r = f.reduce(b, 2).unwrap().sum_out(c).unwrap();
        // Slice b=2: entries for (a,c) = (0,0):5 (0,1):6 (1,0):11 (1,1):12
        assert_eq!(r.values(), &[11.0, 23.0]);
    }

    #[test]
    fn rename_preserves_table() {
        let (a, b, _) = vars();
        let f = Factor::new(vec![a], vec![0.25, 0.75]).unwrap();
        let g = f.rename(a, Variable::new(9, 2)).unwrap();
        assert_eq!(g.values(), f.values());
        assert_eq!(g.scope()[0].id(), 9);
        assert!(f.rename(b, a).is_err());
        assert!(f.rename(a, Variable::new(9, 3)).is_err());
    }

    #[test]
    fn normalize_and_zero_rejection() {
        let (a, _, _) = vars();
        let f = Factor::new(vec![a], vec![2.0, 6.0]).unwrap();
        let n = f.normalized().unwrap();
        assert_eq!(n.values(), &[0.25, 0.75]);
        let z = Factor::new(vec![a], vec![0.0, 0.0]).unwrap();
        assert!(matches!(
            z.normalized(),
            Err(BayesError::ZeroProbabilityEvidence)
        ));
    }

    #[test]
    fn argmax_finds_mode() {
        let (a, b, _) = vars();
        let f = Factor::new(vec![a, b], vec![1.0, 2.0, 9.0, 4.0, 5.0, 6.0]).unwrap();
        let (asn, val) = f.argmax();
        assert_eq!(asn, vec![0, 2]);
        assert_eq!(val, 9.0);
    }

    #[test]
    fn max_out_takes_maxima() {
        let (a, b, _) = vars();
        let f = Factor::new(vec![a, b], vec![1.0, 7.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let mb = f.max_out(a).unwrap();
        assert_eq!(mb.scope(), &[b]);
        assert_eq!(mb.values(), &[4.0, 7.0, 6.0]);
        let ma = f.max_out(b).unwrap();
        assert_eq!(ma.values(), &[7.0, 6.0]);
        assert!(f.max_out(Variable::new(9, 2)).is_err());
    }

    #[test]
    fn max_out_to_empty_scope_gives_global_max() {
        let (a, _, _) = vars();
        let f = Factor::new(vec![a], vec![0.2, 0.9]).unwrap();
        let m = f.max_out(a).unwrap();
        assert!(m.scope().is_empty());
        assert_eq!(m.values(), &[0.9]);
    }

    #[test]
    fn marginal_of_joint() {
        let (a, b, _) = vars();
        let f = Factor::new(vec![a, b], vec![0.1, 0.1, 0.2, 0.2, 0.2, 0.2]).unwrap();
        let ma = f.marginal(a).unwrap();
        assert!((ma[0] - 0.4).abs() < 1e-12);
        assert!((ma[1] - 0.6).abs() < 1e-12);
        assert!(f.marginal(Variable::new(5, 2)).is_err());
    }

    #[test]
    fn indicator_and_uniform() {
        let (a, _, _) = vars();
        let i = Factor::indicator(a, 1).unwrap();
        assert_eq!(i.values(), &[0.0, 1.0]);
        assert!(Factor::indicator(a, 2).is_err());
        let u = Factor::uniform(a);
        assert_eq!(u.values(), &[0.5, 0.5]);
        let unit = Factor::unit();
        assert_eq!(unit.values(), &[1.0]);
        assert!(unit.scope().is_empty());
    }
}
