//! Property-based tests of thinning, graph clean-up and feature
//! encoding on randomly generated blobs.

use proptest::prelude::*;
use slj_imaging::binary::BinaryImage;
use slj_imaging::draw;
use slj_imaging::morphology::Connectivity;
use slj_imaging::region::connected_components;
use slj_skeleton::features::area_of;
use slj_skeleton::graph::SkeletonGraph;
use slj_skeleton::pipeline::{SkeletonConfig, SkeletonPipeline};
use slj_skeleton::prune::{prune_branches, short_branch_count};
use slj_skeleton::spanning::cut_loops;
use slj_skeleton::thinning::zhang_suen;

/// Strategy: a blob built from 1..=4 random capsules and disks on a
/// 48x48 canvas — connected shapes with limbs, like silhouettes.
fn blob_strategy() -> impl Strategy<Value = BinaryImage> {
    proptest::collection::vec((4.0f64..44.0, 4.0f64..44.0, 2.0f64..5.0), 1..=4).prop_map(|shapes| {
        let mut mask = BinaryImage::new(48, 48);
        let mut prev: Option<(f64, f64)> = None;
        for (x, y, r) in shapes {
            draw::fill_disk(&mut mask, x, y, r + 1.0);
            // Connect to the previous shape so the blob stays one
            // component.
            if let Some((px, py)) = prev {
                draw::fill_capsule(&mut mask, px, py, x, y, r);
            }
            prev = Some((x, y));
        }
        mask
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The skeleton is always a subset of the input.
    #[test]
    fn thinning_is_anti_extensive(mask in blob_strategy()) {
        let skel = zhang_suen(&mask);
        prop_assert_eq!(&skel.and(&mask).unwrap(), &skel);
    }

    /// Thinning is idempotent.
    #[test]
    fn thinning_is_idempotent(mask in blob_strategy()) {
        let once = zhang_suen(&mask);
        prop_assert_eq!(&zhang_suen(&once), &once);
    }

    /// Thinning never splits a component (the "break-line problem" the
    /// paper credits Z-S with avoiding) and never invents one. Very
    /// small blobs (e.g. 2x2 squares) may vanish entirely — a known
    /// Zhang-Suen behaviour — but any sizeable component keeps exactly
    /// one connected skeleton.
    #[test]
    fn thinning_never_splits_components(mask in blob_strategy()) {
        let skel = zhang_suen(&mask);
        let before = connected_components(&mask, Connectivity::Eight);
        let after = connected_components(&skel, Connectivity::Eight).len();
        prop_assert!(after <= before.len(), "components appeared from nowhere");
        for comp in &before {
            let comp_mask = comp.to_mask(mask.width(), mask.height());
            let within = skel.and(&comp_mask).unwrap();
            let pieces = connected_components(&within, Connectivity::Eight).len();
            // Note: components may vanish entirely — the classical
            // parallel Zhang-Suen erodes certain even-diameter convex
            // shapes down to a 2x2 block and then deletes it (see the
            // `even_diameter_disk_can_vanish` unit test) — but a
            // component must never split into several pieces.
            prop_assert!(
                pieces <= 1,
                "component of {} px split into {pieces} skeleton pieces",
                comp.area
            );
        }
    }

    /// Thinning is (almost) unit width: Zhang-Suen can leave isolated
    /// 2x2 blocks at diagonal crossings, but they must stay rare.
    #[test]
    fn thinning_is_mostly_unit_width(mask in blob_strategy()) {
        let skel = zhang_suen(&mask);
        let (w, h) = skel.dimensions();
        let mut blocks = 0usize;
        for y in 0..h - 1 {
            for x in 0..w - 1 {
                if skel.get(x, y)
                    && skel.get(x + 1, y)
                    && skel.get(x, y + 1)
                    && skel.get(x + 1, y + 1)
                {
                    blocks += 1;
                }
            }
        }
        let total = skel.count_ones().max(1);
        prop_assert!(
            blocks <= 2 + total / 25,
            "{blocks} solid 2x2 blocks in a {total}-pixel skeleton"
        );
    }

    /// Loop cutting always leaves a forest and never splits components.
    #[test]
    fn cut_loops_leaves_forest(mask in blob_strategy()) {
        let skel = zhang_suen(&mask);
        let mut g = SkeletonGraph::from_mask(&skel);
        let comps_before = g.component_count();
        cut_loops(&mut g);
        prop_assert_eq!(g.cycle_rank(), 0);
        prop_assert!(g.component_count() >= comps_before);
        // Cutting removes single pixels; it cannot *merge* components,
        // and splitting an edge keeps both halves attached.
        prop_assert_eq!(g.component_count(), comps_before);
    }

    /// After pruning there is no branch below the threshold.
    #[test]
    fn pruning_reaches_fixpoint(mask in blob_strategy(), min_len in 3usize..12) {
        let skel = zhang_suen(&mask);
        let mut g = SkeletonGraph::from_mask(&skel);
        cut_loops(&mut g);
        prune_branches(&mut g, min_len);
        prop_assert_eq!(short_branch_count(&g, min_len), 0);
    }

    /// The graph's mask rendering preserves every non-junction skeleton
    /// pixel. Junction pixels may be re-located (adjacent-junction
    /// clusters collapse to their centroid — the paper's §3 removal
    /// step), so only they are exempt.
    #[test]
    fn graph_round_trip_is_conservative(mask in blob_strategy()) {
        use slj_skeleton::graph::PixelGraph;
        let skel = zhang_suen(&mask);
        let pg = PixelGraph::from_mask(&skel);
        let g = SkeletonGraph::from_mask(&skel);
        let rendered = g.to_mask();
        for i in 0..pg.len() {
            if pg.degree(i) < 3 {
                let (x, y) = pg.position(i);
                prop_assert!(
                    rendered.get(x, y),
                    "non-junction skeleton pixel ({x},{y}) lost"
                );
            }
        }
        // Additions are at most one centroid pixel per merged cluster.
        let extra = rendered
            .iter_ones()
            .filter(|&(x, y)| !skel.get(x, y))
            .count();
        prop_assert!(
            extra <= g.merged_cluster_count(),
            "{extra} extra pixels but only {} merged clusters",
            g.merged_cluster_count()
        );
    }

    /// The full pipeline never panics and key points stay in bounds.
    #[test]
    fn pipeline_total_on_random_blobs(mask in blob_strategy()) {
        let result = SkeletonPipeline::new(SkeletonConfig::default()).run(&mask);
        let (w, h) = mask.dimensions();
        for p in [
            result.keypoints.head,
            result.keypoints.chest,
            result.keypoints.hand,
            result.keypoints.knee,
            result.keypoints.foot,
            result.keypoints.waist,
        ]
        .into_iter()
        .flatten()
        {
            prop_assert!(p.0 >= 0.0 && p.0 < w as f64);
            prop_assert!(p.1 >= 0.0 && p.1 < h as f64);
        }
    }

    /// Area encoding is total, bounded and scale-invariant.
    #[test]
    fn area_of_properties(
        dx in -100.0f64..100.0,
        dy in -100.0f64..100.0,
        n in 1usize..24,
        scale in 0.01f64..50.0,
    ) {
        let a = area_of(dx, dy, n);
        prop_assert!((a as usize) < n);
        prop_assert_eq!(a, area_of(dx * scale, dy * scale, n));
    }

    /// Rotating a displacement by one sector advances the area by one
    /// (mod n) for non-degenerate displacements.
    #[test]
    fn area_of_rotation(angle_deg in 0.0f64..360.0, n in 2usize..16) {
        let step = std::f64::consts::TAU / n as f64;
        let a0 = angle_deg.to_radians();
        // Keep away from sector boundaries to avoid FP edge flips.
        let frac = (a0 / step).fract();
        prop_assume!(frac > 0.05 && frac < 0.95);
        let p0 = (a0.cos(), -a0.sin());
        let p1 = ((a0 + step).cos(), -(a0 + step).sin());
        let s0 = area_of(p0.0, p0.1, n) as usize;
        let s1 = area_of(p1.0, p1.1, n) as usize;
        prop_assert_eq!((s0 + 1) % n, s1);
    }
}
