//! Loop cutting via a maximum spanning tree (Section 3, Figure 3).
//!
//! Thinning can leave loops (e.g. where an arm touches the torso). The
//! paper removes them by growing a **maximum** spanning tree over the
//! skeleton graph — maximum rather than minimum length so that, after the
//! adjacent-junction removal of the previous step, the surviving junction
//! vertex stays connected to all of its neighbours through the longest
//! segments. Every edge excluded from the tree closes a cycle and is cut
//! at a single pixel (the green dot of Figure 3(b)), not deleted wholesale.

use crate::graph::SkeletonGraph;

/// Statistics from a loop-cut pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoopCutReport {
    /// Number of cycles that were cut.
    pub loops_cut: usize,
    /// Number of cut edges that were self-loops.
    pub self_loops_cut: usize,
}

/// Simple union-find over node IDs.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }
}

/// Cuts every loop in the graph by keeping a maximum spanning tree
/// (Kruskal over pixel lengths, descending) and splitting each excluded
/// edge at its midpoint.
///
/// After this pass [`SkeletonGraph::cycle_rank`] is zero.
///
/// # Examples
///
/// ```
/// use slj_imaging::binary::BinaryImage;
/// use slj_skeleton::graph::SkeletonGraph;
/// use slj_skeleton::spanning::cut_loops;
///
/// let ring = BinaryImage::from_ascii(
///     ".###.\n\
///      .#.#.\n\
///      .###.\n",
/// );
/// let mut graph = SkeletonGraph::from_mask(&ring);
/// assert_eq!(graph.cycle_rank(), 1);
/// let report = cut_loops(&mut graph);
/// assert_eq!(report.loops_cut, 1);
/// assert_eq!(graph.cycle_rank(), 0);
/// ```
pub fn cut_loops(g: &mut SkeletonGraph) -> LoopCutReport {
    let mut report = LoopCutReport::default();
    // Snapshot the live edges; splitting appends new acyclic edges that
    // must not be revisited.
    let mut edge_ids: Vec<usize> = g.edge_ids().collect();
    // Maximum spanning tree: longest edges first; ties by ID for
    // determinism.
    edge_ids.sort_by_key(|&e| (std::cmp::Reverse(g.edge(e).len()), e));
    let max_node = g.node_ids().max().map_or(0, |v| v + 1);
    let mut uf = UnionFind::new(max_node);
    for e in edge_ids {
        let (a, b) = {
            let edge = g.edge(e);
            (edge.a, edge.b)
        };
        if a == b {
            // A self-loop is always a cycle.
            g.split_edge_at_midpoint(e);
            report.loops_cut += 1;
            report.self_loops_cut += 1;
            continue;
        }
        if !uf.union(a, b) {
            // Joining two already-connected nodes would close a cycle:
            // this edge is excluded from the maximum spanning tree.
            g.split_edge_at_midpoint(e);
            report.loops_cut += 1;
        }
    }
    debug_assert_eq!(g.cycle_rank(), 0, "loop cutting must leave a forest");
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_imaging::binary::BinaryImage;

    #[test]
    fn acyclic_graph_is_untouched() {
        let mask = BinaryImage::from_ascii(
            "...#...\n\
             ...#...\n\
             #######\n\
             ...#...\n",
        );
        let mut g = SkeletonGraph::from_mask(&mask);
        let edges_before = g.edge_ids().count();
        let report = cut_loops(&mut g);
        assert_eq!(report.loops_cut, 0);
        assert_eq!(g.edge_ids().count(), edges_before);
    }

    #[test]
    fn lollipop_keeps_tail_connected() {
        let mask = BinaryImage::from_ascii(
            ".###....\n\
             .#.#....\n\
             .#######\n",
        );
        let mut g = SkeletonGraph::from_mask(&mask);
        let report = cut_loops(&mut g);
        assert_eq!(report.loops_cut, 1);
        assert_eq!(report.self_loops_cut, 1);
        assert_eq!(g.cycle_rank(), 0);
        // The whole structure stays one component (cut, not deleted).
        assert_eq!(g.component_count(), 1);
    }

    #[test]
    fn theta_graph_cuts_shortest_parallel_path() {
        // Two nodes joined by three parallel paths of different lengths:
        // the maximum spanning tree keeps the two longest, so the
        // shortest path is the one cut.
        let mask = BinaryImage::from_ascii(
            ".#####.\n\
             .#...#.\n\
             .#####.\n\
             .#...#.\n\
             .#####.\n",
        );
        let mut g = SkeletonGraph::from_mask(&mask);
        assert_eq!(g.cycle_rank(), 2);
        let report = cut_loops(&mut g);
        assert_eq!(report.loops_cut, 2);
        assert_eq!(g.cycle_rank(), 0);
        assert_eq!(g.component_count(), 1);
        // The middle bar (the shortest path, y = 2) must have been cut:
        // its midpoint pixel is gone.
        let mask_after = g.to_mask();
        assert!(
            !mask_after.get(3, 2),
            "middle bar should be cut at its midpoint"
        );
    }

    #[test]
    fn nested_loops_all_cut() {
        // A figure-eight: two rings sharing a junction.
        let mask = BinaryImage::from_ascii(
            ".###.###.\n\
             .#..#..#.\n\
             .###.###.\n",
        );
        let mut g = SkeletonGraph::from_mask(&mask);
        let rank = g.cycle_rank();
        assert!(rank >= 2, "figure eight should have two cycles, got {rank}");
        let report = cut_loops(&mut g);
        assert_eq!(report.loops_cut, rank);
        assert_eq!(g.cycle_rank(), 0);
    }

    #[test]
    fn disconnected_components_handled_independently() {
        let mask = BinaryImage::from_ascii(
            ".###.......\n\
             .#.#..####.\n\
             .###.......\n",
        );
        let mut g = SkeletonGraph::from_mask(&mask);
        let report = cut_loops(&mut g);
        assert_eq!(report.loops_cut, 1);
        assert_eq!(g.cycle_rank(), 0);
        assert_eq!(g.component_count(), 2);
    }

    #[test]
    fn cut_is_single_pixel() {
        let mask = BinaryImage::from_ascii(
            ".#####.\n\
             .#...#.\n\
             .#####.\n",
        );
        let mut g = SkeletonGraph::from_mask(&mask);
        let pixels_before = g.to_mask().count_ones();
        cut_loops(&mut g);
        let pixels_after = g.to_mask().count_ones();
        assert_eq!(pixels_before - pixels_after, 1, "exactly one pixel removed");
    }
}
