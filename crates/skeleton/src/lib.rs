//! Skeleton extraction and feature encoding (Sections 3–4 of the paper).
//!
//! The pipeline stage this crate implements turns a silhouette mask into
//! the feature vector the DBN classifies:
//!
//! 1. [`thinning`] — the Zhang-Suen (Z-S) thinning algorithm peels the
//!    silhouette down to a one-pixel-wide skeleton.
//! 2. [`graph`] — the thinning result is converted into a graph:
//!    a [`graph::PixelGraph`] over skeleton pixels, and from it a
//!    segment-level [`graph::SkeletonGraph`] whose nodes are endpoints and
//!    junction clusters and whose edges are pixel chains. Building the
//!    segment graph merges *adjacent junction vertices* (junction pixels
//!    with other junction pixels among their 8-neighbours) exactly as the
//!    paper's first clean-up step demands.
//! 3. [`spanning`] — loops left by thinning are cut by growing a
//!    **maximum** spanning tree over the segment graph and splitting every
//!    non-tree edge at its midpoint (the "green dot" of Figure 3(b)).
//! 4. [`prune`] — noisy branches shorter than 10 pixels are deleted one at
//!    a time, shortest first, so a genuine branch sharing a junction with
//!    a noisy one survives (Figure 4).
//! 5. [`keypoints`] — the lowest point becomes Foot, the highest endpoint
//!    Head, the Head→Foot path the torso whose midpoint is the waist, and
//!    Chest/Hand/Knee are located from the remaining structure.
//! 6. [`features`] — key points are encoded by which of the N areas of
//!    the waist-centred plane they fall in (N = 8 in the paper, Figure 6;
//!    generalised for the partition-count experiment E7).
//!
//! # Examples
//!
//! ```
//! use slj_imaging::binary::BinaryImage;
//! use slj_skeleton::pipeline::{SkeletonConfig, SkeletonPipeline};
//!
//! // A simple vertical bar thins to a vertical line.
//! let mut silhouette = BinaryImage::new(32, 32);
//! for y in 4..28 {
//!     for x in 12..20 {
//!         silhouette.set(x, y, true);
//!     }
//! }
//! let result = SkeletonPipeline::new(SkeletonConfig::default()).run(&silhouette);
//! assert!(result.skeleton.count_ones() > 10);
//! ```

// Grandfathered: this crate predates the unwrap_used/expect_used policy.
// Its findings are baselined in check-baseline.json (see `slj check`);
// new code should return SljError and shrink the ratchet instead.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod features;
pub mod graph;
pub mod keypoints;
pub mod pipeline;
pub mod prune;
pub mod spanning;
pub mod thinning;

pub use features::{area_of, BodyPart, FeatureCodec, FeatureVector};
pub use graph::{NodeKind, PixelGraph, SkeletonGraph};
pub use keypoints::{KeyPoints, KeypointExtractor};
pub use pipeline::{SkeletonConfig, SkeletonPipeline, SkeletonResult};
pub use thinning::zhang_suen;
