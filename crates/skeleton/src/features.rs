//! Area feature encoding (Section 4, Figure 6).
//!
//! With the waist as the origin, the plane is divided into N equal angular
//! areas (N = 8 in the paper) and each key point is encoded by the area it
//! falls in. The conclusion suggests "more partitions instead of just
//! eight" as future work, so the partition count is a parameter here
//! (Experiment E7 sweeps it).

use crate::keypoints::{KeyPoints, Point};
use std::fmt;

/// The five body parts carried by the feature vector, in canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BodyPart {
    /// The head key point.
    Head,
    /// The chest key point.
    Chest,
    /// The hand key point.
    Hand,
    /// The knee key point.
    Knee,
    /// The foot key point.
    Foot,
}

impl BodyPart {
    /// All body parts in canonical order.
    pub const ALL: [BodyPart; 5] = [
        BodyPart::Head,
        BodyPart::Chest,
        BodyPart::Hand,
        BodyPart::Knee,
        BodyPart::Foot,
    ];

    /// Canonical index (0..5).
    pub fn index(self) -> usize {
        match self {
            BodyPart::Head => 0,
            BodyPart::Chest => 1,
            BodyPart::Hand => 2,
            BodyPart::Knee => 3,
            BodyPart::Foot => 4,
        }
    }
}

impl fmt::Display for BodyPart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BodyPart::Head => "Head",
            BodyPart::Chest => "Chest",
            BodyPart::Hand => "Hand",
            BodyPart::Knee => "Knee",
            BodyPart::Foot => "Foot",
        };
        f.write_str(name)
    }
}

/// Returns the area index (`0..partitions`) of the displacement
/// `(dx, dy)` from the waist, in image coordinates (y grows downward).
///
/// Area 0 starts at the positive-x axis (the jumper's direction of travel
/// when filmed from their left side) and indices increase
/// counter-clockwise in *body* coordinates (i.e. upward first). A zero
/// displacement maps to area 0.
///
/// # Panics
///
/// Panics if `partitions` is zero.
///
/// # Examples
///
/// ```
/// use slj_skeleton::features::area_of;
///
/// // Eight areas: straight up (negative image y) is area 2.
/// assert_eq!(area_of(0.0, -1.0, 8), 2);
/// // Straight down is area 6.
/// assert_eq!(area_of(0.0, 1.0, 8), 6);
/// ```
pub fn area_of(dx: f64, dy: f64, partitions: usize) -> u8 {
    assert!(partitions > 0, "partitions must be non-zero");
    if dx == 0.0 && dy == 0.0 {
        return 0;
    }
    // Flip y so angles follow the usual mathematical convention.
    let mut angle = (-dy).atan2(dx);
    if angle < 0.0 {
        angle += std::f64::consts::TAU;
    }
    let sector = angle / (std::f64::consts::TAU / partitions as f64);
    // Guard against the angle == TAU edge case.
    (sector as usize).min(partitions - 1) as u8
}

/// The encoded feature vector: one area per body part, `None` for parts
/// the skeleton did not expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FeatureVector {
    areas: [Option<u8>; 5],
    partitions: u8,
}

impl FeatureVector {
    /// Area of `part`, or `None` when the part was absent.
    pub fn area(&self, part: BodyPart) -> Option<u8> {
        self.areas[part.index()]
    }

    /// Number of partitions this vector was encoded against.
    pub fn partitions(&self) -> u8 {
        self.partitions
    }

    /// Number of parts with a detected area.
    pub fn present_parts(&self) -> usize {
        self.areas.iter().filter(|a| a.is_some()).count()
    }

    /// Which areas are occupied by at least one key point — the observed
    /// evidence for the Area I..N nodes of the paper's Bayesian network.
    pub fn occupied_areas(&self) -> Vec<bool> {
        let mut occupied = vec![false; self.partitions as usize];
        for area in self.areas.into_iter().flatten() {
            occupied[area as usize] = true;
        }
        occupied
    }
}

impl fmt::Display for FeatureVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, part) in BodyPart::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match self.area(*part) {
                Some(a) => write!(f, "{part}:{a}")?,
                None => write!(f, "{part}:-")?,
            }
        }
        write!(f, "]")
    }
}

/// Encodes [`KeyPoints`] into a [`FeatureVector`] against a configurable
/// number of angular partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureCodec {
    partitions: u8,
}

impl Default for FeatureCodec {
    fn default() -> Self {
        FeatureCodec { partitions: 8 }
    }
}

impl FeatureCodec {
    /// Creates a codec with the given partition count.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn new(partitions: u8) -> Self {
        assert!(partitions > 0, "partitions must be non-zero");
        FeatureCodec { partitions }
    }

    /// The configured partition count.
    pub fn partitions(&self) -> u8 {
        self.partitions
    }

    /// Encodes the key points. Without a waist no areas can be assigned
    /// and every part is reported absent.
    pub fn encode(&self, kp: &KeyPoints) -> FeatureVector {
        let mut fv = FeatureVector {
            areas: [None; 5],
            partitions: self.partitions,
        };
        let Some(waist) = kp.waist else {
            return fv;
        };
        let encode_one = |p: Option<Point>| -> Option<u8> {
            p.map(|(x, y)| area_of(x - waist.0, y - waist.1, self.partitions as usize))
        };
        fv.areas[BodyPart::Head.index()] = encode_one(kp.head);
        fv.areas[BodyPart::Chest.index()] = encode_one(kp.chest);
        fv.areas[BodyPart::Hand.index()] = encode_one(kp.hand);
        fv.areas[BodyPart::Knee.index()] = encode_one(kp.knee);
        fv.areas[BodyPart::Foot.index()] = encode_one(kp.foot);
        fv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_area_compass() {
        // Image coordinates: y grows downward.
        assert_eq!(area_of(1.0, 0.0, 8), 0); // east
        assert_eq!(area_of(1.0, -1.0, 8), 1); // north-east
        assert_eq!(area_of(0.0, -1.0, 8), 2); // north
        assert_eq!(area_of(-1.0, -1.0, 8), 3); // north-west
        assert_eq!(area_of(-1.0, 0.0, 8), 4); // west
        assert_eq!(area_of(-1.0, 1.0, 8), 5); // south-west
        assert_eq!(area_of(0.0, 1.0, 8), 6); // south
        assert_eq!(area_of(1.0, 1.0, 8), 7); // south-east
    }

    #[test]
    fn area_is_scale_invariant() {
        for n in [4usize, 8, 12, 16] {
            assert_eq!(area_of(0.3, -0.7, n), area_of(30.0, -70.0, n));
        }
    }

    #[test]
    fn origin_maps_to_area_zero() {
        assert_eq!(area_of(0.0, 0.0, 8), 0);
    }

    #[test]
    fn all_areas_reachable() {
        for n in [4usize, 6, 8, 12, 16] {
            let mut seen = vec![false; n];
            for k in 0..n {
                let angle = (k as f64 + 0.5) * std::f64::consts::TAU / n as f64;
                let area = area_of(angle.cos(), -angle.sin(), n);
                seen[area as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "n={n}: not all areas hit");
        }
    }

    #[test]
    fn area_never_exceeds_partitions() {
        for i in 0..360 {
            let angle = i as f64 * std::f64::consts::TAU / 360.0;
            let a = area_of(angle.cos(), angle.sin(), 8) as usize;
            assert!(a < 8);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_partitions_panics() {
        area_of(1.0, 0.0, 0);
    }

    fn sample_keypoints() -> KeyPoints {
        KeyPoints {
            head: Some((10.0, 0.0)),
            chest: Some((10.0, 5.0)),
            hand: Some((18.0, 14.0)),
            knee: Some((10.0, 15.0)),
            foot: Some((10.0, 20.0)),
            waist: Some((10.0, 10.0)),
        }
    }

    #[test]
    fn encode_assigns_expected_areas() {
        let fv = FeatureCodec::default().encode(&sample_keypoints());
        assert_eq!(fv.area(BodyPart::Head), Some(2)); // straight up
        assert_eq!(fv.area(BodyPart::Chest), Some(2)); // up
        assert_eq!(fv.area(BodyPart::Foot), Some(6)); // straight down
        assert_eq!(fv.area(BodyPart::Knee), Some(6)); // down
        assert_eq!(fv.area(BodyPart::Hand), Some(7)); // forward-down
        assert_eq!(fv.present_parts(), 5);
    }

    #[test]
    fn encode_without_waist_is_all_absent() {
        let mut kp = sample_keypoints();
        kp.waist = None;
        let fv = FeatureCodec::default().encode(&kp);
        assert_eq!(fv.present_parts(), 0);
    }

    #[test]
    fn encode_missing_hand() {
        let mut kp = sample_keypoints();
        kp.hand = None;
        let fv = FeatureCodec::default().encode(&kp);
        assert_eq!(fv.area(BodyPart::Hand), None);
        assert_eq!(fv.present_parts(), 4);
    }

    #[test]
    fn occupied_areas_merges_parts() {
        let fv = FeatureCodec::default().encode(&sample_keypoints());
        let occ = fv.occupied_areas();
        assert_eq!(occ.len(), 8);
        assert!(occ[2] && occ[6] && occ[7]);
        assert_eq!(occ.iter().filter(|&&b| b).count(), 3);
    }

    #[test]
    fn partition_count_changes_granularity() {
        let kp = sample_keypoints();
        let coarse = FeatureCodec::new(4).encode(&kp);
        let fine = FeatureCodec::new(16).encode(&kp);
        assert_eq!(coarse.partitions(), 4);
        assert_eq!(fine.partitions(), 16);
        assert_eq!(coarse.occupied_areas().len(), 4);
        assert_eq!(fine.occupied_areas().len(), 16);
    }

    #[test]
    fn display_format() {
        let fv = FeatureCodec::default().encode(&sample_keypoints());
        let s = fv.to_string();
        assert!(s.contains("Head:2"));
        assert!(s.contains("Hand:7"));
        let mut kp = sample_keypoints();
        kp.hand = None;
        let s2 = FeatureCodec::default().encode(&kp).to_string();
        assert!(s2.contains("Hand:-"));
    }
}
