//! Key-point extraction from the cleaned skeleton (Section 4).
//!
//! The paper anchors the body parts on the skeleton as follows: the lowest
//! point is always the Foot ("no matter what pose it is Foot is always the
//! lowest point"), the path from Head to Foot is the torso, and the waist
//! sits at the middle of the torso. The remaining parts are placed from
//! the skeleton structure: Chest on the upper torso, Knee on the lower
//! torso, and Hand at the most protruding remaining branch tip.

use crate::graph::{NodeKind, SkeletonGraph};

/// A 2-D point in image coordinates (x right, y down).
pub type Point = (f64, f64);

/// The five body-part key points plus the waist origin.
///
/// Any part the skeleton does not expose (e.g. a hand folded against the
/// body never produces its own branch) is `None`; the feature encoding
/// treats that as an explicit *absent* state.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KeyPoints {
    /// Top of the skeleton (highest end vertex).
    pub head: Option<Point>,
    /// Upper-torso point (first quartile of the Head→Foot path).
    pub chest: Option<Point>,
    /// Tip of the most protruding non-torso branch.
    pub hand: Option<Point>,
    /// Lower-torso point (third quartile of the Head→Foot path).
    pub knee: Option<Point>,
    /// Lowest skeleton point.
    pub foot: Option<Point>,
    /// Waist — midpoint of the torso path; the origin of the area
    /// encoding (Figure 6).
    pub waist: Option<Point>,
}

impl KeyPoints {
    /// Number of detected (non-`None`) body parts, excluding the waist.
    pub fn detected_parts(&self) -> usize {
        [self.head, self.chest, self.hand, self.knee, self.foot]
            .iter()
            .filter(|p| p.is_some())
            .count()
    }
}

/// Extracts [`KeyPoints`] from a cleaned [`SkeletonGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KeypointExtractor {
    _private: (),
}

impl KeypointExtractor {
    /// Creates an extractor with the paper's conventions.
    pub fn new() -> Self {
        KeypointExtractor::default()
    }

    /// Runs key-point extraction.
    ///
    /// Returns an all-`None` [`KeyPoints`] when the graph is empty; when
    /// head and foot live in different components (a torn skeleton), only
    /// foot/head are filled.
    pub fn extract(&self, graph: &SkeletonGraph) -> KeyPoints {
        let mut kp = KeyPoints::default();
        let nodes: Vec<usize> = graph.node_ids().collect();
        if nodes.is_empty() {
            return kp;
        }

        // Foot: the lowest node (max y, then min x for determinism).
        // Coordinates come from usize pixel indices, so `total_cmp` and
        // `partial_cmp` agree — but `total_cmp` needs no unwrap.
        let Some(foot_node) = nodes.iter().copied().max_by(|&a, &b| {
            let pa = graph.node(a).pos;
            let pb = graph.node(b).pos;
            pa.1.total_cmp(&pb.1).then(pb.0.total_cmp(&pa.0))
        }) else {
            return kp;
        };
        kp.foot = Some(graph.node(foot_node).pos);

        // Head: the highest end vertex; fall back to the highest node of
        // any kind when the skeleton has no end vertices (e.g. one ring).
        let head_node = nodes
            .iter()
            .copied()
            .filter(|&v| graph.kind(v) == NodeKind::End && v != foot_node)
            .min_by(|&a, &b| {
                let pa = graph.node(a).pos;
                let pb = graph.node(b).pos;
                pa.1.total_cmp(&pb.1).then(pa.0.total_cmp(&pb.0))
            })
            .or_else(|| {
                nodes
                    .iter()
                    .copied()
                    .filter(|&v| v != foot_node)
                    .min_by(|&a, &b| {
                        let pa = graph.node(a).pos;
                        let pb = graph.node(b).pos;
                        pa.1.total_cmp(&pb.1).then(pa.0.total_cmp(&pb.0))
                    })
            });
        let Some(head_node) = head_node else {
            // Single-node skeleton: foot only.
            return kp;
        };
        kp.head = Some(graph.node(head_node).pos);

        // Torso: the Head→Foot pixel path; waist at its middle, chest and
        // knee at the quartiles.
        if let Some(torso) = graph.pixel_path(head_node, foot_node) {
            if !torso.is_empty() {
                let at = |frac: f64| -> Point {
                    let idx = ((torso.len() - 1) as f64 * frac).round() as usize;
                    let (x, y) = torso[idx];
                    (x as f64, y as f64)
                };
                kp.waist = Some(at(0.5));
                kp.chest = Some(at(0.25));
                kp.knee = Some(at(0.75));
            }
        }

        // Hand: among the remaining end vertices, the tip farthest from
        // the waist (protruding limbs swing away from the body's centre).
        // The second leg also produces a spare end vertex, so candidates
        // must sit above the waist–foot midpoint — an arm tip does, a
        // foot tip does not.
        if let (Some(waist), Some(foot)) = (kp.waist, kp.foot) {
            let y_cutoff = (waist.1 + foot.1) / 2.0;
            let candidates: Vec<usize> = nodes
                .iter()
                .copied()
                .filter(|&v| v != head_node && v != foot_node && graph.kind(v) == NodeKind::End)
                .collect();
            let farthest = |vs: &[usize]| -> Option<(f64, f64)> {
                vs.iter()
                    .copied()
                    .max_by(|&a, &b| {
                        let da = dist2(graph.node(a).pos, waist);
                        let db = dist2(graph.node(b).pos, waist);
                        da.total_cmp(&db)
                    })
                    .map(|v| graph.node(v).pos)
            };
            let upper: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&v| graph.node(v).pos.1 < y_cutoff)
                .collect();
            // Prefer a tip above the waist–foot midpoint (an arm);
            // otherwise take whatever protrudes the most (the paper's
            // assignment is equally heuristic: "we try to assign body
            // parts to other key points").
            kp.hand = farthest(&upper).or_else(|| farthest(&candidates));
        }
        kp
    }
}

fn dist2(a: Point, b: Point) -> f64 {
    let (dx, dy) = (a.0 - b.0, a.1 - b.1);
    dx * dx + dy * dy
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_imaging::binary::BinaryImage;

    fn extract(mask: &BinaryImage) -> KeyPoints {
        KeypointExtractor::new().extract(&SkeletonGraph::from_mask(mask))
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let kp = extract(&BinaryImage::new(8, 8));
        assert_eq!(kp.detected_parts(), 0);
        assert!(kp.waist.is_none());
    }

    #[test]
    fn vertical_line_head_top_foot_bottom() {
        let mut mask = BinaryImage::new(5, 21);
        for y in 0..21 {
            mask.set(2, y, true);
        }
        let kp = extract(&mask);
        assert_eq!(kp.head, Some((2.0, 0.0)));
        assert_eq!(kp.foot, Some((2.0, 20.0)));
        assert_eq!(kp.waist, Some((2.0, 10.0)));
        assert_eq!(kp.chest, Some((2.0, 5.0)));
        assert_eq!(kp.knee, Some((2.0, 15.0)));
        assert!(kp.hand.is_none(), "a bare line has no hand branch");
    }

    #[test]
    fn stick_figure_with_arm() {
        // Vertical torso with a horizontal arm branching at 1/3 height.
        let mut mask = BinaryImage::new(24, 30);
        for y in 0..30 {
            mask.set(4, y, true);
        }
        for x in 5..20 {
            mask.set(x, 10, true);
        }
        let kp = extract(&mask);
        assert_eq!(kp.head, Some((4.0, 0.0)));
        assert_eq!(kp.foot, Some((4.0, 29.0)));
        let hand = kp.hand.expect("arm tip should be the hand");
        assert_eq!(hand, (19.0, 10.0));
        let waist = kp.waist.unwrap();
        assert_eq!(waist.0, 4.0);
        assert!(
            (waist.1 - 14.0).abs() <= 1.5,
            "waist near torso middle: {waist:?}"
        );
    }

    #[test]
    fn waist_is_midpoint_of_torso_path() {
        // L-shaped skeleton: the torso path bends, and the waist must be
        // at half the *path length*, not half the bounding box.
        let mut mask = BinaryImage::new(30, 30);
        for y in 0..20 {
            mask.set(3, y, true);
        }
        for x in 3..23 {
            mask.set(x, 19, true);
        }
        let kp = extract(&mask);
        assert_eq!(kp.head, Some((3.0, 0.0)));
        assert_eq!(kp.foot, Some((22.0, 19.0)));
        let waist = kp.waist.unwrap();
        // Path length 39, midpoint index 19 → (3,19) the corner.
        assert_eq!(waist, (3.0, 19.0));
    }

    #[test]
    fn single_pixel_is_foot_only() {
        let mut mask = BinaryImage::new(5, 5);
        mask.set(2, 2, true);
        let kp = extract(&mask);
        assert_eq!(kp.foot, Some((2.0, 2.0)));
        assert!(kp.head.is_none());
        assert_eq!(kp.detected_parts(), 1);
    }

    #[test]
    fn hand_prefers_most_protruding_branch() {
        // Two side branches: a short stub and a long arm; the hand is the
        // farther tip.
        let mut mask = BinaryImage::new(40, 40);
        for y in 0..36 {
            mask.set(6, y, true);
        }
        for x in 7..12 {
            mask.set(x, 8, true); // short stub
        }
        for x in 7..30 {
            mask.set(x, 20, true); // long arm
        }
        let kp = extract(&mask);
        assert_eq!(kp.hand, Some((29.0, 20.0)));
    }

    #[test]
    fn disconnected_fragment_ignored_for_torso() {
        // Main body plus a distant speck; foot/head still resolve on the
        // nodes, and if they land in different components the torso is
        // absent.
        let mut mask = BinaryImage::new(30, 30);
        for y in 0..10 {
            mask.set(3, y, true);
        }
        mask.set(25, 29, true); // speck is the lowest point
        let kp = extract(&mask);
        assert_eq!(kp.foot, Some((25.0, 29.0)));
        assert_eq!(kp.head, Some((3.0, 0.0)));
        assert!(kp.waist.is_none(), "no torso across components");
    }

    #[test]
    fn hand_prefers_upper_tip_over_second_foot() {
        // Torso with an arm branch and a split second leg: the arm tip
        // (above the waist-foot midpoint) must win even when the spare
        // foot tip is farther from the waist.
        let mut mask = BinaryImage::new(48, 48);
        for y in 2..30 {
            mask.set(20, y, true); // torso
        }
        for x in 21..34 {
            mask.set(x, 10, true); // arm, tip at (33, 10)
        }
        for i in 0..16 {
            mask.set(20 - i / 2, 30 + i, true); // front leg to (12, 45)
            mask.set(20 + i, 30 + i, true); // splayed back leg to (35, 45)
        }
        let kp = extract(&mask);
        let hand = kp.hand.expect("hand found");
        assert!(hand.1 < 20.0, "hand should be the arm tip, got {hand:?}");
    }

    #[test]
    fn hand_falls_back_to_spare_low_tip_when_arms_merged() {
        // No arm branch at all, but two leg tips: the spare (non-foot)
        // leg tip is the only protruding point left for "hand".
        let mut mask = BinaryImage::new(48, 48);
        for y in 2..30 {
            mask.set(20, y, true);
        }
        for i in 0..16 {
            mask.set(20 - i / 2, 30 + i, true);
            mask.set(20 + i, 30 + i, true);
        }
        let kp = extract(&mask);
        assert!(kp.hand.is_some(), "fallback should fill the hand slot");
        let hand = kp.hand.unwrap();
        assert!(hand.1 > 30.0, "fallback tip is a leg tip: {hand:?}");
        assert_ne!(Some(hand), kp.foot, "hand is not the chosen foot");
    }

    #[test]
    fn detected_parts_counts() {
        let mut mask = BinaryImage::new(5, 21);
        for y in 0..21 {
            mask.set(2, y, true);
        }
        let kp = extract(&mask);
        // head, chest, knee, foot (no hand).
        assert_eq!(kp.detected_parts(), 4);
    }
}
