//! Zhang-Suen thinning (the "Z-S algorithm" of Section 3).
//!
//! The algorithm peels the silhouette from alternating sides in two
//! sub-iterations per pass until nothing changes, leaving a skeleton that
//! is (mostly) one pixel wide. It is fast and avoids the break-line
//! problem, which is why the paper picks it over the authors' earlier
//! genetic-algorithm skeleton fit.
//!
//! Notation follows the thinning literature: the neighbours of pixel `P1`
//! are `P2..P9`, clockwise from north. `B(P1)` is the number of set
//! neighbours and `A(P1)` the number of 0→1 transitions in the circular
//! sequence `P2, P3, ..., P9, P2`.

use slj_imaging::binary::BinaryImage;

/// Outcome of a thinning run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThinningOutcome {
    /// The thinned skeleton mask.
    pub skeleton: BinaryImage,
    /// Number of full passes (pairs of sub-iterations) performed.
    pub passes: usize,
    /// Total number of pixels removed.
    pub removed: usize,
}

/// Reusable working storage for the `_into` thinning variants: the
/// deletion list shared by both Guo-Hall sub-iterations plus the
/// row-aligned word buffers of the bit-parallel Zhang-Suen path.
///
/// Holding one of these across frames means per-frame thinning does no
/// buffer allocation in steady state (the skeleton is written into a
/// caller-owned mask).
#[derive(Debug, Clone, Default)]
pub struct ThinningScratch {
    to_remove: Vec<(usize, usize)>,
    /// Row-aligned packed image: `ceil(width/64)` words per row, tail
    /// bits beyond `width` kept clear.
    rows: Vec<u64>,
    /// Per-sub-iteration deletion mask, same layout as `rows`.
    del: Vec<u64>,
}

impl ThinningScratch {
    /// Creates empty scratch storage; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Number of 0→1 transitions around the 8-neighbourhood (in Z-S order).
#[inline]
fn transitions(n: &[bool; 8]) -> usize {
    let mut count = 0;
    for i in 0..8 {
        if !n[i] && n[(i + 1) % 8] {
            count += 1;
        }
    }
    count
}

/// Thins `mask` with the Zhang-Suen algorithm until convergence and
/// returns the skeleton along with pass statistics.
pub fn zhang_suen_with_stats(mask: &BinaryImage) -> ThinningOutcome {
    let mut skeleton = BinaryImage::new(mask.width(), mask.height());
    let (passes, removed) = zhang_suen_into(mask, &mut skeleton, &mut ThinningScratch::new());
    ThinningOutcome {
        skeleton,
        passes,
        removed,
    }
}

/// Zhang-Suen deletion lookup table: bit `k` of the index is neighbour
/// `P(2+k)` in the order N, NE, E, SE, S, SW, W, NW (= P2..P9). Entry
/// bit 0 marks the neighbourhood deletable in sub-iteration 0, bit 1 in
/// sub-iteration 1 — the `B(P1)`, `A(P1)`, and directional conditions
/// evaluated once per possible neighbourhood instead of per pixel.
const fn zs_deletion_lut() -> [u8; 256] {
    let mut lut = [0u8; 256];
    let mut code = 0usize;
    while code < 256 {
        let b = (code as u32).count_ones();
        // A(P1): 0→1 transitions in the circular sequence P2..P9,P2.
        let mut a = 0u32;
        let mut k = 0usize;
        while k < 8 {
            if (code >> k) & 1 == 0 && (code >> ((k + 1) % 8)) & 1 == 1 {
                a += 1;
            }
            k += 1;
        }
        if b >= 2 && b <= 6 && a == 1 {
            let p2 = code & 0b0000_0001 != 0;
            let p4 = code & 0b0000_0100 != 0;
            let p6 = code & 0b0001_0000 != 0;
            let p8 = code & 0b0100_0000 != 0;
            // Sub 0: P2*P4*P6 == 0 and P4*P6*P8 == 0.
            if !(p2 && p4 && p6) && !(p4 && p6 && p8) {
                lut[code] |= 1;
            }
            // Sub 1: P2*P4*P8 == 0 and P2*P6*P8 == 0.
            if !(p2 && p4 && p8) && !(p2 && p6 && p8) {
                lut[code] |= 2;
            }
        }
        code += 1;
    }
    lut
}

static ZS_LUT: [u8; 256] = zs_deletion_lut();

/// In-place variant of [`zhang_suen_with_stats`]: copies `mask` into `out`
/// and thins it there, reusing the word buffers in `scratch`. Returns
/// `(passes, removed)`. Bit-identical to the allocating version and to
/// the scalar reference [`zhang_suen_reference`].
///
/// Bit-parallel implementation: the mask is repacked into row-aligned
/// u64 words, each pixel's eight neighbours come from shifted word loads
/// of the adjacent rows, and deletability is a [`ZS_LUT`] lookup on the
/// packed 8-bit neighbourhood. Whole background words are skipped, so a
/// sub-iteration costs O(words) plus O(set pixels) — the per-pass
/// collect-then-apply semantics and the `(passes, removed)` statistics
/// are exactly those of the scalar algorithm.
pub fn zhang_suen_into(
    mask: &BinaryImage,
    out: &mut BinaryImage,
    scratch: &mut ThinningScratch,
) -> (usize, usize) {
    out.copy_from(mask);
    let (w, h) = out.dimensions();
    let wpr = w.div_ceil(64);
    let nwords = wpr * h;
    scratch.rows.resize(nwords, 0);
    scratch.del.resize(nwords, 0);
    let rows = &mut scratch.rows;
    let del = &mut scratch.del;
    // Repack the continuous bit layout (bit i = y*w + x) into row-aligned
    // words, clearing the tail bits beyond `w` so shifted loads read the
    // out-of-bounds border as background.
    let src = out.words();
    let tail_mask = if w % 64 == 0 {
        !0u64
    } else {
        (1u64 << (w % 64)) - 1
    };
    for y in 0..h {
        for j in 0..wpr {
            let bit = y * w + j * 64;
            let (k, s) = (bit / 64, bit % 64);
            let mut v = src[k] >> s;
            if s != 0 && k + 1 < src.len() {
                v |= src[k + 1] << (64 - s);
            }
            if j == wpr - 1 {
                v &= tail_mask;
            }
            rows[y * wpr + j] = v;
        }
    }
    let mut passes = 0usize;
    let mut removed_total = 0usize;
    loop {
        let mut changed = false;
        // Two sub-iterations per pass; they differ only in the pair of
        // "directional" conditions, which alternate the peeling side.
        for sub in 0..2 {
            let want = 1u8 << sub;
            for y in 0..h {
                let base = y * wpr;
                for j in 0..wpr {
                    let cur = rows[base + j];
                    if cur == 0 {
                        del[base + j] = 0;
                        continue;
                    }
                    let has_up = y > 0;
                    let has_dn = y + 1 < h;
                    let has_l = j > 0;
                    let has_r = j + 1 < wpr;
                    let u_c = if has_up { rows[base - wpr + j] } else { 0 };
                    let u_l = if has_up && has_l {
                        rows[base - wpr + j - 1]
                    } else {
                        0
                    };
                    let u_r = if has_up && has_r {
                        rows[base - wpr + j + 1]
                    } else {
                        0
                    };
                    let c_l = if has_l { rows[base + j - 1] } else { 0 };
                    let c_r = if has_r { rows[base + j + 1] } else { 0 };
                    let d_c = if has_dn { rows[base + wpr + j] } else { 0 };
                    let d_l = if has_dn && has_l {
                        rows[base + wpr + j - 1]
                    } else {
                        0
                    };
                    let d_r = if has_dn && has_r {
                        rows[base + wpr + j + 1]
                    } else {
                        0
                    };
                    // Neighbour planes: bit b of each word is that
                    // neighbour of pixel (j*64 + b, y).
                    let n_ = u_c;
                    let s_ = d_c;
                    let w_ = (cur << 1) | (c_l >> 63);
                    let e_ = (cur >> 1) | (c_r << 63);
                    let nw = (u_c << 1) | (u_l >> 63);
                    let ne = (u_c >> 1) | (u_r << 63);
                    let sw = (d_c << 1) | (d_l >> 63);
                    let se = (d_c >> 1) | (d_r << 63);
                    let mut dword = 0u64;
                    let mut rem = cur;
                    while rem != 0 {
                        let b = rem.trailing_zeros();
                        rem &= rem - 1;
                        let code = ((n_ >> b) & 1)
                            | (((ne >> b) & 1) << 1)
                            | (((e_ >> b) & 1) << 2)
                            | (((se >> b) & 1) << 3)
                            | (((s_ >> b) & 1) << 4)
                            | (((sw >> b) & 1) << 5)
                            | (((w_ >> b) & 1) << 6)
                            | (((nw >> b) & 1) << 7);
                        if ZS_LUT[code as usize] & want != 0 {
                            dword |= 1u64 << b;
                        }
                    }
                    del[base + j] = dword;
                }
            }
            // Apply the full deletion mask after the scan, exactly like
            // the scalar collect-then-apply pass.
            let mut sub_removed = 0usize;
            for (a, d) in rows.iter_mut().zip(del.iter()) {
                if *d != 0 {
                    *a &= !*d;
                    sub_removed += d.count_ones() as usize;
                }
            }
            if sub_removed > 0 {
                changed = true;
                removed_total += sub_removed;
            }
        }
        passes += 1;
        if !changed {
            break;
        }
    }
    // Repack row-aligned words back into the continuous layout.
    let dst = out.words_mut();
    for wd in dst.iter_mut() {
        *wd = 0;
    }
    for y in 0..h {
        for j in 0..wpr {
            let v = rows[y * wpr + j];
            if v == 0 {
                continue;
            }
            let bit = y * w + j * 64;
            let (k, s) = (bit / 64, bit % 64);
            dst[k] |= v << s;
            if s > 0 && k + 1 < dst.len() {
                dst[k + 1] |= v >> (64 - s);
            }
        }
    }
    (passes, removed_total)
}

/// Reference scalar Zhang-Suen: per-pixel neighbour gathering and
/// condition evaluation. The oracle the bit-parallel [`zhang_suen_into`]
/// is property-tested against, and the "before" timing in `slj bench`'s
/// per-kernel section.
pub fn zhang_suen_reference(mask: &BinaryImage) -> ThinningOutcome {
    let mut img = mask.clone();
    let (w, h) = img.dimensions();
    let mut passes = 0usize;
    let mut removed_total = 0usize;
    let mut to_remove: Vec<(usize, usize)> = Vec::new();
    loop {
        let mut changed = false;
        for sub in 0..2 {
            to_remove.clear();
            for y in 0..h {
                for x in 0..w {
                    if !img.get(x, y) {
                        continue;
                    }
                    // Neighbour order from BinaryImage::neighbors8 is
                    // N, NE, E, SE, S, SW, W, NW = P2, P3, ..., P9.
                    let n = img.neighbors8(x, y);
                    let b: usize = n.iter().filter(|&&v| v).count();
                    if !(2..=6).contains(&b) {
                        continue;
                    }
                    if transitions(&n) != 1 {
                        continue;
                    }
                    let (p2, p4, p6, p8) = (n[0], n[2], n[4], n[6]);
                    let ok = if sub == 0 {
                        // P2*P4*P6 == 0 and P4*P6*P8 == 0
                        !(p2 && p4 && p6) && !(p4 && p6 && p8)
                    } else {
                        // P2*P4*P8 == 0 and P2*P6*P8 == 0
                        !(p2 && p4 && p8) && !(p2 && p6 && p8)
                    };
                    if ok {
                        to_remove.push((x, y));
                    }
                }
            }
            if !to_remove.is_empty() {
                changed = true;
                removed_total += to_remove.len();
                for &(x, y) in to_remove.iter() {
                    img.set(x, y, false);
                }
            }
        }
        passes += 1;
        if !changed {
            break;
        }
    }
    ThinningOutcome {
        skeleton: img,
        passes,
        removed: removed_total,
    }
}

/// Thins `mask` with the Zhang-Suen algorithm until convergence.
///
/// # Examples
///
/// ```
/// use slj_imaging::binary::BinaryImage;
/// use slj_skeleton::thinning::zhang_suen;
///
/// let mut blob = BinaryImage::new(20, 20);
/// for y in 5..15 {
///     for x in 5..15 {
///         blob.set(x, y, true);
///     }
/// }
/// let skeleton = zhang_suen(&blob);
/// assert!(skeleton.count_ones() < blob.count_ones());
/// assert!(!skeleton.is_empty());
/// ```
pub fn zhang_suen(mask: &BinaryImage) -> BinaryImage {
    zhang_suen_with_stats(mask).skeleton
}

/// Which parallel thinning algorithm drives the skeleton stage.
///
/// The paper uses Zhang-Suen ("the Z-S algorithm"); Guo-Hall is the
/// other classical two-sub-iteration algorithm and serves as the
/// ablation comparator (Experiment E12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ThinningAlgorithm {
    /// Zhang & Fu's 1984 choice as cited by the paper (Zhang-Suen).
    #[default]
    ZhangSuen,
    /// Guo & Hall's 1989 parallel thinning (A1 variant).
    GuoHall,
}

impl ThinningAlgorithm {
    /// Runs the selected algorithm.
    pub fn run(self, mask: &BinaryImage) -> ThinningOutcome {
        match self {
            ThinningAlgorithm::ZhangSuen => zhang_suen_with_stats(mask),
            ThinningAlgorithm::GuoHall => guo_hall_with_stats(mask),
        }
    }

    /// In-place variant of [`ThinningAlgorithm::run`]: writes the skeleton
    /// into `out`, reusing `scratch`. Returns `(passes, removed)`.
    pub fn run_into(
        self,
        mask: &BinaryImage,
        out: &mut BinaryImage,
        scratch: &mut ThinningScratch,
    ) -> (usize, usize) {
        match self {
            ThinningAlgorithm::ZhangSuen => zhang_suen_into(mask, out, scratch),
            ThinningAlgorithm::GuoHall => guo_hall_into(mask, out, scratch),
        }
    }
}

/// Thins `mask` with the Guo-Hall algorithm until convergence and
/// returns the skeleton along with pass statistics.
///
/// Neighbour notation matches [`zhang_suen_with_stats`]: `n[0..8]` are
/// N, NE, E, SE, S, SW, W, NW.
pub fn guo_hall_with_stats(mask: &BinaryImage) -> ThinningOutcome {
    let mut skeleton = BinaryImage::new(mask.width(), mask.height());
    let (passes, removed) = guo_hall_into(mask, &mut skeleton, &mut ThinningScratch::new());
    ThinningOutcome {
        skeleton,
        passes,
        removed,
    }
}

/// In-place variant of [`guo_hall_with_stats`]: copies `mask` into `out`
/// and thins it there, reusing the deletion list in `scratch`. Returns
/// `(passes, removed)`. Bit-identical to the allocating version.
pub fn guo_hall_into(
    mask: &BinaryImage,
    out: &mut BinaryImage,
    scratch: &mut ThinningScratch,
) -> (usize, usize) {
    out.copy_from(mask);
    let img = out;
    let (w, h) = img.dimensions();
    let mut passes = 0usize;
    let mut removed_total = 0usize;
    let to_remove = &mut scratch.to_remove;
    loop {
        let mut changed = false;
        for sub in 0..2 {
            to_remove.clear();
            for y in 0..h {
                for x in 0..w {
                    if !img.get(x, y) {
                        continue;
                    }
                    let n = img.neighbors8(x, y);
                    // Guo-Hall's p2..p9 run N, NE, E, SE, S, SW, W, NW —
                    // identical to our neighbour order n[0..8].
                    let (p2, p3, p4, p5, p6, p7, p8, p9) =
                        (n[0], n[1], n[2], n[3], n[4], n[5], n[6], n[7]);
                    // C(p): connectivity number.
                    let c = u8::from(!p2 && (p3 || p4))
                        + u8::from(!p4 && (p5 || p6))
                        + u8::from(!p6 && (p7 || p8))
                        + u8::from(!p8 && (p9 || p2));
                    if c != 1 {
                        continue;
                    }
                    // N(p) = min(N1, N2).
                    let n1 = u8::from(p9 || p2)
                        + u8::from(p3 || p4)
                        + u8::from(p5 || p6)
                        + u8::from(p7 || p8);
                    let n2 = u8::from(p2 || p3)
                        + u8::from(p4 || p5)
                        + u8::from(p6 || p7)
                        + u8::from(p8 || p9);
                    let np = n1.min(n2);
                    if !(2..=3).contains(&np) {
                        continue;
                    }
                    let ok = if sub == 0 {
                        !((p6 || p7 || !p9) && p8)
                    } else {
                        !((p2 || p3 || !p5) && p4)
                    };
                    if ok {
                        to_remove.push((x, y));
                    }
                }
            }
            if !to_remove.is_empty() {
                changed = true;
                removed_total += to_remove.len();
                for &(x, y) in to_remove.iter() {
                    img.set(x, y, false);
                }
            }
        }
        passes += 1;
        if !changed {
            break;
        }
    }
    (passes, removed_total)
}

/// Thins `mask` with the Guo-Hall algorithm until convergence.
pub fn guo_hall(mask: &BinaryImage) -> BinaryImage {
    guo_hall_with_stats(mask).skeleton
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_imaging::morphology::Connectivity;
    use slj_imaging::region::connected_components;

    fn filled_rect(w: usize, h: usize, x0: usize, y0: usize, x1: usize, y1: usize) -> BinaryImage {
        let mut img = BinaryImage::new(w, h);
        for y in y0..y1 {
            for x in x0..x1 {
                img.set(x, y, true);
            }
        }
        img
    }

    #[test]
    fn transitions_counting() {
        assert_eq!(transitions(&[false; 8]), 0);
        assert_eq!(transitions(&[true; 8]), 0);
        // Single block of ones: one transition.
        assert_eq!(
            transitions(&[true, true, false, false, false, false, false, false]),
            1
        );
        // Two separate blocks: two transitions.
        assert_eq!(
            transitions(&[true, false, true, false, false, false, false, false]),
            2
        );
        // Alternating: four transitions.
        assert_eq!(
            transitions(&[true, false, true, false, true, false, true, false]),
            4
        );
    }

    #[test]
    fn empty_input_is_fixed_point() {
        let img = BinaryImage::new(10, 10);
        let out = zhang_suen_with_stats(&img);
        assert!(out.skeleton.is_empty());
        assert_eq!(out.removed, 0);
    }

    #[test]
    fn single_pixel_survives() {
        let mut img = BinaryImage::new(5, 5);
        img.set(2, 2, true);
        assert_eq!(zhang_suen(&img).count_ones(), 1);
    }

    #[test]
    fn one_pixel_line_is_fixed_point() {
        let mut img = BinaryImage::new(20, 5);
        for x in 2..18 {
            img.set(x, 2, true);
        }
        let skel = zhang_suen(&img);
        assert_eq!(skel, img, "a 1px line is already thin");
    }

    #[test]
    fn thick_horizontal_bar_thins_to_line() {
        let img = filled_rect(30, 11, 2, 3, 28, 8); // 26x5 bar
        let skel = zhang_suen(&img);
        // Every column in the interior should have exactly one pixel.
        for x in 6..24 {
            let count = (0..11).filter(|&y| skel.get(x, y)).count();
            assert_eq!(count, 1, "column {x} has {count} pixels");
        }
    }

    #[test]
    fn thick_vertical_bar_thins_to_line() {
        let img = filled_rect(11, 30, 3, 2, 8, 28);
        let skel = zhang_suen(&img);
        for y in 6..24 {
            let count = (0..11).filter(|&x| skel.get(x, y)).count();
            assert_eq!(count, 1, "row {y} has {count} pixels");
        }
    }

    #[test]
    fn connectivity_is_preserved() {
        // An L-shaped thick region must stay a single component.
        let mut img = filled_rect(40, 40, 5, 5, 12, 35);
        for y in 28..35 {
            for x in 5..35 {
                img.set(x, y, true);
            }
        }
        let before = connected_components(&img, Connectivity::Eight).len();
        let skel = zhang_suen(&img);
        let after = connected_components(&skel, Connectivity::Eight).len();
        assert_eq!(before, 1);
        assert_eq!(after, 1, "thinning must not break the L shape");
    }

    #[test]
    fn no_break_line_on_long_diagonal_band() {
        let mut img = BinaryImage::new(50, 50);
        for t in 0..40 {
            for dy in 0..5 {
                img.set(5 + t, 5 + t / 2 + dy, true);
            }
        }
        let skel = zhang_suen(&img);
        assert_eq!(
            connected_components(&skel, Connectivity::Eight).len(),
            1,
            "diagonal band must remain connected"
        );
    }

    #[test]
    fn thinning_is_idempotent() {
        let img = filled_rect(25, 25, 4, 4, 21, 21);
        let once = zhang_suen(&img);
        let twice = zhang_suen(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn skeleton_is_subset_of_input() {
        let img = filled_rect(20, 20, 3, 3, 17, 17);
        let skel = zhang_suen(&img);
        // skeleton AND input == skeleton
        assert_eq!(skel.and(&img).unwrap(), skel);
    }

    #[test]
    fn stats_account_for_removed_pixels() {
        let img = filled_rect(20, 20, 3, 3, 17, 17);
        let out = zhang_suen_with_stats(&img);
        assert_eq!(img.count_ones() - out.skeleton.count_ones(), out.removed);
        assert!(out.passes >= 2);
    }

    #[test]
    fn guo_hall_thins_bars_to_lines() {
        let img = filled_rect(30, 11, 2, 3, 28, 8);
        let skel = guo_hall(&img);
        assert!(skel.count_ones() < img.count_ones() / 3);
        for x in 8..22 {
            let count = (0..11).filter(|&y| skel.get(x, y)).count();
            assert!(count >= 1, "column {x} broke");
            assert!(count <= 2, "column {x} too thick: {count}");
        }
    }

    #[test]
    fn guo_hall_preserves_connectivity() {
        use slj_imaging::morphology::Connectivity;
        use slj_imaging::region::connected_components;
        let mut img = filled_rect(40, 40, 5, 5, 12, 35);
        for y in 28..35 {
            for x in 5..35 {
                img.set(x, y, true);
            }
        }
        let skel = guo_hall(&img);
        assert_eq!(connected_components(&skel, Connectivity::Eight).len(), 1);
    }

    #[test]
    fn guo_hall_is_idempotent_and_subset() {
        let img = filled_rect(25, 25, 4, 4, 21, 21);
        let once = guo_hall(&img);
        assert_eq!(guo_hall(&once), once);
        assert_eq!(once.and(&img).unwrap(), once);
    }

    #[test]
    fn algorithms_agree_on_thin_lines() {
        // An already-thin line is a fixed point of both algorithms.
        let mut img = BinaryImage::new(20, 5);
        for x in 2..18 {
            img.set(x, 2, true);
        }
        assert_eq!(zhang_suen(&img), img);
        assert_eq!(guo_hall(&img), img);
    }

    #[test]
    fn algorithm_enum_dispatches() {
        let img = filled_rect(20, 20, 3, 3, 17, 17);
        let zs = ThinningAlgorithm::ZhangSuen.run(&img);
        let gh = ThinningAlgorithm::GuoHall.run(&img);
        assert_eq!(zs.skeleton, zhang_suen(&img));
        assert_eq!(gh.skeleton, guo_hall(&img));
        assert_eq!(ThinningAlgorithm::default(), ThinningAlgorithm::ZhangSuen);
    }

    #[test]
    fn even_diameter_disk_can_vanish() {
        // A documented flaw of the classical parallel Zhang-Suen
        // algorithm: even-diameter convex shapes erode symmetrically to
        // a 2x2 block, which neither sub-iteration can reduce to a
        // single pixel — the next pass deletes it entirely. Odd-diameter
        // disks survive as one pixel. We implement the published
        // algorithm faithfully, so this behaviour is pinned here.
        let mut even = BinaryImage::new(24, 24);
        // Even-diameter octagon (the classic vanishing case).
        for (y, (x0, x1)) in [
            (7usize, (10usize, 14usize)),
            (8, (9, 15)),
            (9, (8, 16)),
            (10, (7, 17)),
            (11, (7, 17)),
            (12, (7, 17)),
            (13, (7, 17)),
            (14, (8, 16)),
            (15, (9, 15)),
            (16, (10, 14)),
        ] {
            for x in x0..x1 {
                even.set(x, y, true);
            }
        }
        assert!(zhang_suen(&even).is_empty(), "even octagon should vanish");

        // An odd-diameter disk survives.
        let mut odd = BinaryImage::new(24, 24);
        for dy in -3i32..=3 {
            for dx in -3i32..=3 {
                if dx * dx + dy * dy <= 9 {
                    odd.set((12 + dx) as usize, (12 + dy) as usize, true);
                }
            }
        }
        assert_eq!(zhang_suen(&odd).count_ones(), 1);
    }

    #[test]
    fn bit_parallel_matches_scalar_reference_on_random_masks() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut lcg = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for (w, h) in [(1, 1), (3, 3), (64, 5), (65, 7), (40, 40), (130, 9)] {
            for density in [2u64, 3, 5] {
                let mut img = BinaryImage::new(w, h);
                for y in 0..h {
                    for x in 0..w {
                        img.set(x, y, lcg() % density != 0);
                    }
                }
                let expected = zhang_suen_reference(&img);
                let got = zhang_suen_with_stats(&img);
                assert_eq!(got.skeleton, expected.skeleton, "{w}x{h} d{density}");
                assert_eq!(got.passes, expected.passes, "{w}x{h} d{density} passes");
                assert_eq!(got.removed, expected.removed, "{w}x{h} d{density} removed");
            }
        }
    }

    #[test]
    fn bit_parallel_matches_scalar_reference_on_blobs() {
        // Shapes with known skeleton structure, spanning word boundaries.
        let mut img = filled_rect(150, 40, 10, 5, 140, 35);
        for t in 0..60 {
            img.set(20 + t, 8 + t / 4, true);
        }
        let expected = zhang_suen_reference(&img);
        let got = zhang_suen_with_stats(&img);
        assert_eq!(got.skeleton, expected.skeleton);
        assert_eq!(
            (got.passes, got.removed),
            (expected.passes, expected.removed)
        );
    }

    #[test]
    fn skeleton_is_mostly_unit_width() {
        // After thinning, no pixel should have a full 2x2 block of set
        // pixels around it (the standard thinness criterion).
        let img = filled_rect(40, 24, 4, 4, 36, 20);
        let skel = zhang_suen(&img);
        let mut blocks = 0;
        for y in 0..23 {
            for x in 0..39 {
                if skel.get(x, y)
                    && skel.get(x + 1, y)
                    && skel.get(x, y + 1)
                    && skel.get(x + 1, y + 1)
                {
                    blocks += 1;
                }
            }
        }
        assert_eq!(blocks, 0, "skeleton contains {blocks} solid 2x2 blocks");
    }
}
