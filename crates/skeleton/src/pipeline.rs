//! The full Section-3/4 front end: silhouette → skeleton → graph clean-up
//! → key points, with per-stage statistics for the clean-up ablation
//! (Experiment E3).

use crate::graph::{GraphScratch, PixelGraph, SkeletonGraph};
use crate::keypoints::{KeyPoints, KeypointExtractor};
use crate::prune::{self, DEFAULT_MIN_BRANCH_LEN};
use crate::spanning;
use crate::thinning::{ThinningAlgorithm, ThinningScratch};
use slj_imaging::binary::BinaryImage;

/// Configuration of the skeleton pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkeletonConfig {
    /// Which parallel thinning algorithm to run (the paper uses
    /// Zhang-Suen; Guo-Hall is the E12 ablation comparator).
    pub algorithm: ThinningAlgorithm,
    /// Minimum branch length in vertices; shorter branches are pruned
    /// (the paper uses 10).
    pub min_branch_len: usize,
    /// Whether to run the loop-cut stage.
    pub cut_loops: bool,
    /// Whether to run the pruning stage.
    pub prune: bool,
}

impl Default for SkeletonConfig {
    fn default() -> Self {
        SkeletonConfig {
            algorithm: ThinningAlgorithm::default(),
            min_branch_len: DEFAULT_MIN_BRANCH_LEN,
            cut_loops: true,
            prune: true,
        }
    }
}

/// Per-stage statistics of a pipeline run, mirroring the defects the
/// paper's Figures 2–4 illustrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageStats {
    /// Thinning passes until convergence.
    pub thinning_passes: usize,
    /// Pixels removed by thinning.
    pub thinning_removed: usize,
    /// Adjacent junction vertices in the raw thinning result (paper
    /// definition: junction pixels with > 1 junction neighbours).
    pub adjacent_junctions_before: usize,
    /// Junction clusters merged while building the segment graph.
    pub clusters_merged: usize,
    /// Independent loops in the raw skeleton graph.
    pub loops_before: usize,
    /// Loops cut by the maximum-spanning-tree stage.
    pub loops_cut: usize,
    /// Branches shorter than the threshold before pruning.
    pub short_branches_before: usize,
    /// Branches removed by pruning.
    pub branches_pruned: usize,
    /// Pixels removed by pruning.
    pub prune_pixels_removed: usize,
}

/// Reusable working storage for [`SkeletonPipeline::run_into`]: the
/// thinning deletion list, the intermediate pixel graph and the
/// segment-graph construction buffers.
///
/// Holding one of these (plus a [`SkeletonResult`]) across frames means
/// the whole skeleton stage does no image-buffer allocation in steady
/// state.
#[derive(Debug, Clone, Default)]
pub struct SkeletonScratch {
    thinning: ThinningScratch,
    pixel_graph: PixelGraph,
    graph: GraphScratch,
}

impl SkeletonScratch {
    /// Creates empty scratch storage; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Result of running the skeleton pipeline on one silhouette.
///
/// The `Default` value is an empty 1×1 placeholder meant to be passed to
/// [`SkeletonPipeline::run_into`], which overwrites every field.
#[derive(Debug, Clone, Default)]
pub struct SkeletonResult {
    /// The raw Zhang-Suen skeleton (before graph clean-up).
    pub raw_skeleton: BinaryImage,
    /// The cleaned skeleton rendered back to a mask.
    pub skeleton: BinaryImage,
    /// The cleaned segment graph.
    pub graph: SkeletonGraph,
    /// Extracted key points.
    pub keypoints: KeyPoints,
    /// Per-stage statistics.
    pub stats: StageStats,
}

/// Runs thinning, graph conversion, loop cutting, pruning and key-point
/// extraction.
///
/// # Examples
///
/// ```
/// use slj_imaging::binary::BinaryImage;
/// use slj_imaging::draw;
/// use slj_skeleton::pipeline::{SkeletonConfig, SkeletonPipeline};
///
/// let mut silhouette = BinaryImage::new(64, 64);
/// draw::fill_capsule(&mut silhouette, 32.0, 8.0, 32.0, 56.0, 5.0);
/// let result = SkeletonPipeline::new(SkeletonConfig::default()).run(&silhouette);
/// assert!(result.keypoints.head.is_some());
/// assert!(result.keypoints.foot.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SkeletonPipeline {
    config: SkeletonConfig,
}

impl SkeletonPipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: SkeletonConfig) -> Self {
        SkeletonPipeline { config }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> SkeletonConfig {
        self.config
    }

    /// Runs the full pipeline on a silhouette mask.
    pub fn run(&self, silhouette: &BinaryImage) -> SkeletonResult {
        let mut out = SkeletonResult::default();
        self.run_into(silhouette, &mut out, &mut SkeletonScratch::new());
        out
    }

    /// In-place variant of [`SkeletonPipeline::run`]: writes into `out`,
    /// reusing its buffers and the working storage in `scratch`.
    /// Bit-identical to the allocating version.
    // slj-check: allow(perf/transitive-hot-path-alloc) — PixelGraph::rebuild reuses adjacency storage across frames; Vec::new only fills newly grown slots
    pub fn run_into(
        &self,
        silhouette: &BinaryImage,
        out: &mut SkeletonResult,
        scratch: &mut SkeletonScratch,
    ) {
        let mut stats = StageStats::default();

        // Stage 1: parallel thinning (Zhang-Suen by default).
        let (passes, removed) = self.config.algorithm.run_into(
            silhouette,
            &mut out.raw_skeleton,
            &mut scratch.thinning,
        );
        stats.thinning_passes = passes;
        stats.thinning_removed = removed;

        // Stage 2: graph conversion with adjacent-junction merging.
        scratch.pixel_graph.rebuild(&out.raw_skeleton);
        stats.adjacent_junctions_before = scratch.pixel_graph.adjacent_junction_count();
        out.graph
            .rebuild_from_pixel_graph(&scratch.pixel_graph, &mut scratch.graph);
        stats.clusters_merged = out.graph.merged_cluster_count();
        stats.loops_before = out.graph.cycle_rank();

        // Stage 3: loop cutting by maximum spanning tree.
        if self.config.cut_loops {
            let report = spanning::cut_loops(&mut out.graph);
            stats.loops_cut = report.loops_cut;
        }

        // Stage 4: branch pruning, one at a time.
        stats.short_branches_before =
            prune::short_branch_count(&out.graph, self.config.min_branch_len);
        if self.config.prune {
            let report = prune::prune_branches(&mut out.graph, self.config.min_branch_len);
            stats.branches_pruned = report.branches_removed;
            stats.prune_pixels_removed = report.pixels_removed;
        }

        // Stage 5: key points.
        out.keypoints = KeypointExtractor::new().extract(&out.graph);
        out.graph.to_mask_into(&mut out.skeleton);
        out.stats = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_imaging::draw;

    /// A simple standing figure: head disk, torso capsule, two leg
    /// capsules and one arm capsule.
    fn standing_figure() -> BinaryImage {
        let mut s = BinaryImage::new(96, 128);
        draw::fill_disk(&mut s, 48.0, 16.0, 9.0);
        draw::fill_capsule(&mut s, 48.0, 22.0, 48.0, 70.0, 7.0); // torso
        draw::fill_capsule(&mut s, 48.0, 70.0, 40.0, 115.0, 5.0); // leg
        draw::fill_capsule(&mut s, 48.0, 70.0, 58.0, 115.0, 5.0); // leg
        draw::fill_capsule(&mut s, 48.0, 32.0, 76.0, 52.0, 4.0); // arm
        s
    }

    #[test]
    fn full_run_on_figure_extracts_keypoints() {
        let result = SkeletonPipeline::new(SkeletonConfig::default()).run(&standing_figure());
        let kp = result.keypoints;
        assert!(kp.head.is_some());
        assert!(kp.foot.is_some());
        assert!(kp.waist.is_some());
        let head = kp.head.unwrap();
        let foot = kp.foot.unwrap();
        assert!(head.1 < 40.0, "head near the top, got {head:?}");
        assert!(foot.1 > 95.0, "foot near the bottom, got {foot:?}");
        // The cleaned graph is a forest with no short branches.
        assert_eq!(result.graph.cycle_rank(), 0);
        assert_eq!(
            prune::short_branch_count(&result.graph, SkeletonConfig::default().min_branch_len),
            0
        );
    }

    #[test]
    fn stats_populated() {
        let result = SkeletonPipeline::new(SkeletonConfig::default()).run(&standing_figure());
        assert!(result.stats.thinning_passes > 1);
        assert!(result.stats.thinning_removed > 100);
        assert!(
            result.raw_skeleton.count_ones() >= result.skeleton.count_ones(),
            "clean-up only removes pixels"
        );
    }

    #[test]
    fn disabling_stages_keeps_defects() {
        let mut silhouette = BinaryImage::new(64, 64);
        // A ring silhouette guarantees a loop in the skeleton.
        draw::fill_disk(&mut silhouette, 32.0, 32.0, 20.0);
        let mut hole = BinaryImage::new(64, 64);
        draw::fill_disk(&mut hole, 32.0, 32.0, 10.0);
        for (x, y) in hole.iter_ones() {
            silhouette.set(x, y, false);
        }
        let no_cut = SkeletonPipeline::new(SkeletonConfig {
            cut_loops: false,
            prune: false,
            ..SkeletonConfig::default()
        })
        .run(&silhouette);
        assert!(
            no_cut.graph.cycle_rank() > 0,
            "loop preserved when stage off"
        );
        let full = SkeletonPipeline::new(SkeletonConfig::default()).run(&silhouette);
        assert_eq!(full.graph.cycle_rank(), 0);
        assert!(full.stats.loops_cut >= 1);
    }

    #[test]
    fn empty_silhouette_is_handled() {
        let result =
            SkeletonPipeline::new(SkeletonConfig::default()).run(&BinaryImage::new(16, 16));
        assert!(result.skeleton.is_empty());
        assert_eq!(result.keypoints.detected_parts(), 0);
    }

    #[test]
    fn run_into_reused_buffers_match_run() {
        let pipeline = SkeletonPipeline::new(SkeletonConfig::default());
        let mut out = SkeletonResult::default();
        let mut scratch = SkeletonScratch::new();
        // Reuse the same buffers across dissimilar inputs; every pass must
        // be bit-identical to a fresh allocating run.
        let mut ring = BinaryImage::new(64, 64);
        draw::fill_disk(&mut ring, 32.0, 32.0, 20.0);
        let inputs = [standing_figure(), ring, BinaryImage::new(16, 16)];
        for silhouette in &inputs {
            pipeline.run_into(silhouette, &mut out, &mut scratch);
            let fresh = pipeline.run(silhouette);
            assert_eq!(out.raw_skeleton, fresh.raw_skeleton);
            assert_eq!(out.skeleton, fresh.skeleton);
            assert_eq!(out.keypoints, fresh.keypoints);
            assert_eq!(out.stats, fresh.stats);
        }
    }

    #[test]
    fn pipeline_is_deterministic() {
        let a = SkeletonPipeline::new(SkeletonConfig::default()).run(&standing_figure());
        let b = SkeletonPipeline::new(SkeletonConfig::default()).run(&standing_figure());
        assert_eq!(a.skeleton, b.skeleton);
        assert_eq!(a.keypoints, b.keypoints);
        assert_eq!(a.stats, b.stats);
    }
}
