//! Noisy-branch pruning (Section 3, Figure 4).
//!
//! Silhouette boundary noise sprouts short spurious branches on the
//! skeleton. The paper deletes a branch — a simple path from an end vertex
//! to a junction vertex — when it is shorter than 10 vertices, and
//! crucially deletes **only one branch at a time**: deleting all short
//! branches simultaneously can take a genuine limb down together with the
//! noise (Figure 4(b) vs 4(c)).

use crate::graph::{NodeKind, SkeletonGraph};

/// Default minimum branch length in vertices (the paper's threshold).
pub const DEFAULT_MIN_BRANCH_LEN: usize = 10;

/// Statistics from a pruning pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneReport {
    /// Number of branches deleted.
    pub branches_removed: usize,
    /// Total pixels deleted.
    pub pixels_removed: usize,
}

/// Returns the IDs of current branch edges: edges joining an
/// [`NodeKind::End`] node to a [`NodeKind::Junction`] node.
pub fn branch_edges(g: &SkeletonGraph) -> Vec<usize> {
    g.edge_ids()
        .filter(|&e| {
            let edge = g.edge(e);
            if edge.is_self_loop() {
                return false;
            }
            let ka = g.kind(edge.a);
            let kb = g.kind(edge.b);
            matches!(
                (ka, kb),
                (NodeKind::End, NodeKind::Junction) | (NodeKind::Junction, NodeKind::End)
            )
        })
        .collect()
}

/// Number of branches currently shorter than `min_len` vertices.
pub fn short_branch_count(g: &SkeletonGraph, min_len: usize) -> usize {
    branch_edges(g)
        .into_iter()
        .filter(|&e| g.edge(e).len() < min_len)
        .count()
}

/// Prunes noisy branches one at a time, shortest first, until every
/// remaining branch has at least `min_len` vertices.
///
/// After each deletion the graph is re-normalised (junctions that dropped
/// to degree 2 are spliced out), exactly the re-evaluation that deleting
/// one branch at a time buys: a genuine branch that shared a junction
/// with a deleted noisy branch merges into its continuation and is no
/// longer (wrongly) eligible for deletion.
///
/// # Examples
///
/// ```
/// use slj_imaging::binary::BinaryImage;
/// use slj_skeleton::graph::SkeletonGraph;
/// use slj_skeleton::prune::{prune_branches, DEFAULT_MIN_BRANCH_LEN};
///
/// // A long line with a 3-pixel noisy spur. ('1' also means "set"; a
/// // leading '#' would be eaten by rustdoc's hidden-line syntax.)
/// let mask = BinaryImage::from_ascii(
///     "........1.........\n\
///      ........1.........\n\
///      ........1.........\n\
///      111111111111111111\n",
/// );
/// let mut graph = SkeletonGraph::from_mask(&mask);
/// let report = prune_branches(&mut graph, DEFAULT_MIN_BRANCH_LEN);
/// assert_eq!(report.branches_removed, 1);
/// assert_eq!(graph.cycle_rank(), 0);
/// ```
pub fn prune_branches(g: &mut SkeletonGraph, min_len: usize) -> PruneReport {
    let mut report = PruneReport::default();
    loop {
        let candidate = branch_edges(g)
            .into_iter()
            .filter(|&e| g.edge(e).len() < min_len)
            // Shortest first; ties by ID for determinism.
            .min_by_key(|&e| (g.edge(e).len(), e));
        let Some(e) = candidate else {
            break;
        };
        report.branches_removed += 1;
        // The junction-side terminal pixel stays (it belongs to the
        // junction), so count interior + end pixels.
        report.pixels_removed += g.edge(e).len().saturating_sub(1);
        g.remove_edge(e);
        g.normalize();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_imaging::binary::BinaryImage;

    /// Long horizontal line with one short vertical spur; both line
    /// halves are at least 10 vertices so only the spur is short.
    fn line_with_spur() -> BinaryImage {
        BinaryImage::from_ascii(
            "............#.............\n\
             ............#.............\n\
             ............#.............\n\
             ##########################\n",
        )
    }

    #[test]
    fn removes_short_spur_keeps_line() {
        let mut g = SkeletonGraph::from_mask(&line_with_spur());
        let report = prune_branches(&mut g, DEFAULT_MIN_BRANCH_LEN);
        assert_eq!(report.branches_removed, 1);
        let mask = g.to_mask();
        assert!(!mask.get(12, 0), "spur tip removed");
        assert!(!mask.get(12, 1), "spur interior removed");
        assert!(mask.get(0, 3) && mask.get(25, 3), "main line intact");
        // After normalisation the line is a single edge again.
        assert_eq!(g.edge_ids().count(), 1);
    }

    #[test]
    fn long_branches_survive() {
        let mask = BinaryImage::from_ascii(
            "...........#...........\n\
             ...........#...........\n\
             ...........#...........\n\
             ...........#...........\n\
             ...........#...........\n\
             ...........#...........\n\
             ...........#...........\n\
             ...........#...........\n\
             ...........#...........\n\
             ...........#...........\n\
             ...........#...........\n\
             #######################\n",
        );
        let mut g = SkeletonGraph::from_mask(&mask);
        let report = prune_branches(&mut g, DEFAULT_MIN_BRANCH_LEN);
        assert_eq!(report.branches_removed, 0, "an 11-pixel branch is kept");
        assert_eq!(g.edge_ids().count(), 3);
    }

    #[test]
    fn one_at_a_time_saves_the_real_branch() {
        // Figure 4 scenario: a noisy spur and a genuine short continuation
        // share a junction. Deleting both at once (Figure 4(b)) would
        // destroy the limb; one-at-a-time (Figure 4(c)) keeps it, because
        // after the spur is gone the junction dissolves and the
        // continuation merges into the long segment.
        //
        // Main path: 14 px horizontal, then junction, then 6 more px
        // (short continuation, would be < 10 on its own). Spur: 3 px.
        let mask = BinaryImage::from_ascii(
            "..............#......\n\
             ..............#......\n\
             ..............#......\n\
             #####################\n",
        );
        let mut g = SkeletonGraph::from_mask(&mask);
        // Branches at the junction (14, 3): left part (length 15), right
        // part (length 7) and the spur (length 4).
        let mut g_all_at_once = g.clone();
        // "Delete both" failure mode: remove every short branch found in
        // the initial graph simultaneously.
        let initial_short: Vec<usize> = branch_edges(&g_all_at_once)
            .into_iter()
            .filter(|&e| g_all_at_once.edge(e).len() < DEFAULT_MIN_BRANCH_LEN)
            .collect();
        assert_eq!(
            initial_short.len(),
            2,
            "both spur and continuation look short"
        );
        for e in initial_short {
            g_all_at_once.remove_edge(e);
        }
        let bad_mask = g_all_at_once.to_mask();
        assert!(
            !bad_mask.get(20, 3),
            "all-at-once loses the real continuation"
        );

        // The paper's way.
        let report = prune_branches(&mut g, DEFAULT_MIN_BRANCH_LEN);
        assert_eq!(report.branches_removed, 1, "only the spur is deleted");
        let good_mask = g.to_mask();
        assert!(good_mask.get(20, 3), "continuation survives");
        assert!(!good_mask.get(14, 0), "spur removed");
    }

    #[test]
    fn isolated_line_is_not_a_branch() {
        // An edge between two End nodes is a segment, not a branch.
        let mask = BinaryImage::from_ascii("#####\n");
        let mut g = SkeletonGraph::from_mask(&mask);
        assert!(branch_edges(&g).is_empty());
        let report = prune_branches(&mut g, 100);
        assert_eq!(report.branches_removed, 0);
        assert_eq!(g.edge_ids().count(), 1);
    }

    #[test]
    fn plus_sign_with_all_short_arms_prunes_down() {
        // All four arms are short; pruning removes them one at a time.
        // After two removals the junction dissolves into a straight line,
        // which is no longer a branch.
        let mask = BinaryImage::from_ascii(
            "...#...\n\
             ...#...\n\
             ...#...\n\
             #######\n\
             ...#...\n\
             ...#...\n\
             ...#...\n",
        );
        let mut g = SkeletonGraph::from_mask(&mask);
        let report = prune_branches(&mut g, DEFAULT_MIN_BRANCH_LEN);
        assert_eq!(report.branches_removed, 2);
        assert_eq!(g.edge_ids().count(), 1);
        let survivors = g.edge(g.edge_ids().next().unwrap()).len();
        assert_eq!(survivors, 7, "one full line of the plus remains");
    }

    #[test]
    fn short_branch_count_reports() {
        let g = SkeletonGraph::from_mask(&line_with_spur());
        assert_eq!(short_branch_count(&g, DEFAULT_MIN_BRANCH_LEN), 1);
        assert_eq!(short_branch_count(&g, 2), 0);
    }

    #[test]
    fn prune_report_counts_pixels() {
        let mut g = SkeletonGraph::from_mask(&line_with_spur());
        let report = prune_branches(&mut g, DEFAULT_MIN_BRANCH_LEN);
        // Spur edge path: junction pixel + 3 spur pixels = 4; junction
        // pixel stays.
        assert_eq!(report.pixels_removed, 3);
    }
}
