//! Skeleton graphs: pixel-level adjacency and the segment-level graph the
//! clean-up steps of Section 3 operate on.
//!
//! The paper converts the thinning result into a graph and then removes
//! *adjacent junction vertices* — junction pixels with more than one
//! junction pixel among their 8-neighbours — so every node ends up with
//! degree ≤ 4. This module implements that as junction *clustering*: each
//! connected group of mutually adjacent junction pixels collapses into a
//! single [`SkeletonGraph`] node placed at the cluster centroid, connected
//! to every segment that touched the cluster (which is what the paper's
//! subsequent maximum-spanning-tree step restores via "the new junction
//! vertex can connect to all of its neighbors").

use slj_imaging::binary::BinaryImage;
use std::collections::HashMap;

/// Sentinel in the dense pixel-to-vertex index for "no vertex here".
const NO_VERTEX: u32 = u32::MAX;

/// Adjacency graph over the set pixels of a skeleton mask.
///
/// Orthogonal neighbours are always connected; diagonal neighbours are
/// connected only when they do not already share a set orthogonal
/// neighbour. This standard rule avoids counting the little triangles of
/// an 8-connected digital curve as junctions.
#[derive(Debug, Clone, Default)]
pub struct PixelGraph {
    width: usize,
    height: usize,
    positions: Vec<(usize, usize)>,
    /// Dense row-major pixel→vertex table (`NO_VERTEX` = background).
    /// Replaces a per-rebuild `HashMap` so the per-frame hot path does
    /// flat stores and O(1) unhashed neighbour lookups.
    index: Vec<u32>,
    adj: Vec<Vec<usize>>,
}

impl PixelGraph {
    /// Builds the pixel graph of `mask`.
    pub fn from_mask(mask: &BinaryImage) -> Self {
        let mut pg = PixelGraph::default();
        pg.rebuild(mask);
        pg
    }

    /// Rebuilds the graph in place from a new mask, reusing the position
    /// table, pixel index and adjacency storage. This is the
    /// allocation-free counterpart of [`PixelGraph::from_mask`] for
    /// per-frame streaming work; the result is identical, including
    /// adjacency-list ordering.
    pub fn rebuild(&mut self, mask: &BinaryImage) {
        self.width = mask.width();
        self.height = mask.height();
        self.positions.clear();
        self.positions.extend(mask.iter_ones());
        self.index.clear();
        self.index.resize(self.width * self.height, NO_VERTEX);
        for (i, &(x, y)) in self.positions.iter().enumerate() {
            self.index[y * self.width + x] = i as u32;
        }
        let n = self.positions.len();
        self.adj.truncate(n);
        for list in &mut self.adj {
            list.clear();
        }
        self.adj.resize_with(n, Vec::new);
        for i in 0..n {
            let (x, y) = self.positions[i];
            let (xi, yi) = (x as isize, y as isize);
            for (dx, dy) in [(1isize, 0isize), (0, 1), (1, 1), (1, -1)] {
                let (nx, ny) = (xi + dx, yi + dy);
                if !mask.get_or_false(nx, ny) {
                    continue;
                }
                // Diagonal step: skip when a shared orthogonal pixel is
                // set (the connection already exists through it).
                if dx != 0 && dy != 0 {
                    let shared_a = mask.get_or_false(xi + dx, yi);
                    let shared_b = mask.get_or_false(xi, yi + dy);
                    if shared_a || shared_b {
                        continue;
                    }
                }
                let j = self.index[ny as usize * self.width + nx as usize] as usize;
                self.adj[i].push(j);
                self.adj[j].push(i);
            }
        }
    }

    /// Number of pixels (vertices).
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Mask dimensions the graph was built from.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Position of vertex `i`.
    pub fn position(&self, i: usize) -> (usize, usize) {
        self.positions[i]
    }

    /// Vertex index of the pixel at `pos`, if set.
    pub fn vertex_at(&self, pos: (usize, usize)) -> Option<usize> {
        let (x, y) = pos;
        if x >= self.width || y >= self.height {
            return None;
        }
        match self.index[y * self.width + x] {
            NO_VERTEX => None,
            i => Some(i as usize),
        }
    }

    /// Degree of vertex `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.adj[i].len()
    }

    /// Neighbours of vertex `i`.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adj[i]
    }

    /// Indices of junction pixels (degree ≥ 3).
    pub fn junction_pixels(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.degree(i) >= 3).collect()
    }

    /// Indices of end pixels (degree 1).
    pub fn end_pixels(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.degree(i) == 1).collect()
    }

    /// Number of *adjacent junction vertices* in the paper's sense:
    /// junction pixels with more than one junction pixel among their
    /// neighbours.
    pub fn adjacent_junction_count(&self) -> usize {
        let is_junction: Vec<bool> = (0..self.len()).map(|i| self.degree(i) >= 3).collect();
        (0..self.len())
            .filter(|&i| {
                is_junction[i] && self.adj[i].iter().filter(|&&j| is_junction[j]).count() > 1
            })
            .count()
    }
}

/// Classification of a segment-graph node by its current degree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// No incident edges.
    Isolated,
    /// Exactly one incident edge — a branch tip.
    End,
    /// Exactly two incident edges — a pass-through point (left by loop
    /// cuts or pruning; removable by [`SkeletonGraph::normalize`]).
    Corner,
    /// Three or more incident edges — a body-part intersection
    /// ("head and hand", "hand and foot" in the paper).
    Junction,
}

/// A node of the segment graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Position (cluster centroid for merged junctions).
    pub pos: (f64, f64),
    /// Number of junction *pixels* merged into this node (1 for plain
    /// nodes; > 1 marks a removed adjacent-junction cluster).
    pub merged_pixels: usize,
}

/// An edge of the segment graph: a chain of skeleton pixels between two
/// nodes (inclusive of the terminal pixels).
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// First incident node.
    pub a: usize,
    /// Second incident node (may equal `a` for a cycle).
    pub b: usize,
    /// The pixel chain from `a`'s side to `b`'s side.
    pub path: Vec<(usize, usize)>,
}

impl Edge {
    /// Length of the edge in pixels.
    pub fn len(&self) -> usize {
        self.path.len()
    }

    /// Whether the path is empty (never true for constructed edges).
    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }

    /// Whether the edge is a self-loop.
    pub fn is_self_loop(&self) -> bool {
        self.a == self.b
    }
}

/// The segment-level skeleton graph of Section 3.
///
/// Nodes are endpoints, isolated pixels and (clustered) junctions; edges
/// are the pixel chains between them. All clean-up operations — loop
/// cutting ([`crate::spanning`]) and branch pruning ([`crate::prune`]) —
/// act on this structure.
///
/// # Examples
///
/// ```
/// use slj_imaging::binary::BinaryImage;
/// use slj_skeleton::graph::SkeletonGraph;
///
/// // A plus sign: one junction, four ends. ('1' also means "set";
/// // a leading '#' would be eaten by rustdoc's hidden-line syntax.)
/// let mask = BinaryImage::from_ascii(
///     "...1...\n\
///      ...1...\n\
///      ...1...\n\
///      1111111\n\
///      ...1...\n\
///      ...1...\n\
///      ...1...\n",
/// );
/// let graph = SkeletonGraph::from_mask(&mask);
/// assert_eq!(graph.node_ids().count(), 5);
/// assert_eq!(graph.edge_ids().count(), 4);
/// assert_eq!(graph.cycle_rank(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SkeletonGraph {
    width: usize,
    height: usize,
    nodes: Vec<Node>,
    node_alive: Vec<bool>,
    edges: Vec<Edge>,
    edge_alive: Vec<bool>,
    /// Junction clusters of size > 1 encountered during construction.
    merged_clusters: usize,
}

/// Reusable working storage for [`SkeletonGraph::rebuild_from_pixel_graph`]:
/// the per-pixel junction flags, node assignments, flood-fill stacks and
/// chain-walk bookkeeping.
///
/// Holding one of these across frames means the per-pixel tables of graph
/// construction are not reallocated every frame.
#[derive(Debug, Clone, Default)]
pub struct GraphScratch {
    is_junction: Vec<bool>,
    node_of_pixel: Vec<Option<usize>>,
    stack: Vec<usize>,
    members: Vec<usize>,
    used_step: std::collections::HashSet<(usize, usize)>,
    pixel_in_edge: Vec<bool>,
}

impl GraphScratch {
    /// Creates empty scratch storage; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SkeletonGraph {
    /// Builds the segment graph of a skeleton mask.
    pub fn from_mask(mask: &BinaryImage) -> Self {
        Self::from_pixel_graph(&PixelGraph::from_mask(mask))
    }

    /// Builds the segment graph from an existing pixel graph.
    pub fn from_pixel_graph(pg: &PixelGraph) -> Self {
        let mut g = SkeletonGraph::default();
        g.rebuild_from_pixel_graph(pg, &mut GraphScratch::new());
        g
    }

    /// Rebuilds the segment graph in place from a pixel graph, reusing
    /// this graph's node/edge storage and the per-pixel tables in
    /// `scratch`. Identical to [`SkeletonGraph::from_pixel_graph`].
    pub fn rebuild_from_pixel_graph(&mut self, pg: &PixelGraph, scratch: &mut GraphScratch) {
        let n = pg.len();
        let (width, height) = pg.dimensions();
        self.width = width;
        self.height = height;
        let mut nodes = std::mem::take(&mut self.nodes);
        let mut edges = std::mem::take(&mut self.edges);
        nodes.clear();
        edges.clear();
        let mut merged_clusters = 0usize;
        // 1. Junction clustering.
        scratch.is_junction.clear();
        scratch
            .is_junction
            .extend((0..n).map(|i| pg.degree(i) >= 3));
        let is_junction = &scratch.is_junction;
        scratch.node_of_pixel.clear();
        scratch.node_of_pixel.resize(n, None);
        let node_of_pixel = &mut scratch.node_of_pixel;
        for i in 0..n {
            if !is_junction[i] || node_of_pixel[i].is_some() {
                continue;
            }
            // Flood the junction cluster.
            let node_id = nodes.len();
            scratch.stack.clear();
            scratch.stack.push(i);
            scratch.members.clear();
            node_of_pixel[i] = Some(node_id);
            while let Some(v) = scratch.stack.pop() {
                scratch.members.push(v);
                for &w in pg.neighbors(v) {
                    if is_junction[w] && node_of_pixel[w].is_none() {
                        node_of_pixel[w] = Some(node_id);
                        scratch.stack.push(w);
                    }
                }
            }
            let (sx, sy) = scratch.members.iter().fold((0.0, 0.0), |(ax, ay), &v| {
                let (x, y) = pg.position(v);
                (ax + x as f64, ay + y as f64)
            });
            let count = scratch.members.len();
            if count > 1 {
                merged_clusters += 1;
            }
            nodes.push(Node {
                pos: (sx / count as f64, sy / count as f64),
                merged_pixels: count,
            });
        }
        // End and isolated pixels are single-pixel nodes.
        for i in 0..n {
            if pg.degree(i) <= 1 && node_of_pixel[i].is_none() {
                let (x, y) = pg.position(i);
                node_of_pixel[i] = Some(nodes.len());
                nodes.push(Node {
                    pos: (x as f64, y as f64),
                    merged_pixels: 1,
                });
            }
        }

        // 2. Trace segments between node pixels through degree-2 chains.
        scratch.used_step.clear();
        let used_step = &mut scratch.used_step;
        scratch.pixel_in_edge.clear();
        scratch.pixel_in_edge.resize(n, false);
        let pixel_in_edge = &mut scratch.pixel_in_edge;
        for start in 0..n {
            let Some(a) = node_of_pixel[start] else {
                continue;
            };
            for &first in pg.neighbors(start) {
                if node_of_pixel[first] == Some(a) && is_junction[first] && is_junction[start] {
                    // Internal cluster step, not a segment.
                    continue;
                }
                if used_step.contains(&(start, first)) {
                    continue;
                }
                // Walk the chain.
                let mut path = vec![pg.position(start)];
                let mut prev = start;
                let mut cur = first;
                loop {
                    path.push(pg.position(cur));
                    if let Some(b) = node_of_pixel[cur] {
                        // Terminate at any node pixel.
                        used_step.insert((start, first));
                        used_step.insert((cur, prev));
                        edges.push(Edge { a, b, path });
                        break;
                    }
                    pixel_in_edge[cur] = true;
                    // Regular pixel: exactly two neighbours.
                    let next = pg.neighbors(cur).iter().copied().find(|&w| w != prev);
                    match next {
                        Some(w) => {
                            prev = cur;
                            cur = w;
                        }
                        None => {
                            // Dead end without a node pixel — should not
                            // happen (degree-1 pixels are nodes), but
                            // terminate defensively as an extra end node.
                            let (x, y) = pg.position(cur);
                            let b = nodes.len();
                            nodes.push(Node {
                                pos: (x as f64, y as f64),
                                merged_pixels: 1,
                            });
                            used_step.insert((start, first));
                            edges.push(Edge { a, b, path });
                            break;
                        }
                    }
                }
            }
        }

        // 3. Pure cycles: degree-2 components never touched above.
        for i in 0..n {
            if node_of_pixel[i].is_some() || pixel_in_edge[i] || pg.degree(i) != 2 {
                continue;
            }
            // Promote this pixel to an artificial node and trace the loop.
            let (x, y) = pg.position(i);
            let a = nodes.len();
            nodes.push(Node {
                pos: (x as f64, y as f64),
                merged_pixels: 1,
            });
            let mut path = vec![pg.position(i)];
            let mut prev = i;
            let mut cur = pg.neighbors(i)[0];
            pixel_in_edge[i] = true;
            while cur != i {
                path.push(pg.position(cur));
                pixel_in_edge[cur] = true;
                // Every cycle pixel has exactly two neighbours; if the
                // graph invariant is ever violated, close the loop early
                // instead of taking the whole pipeline down.
                let Some(next) = pg.neighbors(cur).iter().copied().find(|&w| w != prev) else {
                    break;
                };
                prev = cur;
                cur = next;
            }
            path.push(pg.position(i));
            edges.push(Edge { a, b: a, path });
        }

        self.merged_clusters = merged_clusters;
        self.node_alive.clear();
        self.node_alive.resize(nodes.len(), true);
        self.edge_alive.clear();
        self.edge_alive.resize(edges.len(), true);
        self.nodes = nodes;
        self.edges = edges;
    }

    /// Mask dimensions the graph was built from.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Number of junction clusters with more than one pixel that were
    /// collapsed during construction (the paper's removed adjacent
    /// junction vertices).
    pub fn merged_cluster_count(&self) -> usize {
        self.merged_clusters
    }

    /// IDs of live nodes.
    pub fn node_ids(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.nodes.len()).filter(move |&i| self.node_alive[i])
    }

    /// IDs of live edges.
    pub fn edge_ids(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.edges.len()).filter(move |&i| self.edge_alive[i])
    }

    /// The node with the given ID.
    ///
    /// # Panics
    ///
    /// Panics if the node was removed.
    pub fn node(&self, id: usize) -> &Node {
        assert!(self.node_alive[id], "node {id} has been removed");
        &self.nodes[id]
    }

    /// The edge with the given ID.
    ///
    /// # Panics
    ///
    /// Panics if the edge was removed.
    pub fn edge(&self, id: usize) -> &Edge {
        assert!(self.edge_alive[id], "edge {id} has been removed");
        &self.edges[id]
    }

    /// Degree of a node (self-loops count twice).
    pub fn degree(&self, node: usize) -> usize {
        self.edge_ids()
            .map(|e| {
                let edge = &self.edges[e];
                (edge.a == node) as usize + (edge.b == node) as usize
            })
            .sum()
    }

    /// Kind of a node by its current degree.
    pub fn kind(&self, node: usize) -> NodeKind {
        match self.degree(node) {
            0 => NodeKind::Isolated,
            1 => NodeKind::End,
            2 => NodeKind::Corner,
            _ => NodeKind::Junction,
        }
    }

    /// Live edges incident to `node`.
    pub fn incident_edges(&self, node: usize) -> Vec<usize> {
        self.edge_ids()
            .filter(|&e| self.edges[e].a == node || self.edges[e].b == node)
            .collect()
    }

    /// Number of connected components among live nodes.
    pub fn component_count(&self) -> usize {
        self.components().len()
    }

    /// Connected components as lists of node IDs.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut seen: HashMap<usize, bool> = self.node_ids().map(|i| (i, false)).collect();
        let mut comps = Vec::new();
        for start in self.node_ids() {
            if seen[&start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![start];
            if let Some(s) = seen.get_mut(&start) {
                *s = true;
            }
            while let Some(v) = stack.pop() {
                comp.push(v);
                for e in self.incident_edges(v) {
                    let edge = &self.edges[e];
                    let other = if edge.a == v { edge.b } else { edge.a };
                    if let Some(s) = seen.get_mut(&other) {
                        if !*s {
                            *s = true;
                            stack.push(other);
                        }
                    }
                }
            }
            comps.push(comp);
        }
        comps
    }

    /// Number of independent cycles: `E - V + C` over live elements.
    pub fn cycle_rank(&self) -> usize {
        let v = self.node_ids().count();
        let e = self.edge_ids().count();
        let c = self.component_count();
        (e + c).saturating_sub(v)
    }

    /// Total number of skeleton pixels across live edges (shared terminal
    /// pixels counted per edge).
    pub fn total_path_pixels(&self) -> usize {
        self.edge_ids().map(|e| self.edges[e].len()).sum()
    }

    /// Removes an edge (its pixels disappear from the skeleton). Nodes
    /// left isolated are removed too.
    ///
    /// # Panics
    ///
    /// Panics if the edge was already removed.
    pub fn remove_edge(&mut self, edge_id: usize) {
        assert!(self.edge_alive[edge_id], "edge {edge_id} already removed");
        self.edge_alive[edge_id] = false;
        let Edge { a, b, .. } = self.edges[edge_id];
        for node in [a, b] {
            if self.node_alive[node] && self.degree(node) == 0 {
                self.node_alive[node] = false;
            }
        }
    }

    /// Splits an edge at its middle pixel (the paper's loop-cut "green
    /// dot"): the midpoint pixel is discarded and the two halves become
    /// edges ending in fresh [`NodeKind::End`] nodes.
    ///
    /// Edges of length < 3 are simply removed (there is no interior pixel
    /// to cut at).
    ///
    /// # Panics
    ///
    /// Panics if the edge was already removed.
    pub fn split_edge_at_midpoint(&mut self, edge_id: usize) {
        assert!(self.edge_alive[edge_id], "edge {edge_id} already removed");
        let edge = self.edges[edge_id].clone();
        if edge.len() < 3 {
            self.remove_edge(edge_id);
            return;
        }
        let mid = edge.len() / 2;
        let first_half: Vec<_> = edge.path[..mid].to_vec();
        let second_half: Vec<_> = edge.path[mid + 1..].to_vec();
        self.edge_alive[edge_id] = false;
        if let Some(&tip) = first_half.last() {
            let tip_node = self.push_node(tip);
            self.push_edge(Edge {
                a: edge.a,
                b: tip_node,
                path: first_half,
            });
        }
        if !second_half.is_empty() {
            let tip = second_half[0];
            let tip_node = self.push_node(tip);
            self.push_edge(Edge {
                a: tip_node,
                b: edge.b,
                path: second_half,
            });
        }
    }

    fn push_node(&mut self, pos: (usize, usize)) -> usize {
        self.nodes.push(Node {
            pos: (pos.0 as f64, pos.1 as f64),
            merged_pixels: 1,
        });
        self.node_alive.push(true);
        self.nodes.len() - 1
    }

    fn push_edge(&mut self, edge: Edge) -> usize {
        self.edges.push(edge);
        self.edge_alive.push(true);
        self.edges.len() - 1
    }

    /// Splices out pass-through nodes: every [`NodeKind::Corner`] node
    /// whose two incident edges are distinct gets removed and its edges
    /// concatenated, so branch lengths are measured junction-to-end as the
    /// pruning step requires.
    pub fn normalize(&mut self) {
        loop {
            let candidate = self.node_ids().find(|&v| {
                let inc = self.incident_edges(v);
                inc.len() == 2
                    && inc[0] != inc[1]
                    && !self.edges[inc[0]].is_self_loop()
                    && !self.edges[inc[1]].is_self_loop()
            });
            let Some(v) = candidate else {
                break;
            };
            let inc = self.incident_edges(v);
            let (e1, e2) = (inc[0], inc[1]);
            let mut p1 = self.edges[e1].path.clone();
            let mut p2 = self.edges[e2].path.clone();
            // Orient p1 to end at v and p2 to start at v.
            let a = if self.edges[e1].a == v {
                p1.reverse();
                self.edges[e1].b
            } else {
                self.edges[e1].a
            };
            let b = if self.edges[e2].a == v {
                self.edges[e2].b
            } else {
                p2.reverse();
                self.edges[e2].a
            };
            // Drop the duplicated shared pixel at the seam.
            let mut path = p1;
            path.extend(p2.into_iter().skip(1));
            self.edge_alive[e1] = false;
            self.edge_alive[e2] = false;
            self.node_alive[v] = false;
            self.push_edge(Edge { a, b, path });
        }
    }

    /// Renders the live edges (and node positions) back into a mask.
    pub fn to_mask(&self) -> BinaryImage {
        let mut mask = BinaryImage::new(self.width, self.height);
        self.to_mask_into(&mut mask);
        mask
    }

    /// In-place variant of [`SkeletonGraph::to_mask`]: writes the rendered
    /// mask into `out` (resized as needed). Bit-identical to the
    /// allocating version.
    pub fn to_mask_into(&self, out: &mut BinaryImage) {
        out.reset(self.width, self.height);
        let mask = out;
        for e in self.edge_ids() {
            for &(x, y) in &self.edges[e].path {
                mask.set(x, y, true);
            }
        }
        for v in self.node_ids() {
            let (x, y) = self.nodes[v].pos;
            let (xi, yi) = (x.round() as isize, y.round() as isize);
            if xi >= 0 && yi >= 0 && (xi as usize) < self.width && (yi as usize) < self.height {
                mask.set(xi as usize, yi as usize, true);
            }
        }
    }

    /// Shortest node-to-node route (by pixel length) between `from` and
    /// `to`, returned as the concatenated pixel path; `None` when
    /// disconnected. Uses Dijkstra over edge pixel lengths.
    pub fn pixel_path(&self, from: usize, to: usize) -> Option<Vec<(usize, usize)>> {
        if from == to {
            let (x, y) = self.nodes[from].pos;
            return Some(vec![(x.round() as usize, y.round() as usize)]);
        }
        let mut dist: HashMap<usize, usize> = HashMap::new();
        let mut back: HashMap<usize, (usize, usize)> = HashMap::new(); // node -> (prev node, via edge)
        let mut heap = std::collections::BinaryHeap::new();
        dist.insert(from, 0);
        heap.push(std::cmp::Reverse((0usize, from)));
        while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
            if v == to {
                break;
            }
            if dist.get(&v).copied().unwrap_or(usize::MAX) < d {
                continue;
            }
            for e in self.incident_edges(v) {
                let edge = &self.edges[e];
                if edge.is_self_loop() {
                    continue;
                }
                let other = if edge.a == v { edge.b } else { edge.a };
                let nd = d + edge.len();
                if nd < dist.get(&other).copied().unwrap_or(usize::MAX) {
                    dist.insert(other, nd);
                    back.insert(other, (v, e));
                    heap.push(std::cmp::Reverse((nd, other)));
                }
            }
        }
        if !back.contains_key(&to) {
            return None;
        }
        // Reconstruct the pixel path.
        let mut segments: Vec<Vec<(usize, usize)>> = Vec::new();
        let mut cur = to;
        while cur != from {
            let (prev, e) = back[&cur];
            let edge = &self.edges[e];
            let mut p = edge.path.clone();
            if edge.a == cur {
                // path runs cur -> prev; reverse to prev -> cur
                p.reverse();
            }
            segments.push(p);
            cur = prev;
        }
        segments.reverse();
        let mut out: Vec<(usize, usize)> = Vec::new();
        for seg in segments {
            let skip = usize::from(!out.is_empty());
            out.extend(seg.into_iter().skip(skip));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plus_sign() -> BinaryImage {
        BinaryImage::from_ascii(
            "...#...\n\
             ...#...\n\
             ...#...\n\
             #######\n\
             ...#...\n\
             ...#...\n\
             ...#...\n",
        )
    }

    /// Hash-indexed oracle for [`PixelGraph::rebuild`]: the pre-rewrite
    /// builder, with a `HashMap` pixel index instead of the dense table.
    fn rebuild_hash_reference(mask: &BinaryImage) -> (Vec<(usize, usize)>, Vec<Vec<usize>>) {
        let positions: Vec<(usize, usize)> = mask.iter_ones().collect();
        let index: std::collections::HashMap<(usize, usize), usize> =
            positions.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); positions.len()];
        for (i, &(x, y)) in positions.iter().enumerate() {
            let (xi, yi) = (x as isize, y as isize);
            for (dx, dy) in [(1isize, 0isize), (0, 1), (1, 1), (1, -1)] {
                let (nx, ny) = (xi + dx, yi + dy);
                if !mask.get_or_false(nx, ny) {
                    continue;
                }
                if dx != 0
                    && dy != 0
                    && (mask.get_or_false(xi + dx, yi) || mask.get_or_false(xi, yi + dy))
                {
                    continue;
                }
                let j = index[&(nx as usize, ny as usize)];
                adj[i].push(j);
                adj[j].push(i);
            }
        }
        (positions, adj)
    }

    /// Deterministic LCG for randomized equivalence tests.
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    #[test]
    fn dense_index_matches_scalar_reference_on_random_masks() {
        let mut state = 0x4528_21E6_38D0_1377u64;
        let mut pg = PixelGraph::default();
        for (w, h) in [(1, 1), (7, 7), (64, 2), (65, 3), (33, 21)] {
            for density in [2u64, 5] {
                let mut mask = BinaryImage::new(w, h);
                for y in 0..h {
                    for x in 0..w {
                        mask.set(x, y, lcg(&mut state) % 8 < density);
                    }
                }
                let (positions, adj) = rebuild_hash_reference(&mask);
                pg.rebuild(&mask); // reuse across iterations: no stale state
                assert_eq!(pg.len(), positions.len(), "{w}x{h} density {density}");
                for i in 0..pg.len() {
                    assert_eq!(pg.position(i), positions[i]);
                    assert_eq!(pg.neighbors(i), &adj[i][..], "vertex {i} {w}x{h}");
                    assert_eq!(pg.vertex_at(positions[i]), Some(i));
                }
                for y in 0..h {
                    for x in 0..w {
                        if !mask.get(x, y) {
                            assert_eq!(pg.vertex_at((x, y)), None);
                        }
                    }
                }
                assert_eq!(pg.vertex_at((w, 0)), None, "out of bounds is None");
            }
        }
    }

    #[test]
    fn pixel_graph_degrees_on_line() {
        let mask = BinaryImage::from_ascii("#####\n");
        let pg = PixelGraph::from_mask(&mask);
        assert_eq!(pg.len(), 5);
        assert_eq!(pg.end_pixels().len(), 2);
        assert!(pg.junction_pixels().is_empty());
    }

    #[test]
    fn pixel_graph_skips_redundant_diagonals() {
        // Staircase: each pixel connects orthogonally through the shared
        // neighbour; the diagonal shortcut must be skipped.
        let mask = BinaryImage::from_ascii(
            "##.\n\
             .##\n",
        );
        let pg = PixelGraph::from_mask(&mask);
        let v = pg.vertex_at((1, 0)).unwrap();
        // (1,0) connects to (0,0) and (1,1) but NOT diagonally to (2,1).
        assert_eq!(pg.degree(v), 2);
    }

    #[test]
    fn pixel_graph_keeps_true_diagonals() {
        let mask = BinaryImage::from_ascii(
            "#.\n\
             .#\n",
        );
        let pg = PixelGraph::from_mask(&mask);
        assert_eq!(pg.degree(0), 1);
        assert_eq!(pg.degree(1), 1);
    }

    #[test]
    fn plus_sign_segment_graph() {
        let g = SkeletonGraph::from_mask(&plus_sign());
        assert_eq!(g.node_ids().count(), 5);
        assert_eq!(g.edge_ids().count(), 4);
        assert_eq!(g.cycle_rank(), 0);
        assert_eq!(g.component_count(), 1);
        let junctions: Vec<_> = g
            .node_ids()
            .filter(|&v| g.kind(v) == NodeKind::Junction)
            .collect();
        assert_eq!(junctions.len(), 1);
        assert_eq!(g.degree(junctions[0]), 4);
    }

    #[test]
    fn ring_has_cycle_rank_one() {
        let mask = BinaryImage::from_ascii(
            ".###.\n\
             .#.#.\n\
             .###.\n",
        );
        let g = SkeletonGraph::from_mask(&mask);
        assert_eq!(g.cycle_rank(), 1);
        assert_eq!(g.component_count(), 1);
    }

    #[test]
    fn lollipop_ring_plus_tail() {
        // A ring with a tail: junction where the tail meets the ring.
        let mask = BinaryImage::from_ascii(
            ".###....\n\
             .#.#....\n\
             .#######\n",
        );
        let g = SkeletonGraph::from_mask(&mask);
        assert_eq!(g.cycle_rank(), 1);
        let ends: Vec<_> = g
            .node_ids()
            .filter(|&v| g.kind(v) == NodeKind::End)
            .collect();
        assert_eq!(ends.len(), 1, "one tail end");
    }

    #[test]
    fn merged_cluster_detected() {
        // Three junction pixels in a row at (1,1), (2,1), (3,1); the
        // middle one has two junction neighbours, making it an adjacent
        // junction vertex in the paper's sense.
        let mask = BinaryImage::from_ascii(
            ".#.#...\n\
             #####..\n\
             ..#....\n",
        );
        let pg = PixelGraph::from_mask(&mask);
        assert_eq!(pg.junction_pixels().len(), 3);
        assert_eq!(pg.adjacent_junction_count(), 1);
        let g = SkeletonGraph::from_pixel_graph(&pg);
        assert_eq!(g.merged_cluster_count(), 1);
        // Cluster collapses to one node carrying all five branches.
        let junctions: Vec<_> = g
            .node_ids()
            .filter(|&v| g.kind(v) == NodeKind::Junction)
            .collect();
        assert_eq!(junctions.len(), 1);
        assert_eq!(g.degree(junctions[0]), 5);
        assert_eq!(g.node(junctions[0]).merged_pixels, 3);
        assert_eq!(
            g.node_ids().filter(|&v| g.kind(v) == NodeKind::End).count(),
            5
        );
    }

    #[test]
    fn two_junction_cluster_is_not_adjacent_by_paper_definition() {
        // Two junction pixels side by side: each has exactly one junction
        // neighbour, so neither crosses the "more than one" bar, yet they
        // still merge into a single segment-graph node.
        let mask = BinaryImage::from_ascii(
            "..#..#..\n\
             ...##...\n\
             ..#..#..\n",
        );
        let pg = PixelGraph::from_mask(&mask);
        assert_eq!(pg.junction_pixels().len(), 2);
        assert_eq!(pg.adjacent_junction_count(), 0);
        let g = SkeletonGraph::from_pixel_graph(&pg);
        assert_eq!(g.merged_cluster_count(), 1);
        let junctions: Vec<_> = g
            .node_ids()
            .filter(|&v| g.kind(v) == NodeKind::Junction)
            .collect();
        assert_eq!(junctions.len(), 1);
        assert_eq!(g.degree(junctions[0]), 4);
    }

    #[test]
    fn remove_edge_updates_structure() {
        let mut g = SkeletonGraph::from_mask(&plus_sign());
        let shortest = g.edge_ids().min_by_key(|&e| g.edge(e).len()).unwrap();
        let nodes_before = g.node_ids().count();
        g.remove_edge(shortest);
        assert_eq!(g.edge_ids().count(), 3);
        // The orphaned end node disappears.
        assert_eq!(g.node_ids().count(), nodes_before - 1);
    }

    #[test]
    fn split_edge_cuts_cycle() {
        let mask = BinaryImage::from_ascii(
            ".###.\n\
             .#.#.\n\
             .###.\n",
        );
        let mut g = SkeletonGraph::from_mask(&mask);
        assert_eq!(g.cycle_rank(), 1);
        let loop_edge = g.edge_ids().find(|&e| g.edge(e).is_self_loop()).unwrap();
        let pixels_before = g.total_path_pixels();
        g.split_edge_at_midpoint(loop_edge);
        assert_eq!(g.cycle_rank(), 0);
        // Exactly one pixel (the midpoint) is gone, modulo the duplicated
        // seam pixel of the self-loop path.
        assert!(g.total_path_pixels() < pixels_before);
        assert_eq!(g.component_count(), 1);
    }

    #[test]
    fn split_short_edge_just_removes() {
        let mask = BinaryImage::from_ascii("##\n");
        let mut g = SkeletonGraph::from_mask(&mask);
        let e = g.edge_ids().next().unwrap();
        g.split_edge_at_midpoint(e);
        assert_eq!(g.edge_ids().count(), 0);
    }

    #[test]
    fn normalize_merges_corner_nodes() {
        let mask = BinaryImage::from_ascii(
            ".###.\n\
             .#.#.\n\
             .###.\n",
        );
        let mut g = SkeletonGraph::from_mask(&mask);
        let loop_edge = g.edge_ids().find(|&e| g.edge(e).is_self_loop()).unwrap();
        g.split_edge_at_midpoint(loop_edge);
        // The split leaves the artificial loop node with degree 2.
        g.normalize();
        let corner_count = g
            .node_ids()
            .filter(|&v| g.kind(v) == NodeKind::Corner)
            .count();
        assert_eq!(corner_count, 0);
        assert_eq!(g.edge_ids().count(), 1);
        assert_eq!(
            g.node_ids().filter(|&v| g.kind(v) == NodeKind::End).count(),
            2
        );
    }

    #[test]
    fn pixel_path_via_dijkstra() {
        let g = SkeletonGraph::from_mask(&plus_sign());
        // Path between the two horizontal ends passes the junction.
        let ends: Vec<_> = g
            .node_ids()
            .filter(|&v| g.kind(v) == NodeKind::End)
            .collect();
        let left = *ends
            .iter()
            .min_by(|&&a, &&b| g.node(a).pos.0.partial_cmp(&g.node(b).pos.0).unwrap())
            .unwrap();
        let right = *ends
            .iter()
            .max_by(|&&a, &&b| g.node(a).pos.0.partial_cmp(&g.node(b).pos.0).unwrap())
            .unwrap();
        let path = g.pixel_path(left, right).unwrap();
        assert_eq!(path.first(), Some(&(0, 3)));
        assert_eq!(path.last(), Some(&(6, 3)));
        assert_eq!(path.len(), 7);
    }

    #[test]
    fn pixel_path_disconnected_returns_none() {
        let mask = BinaryImage::from_ascii("##..##\n");
        let g = SkeletonGraph::from_mask(&mask);
        let nodes: Vec<_> = g.node_ids().collect();
        // Find nodes in different components.
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        assert!(g.pixel_path(comps[0][0], comps[1][0]).is_none());
        assert!(nodes.len() >= 4);
    }

    #[test]
    fn to_mask_round_trips_pixels() {
        let mask = plus_sign();
        let g = SkeletonGraph::from_mask(&mask);
        assert_eq!(g.to_mask(), mask);
    }

    #[test]
    fn isolated_pixel_is_isolated_node() {
        let mut mask = BinaryImage::new(5, 5);
        mask.set(2, 2, true);
        let g = SkeletonGraph::from_mask(&mask);
        assert_eq!(g.node_ids().count(), 1);
        let v = g.node_ids().next().unwrap();
        assert_eq!(g.kind(v), NodeKind::Isolated);
    }
}
