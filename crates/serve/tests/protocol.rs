//! Table-driven malformed-input fixtures: every hostile request must
//! come back as a structured JSON error with the right status and
//! code — never a panic, never a dropped connection.

use slj_core::config::PipelineConfig;
use slj_core::training::Trainer;
use slj_serve::client::{request, HttpResponse};
use slj_serve::http::Limits;
use slj_serve::{Server, ServerConfig, ServerHandle};
use slj_sim::{ClipSpec, JumpSimulator};
use std::io::{Read, Write};
use std::net::TcpStream;

fn spawn_server() -> ServerHandle {
    let sim = JumpSimulator::new(23);
    let clips: Vec<_> = (0..2)
        .map(|i| {
            sim.generate_clip(&ClipSpec {
                total_frames: 24,
                seed: 23 + i,
                ..ClipSpec::default()
            })
        })
        .collect();
    let model = Trainer::new(PipelineConfig::default())
        .expect("config")
        .train(&clips)
        .expect("train");
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        limits: Limits {
            max_body: 1 << 20, // 1 MiB, so an oversized body is cheap to test
            ..Limits::default()
        },
        ..ServerConfig::default()
    };
    Server::bind(config, model)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

/// One malformed-request fixture.
struct Fixture {
    name: &'static str,
    method: &'static str,
    path: &'static str,
    body: Vec<u8>,
    want_status: u16,
    want_code: &'static str,
}

fn assert_structured_error(name: &str, resp: &HttpResponse, status: u16, code: &'static str) {
    assert_eq!(resp.status, status, "{name}: body {}", resp.text());
    let text = resp.text();
    assert!(
        text.starts_with("{\"error\":{\"code\":"),
        "{name}: not a structured error: {text}"
    );
    assert!(
        text.contains(&format!("\"code\":\"{code}\"")),
        "{name}: expected code {code}, got {text}"
    );
    assert_eq!(
        resp.header("content-type"),
        Some("application/json"),
        "{name}"
    );
}

/// A PPM with a valid header whose payload is cut off mid-pixel.
fn truncated_ppm() -> Vec<u8> {
    let mut bytes = b"P6\n8 8\n255\n".to_vec();
    bytes.extend(std::iter::repeat_n(0u8, 50)); // needs 192 payload bytes
    bytes
}

/// A PPM header declaring more pixels than the per-frame limit.
fn huge_frame_header() -> Vec<u8> {
    format!("P6\n{} {}\n255\n", 1 << 12, 1 << 12).into_bytes()
}

#[test]
fn malformed_requests_get_structured_errors() {
    let handle = spawn_server();
    let addr = handle.addr.to_string();

    let fixtures = vec![
        Fixture {
            name: "unknown path",
            method: "GET",
            path: "/nope",
            body: Vec::new(),
            want_status: 404,
            want_code: "not_found",
        },
        Fixture {
            name: "wrong method on evaluate",
            method: "GET",
            path: "/v1/evaluate",
            body: Vec::new(),
            want_status: 405,
            want_code: "method_not_allowed",
        },
        Fixture {
            name: "wrong method on metrics",
            method: "DELETE",
            path: "/metrics",
            body: Vec::new(),
            want_status: 405,
            want_code: "method_not_allowed",
        },
        Fixture {
            name: "empty evaluate body",
            method: "POST",
            path: "/v1/evaluate",
            body: Vec::new(),
            want_status: 400,
            want_code: "empty_body",
        },
        Fixture {
            name: "garbage frame bytes",
            method: "POST",
            path: "/v1/evaluate",
            body: b"these bytes are not a PPM".to_vec(),
            want_status: 400,
            want_code: "bad_frame",
        },
        Fixture {
            name: "truncated frame payload",
            method: "POST",
            path: "/v1/evaluate",
            body: truncated_ppm(),
            want_status: 400,
            want_code: "bad_frame",
        },
        Fixture {
            name: "oversized frame dimensions",
            method: "POST",
            path: "/v1/evaluate",
            body: huge_frame_header(),
            want_status: 413,
            want_code: "frame_too_large",
        },
        Fixture {
            name: "body over the configured limit",
            method: "POST",
            path: "/v1/evaluate",
            body: vec![0u8; (1 << 20) + 1],
            want_status: 413,
            want_code: "body_too_large",
        },
        Fixture {
            name: "invalid UTF-8 session config",
            method: "POST",
            path: "/v1/sessions",
            body: vec![0xff, 0xfe, 0x80],
            want_status: 400,
            want_code: "json_invalid",
        },
        Fixture {
            name: "malformed session JSON",
            method: "POST",
            path: "/v1/sessions",
            body: b"{\"poses\":}".to_vec(),
            want_status: 400,
            want_code: "json_invalid",
        },
        Fixture {
            name: "unknown pose count",
            method: "POST",
            path: "/v1/sessions",
            body: b"{\"poses\":7}".to_vec(),
            want_status: 422,
            want_code: "pose_count_mismatch",
        },
        Fixture {
            name: "unknown config field",
            method: "POST",
            path: "/v1/sessions",
            body: b"{\"retries\":3}".to_vec(),
            want_status: 422,
            want_code: "unknown_field",
        },
        Fixture {
            name: "out-of-range ttl",
            method: "POST",
            path: "/v1/sessions",
            body: b"{\"ttl_ms\":0}".to_vec(),
            want_status: 422,
            want_code: "bad_field",
        },
        Fixture {
            name: "frames for an unknown session",
            method: "POST",
            path: "/v1/sessions/999999/frames",
            body: truncated_ppm(),
            want_status: 404,
            want_code: "session_not_found",
        },
        Fixture {
            name: "non-numeric session id",
            method: "DELETE",
            path: "/v1/sessions/abc",
            body: Vec::new(),
            want_status: 404,
            want_code: "session_not_found",
        },
        Fixture {
            name: "delete of an unknown session",
            method: "DELETE",
            path: "/v1/sessions/424242",
            body: Vec::new(),
            want_status: 404,
            want_code: "session_not_found",
        },
    ];

    for fixture in fixtures {
        let resp = request(
            &addr,
            fixture.method,
            fixture.path,
            "application/octet-stream",
            &fixture.body,
            30_000,
        )
        .unwrap_or_else(|e| panic!("{}: connection failed: {e}", fixture.name));
        assert_structured_error(fixture.name, &resp, fixture.want_status, fixture.want_code);
    }
    handle.stop().expect("stop");
}

/// Raw-socket fixtures for failures below the HTTP client's level.
#[test]
fn wire_level_garbage_is_rejected_not_crashed() {
    let handle = spawn_server();
    let addr = handle.addr;

    // Not HTTP at all.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"THIS IS NOT HTTP\r\n\r\n")
        .expect("write");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read");
    assert!(reply.starts_with("HTTP/1.1 400 "), "got: {reply}");
    assert!(reply.contains("\"code\":\"bad_request\""));

    // Declares 100 body bytes, sends 10, then closes the write side.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"POST /v1/evaluate HTTP/1.1\r\ncontent-length: 100\r\n\r\n0123456789")
        .expect("write");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("shutdown write");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read");
    assert!(reply.starts_with("HTTP/1.1 400 "), "got: {reply}");
    assert!(reply.contains("\"code\":\"body_truncated\""));

    // Chunked transfer encoding is declared unsupported, not mangled.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"POST /v1/evaluate HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n")
        .expect("write");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read");
    assert!(reply.starts_with("HTTP/1.1 501 "), "got: {reply}");
    assert!(reply.contains("\"code\":\"unsupported_encoding\""));

    // An oversized request head is bounded, not buffered forever.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut huge_head = b"GET /healthz HTTP/1.1\r\n".to_vec();
    huge_head.extend(std::iter::repeat_n(b'x', 9000)); // default head limit is 8 KiB
    stream.write_all(&huge_head).expect("write");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read");
    assert!(reply.starts_with("HTTP/1.1 431 "), "got: {reply}");

    // After all that abuse the server still answers cleanly.
    let health = request(
        &addr.to_string(),
        "GET",
        "/healthz",
        "application/json",
        b"",
        30_000,
    )
    .expect("healthz");
    assert_eq!(health.status, 200);
    handle.stop().expect("stop");
}
