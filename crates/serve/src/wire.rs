//! The clip wire format and the canonical decision-record JSON.
//!
//! Requests carry frames as **concatenated binary PPMs**: P6 headers
//! fix each payload length, so a byte stream splits into frames with
//! [`slj_imaging::io::read_ppm_prefix`] and no extra framing protocol.
//! Responses carry per-frame decision records whose serialisation is
//! defined *here*, in one place, so the integration tests can assert
//! the wire bytes are bit-identical to an in-process session's output
//! (the determinism contract, extended across the socket).

use crate::error::ApiError;
use slj_core::model::{Decision, PoseEstimate};
use slj_core::scoring::AssessedFault;
use slj_imaging::io::{ppm_header, read_ppm_prefix, write_ppm};
use slj_imaging::RgbImage;
use slj_obs::JsonWriter;
use slj_taxonomy::Taxonomy;

/// Upper bound on a single frame's pixel count (width × height). At 4
/// megapixels a P6 frame is ~12 MiB — far beyond the 64×64 frames the
/// simulator renders, but small enough that a hostile header cannot
/// make the server allocate gigabytes.
pub const MAX_FRAME_PIXELS: usize = 1 << 22;

/// Splits a body of concatenated PPMs into frames.
///
/// # Errors
///
/// `400 bad_frame` for malformed or truncated PPM bytes, `400
/// empty_body` when no frame is present, and `413 frame_too_large`
/// when a header declares more than [`MAX_FRAME_PIXELS`] pixels —
/// checked *before* the pixel payload is touched.
pub fn split_frames(body: &[u8]) -> Result<Vec<RgbImage>, ApiError> {
    let mut frames = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let (width, height, _offset) = ppm_header(rest).map_err(ApiError::from)?;
        if width.saturating_mul(height) > MAX_FRAME_PIXELS {
            return Err(ApiError::new(
                413,
                "frame_too_large",
                format!(
                    "frame {} declares {width}x{height} pixels; limit is {MAX_FRAME_PIXELS}",
                    frames.len()
                ),
            ));
        }
        let (frame, consumed) = read_ppm_prefix(rest).map_err(ApiError::from)?;
        frames.push(frame);
        rest = &rest[consumed..];
    }
    if frames.is_empty() {
        return Err(ApiError::bad_request(
            "empty_body",
            "expected at least one PPM frame",
        ));
    }
    Ok(frames)
}

/// Concatenates `frames` into one request body (the client-side inverse
/// of [`split_frames`]).
pub fn encode_frames(frames: &[&RgbImage]) -> Vec<u8> {
    let mut out = Vec::new();
    for frame in frames {
        // Writing into a Vec cannot fail.
        let _ = write_ppm(&mut out, frame);
    }
    out
}

/// Serialises one frame's decision — the exact field set of the JSONL
/// trace records (`slj trace`) minus the timing fields, which are the
/// one non-deterministic part. Both the server handlers and the
/// bit-identical wire tests call this. Pose and stage names are the
/// model taxonomy's machine idents (for the shipped standing-long-jump
/// artifact these are the legacy enum names, so the wire bytes are
/// unchanged).
pub fn decision_json(
    frame: u64,
    estimate: &PoseEstimate,
    decision: &Decision,
    taxonomy: &Taxonomy,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("frame");
    w.u64(frame);
    w.key("pose");
    match estimate.pose {
        Some(pose) => w.string(taxonomy.pose_ident(pose)),
        None => w.null(),
    }
    w.key("committed");
    w.string(taxonomy.pose_ident(estimate.committed_pose));
    w.key("posterior");
    w.begin_array();
    for p in &estimate.posterior {
        w.f64(*p);
    }
    w.end_array();
    w.key("best_prob");
    w.f64(decision.best_prob);
    w.key("th_margin");
    w.f64(decision.th_margin);
    w.key("accepted");
    w.bool(decision.accepted);
    w.key("majority_exempt");
    w.bool(decision.majority_exempt);
    w.key("unknown_reason");
    if decision.accepted {
        w.null();
    } else {
        w.string("below_th_pose");
    }
    w.key("carry_forward");
    w.bool(decision.carry_forward);
    w.key("stage");
    w.string(taxonomy.stage_ident(estimate.stage));
    w.key("stage_posterior");
    w.begin_array();
    for p in &estimate.stage_posterior {
        w.f64(*p);
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Serialises one `f64` exactly as [`JsonWriter`] would embed it
/// (`1.0` → `1`, non-finite → `null`), so hand-assembled response
/// bodies keep the workspace's single number-formatting rule.
pub fn f64_json(value: f64) -> String {
    let mut w = JsonWriter::new();
    w.f64(value);
    w.finish()
}

/// The `,"confidence":S,"quality":{...}` suffix appended to scored
/// responses, or the empty string when no analyzer produced a report —
/// the disabled path contributes zero bytes, keeping the legacy wire
/// contract bit-identical.
pub fn quality_suffix(report: Option<&slj_quality::QualityReport>) -> String {
    match report {
        Some(report) => format!(
            ",\"confidence\":{},\"quality\":{}",
            f64_json(report.clip_score),
            report.summary_json()
        ),
        None => String::new(),
    }
}

/// Serialises a standards assessment as a JSON array of fault objects.
/// `fault` carries the rule's report name and `stage` the stage's
/// machine ident, matching the legacy enum-backed encoding exactly.
pub fn faults_json(faults: &[AssessedFault]) -> String {
    let mut w = JsonWriter::new();
    w.begin_array();
    for fault in faults {
        w.begin_object();
        w.key("fault");
        w.string(&fault.display);
        w.key("stage");
        w.string(&fault.stage_ident);
        w.key("advice");
        w.string(&fault.advice);
        w.end_object();
    }
    w.end_array();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_imaging::Rgb;

    fn frame(w: usize, h: usize, tint: u8) -> RgbImage {
        RgbImage::from_fn(w, h, |x, y| Rgb::new(x as u8, y as u8, tint))
    }

    #[test]
    fn frames_round_trip_through_the_wire_format() {
        let a = frame(6, 4, 1);
        let b = frame(6, 4, 2);
        let body = encode_frames(&[&a, &b]);
        let back = split_frames(&body).unwrap();
        assert_eq!(back, vec![a, b]);
    }

    #[test]
    fn empty_and_garbage_bodies_are_client_errors() {
        assert_eq!(split_frames(b"").unwrap_err().code, "empty_body");
        let err = split_frames(b"not a ppm at all").unwrap_err();
        assert_eq!(err.status, 400);
        assert_eq!(err.code, "bad_frame");
    }

    #[test]
    fn trailing_garbage_after_a_valid_frame_is_rejected() {
        let mut body = encode_frames(&[&frame(3, 3, 0)]);
        body.extend_from_slice(b"trailing junk");
        assert_eq!(split_frames(&body).unwrap_err().code, "bad_frame");
    }

    #[test]
    fn oversized_frame_header_is_413_without_payload_allocation() {
        // Header only — no payload follows, which is the point: the
        // limit check must fire before the payload is needed.
        let body = format!("P6\n{} {}\n255\n", 1 << 12, 1 << 12);
        let err = split_frames(body.as_bytes()).unwrap_err();
        assert_eq!(err.status, 413);
        assert_eq!(err.code, "frame_too_large");
    }
}
