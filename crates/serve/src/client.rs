//! A minimal blocking HTTP/1.1 client — enough for the load generator,
//! the integration tests, and `slj loadgen` to talk to the server
//! without external dependencies. One request per connection
//! (the server answers `connection: close`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code (`200`, `429`, ...).
    pub status: u16,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == want)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy — responses from this server are
    /// always UTF-8 JSON).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Any socket-level failure (connect, timeout, short read) surfaces as
/// `io::Error`; HTTP error statuses are *not* errors — callers inspect
/// [`HttpResponse::status`].
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    content_type: &str,
    body: &[u8],
    timeout_ms: u64,
) -> std::io::Result<HttpResponse> {
    let timeout = Duration::from_millis(timeout_ms.max(1));
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;

    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    // A server may reject from the headers alone and close its read
    // side while we are still uploading; keep going and read whatever
    // response made it back instead of failing on the broken pipe.
    let _ = stream.write_all(body).and_then(|()| stream.flush());

    // The server closes after one response, so read to EOF.
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> std::io::Result<HttpResponse> {
    let bad = |msg: &str| std::io::Error::other(msg.to_string());
    let split = find_head_end(raw).ok_or_else(|| bad("response head never terminated"))?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| bad("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(bad("not an HTTP/1.x response"));
    }
    let status: u16 = parts
        .next()
        .unwrap_or_default()
        .parse()
        .map_err(|_| bad("bad status code"))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(HttpResponse {
        status,
        headers,
        body: raw[split + 4..].to_vec(),
    })
}

fn find_head_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_response() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\ncontent-type: application/json\r\nretry-after: 1\r\n\r\n{\"e\":1}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("Retry-After"), Some("1"));
        assert_eq!(resp.text(), "{\"e\":1}");
    }

    #[test]
    fn truncated_head_is_an_error() {
        assert!(parse_response(b"HTTP/1.1 200 OK\r\ncontent-le").is_err());
        assert!(parse_response(b"SMTP/1.0 200\r\n\r\n").is_err());
    }
}
