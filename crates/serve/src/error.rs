//! Error types: structured wire errors ([`ApiError`]) and server-side
//! failures ([`ServeError`]).

use slj_core::error::SljError;
use slj_imaging::ImagingError;
use slj_obs::JsonWriter;
use std::fmt;

/// A structured HTTP error: status code, stable machine-readable code,
/// human-readable message.
///
/// Every 4xx/5xx the server emits goes through this type, so clients
/// always receive `{"error":{"code":...,"status":...,"message":...}}`
/// instead of a dropped connection or an unstructured body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code (400, 404, 413, 429, 503, ...).
    pub status: u16,
    /// Stable snake_case error code for programmatic handling.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// Builds an error with the given status/code/message.
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        ApiError {
            status,
            code,
            message: message.into(),
        }
    }

    /// `400 bad_request` with a detail message.
    pub fn bad_request(code: &'static str, message: impl Into<String>) -> Self {
        ApiError::new(400, code, message)
    }

    /// `404 not_found` for an unknown route.
    pub fn not_found(path: &str) -> Self {
        ApiError::new(404, "not_found", format!("no route for {path}"))
    }

    /// `429` backpressure rejection (queue or session table full).
    pub fn too_many(code: &'static str, message: impl Into<String>) -> Self {
        ApiError::new(429, code, message)
    }

    /// `503 deadline_exceeded` for requests that expired before or
    /// during processing.
    pub fn deadline_exceeded(elapsed_ms: u64, deadline_ms: u64) -> Self {
        ApiError::new(
            503,
            "deadline_exceeded",
            format!("request exceeded its {deadline_ms} ms deadline after {elapsed_ms} ms"),
        )
    }

    /// Renders the structured JSON body.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("error");
        w.begin_object();
        w.key("code");
        w.string(self.code);
        w.key("status");
        w.u64(u64::from(self.status));
        w.key("message");
        w.string(&self.message);
        w.end_object();
        w.end_object();
        w.finish()
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.status, self.code, self.message)
    }
}

impl From<SljError> for ApiError {
    /// Maps pipeline failures to statuses: imaging errors are the
    /// client's fault (bad frame bytes or mismatched dimensions → 400),
    /// everything else is a server-side 500.
    fn from(e: SljError) -> Self {
        match e {
            SljError::Imaging(img) => ApiError::from(img),
            SljError::ConfigMismatch(msg) => ApiError::new(409, "config_mismatch", msg),
            other => ApiError::new(500, "pipeline_error", other.to_string()),
        }
    }
}

impl From<ImagingError> for ApiError {
    fn from(e: ImagingError) -> Self {
        match e {
            ImagingError::MalformedPnm(msg) => {
                ApiError::bad_request("bad_frame", format!("malformed PPM frame: {msg}"))
            }
            other => ApiError::bad_request("bad_frame", other.to_string()),
        }
    }
}

/// Server lifecycle failures: bind/accept errors and worker-pool
/// failures. Per-request problems never surface here — they become
/// [`ApiError`] responses instead.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (bind, local_addr, client connect).
    Io(std::io::Error),
    /// The worker pool failed (a worker panicked).
    Runtime(slj_runtime::RuntimeError),
    /// Invalid server or loadgen configuration.
    Config(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Runtime(e) => write!(f, "runtime error: {e}"),
            ServeError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Runtime(e) => Some(e),
            ServeError::Config(_) => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<slj_runtime::RuntimeError> for ServeError {
    fn from(e: slj_runtime::RuntimeError) -> Self {
        ServeError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn api_error_renders_structured_json() {
        let e = ApiError::bad_request("json_invalid", "unexpected token");
        let json = e.to_json();
        assert_eq!(
            json,
            "{\"error\":{\"code\":\"json_invalid\",\"status\":400,\
             \"message\":\"unexpected token\"}}"
        );
        assert!(e.to_string().contains("400 json_invalid"));
    }

    #[test]
    fn slj_errors_map_to_client_or_server_status() {
        let imaging = SljError::Imaging(ImagingError::MalformedPnm("bad magic".into()));
        assert_eq!(ApiError::from(imaging).status, 400);
        let runtime = SljError::Runtime("worker died".into());
        assert_eq!(ApiError::from(runtime).status, 500);
        let mismatch = SljError::ConfigMismatch("partitions".into());
        assert_eq!(ApiError::from(mismatch).status, 409);
    }

    #[test]
    fn serve_error_display_and_source() {
        use std::error::Error;
        let e = ServeError::from(std::io::Error::other("x"));
        assert!(e.to_string().contains("io error"));
        assert!(e.source().is_some());
        assert!(ServeError::Config("bad".into()).source().is_none());
    }
}
