//! Closed-loop load generator driven by the simulator.
//!
//! Synthesises one clip with [`slj_sim::JumpSimulator`], encodes it
//! once, and then has N concurrent clients POST it to `/v1/evaluate`
//! back-to-back until the shared request budget runs out (closed-loop:
//! each client waits for its response before sending the next request,
//! so offered load tracks server capacity instead of overrunning it).
//! Latency quantiles come from the same [`slj_obs::Histogram`] the rest
//! of the workspace benchmarks with.
//!
//! With `--replay ARCHIVE` the single synthetic clip is replaced by the
//! request stream an `slj-corpus v1` archive records: each clip's
//! `(seed, frames)` pair re-synthesises the byte-identical body the
//! original ingestion saw, and clients walk the clip set round-robin —
//! a recorded mix of long/short/faulty clips instead of one homogeneous
//! body.

use crate::client;
use crate::error::ServeError;
use crate::wire;
use slj_obs::{Registry, Stopwatch};
use slj_runtime::ThreadPool;
use slj_sim::{ClipSpec, JumpSimulator};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Load-generator configuration; each knob has a `slj loadgen` flag.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Total requests across all clients.
    pub requests: usize,
    /// Concurrent closed-loop clients.
    pub concurrency: usize,
    /// Frames per synthesized clip (besides the background).
    pub frames: usize,
    /// Simulator seed — same seed, same clip, same byte stream.
    pub seed: u64,
    /// Per-request socket timeout in milliseconds.
    pub timeout_ms: u64,
    /// Path to an `slj-corpus v1` archive whose recorded clips drive
    /// the request stream instead of the single synthetic clip.
    pub replay: Option<String>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7878".to_string(),
            requests: 100,
            concurrency: 4,
            frames: 24,
            seed: 7,
            timeout_ms: 30_000,
            replay: None,
        }
    }
}

/// Aggregated result of one load-generator run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    /// Requests attempted.
    pub requests: usize,
    /// Concurrent clients used.
    pub concurrency: usize,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: u64,
    /// Completed requests per second over the wall clock.
    pub requests_per_s: f64,
    /// Latency quantiles in milliseconds (successful round trips).
    pub p50_ms: f64,
    /// 95th percentile latency in milliseconds.
    pub p95_ms: f64,
    /// 99th percentile latency in milliseconds.
    pub p99_ms: f64,
    /// Responses with a 2xx status.
    pub status_2xx: u64,
    /// Responses rejected with `429` (admission control).
    pub status_429: u64,
    /// Responses with `503` (deadline/draining).
    pub status_503: u64,
    /// Any other HTTP status.
    pub status_other: u64,
    /// Socket-level failures (connect refused, timeout, short read).
    pub errors: u64,
    /// 2xx responses that carried a quality `confidence` score.
    pub scored: u64,
    /// Median per-request clip quality score in `[0, 1]` (0 when the
    /// server ran with quality diagnostics disabled).
    pub clip_score_p50: f64,
    /// 95th-percentile (from the top) clip quality score: the p05 of
    /// the score distribution, since *low* scores are the bad tail.
    pub clip_score_p95: f64,
    /// Distinct recorded clips driving the run (0 = synthetic mode).
    pub replay_clips: u64,
}

/// Schema version of the loadgen report (`BENCH_PR8.json`).
///
/// Version 5 added the clip-score distribution of the quality
/// diagnostics layer; version 6 added `replay_clips` for archive-driven
/// replay runs.
pub const LOADGEN_SCHEMA_VERSION: u64 = 6;

/// Upper bound on distinct replay bodies held in memory at once; a
/// thousand-clip archive replays its first 64 clips round-robin rather
/// than materialising a thousand encoded videos.
pub const MAX_REPLAY_BODIES: usize = 64;

impl LoadgenReport {
    /// Serialises the report (`BENCH_PR8.json`, schema
    /// [`LOADGEN_SCHEMA_VERSION`]).
    pub fn report_json(&self) -> String {
        let mut w = slj_obs::JsonWriter::new();
        w.begin_object();
        w.key("schema");
        w.u64(LOADGEN_SCHEMA_VERSION);
        w.key("bench");
        w.string("serve.loadgen");
        w.key("requests");
        w.u64(self.requests as u64);
        w.key("concurrency");
        w.u64(self.concurrency as u64);
        w.key("wall_ms");
        w.u64(self.wall_ms);
        w.key("requests_per_s");
        w.f64(self.requests_per_s);
        w.key("p50_ms");
        w.f64(self.p50_ms);
        w.key("p95_ms");
        w.f64(self.p95_ms);
        w.key("p99_ms");
        w.f64(self.p99_ms);
        w.key("status_2xx");
        w.u64(self.status_2xx);
        w.key("status_429");
        w.u64(self.status_429);
        w.key("status_503");
        w.u64(self.status_503);
        w.key("status_other");
        w.u64(self.status_other);
        w.key("errors");
        w.u64(self.errors);
        w.key("scored");
        w.u64(self.scored);
        w.key("clip_score_p50");
        w.f64(self.clip_score_p50);
        w.key("clip_score_p95");
        w.f64(self.clip_score_p95);
        w.key("replay_clips");
        w.u64(self.replay_clips);
        w.end_object();
        w.finish()
    }
}

/// Extracts the quality `confidence` score from a response body, when
/// the server appended one (absent when diagnostics are disabled).
fn parse_confidence(body: &str) -> Option<f64> {
    let start = body.find("\"confidence\":")? + "\"confidence\":".len();
    let rest = &body[start..];
    let end = rest.find(|c| c == ',' || c == '}')?;
    rest[..end].parse().ok()
}

/// Builds the request body the generator sends: background first, then
/// every frame of a deterministic simulated jump.
pub fn synthesize_body(frames: usize, seed: u64) -> Vec<u8> {
    let sim = JumpSimulator::new(seed);
    let clip = sim.generate_clip(&ClipSpec {
        total_frames: frames,
        seed,
        ..ClipSpec::default()
    });
    let mut refs: Vec<&slj_imaging::RgbImage> = vec![&clip.background];
    refs.extend(clip.frames.iter());
    wire::encode_frames(&refs)
}

/// Re-synthesises the request bodies an archive's clips record, capped
/// at `min(limit, MAX_REPLAY_BODIES)` distinct bodies.
///
/// # Errors
///
/// [`ServeError::Config`] when the archive does not parse or holds no
/// clips.
pub fn replay_bodies(archive_text: &str, limit: usize) -> Result<Vec<Vec<u8>>, ServeError> {
    let corpus = slj_corpus::Corpus::from_archive_str(archive_text)
        .map_err(|e| ServeError::Config(format!("replay archive: {e}")))?;
    if corpus.clips.is_empty() {
        return Err(ServeError::Config("replay archive has no clips".into()));
    }
    let take = corpus.clips.len().min(limit.max(1)).min(MAX_REPLAY_BODIES);
    Ok(corpus.clips[..take]
        .iter()
        .map(|clip| synthesize_body(clip.frames().max(1), clip.seed))
        .collect())
}

/// Runs the closed loop and aggregates the outcome.
///
/// # Errors
///
/// [`ServeError::Config`] for a zero request count or concurrency, or
/// an unreadable `--replay` archive; individual request failures are
/// *counted*, not propagated — a saturated server answering `429` is a
/// result, not an error.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, ServeError> {
    if config.requests == 0 || config.concurrency == 0 {
        return Err(ServeError::Config(
            "loadgen needs at least 1 request and 1 client".into(),
        ));
    }
    let bodies: Vec<Vec<u8>> = match &config.replay {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ServeError::Config(format!("replay archive {path}: {e}")))?;
            replay_bodies(&text, config.requests)?
        }
        None => vec![synthesize_body(config.frames.max(1), config.seed)],
    };
    let replay_clips = if config.replay.is_some() {
        bodies.len() as u64
    } else {
        0
    };
    let next_body = AtomicUsize::new(0);

    let registry = Registry::new();
    let latency = registry.histogram("loadgen.request.ns");
    // Scores are recorded in millionths so the integer histogram
    // resolves the [0, 1] range; quantiles divide back out below.
    let confidence = registry.histogram("loadgen.confidence.micro");
    let remaining = AtomicUsize::new(config.requests);
    let s2xx = AtomicU64::new(0);
    let s429 = AtomicU64::new(0);
    let s503 = AtomicU64::new(0);
    let other = AtomicU64::new(0);
    let errors = AtomicU64::new(0);

    let wall = Stopwatch::start();
    let pool = ThreadPool::fixed(config.concurrency);
    let clients: Vec<usize> = (0..config.concurrency).collect();
    pool.scoped_run(clients, |_, _client| loop {
        // Claim one unit of budget; stop when the shared pool is dry.
        if remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_err()
        {
            break;
        }
        // Round-robin over the body set (a single element in synthetic
        // mode); the atomic keeps the stream deterministic in *content
        // mix* even though per-client interleaving varies.
        let body = &bodies[next_body.fetch_add(1, Ordering::Relaxed) % bodies.len()];
        let attempt = Stopwatch::start();
        match client::request(
            &config.addr,
            "POST",
            "/v1/evaluate",
            "application/octet-stream",
            body,
            config.timeout_ms,
        ) {
            Ok(resp) => {
                latency.record(attempt.elapsed_ns());
                match resp.status {
                    200..=299 => {
                        s2xx.fetch_add(1, Ordering::Relaxed);
                        if let Some(score) = parse_confidence(&resp.text()) {
                            let micro = (score.clamp(0.0, 1.0) * 1e6).round();
                            confidence.record(micro as u64);
                        }
                    }
                    429 => {
                        s429.fetch_add(1, Ordering::Relaxed);
                    }
                    503 => {
                        s503.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        other.fetch_add(1, Ordering::Relaxed);
                    }
                };
            }
            Err(_) => {
                errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    })?;
    let wall_ns = wall.elapsed_ns().max(1);

    let completed = s2xx.load(Ordering::SeqCst)
        + s429.load(Ordering::SeqCst)
        + s503.load(Ordering::SeqCst)
        + other.load(Ordering::SeqCst);
    Ok(LoadgenReport {
        requests: config.requests,
        concurrency: config.concurrency,
        wall_ms: wall_ns / 1_000_000,
        requests_per_s: completed as f64 / (wall_ns as f64 / 1e9),
        p50_ms: latency.quantile(0.50) / 1e6,
        p95_ms: latency.quantile(0.95) / 1e6,
        p99_ms: latency.quantile(0.99) / 1e6,
        status_2xx: s2xx.load(Ordering::SeqCst),
        status_429: s429.load(Ordering::SeqCst),
        status_503: s503.load(Ordering::SeqCst),
        status_other: other.load(Ordering::SeqCst),
        errors: errors.load(Ordering::SeqCst),
        scored: confidence.count(),
        clip_score_p50: confidence.quantile(0.50) / 1e6,
        // Low scores are the bad tail, so the p95 headline is the 5th
        // percentile of the distribution.
        clip_score_p95: confidence.quantile(0.05) / 1e6,
        replay_clips,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesized_bodies_are_deterministic_and_framed() {
        let a = synthesize_body(24, 7);
        let b = synthesize_body(24, 7);
        assert_eq!(a, b, "same seed, same bytes");
        let frames = wire::split_frames(&a).unwrap();
        assert_eq!(frames.len(), 25, "background + 24 frames");
        assert_ne!(synthesize_body(24, 8), a, "seed changes the clip");
    }

    #[test]
    fn report_json_is_schema_6_with_clip_scores_and_replay() {
        let report = LoadgenReport {
            requests: 10,
            concurrency: 2,
            wall_ms: 100,
            requests_per_s: 100.0,
            p50_ms: 5.0,
            p95_ms: 9.0,
            p99_ms: 9.9,
            status_2xx: 9,
            status_429: 1,
            status_503: 0,
            status_other: 0,
            errors: 0,
            scored: 9,
            clip_score_p50: 1.0,
            clip_score_p95: 0.875,
            replay_clips: 3,
        };
        let json = report.report_json();
        assert!(json.starts_with("{\"schema\":6,"));
        assert!(json.contains("\"status_429\":1"));
        assert!(json.contains("\"scored\":9"));
        assert!(json.contains("\"clip_score_p50\":1"));
        assert!(json.contains("\"clip_score_p95\":0.875"));
        assert!(json.contains("\"replay_clips\":3"));
    }

    #[test]
    fn replay_bodies_reconstruct_the_recorded_stream() {
        let taxonomy = slj_sim::default_taxonomy();
        let clip = |id: u64, seed: u64, frames: usize| slj_corpus::ClipRecord {
            id,
            source: format!("clip_{id:03}"),
            seed,
            score_micro: -1,
            pose: vec![0; frames],
            stage: vec![0; frames],
            online: vec![0; frames],
            margin: vec![0; frames],
            flags: vec![-1; frames],
            fired: vec![],
            spans: vec![],
        };
        let corpus = slj_corpus::Corpus {
            taxonomy,
            // The standard jump script needs >= 20 frames per clip.
            clips: vec![clip(0, 11, 24), clip(1, 12, 30)],
        };
        let text = corpus.to_archive_string();
        let bodies = replay_bodies(&text, 100).unwrap();
        assert_eq!(bodies.len(), 2);
        assert_eq!(bodies[0], synthesize_body(24, 11));
        assert_eq!(bodies[1], synthesize_body(30, 12));
        // The request budget caps the distinct body count.
        assert_eq!(replay_bodies(&text, 1).unwrap().len(), 1);
        assert!(replay_bodies("not an archive", 4).is_err());
    }

    #[test]
    fn confidence_parses_from_response_bodies() {
        assert_eq!(
            parse_confidence("{\"faults\":[],\"confidence\":0.75,\"quality\":{}}"),
            Some(0.75)
        );
        assert_eq!(parse_confidence("{\"confidence\":1}"), Some(1.0));
        assert_eq!(parse_confidence("{\"faults\":[]}"), None);
    }

    #[test]
    fn zero_budget_or_clients_is_a_config_error() {
        let mut config = LoadgenConfig {
            requests: 0,
            ..LoadgenConfig::default()
        };
        assert!(run(&config).is_err());
        config.requests = 1;
        config.concurrency = 0;
        assert!(run(&config).is_err());
    }
}
