//! Closed-loop load generator driven by the simulator.
//!
//! Synthesises one clip with [`slj_sim::JumpSimulator`], encodes it
//! once, and then has N concurrent clients POST it to `/v1/evaluate`
//! back-to-back until the shared request budget runs out (closed-loop:
//! each client waits for its response before sending the next request,
//! so offered load tracks server capacity instead of overrunning it).
//! Latency quantiles come from the same [`slj_obs::Histogram`] the rest
//! of the workspace benchmarks with.

use crate::client;
use crate::error::ServeError;
use crate::wire;
use slj_obs::{Registry, Stopwatch};
use slj_runtime::ThreadPool;
use slj_sim::{ClipSpec, JumpSimulator};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Load-generator configuration; each knob has a `slj loadgen` flag.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Total requests across all clients.
    pub requests: usize,
    /// Concurrent closed-loop clients.
    pub concurrency: usize,
    /// Frames per synthesized clip (besides the background).
    pub frames: usize,
    /// Simulator seed — same seed, same clip, same byte stream.
    pub seed: u64,
    /// Per-request socket timeout in milliseconds.
    pub timeout_ms: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7878".to_string(),
            requests: 100,
            concurrency: 4,
            frames: 24,
            seed: 7,
            timeout_ms: 30_000,
        }
    }
}

/// Aggregated result of one load-generator run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    /// Requests attempted.
    pub requests: usize,
    /// Concurrent clients used.
    pub concurrency: usize,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: u64,
    /// Completed requests per second over the wall clock.
    pub requests_per_s: f64,
    /// Latency quantiles in milliseconds (successful round trips).
    pub p50_ms: f64,
    /// 95th percentile latency in milliseconds.
    pub p95_ms: f64,
    /// 99th percentile latency in milliseconds.
    pub p99_ms: f64,
    /// Responses with a 2xx status.
    pub status_2xx: u64,
    /// Responses rejected with `429` (admission control).
    pub status_429: u64,
    /// Responses with `503` (deadline/draining).
    pub status_503: u64,
    /// Any other HTTP status.
    pub status_other: u64,
    /// Socket-level failures (connect refused, timeout, short read).
    pub errors: u64,
    /// 2xx responses that carried a quality `confidence` score.
    pub scored: u64,
    /// Median per-request clip quality score in `[0, 1]` (0 when the
    /// server ran with quality diagnostics disabled).
    pub clip_score_p50: f64,
    /// 95th-percentile (from the top) clip quality score: the p05 of
    /// the score distribution, since *low* scores are the bad tail.
    pub clip_score_p95: f64,
}

/// Schema version of the loadgen report (`BENCH_PR8.json`).
///
/// Version 5 added the clip-score distribution of the quality
/// diagnostics layer.
pub const LOADGEN_SCHEMA_VERSION: u64 = 5;

impl LoadgenReport {
    /// Serialises the report (`BENCH_PR8.json`, schema
    /// [`LOADGEN_SCHEMA_VERSION`]).
    pub fn report_json(&self) -> String {
        let mut w = slj_obs::JsonWriter::new();
        w.begin_object();
        w.key("schema");
        w.u64(LOADGEN_SCHEMA_VERSION);
        w.key("bench");
        w.string("serve.loadgen");
        w.key("requests");
        w.u64(self.requests as u64);
        w.key("concurrency");
        w.u64(self.concurrency as u64);
        w.key("wall_ms");
        w.u64(self.wall_ms);
        w.key("requests_per_s");
        w.f64(self.requests_per_s);
        w.key("p50_ms");
        w.f64(self.p50_ms);
        w.key("p95_ms");
        w.f64(self.p95_ms);
        w.key("p99_ms");
        w.f64(self.p99_ms);
        w.key("status_2xx");
        w.u64(self.status_2xx);
        w.key("status_429");
        w.u64(self.status_429);
        w.key("status_503");
        w.u64(self.status_503);
        w.key("status_other");
        w.u64(self.status_other);
        w.key("errors");
        w.u64(self.errors);
        w.key("scored");
        w.u64(self.scored);
        w.key("clip_score_p50");
        w.f64(self.clip_score_p50);
        w.key("clip_score_p95");
        w.f64(self.clip_score_p95);
        w.end_object();
        w.finish()
    }
}

/// Extracts the quality `confidence` score from a response body, when
/// the server appended one (absent when diagnostics are disabled).
fn parse_confidence(body: &str) -> Option<f64> {
    let start = body.find("\"confidence\":")? + "\"confidence\":".len();
    let rest = &body[start..];
    let end = rest.find(|c| c == ',' || c == '}')?;
    rest[..end].parse().ok()
}

/// Builds the request body the generator sends: background first, then
/// every frame of a deterministic simulated jump.
pub fn synthesize_body(frames: usize, seed: u64) -> Vec<u8> {
    let sim = JumpSimulator::new(seed);
    let clip = sim.generate_clip(&ClipSpec {
        total_frames: frames,
        seed,
        ..ClipSpec::default()
    });
    let mut refs: Vec<&slj_imaging::RgbImage> = vec![&clip.background];
    refs.extend(clip.frames.iter());
    wire::encode_frames(&refs)
}

/// Runs the closed loop and aggregates the outcome.
///
/// # Errors
///
/// [`ServeError::Config`] for a zero request count or concurrency;
/// individual request failures are *counted*, not propagated — a
/// saturated server answering `429` is a result, not an error.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, ServeError> {
    if config.requests == 0 || config.concurrency == 0 {
        return Err(ServeError::Config(
            "loadgen needs at least 1 request and 1 client".into(),
        ));
    }
    let body = synthesize_body(config.frames.max(1), config.seed);

    let registry = Registry::new();
    let latency = registry.histogram("loadgen.request.ns");
    // Scores are recorded in millionths so the integer histogram
    // resolves the [0, 1] range; quantiles divide back out below.
    let confidence = registry.histogram("loadgen.confidence.micro");
    let remaining = AtomicUsize::new(config.requests);
    let s2xx = AtomicU64::new(0);
    let s429 = AtomicU64::new(0);
    let s503 = AtomicU64::new(0);
    let other = AtomicU64::new(0);
    let errors = AtomicU64::new(0);

    let wall = Stopwatch::start();
    let pool = ThreadPool::fixed(config.concurrency);
    let clients: Vec<usize> = (0..config.concurrency).collect();
    pool.scoped_run(clients, |_, _client| loop {
        // Claim one unit of budget; stop when the shared pool is dry.
        if remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_err()
        {
            break;
        }
        let attempt = Stopwatch::start();
        match client::request(
            &config.addr,
            "POST",
            "/v1/evaluate",
            "application/octet-stream",
            &body,
            config.timeout_ms,
        ) {
            Ok(resp) => {
                latency.record(attempt.elapsed_ns());
                match resp.status {
                    200..=299 => {
                        s2xx.fetch_add(1, Ordering::Relaxed);
                        if let Some(score) = parse_confidence(&resp.text()) {
                            let micro = (score.clamp(0.0, 1.0) * 1e6).round();
                            confidence.record(micro as u64);
                        }
                    }
                    429 => {
                        s429.fetch_add(1, Ordering::Relaxed);
                    }
                    503 => {
                        s503.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        other.fetch_add(1, Ordering::Relaxed);
                    }
                };
            }
            Err(_) => {
                errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    })?;
    let wall_ns = wall.elapsed_ns().max(1);

    let completed = s2xx.load(Ordering::SeqCst)
        + s429.load(Ordering::SeqCst)
        + s503.load(Ordering::SeqCst)
        + other.load(Ordering::SeqCst);
    Ok(LoadgenReport {
        requests: config.requests,
        concurrency: config.concurrency,
        wall_ms: wall_ns / 1_000_000,
        requests_per_s: completed as f64 / (wall_ns as f64 / 1e9),
        p50_ms: latency.quantile(0.50) / 1e6,
        p95_ms: latency.quantile(0.95) / 1e6,
        p99_ms: latency.quantile(0.99) / 1e6,
        status_2xx: s2xx.load(Ordering::SeqCst),
        status_429: s429.load(Ordering::SeqCst),
        status_503: s503.load(Ordering::SeqCst),
        status_other: other.load(Ordering::SeqCst),
        errors: errors.load(Ordering::SeqCst),
        scored: confidence.count(),
        clip_score_p50: confidence.quantile(0.50) / 1e6,
        // Low scores are the bad tail, so the p95 headline is the 5th
        // percentile of the distribution.
        clip_score_p95: confidence.quantile(0.05) / 1e6,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesized_bodies_are_deterministic_and_framed() {
        let a = synthesize_body(24, 7);
        let b = synthesize_body(24, 7);
        assert_eq!(a, b, "same seed, same bytes");
        let frames = wire::split_frames(&a).unwrap();
        assert_eq!(frames.len(), 25, "background + 24 frames");
        assert_ne!(synthesize_body(24, 8), a, "seed changes the clip");
    }

    #[test]
    fn report_json_is_schema_5_with_clip_scores() {
        let report = LoadgenReport {
            requests: 10,
            concurrency: 2,
            wall_ms: 100,
            requests_per_s: 100.0,
            p50_ms: 5.0,
            p95_ms: 9.0,
            p99_ms: 9.9,
            status_2xx: 9,
            status_429: 1,
            status_503: 0,
            status_other: 0,
            errors: 0,
            scored: 9,
            clip_score_p50: 1.0,
            clip_score_p95: 0.875,
        };
        let json = report.report_json();
        assert!(json.starts_with("{\"schema\":5,"));
        assert!(json.contains("\"status_429\":1"));
        assert!(json.contains("\"scored\":9"));
        assert!(json.contains("\"clip_score_p50\":1"));
        assert!(json.contains("\"clip_score_p95\":0.875"));
    }

    #[test]
    fn confidence_parses_from_response_bodies() {
        assert_eq!(
            parse_confidence("{\"faults\":[],\"confidence\":0.75,\"quality\":{}}"),
            Some(0.75)
        );
        assert_eq!(parse_confidence("{\"confidence\":1}"), Some(1.0));
        assert_eq!(parse_confidence("{\"faults\":[]}"), None);
    }

    #[test]
    fn zero_budget_or_clients_is_a_config_error() {
        let mut config = LoadgenConfig {
            requests: 0,
            ..LoadgenConfig::default()
        };
        assert!(run(&config).is_err());
        config.requests = 1;
        config.concurrency = 0;
        assert!(run(&config).is_err());
    }
}
