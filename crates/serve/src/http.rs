//! Minimal HTTP/1.1 on raw [`TcpStream`]s: request reading with hard
//! limits, response writing with `Connection: close`.
//!
//! This is deliberately a subset — one request per connection, explicit
//! `Content-Length` framing, no chunked encoding, no keep-alive. The
//! serving layer's clients (recording stations, the load generator)
//! open a connection per clip or frame batch, so the subset keeps the
//! parser small enough to audit while every limit stays enforceable:
//! header block and body sizes are capped before any allocation is
//! sized by attacker-controlled numbers.

use crate::error::ApiError;
use std::io::{Read, Write};
use std::net::TcpStream;

/// Parsing limits for one request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes for the request line + headers.
    pub max_head: usize,
    /// Maximum bytes for the body (`Content-Length` above this is 413).
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head: 8 * 1024,
            max_body: 64 * 1024 * 1024,
        }
    }
}

/// One parsed request: method, path, lower-cased headers, raw body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Request target as sent (no query parsing — the API doesn't use
    /// query strings).
    pub path: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (exactly `Content-Length` of them).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the (lower-case) header `name`, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one request from `stream`, enforcing `limits`.
///
/// # Errors
///
/// Every failure is an [`ApiError`] ready to be written back: `400`
/// for malformed syntax or truncated bodies, `408` for read timeouts,
/// `413` when the declared body exceeds the limit, `501` for chunked
/// encoding. A request without `Content-Length` (and without
/// `Transfer-Encoding`) has no body, per RFC 7230 — so a bare
/// `curl -X POST` works for body-less endpoints like `/admin/shutdown`.
pub fn read_request(stream: &mut TcpStream, limits: &Limits) -> Result<Request, ApiError> {
    let (head, mut body) = read_head(stream, limits)?;
    let text = std::str::from_utf8(&head)
        .map_err(|_| ApiError::bad_request("bad_request", "request head is not valid UTF-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ApiError::bad_request("bad_request", "empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| ApiError::bad_request("bad_request", "missing method"))?;
    let path = parts
        .next()
        .ok_or_else(|| ApiError::bad_request("bad_request", "missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| ApiError::bad_request("bad_request", "missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ApiError::bad_request(
            "bad_request",
            format!("unsupported protocol {version:?}"),
        ));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            ApiError::bad_request("bad_request", format!("malformed header line {line:?}"))
        })?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };

    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ApiError::new(
            501,
            "unsupported_encoding",
            "chunked transfer encoding is not supported; send Content-Length",
        ));
    }

    let content_length = match request.header("content-length") {
        Some(v) => v.trim().parse::<usize>().map_err(|_| {
            ApiError::bad_request("bad_request", format!("unparseable Content-Length {v:?}"))
        })?,
        None => 0,
    };
    if content_length > limits.max_body {
        // Drain a bounded slice of the unread body so a client mid-way
        // through its upload gets this response instead of a connection
        // reset. The cap keeps a hostile Content-Length from turning
        // the courtesy into a resource sink.
        const DRAIN_CAP: usize = 4 << 20;
        drain(
            stream,
            content_length.saturating_sub(body.len()).min(DRAIN_CAP),
        );
        return Err(ApiError::new(
            413,
            "body_too_large",
            format!(
                "declared body of {content_length} bytes exceeds the {} byte limit",
                limits.max_body
            ),
        ));
    }

    // `read_head` may have buffered the start of the body already.
    if body.len() > content_length {
        body.truncate(content_length);
    }
    while body.len() < content_length {
        let mut chunk = [0u8; 16 * 1024];
        let want = (content_length - body.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => {
                return Err(ApiError::bad_request(
                    "body_truncated",
                    format!(
                        "connection closed after {} of {content_length} body bytes",
                        body.len()
                    ),
                ));
            }
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => {
                return Err(ApiError::new(
                    408,
                    "body_timeout",
                    format!(
                        "timed out after {} of {content_length} body bytes",
                        body.len()
                    ),
                ));
            }
            Err(e) => {
                return Err(ApiError::bad_request(
                    "body_truncated",
                    format!("read failed: {e}"),
                ));
            }
        }
    }

    Ok(Request { body, ..request })
}

/// Reads until the `\r\n\r\n` head/body separator; returns the head and
/// any body bytes that arrived in the same reads.
fn read_head(stream: &mut TcpStream, limits: &Limits) -> Result<(Vec<u8>, Vec<u8>), ApiError> {
    let mut buf = Vec::with_capacity(1024);
    loop {
        if let Some(end) = find_head_end(&buf) {
            let body = buf.split_off(end + 4);
            buf.truncate(end);
            return Ok((buf, body));
        }
        if buf.len() > limits.max_head {
            return Err(ApiError::new(
                431,
                "head_too_large",
                format!("request head exceeds {} bytes", limits.max_head),
            ));
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(ApiError::bad_request(
                    "bad_request",
                    "connection closed before the request head completed",
                ));
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => {
                return Err(ApiError::new(
                    408,
                    "head_timeout",
                    "timed out reading the request head",
                ));
            }
            Err(e) => {
                return Err(ApiError::bad_request(
                    "bad_request",
                    format!("read failed: {e}"),
                ));
            }
        }
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads and discards up to `n` bytes; stops early on EOF, timeout, or
/// any other error (the connection is about to be closed anyway).
fn drain(stream: &mut TcpStream, n: usize) {
    let mut remaining = n;
    let mut chunk = [0u8; 16 * 1024];
    while remaining > 0 {
        let want = remaining.min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) | Err(_) => break,
            Ok(read) => remaining -= read,
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// One response, always `Connection: close`.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Optional `Retry-After` seconds (backpressure responses).
    pub retry_after: Option<u32>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// The structured-JSON rendering of an [`ApiError`]; 429s carry
    /// `Retry-After: 1`.
    pub fn from_error(err: &ApiError) -> Self {
        Response {
            status: err.status,
            content_type: "application/json",
            body: err.to_json().into_bytes(),
            retry_after: (err.status == 429).then_some(1),
        }
    }

    /// Serialises status line, headers and body into one buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 128);
        out.extend_from_slice(
            format!(
                "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
                self.status,
                status_text(self.status),
                self.content_type,
                self.body.len()
            )
            .as_bytes(),
        );
        if let Some(secs) = self.retry_after {
            out.extend_from_slice(format!("retry-after: {secs}\r\n").as_bytes());
        }
        out.extend_from_slice(b"connection: close\r\n\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Writes the response and flushes. Write failures are reported so
    /// the caller can count them, but the connection is closed either
    /// way.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        stream.write_all(&self.to_bytes())?;
        stream.flush()
    }
}

/// Reason phrases for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_is_found_across_chunks() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn response_bytes_carry_length_and_close() {
        let resp = Response::json(200, "{\"ok\":true}".to_string());
        let text = String::from_utf8(resp.to_bytes()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn backpressure_response_carries_retry_after() {
        let resp = Response::from_error(&ApiError::too_many("queue_full", "try later"));
        let text = String::from_utf8(resp.to_bytes()).unwrap();
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("\"code\":\"queue_full\""));
    }

    #[test]
    fn status_texts_cover_the_emitted_codes() {
        for code in [
            200, 201, 400, 404, 405, 408, 409, 411, 413, 422, 429, 431, 500, 501, 503,
        ] {
            assert_ne!(status_text(code), "Unknown", "missing text for {code}");
        }
        assert_eq!(status_text(599), "Unknown");
    }
}
