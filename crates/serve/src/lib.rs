//! Network serving layer for the standing-long-jump pipeline.
//!
//! The ROADMAP's deployment shape is many short clips arriving
//! concurrently from many recording stations — a multi-session server,
//! not a batch CLI. This crate puts [`slj_core::engine::JumpSession`]
//! behind a socket with **zero external dependencies**: a hand-rolled
//! HTTP/1.1 server on [`std::net::TcpListener`], worker threads hosted
//! by [`slj_runtime::ThreadPool`], and every request traced and counted
//! through [`slj_obs`].
//!
//! # Endpoints
//!
//! | Method + path                  | Body in                | Out |
//! |--------------------------------|------------------------|-----|
//! | `POST /v1/evaluate`            | background + frame PPMs | scored result: per-frame decisions + standards faults |
//! | `POST /v1/sessions`            | optional JSON config   | session id |
//! | `POST /v1/sessions/{id}/frames`| one or more frame PPMs | per-frame [`slj_core::model::Decision`] records |
//! | `DELETE /v1/sessions/{id}`     | —                      | final standards assessment |
//! | `GET /healthz`                 | —                      | liveness + session count |
//! | `GET /metrics`                 | —                      | [`slj_obs::Registry`] snapshot |
//! | `POST /admin/shutdown`         | —                      | acknowledges, then drains |
//!
//! Clip payloads are concatenated binary PPMs (P6 is self-delimiting,
//! so a byte stream splits into frames without any framing protocol);
//! responses are JSON rendered by [`slj_obs::JsonWriter`]. The decision
//! records on the wire are **bit-identical** to what an in-process
//! session produces — `tests/serve_http.rs` at the repository root
//! extends the determinism contract across the socket.
//!
//! # Admission control
//!
//! Accepted connections enter a bounded queue ([`ServerConfig::queue_depth`]).
//! When the queue is full the acceptor answers `429 Too Many Requests`
//! with a `Retry-After` header instead of queueing — backpressure is
//! explicit, never an unbounded buffer. Each request carries a deadline
//! from the moment it was accepted; requests that expire in the queue or
//! mid-clip get `503`. Malformed input (truncated bodies, bad PPM
//! headers, oversized frames, invalid JSON) yields a structured JSON
//! error with a 4xx status — never a panic, never a dropped connection.
//!
//! Graceful shutdown (`POST /admin/shutdown`, or [`ShutdownHandle`])
//! stops the acceptor, drains queued and in-flight requests, and then
//! returns from [`Server::run`]. The workspace bans `unsafe`, so POSIX
//! signal handlers are out of reach; process supervisors should send the
//! shutdown request instead of relying on `SIGTERM`.
//!
//! # Load generation
//!
//! [`loadgen`] is the closed-loop counterpart: it synthesizes a clip
//! with [`slj_sim`], fires N concurrent clients at a target server, and
//! reports throughput plus p50/p95/p99 latency through the same
//! [`slj_obs::Histogram`] machinery the engine uses (`slj loadgen` on
//! the CLI).

pub mod client;
pub mod error;
pub mod http;
pub mod jsonin;
pub mod loadgen;
pub mod server;
pub mod session;
pub mod wire;

pub use error::{ApiError, ServeError};
pub use http::{Limits, Request, Response};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use server::{Server, ServerConfig, ServerHandle, ServerReport, ShutdownHandle};
pub use session::SessionTable;

/// Locks `mutex`, recovering the data if a panicking thread poisoned
/// it. Every guarded structure in this crate (connection queue, session
/// table) stays well-formed mid-update, and a serving loop must outlive
/// any single worker's panic.
pub(crate) fn lock_unpoisoned<T>(mutex: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
