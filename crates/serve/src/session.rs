//! The session table: bounded, idle-reaped, checkout/checkin
//! concurrency.
//!
//! Streaming sessions are stateful — a `JumpSession` carries the DBN
//! filter's posterior between frame batches — so the table hands a
//! session *out* to exactly one worker at a time (checkout), and
//! concurrent requests for the same session get `409` instead of a
//! lock held across a multi-millisecond pipeline run.
//!
//! Clients that never `DELETE` would leak sessions; the reaper removes
//! entries idle past the TTL, counts them in `serve.sessions.reaped`,
//! and runs opportunistically on every table operation. Time comes from
//! an injected [`Clock`], so the unit tests drive the TTL with a manual
//! clock instead of sleeping.
//!
//! The table is generic over the session payload: the server stores its
//! session state, the unit tests store `()` — reaping logic needs no
//! trained model.

use crate::lock_unpoisoned;
use slj_obs::{Clock, Counter, Gauge};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Why a session operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// No session with that id (never created, deleted, or reaped).
    NotFound,
    /// Another request holds the session right now.
    Busy,
    /// The table is at its configured capacity.
    TableFull,
}

#[derive(Debug)]
struct Entry<S> {
    /// `None` while a worker holds the session (checked out).
    value: Option<S>,
    last_touch_ns: u64,
    /// Per-session idle TTL (the table default unless overridden at
    /// create time).
    ttl_ns: u64,
}

#[derive(Debug, Default)]
struct TableInner<S> {
    entries: BTreeMap<u64, Entry<S>>,
    next_id: u64,
}

/// A bounded map of live sessions with idle-reaping.
#[derive(Debug)]
pub struct SessionTable<S> {
    inner: Mutex<TableInner<S>>,
    clock: Clock,
    ttl_ns: u64,
    capacity: usize,
    reaped: Counter,
    active: Gauge,
}

impl<S> SessionTable<S> {
    /// Creates a table reading time from `clock`, evicting sessions
    /// idle longer than `ttl_ns`, holding at most `capacity` entries.
    /// `reaped` and `active` are the metric handles the table keeps
    /// up to date (`serve.sessions.reaped` / `serve.sessions.active`).
    pub fn new(clock: Clock, ttl_ns: u64, capacity: usize, reaped: Counter, active: Gauge) -> Self {
        SessionTable {
            inner: Mutex::new(TableInner {
                entries: BTreeMap::new(),
                next_id: 1,
            }),
            clock,
            ttl_ns,
            capacity,
            reaped,
            active,
        }
    }

    /// Inserts a session and returns its id.
    ///
    /// # Errors
    ///
    /// [`SessionError::TableFull`] at capacity (after reaping idle
    /// entries — a full table of *stale* sessions still admits).
    pub fn create(&self, value: S) -> Result<u64, SessionError> {
        self.create_with_ttl(value, self.ttl_ns)
    }

    /// [`SessionTable::create`] with a per-session idle TTL override.
    ///
    /// # Errors
    ///
    /// [`SessionError::TableFull`] at capacity.
    pub fn create_with_ttl(&self, value: S, ttl_ns: u64) -> Result<u64, SessionError> {
        let now = self.clock.now_ns();
        let mut inner = lock_unpoisoned(&self.inner);
        self.reap_locked(&mut inner, now);
        if inner.entries.len() >= self.capacity {
            return Err(SessionError::TableFull);
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.entries.insert(
            id,
            Entry {
                value: Some(value),
                last_touch_ns: now,
                ttl_ns,
            },
        );
        self.active.set(inner.entries.len() as i64);
        Ok(id)
    }

    /// Takes exclusive ownership of session `id` for processing; pair
    /// with [`SessionTable::checkin`].
    ///
    /// # Errors
    ///
    /// [`SessionError::NotFound`] for unknown/expired ids,
    /// [`SessionError::Busy`] when another worker holds it.
    pub fn checkout(&self, id: u64) -> Result<S, SessionError> {
        let now = self.clock.now_ns();
        let mut inner = lock_unpoisoned(&self.inner);
        self.reap_locked(&mut inner, now);
        let entry = inner.entries.get_mut(&id).ok_or(SessionError::NotFound)?;
        entry.value.take().ok_or(SessionError::Busy)
    }

    /// Returns a checked-out session, refreshing its idle timer.
    pub fn checkin(&self, id: u64, value: S) {
        let now = self.clock.now_ns();
        let mut inner = lock_unpoisoned(&self.inner);
        // A checked-out entry is never reaped, so the slot still exists;
        // updating in place preserves a per-session TTL override.
        match inner.entries.get_mut(&id) {
            Some(entry) => {
                entry.value = Some(value);
                entry.last_touch_ns = now;
            }
            None => {
                inner.entries.insert(
                    id,
                    Entry {
                        value: Some(value),
                        last_touch_ns: now,
                        ttl_ns: self.ttl_ns,
                    },
                );
            }
        }
        self.active.set(inner.entries.len() as i64);
    }

    /// Removes session `id` and returns its payload.
    ///
    /// # Errors
    ///
    /// [`SessionError::NotFound`] for unknown ids, [`SessionError::Busy`]
    /// when a worker holds it (delete again after it finishes).
    pub fn remove(&self, id: u64) -> Result<S, SessionError> {
        let mut inner = lock_unpoisoned(&self.inner);
        let entry = inner.entries.get_mut(&id).ok_or(SessionError::NotFound)?;
        let value = entry.value.take().ok_or(SessionError::Busy)?;
        inner.entries.remove(&id);
        self.active.set(inner.entries.len() as i64);
        Ok(value)
    }

    /// Evicts idle sessions now; returns how many were reaped. Called
    /// internally by every operation, and by the server's accept loop
    /// so an idle server still reaps.
    pub fn reap(&self) -> usize {
        let now = self.clock.now_ns();
        let mut inner = lock_unpoisoned(&self.inner);
        self.reap_locked(&mut inner, now)
    }

    /// Number of live sessions (including checked-out ones).
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).entries.len()
    }

    /// Whether the table holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn reap_locked(&self, inner: &mut TableInner<S>, now_ns: u64) -> usize {
        let before = inner.entries.len();
        // Checked-out entries (value == None) are in use: never reaped.
        inner.entries.retain(|_, entry| {
            entry.value.is_none() || now_ns.saturating_sub(entry.last_touch_ns) <= entry.ttl_ns
        });
        let evicted = before - inner.entries.len();
        if evicted > 0 {
            self.reaped.add(evicted as u64);
            self.active.set(inner.entries.len() as i64);
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_obs::Registry;

    fn table(ttl_ns: u64, capacity: usize) -> (SessionTable<u32>, Clock, Registry) {
        let clock = Clock::manual();
        let registry = Registry::new();
        let table = SessionTable::new(
            clock.clone(),
            ttl_ns,
            capacity,
            registry.counter("serve.sessions.reaped"),
            registry.gauge("serve.sessions.active"),
        );
        (table, clock, registry)
    }

    #[test]
    fn idle_sessions_reap_after_ttl_and_are_counted() {
        let (table, clock, registry) = table(1_000, 8);
        let a = table.create(1).unwrap();
        clock.advance(600);
        let b = table.create(2).unwrap();
        assert_eq!(table.len(), 2);

        // a is 1001ns idle, b only 401ns: exactly one eviction.
        clock.advance(401);
        assert_eq!(table.reap(), 1);
        assert_eq!(table.checkout(a).unwrap_err(), SessionError::NotFound);
        assert_eq!(table.checkout(b).unwrap(), 2);
        table.checkin(b, 2);
        assert_eq!(registry.counter("serve.sessions.reaped").get(), 1);
        assert_eq!(registry.gauge("serve.sessions.active").get(), 1);
    }

    #[test]
    fn touching_a_session_resets_its_idle_timer() {
        let (table, clock, _registry) = table(1_000, 8);
        let id = table.create(7).unwrap();
        clock.advance(900);
        let v = table.checkout(id).unwrap();
        table.checkin(id, v); // refreshes last_touch
        clock.advance(900);
        assert_eq!(table.reap(), 0, "900ns since checkin is within TTL");
        clock.advance(101);
        assert_eq!(table.reap(), 1);
    }

    #[test]
    fn checked_out_sessions_are_never_reaped() {
        let (table, clock, _registry) = table(1_000, 8);
        let id = table.create(3).unwrap();
        let v = table.checkout(id).unwrap();
        clock.advance(10_000);
        assert_eq!(table.reap(), 0, "in-flight session survives its TTL");
        assert_eq!(table.checkout(id).unwrap_err(), SessionError::Busy);
        assert_eq!(table.remove(id).unwrap_err(), SessionError::Busy);
        table.checkin(id, v);
        assert_eq!(table.remove(id).unwrap(), 3);
    }

    #[test]
    fn capacity_is_enforced_after_reaping() {
        let (table, clock, _registry) = table(1_000, 2);
        table.create(1).unwrap();
        table.create(2).unwrap();
        assert_eq!(table.create(3).unwrap_err(), SessionError::TableFull);
        // Stale entries make room for new sessions.
        clock.advance(2_000);
        assert!(table.create(4).is_ok());
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn per_session_ttl_override_outlives_the_default() {
        let (table, clock, _registry) = table(1_000, 8);
        let short = table.create(1).unwrap();
        let long = table.create_with_ttl(2, 10_000).unwrap();
        clock.advance(5_000);
        assert_eq!(table.reap(), 1);
        assert_eq!(table.checkout(short).unwrap_err(), SessionError::NotFound);
        assert_eq!(table.checkout(long).unwrap(), 2);
        table.checkin(long, 2);
        clock.advance(10_001);
        assert_eq!(table.reap(), 1, "override survives checkin");
    }

    #[test]
    fn ids_are_never_reused() {
        let (table, _clock, _registry) = table(1_000, 2);
        let a = table.create(1).unwrap();
        table.remove(a).unwrap();
        let b = table.create(2).unwrap();
        assert_ne!(a, b);
        assert!(table.is_empty() || table.len() == 1);
    }
}
