//! The server: acceptor + bounded queue + worker pool + router.
//!
//! One acceptor thread and N workers share a [`slj_runtime::ThreadPool`]
//! scope. The acceptor admits connections into a bounded queue (or
//! answers `429` on the spot — backpressure is explicit); workers pop,
//! parse, route, and respond. Every request is timed from the moment
//! it was accepted, so deadline expiry covers queueing time too.
//!
//! Shutdown is cooperative: `POST /admin/shutdown` (or a
//! [`ShutdownHandle`]) flips a flag; the acceptor stops admitting,
//! workers drain the queue and finish in-flight requests, and
//! [`Server::run`] returns a [`ServerReport`].

use crate::error::{ApiError, ServeError};
use crate::http::{read_request, Limits, Request, Response};
use crate::jsonin;
use crate::lock_unpoisoned;
use crate::session::{SessionError, SessionTable};
use crate::wire;
use slj_core::engine::JumpSession;
use slj_core::model::PoseModel;
use slj_core::scoring::assess_with_taxonomy;
use slj_obs::{Clock, Counter, Gauge, Histogram, Registry, Stopwatch};
use slj_quality::{QualityConfig, QualityReport, Reason};
use slj_runtime::ThreadPool;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Server configuration; every knob has a production-ish default and a
/// matching `slj serve` flag.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads (0 = one per available core, minus the acceptor).
    pub threads: usize,
    /// Bounded accept queue depth; connections beyond it get `429`.
    pub queue_depth: usize,
    /// Maximum live streaming sessions; creates beyond it get `429`.
    pub max_sessions: usize,
    /// Per-request deadline in milliseconds, measured from accept;
    /// requests that expire queued or mid-clip get `503`.
    pub deadline_ms: u64,
    /// Idle-session TTL in milliseconds (the reaper's default).
    pub session_ttl_ms: u64,
    /// Socket read/write timeout in milliseconds.
    pub io_timeout_ms: u64,
    /// Request size limits.
    pub limits: Limits,
    /// Pose-quality diagnostics. `Some` attaches a
    /// [`slj_quality::ClipAnalyzer`] to every evaluation and streaming
    /// session, appends `confidence`/`quality` fields to their
    /// responses, and records `serve.quality.*` metrics. `None` disables
    /// all of it — response bodies are then **byte-identical** to the
    /// pre-diagnostics wire contract.
    pub quality: Option<QualityConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            queue_depth: 64,
            max_sessions: 64,
            deadline_ms: 10_000,
            session_ttl_ms: 60_000,
            io_timeout_ms: 5_000,
            limits: Limits::default(),
            quality: Some(QualityConfig::default()),
        }
    }
}

/// Counts extracted from the registry when the server drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerReport {
    /// Requests handled by workers (any status).
    pub requests: u64,
    /// Connections rejected with `429` at the accept queue.
    pub rejected_429: u64,
    /// Requests answered `503` after deadline expiry.
    pub deadline_503: u64,
    /// Sessions evicted by the idle reaper.
    pub sessions_reaped: u64,
}

/// Flips the server into draining mode from another thread.
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests a graceful drain (idempotent).
    pub fn trigger(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested.
    pub fn is_triggered(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A bound server, ready to [`Server::run`] or [`Server::spawn`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    config: ServerConfig,
    model: &'static PoseModel,
    registry: Registry,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener and takes ownership of the model.
    ///
    /// The model is intentionally leaked: streaming sessions borrow it
    /// for `'static` across worker threads, and one model per server
    /// lifetime (typically the process lifetime) is a bounded cost.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the address cannot be bound and
    /// [`ServeError::Config`] for a zero queue depth.
    pub fn bind(config: ServerConfig, model: PoseModel) -> Result<Self, ServeError> {
        if config.queue_depth == 0 {
            return Err(ServeError::Config("queue_depth must be at least 1".into()));
        }
        let listener = TcpListener::bind(&config.addr)?;
        // Non-blocking so the accept loop can poll the shutdown flag.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            config,
            model: Box::leak(Box::new(model)),
            registry: Registry::new(),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (the ephemeral port when `addr` ended in `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics registry the server records into (shared handle).
    pub fn registry(&self) -> Registry {
        self.registry.clone()
    }

    /// A handle that triggers graceful shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// Runs the accept/worker loops until shutdown, then drains and
    /// reports.
    ///
    /// # Errors
    ///
    /// [`ServeError::Runtime`] when the worker pool fails.
    pub fn run(self) -> Result<ServerReport, ServeError> {
        let worker_count = if self.config.threads == 0 {
            ThreadPool::new(slj_runtime::Parallelism::Auto)
                .threads()
                .saturating_sub(1)
                .max(1)
        } else {
            self.config.threads
        };
        let state = State::new(
            self.model,
            &self.config,
            self.registry.clone(),
            Arc::clone(&self.shutdown),
        );

        // Task 0 is the acceptor, tasks 1..=N are workers: one thread
        // each, joined when all loops exit after the drain.
        let pool = ThreadPool::fixed(worker_count + 1);
        let mut tasks = vec![Role::Acceptor];
        tasks.extend(std::iter::repeat_n(Role::Worker, worker_count));
        pool.scoped_run(tasks, |_, role| match role {
            Role::Acceptor => accept_loop(&self.listener, &state),
            Role::Worker => worker_loop(&state),
        })?;

        Ok(ServerReport {
            requests: state.metrics.requests.get(),
            rejected_429: state.metrics.rejected_429.get(),
            deadline_503: state.metrics.deadline_503.get(),
            sessions_reaped: self.registry.counter("serve.sessions.reaped").get(),
        })
    }

    /// Runs the server on a background thread; the handle stops and
    /// joins it. This is how the tests and the load-generator harness
    /// host a server in-process.
    ///
    /// # Errors
    ///
    /// Never fails today; the `Result` keeps room for spawn-time checks.
    pub fn spawn(self) -> Result<ServerHandle, ServeError> {
        let addr = self.addr;
        let shutdown = self.shutdown_handle();
        let registry = self.registry();
        let join = std::thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            shutdown,
            registry,
            join,
        })
    }
}

/// A running background server (see [`Server::spawn`]).
#[derive(Debug)]
pub struct ServerHandle {
    /// The bound address.
    pub addr: SocketAddr,
    /// Triggers graceful drain.
    pub shutdown: ShutdownHandle,
    /// The server's metrics registry.
    pub registry: Registry,
    join: std::thread::JoinHandle<Result<ServerReport, ServeError>>,
}

impl ServerHandle {
    /// Requests shutdown and waits for the drain to finish.
    ///
    /// # Errors
    ///
    /// Propagates the server's exit error; a panicked server thread
    /// surfaces as [`ServeError::Runtime`].
    pub fn stop(self) -> Result<ServerReport, ServeError> {
        self.shutdown.trigger();
        self.join.join().map_err(|_| {
            ServeError::Runtime(slj_runtime::RuntimeError::WorkerPanic(
                "server thread panicked".into(),
            ))
        })?
    }
}

#[derive(Debug, Clone, Copy)]
enum Role {
    Acceptor,
    Worker,
}

/// A connection admitted to the work queue; the stopwatch started at
/// accept so the deadline covers queueing.
#[derive(Debug)]
struct Pending {
    stream: TcpStream,
    accepted: Stopwatch,
}

/// Metric handles pre-created once so the hot path never touches the
/// registry's name map.
#[derive(Debug)]
struct Metrics {
    requests: Counter,
    responses_2xx: Counter,
    responses_4xx: Counter,
    responses_5xx: Counter,
    rejected_429: Counter,
    deadline_503: Counter,
    request_ns: Histogram,
    queue_depth: Gauge,
    bytes_in: Counter,
    bytes_out: Counter,
    frames: Counter,
    sessions_created: Counter,
    sessions_closed: Counter,
    write_errors: Counter,
    /// Clips scored by the quality analyzer (one per `/v1/evaluate`
    /// body or closed streaming session).
    quality_clips: Counter,
    /// Frames carrying at least one quality flag, across scored clips.
    quality_flagged: Counter,
    /// Clip scores in thousandths (a score of 0.87 records 870), so the
    /// fixed histogram buckets resolve the `[0,1]` range.
    quality_score_milli: Histogram,
    /// Per-reason flagged-frame counters, indexed like
    /// [`Reason::ALL`] (`serve.quality.reason.<code>`).
    quality_reasons: [Counter; Reason::ALL.len()],
}

impl Metrics {
    fn new(registry: &Registry) -> Self {
        Metrics {
            requests: registry.counter("serve.requests"),
            responses_2xx: registry.counter("serve.responses.2xx"),
            responses_4xx: registry.counter("serve.responses.4xx"),
            responses_5xx: registry.counter("serve.responses.5xx"),
            rejected_429: registry.counter("serve.rejected.429"),
            deadline_503: registry.counter("serve.deadline.503"),
            request_ns: registry.histogram("serve.request.ns"),
            queue_depth: registry.gauge("serve.queue.depth"),
            bytes_in: registry.counter("serve.bytes_in"),
            bytes_out: registry.counter("serve.bytes_out"),
            frames: registry.counter("serve.frames"),
            sessions_created: registry.counter("serve.sessions.created"),
            sessions_closed: registry.counter("serve.sessions.closed"),
            write_errors: registry.counter("serve.write_errors"),
            quality_clips: registry.counter("serve.quality.clips"),
            quality_flagged: registry.counter("serve.quality.flagged_frames"),
            quality_score_milli: registry.histogram("serve.quality.score.milli"),
            quality_reasons: Reason::ALL
                .map(|reason| registry.counter(&format!("serve.quality.reason.{}", reason.code()))),
        }
    }

    /// Folds one finished clip's quality report into the
    /// `serve.quality.*` family.
    fn record_quality(&self, report: &QualityReport) {
        self.quality_clips.inc();
        self.quality_flagged.add(u64::from(report.flagged_frames));
        let milli = (report.clip_score * 1000.0).round().clamp(0.0, 1000.0);
        self.quality_score_milli.record(milli as u64);
        for (slot, reason) in Reason::ALL.iter().enumerate() {
            let frames = report.reason_frames[*reason as usize];
            if frames > 0 {
                self.quality_reasons[slot].add(u64::from(frames));
            }
        }
    }
}

/// Everything the acceptor and workers share, borrowed inside the pool
/// scope — no `Arc` plumbing needed beyond the shutdown flag.
struct State<'cfg> {
    model: &'static PoseModel,
    config: &'cfg ServerConfig,
    registry: Registry,
    metrics: Metrics,
    sessions: SessionTable<SessionState>,
    queue: Mutex<VecDeque<Pending>>,
    queue_cv: Condvar,
    shutdown: Arc<AtomicBool>,
    clock: Clock,
}

impl<'cfg> State<'cfg> {
    fn new(
        model: &'static PoseModel,
        config: &'cfg ServerConfig,
        registry: Registry,
        shutdown: Arc<AtomicBool>,
    ) -> Self {
        let clock = Clock::monotonic();
        let metrics = Metrics::new(&registry);
        let sessions = SessionTable::new(
            clock.clone(),
            config.session_ttl_ms.saturating_mul(1_000_000),
            config.max_sessions,
            registry.counter("serve.sessions.reaped"),
            registry.gauge("serve.sessions.active"),
        );
        State {
            model,
            config,
            registry,
            metrics,
            sessions,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown,
            clock,
        }
    }

    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// One streaming session's state: the engine (created when the first
/// request delivers the background frame) plus the recognised pose
/// history for the final standards assessment.
struct SessionState {
    engine: Option<JumpSession<'static>>,
    poses: Vec<Option<usize>>,
}

impl SessionState {
    fn new() -> Self {
        SessionState {
            engine: None,
            poses: Vec::new(),
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &State<'_>) {
    while !state.draining() {
        state.sessions.reap();
        match listener.accept() {
            Ok((stream, _peer)) => admit(stream, state),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                // Transient accept failure (e.g. EMFILE): back off.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    // Wake every worker so they can observe the flag and drain.
    state.queue_cv.notify_all();
}

fn admit(stream: TcpStream, state: &State<'_>) {
    let timeout = Duration::from_millis(state.config.io_timeout_ms.max(1));
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));

    let mut queue = lock_unpoisoned(&state.queue);
    if queue.len() >= state.config.queue_depth {
        drop(queue);
        state.metrics.rejected_429.inc();
        state.metrics.responses_4xx.inc();
        let err = ApiError::too_many(
            "queue_full",
            format!(
                "work queue is at its depth of {}; retry shortly",
                state.config.queue_depth
            ),
        );
        respond(stream, &Response::from_error(&err), state);
        return;
    }
    queue.push_back(Pending {
        stream,
        accepted: Stopwatch::start(),
    });
    state.metrics.queue_depth.set(queue.len() as i64);
    drop(queue);
    state.queue_cv.notify_one();
}

fn worker_loop(state: &State<'_>) {
    loop {
        let pending = {
            let mut queue = lock_unpoisoned(&state.queue);
            loop {
                if let Some(p) = queue.pop_front() {
                    state.metrics.queue_depth.set(queue.len() as i64);
                    break Some(p);
                }
                if state.draining() {
                    break None;
                }
                let (guard, _timed_out) = state
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(|p| p.into_inner());
                queue = guard;
            }
        };
        match pending {
            Some(p) => handle_connection(p, state),
            None => break,
        }
    }
}

fn handle_connection(pending: Pending, state: &State<'_>) {
    let Pending {
        mut stream,
        accepted,
    } = pending;
    state.metrics.requests.inc();

    // The request is read *before* the deadline check so an expired
    // request gets its 503 on a fully-drained socket — responding while
    // the client is still uploading would close with unread data and
    // reset the connection out from under the response.
    let response = match read_request(&mut stream, &state.config.limits) {
        Ok(request) => {
            state.metrics.bytes_in.add(request.body.len() as u64);
            match check_deadline(&accepted, state) {
                Ok(()) => route(&request, &accepted, state),
                Err(err) => Response::from_error(&err),
            }
        }
        Err(err) => Response::from_error(&err),
    };
    match response.status {
        200..=299 => state.metrics.responses_2xx.inc(),
        400..=499 => state.metrics.responses_4xx.inc(),
        _ => state.metrics.responses_5xx.inc(),
    }
    if response.status == 503 {
        state.metrics.deadline_503.inc();
    }
    state.metrics.request_ns.record(accepted.elapsed_ns());
    respond(stream, &response, state);
}

/// Writes the response, then performs a *lingering close*: half-close
/// the write side and drain what the peer is still sending until it
/// sees our FIN and closes. Closing a socket with unread received data
/// makes the kernel send RST, which can destroy the response before
/// the client reads it — exactly the rejected-request paths (429, 413,
/// 431) where the client is usually mid-upload.
fn respond(mut stream: TcpStream, response: &Response, state: &State<'_>) {
    use std::io::Read;

    state.metrics.bytes_out.add(response.body.len() as u64);
    if response.write_to(&mut stream).is_err() {
        state.metrics.write_errors.inc();
        return;
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    // Bounded in both time and bytes so a trickling client cannot pin
    // the thread: local well-behaved peers hit EOF in one or two reads.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut sink = [0u8; 16 * 1024];
    let mut budget: usize = 4 << 20;
    loop {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                budget = budget.saturating_sub(n);
                if budget == 0 {
                    break;
                }
            }
        }
    }
}

/// Routes one parsed request. Known paths with the wrong method get
/// `405`; everything else structured `404`.
fn route(request: &Request, accepted: &Stopwatch, state: &State<'_>) -> Response {
    let segments: Vec<&str> = request
        .path
        .trim_matches('/')
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    let method = request.method.as_str();
    let result = match (method, segments.as_slice()) {
        ("GET", ["healthz"]) => Ok(handle_healthz(state)),
        ("GET", ["metrics"]) => Ok(Response::json(200, state.registry.snapshot_json())),
        ("POST", ["admin", "shutdown"]) => Ok(handle_shutdown(state)),
        ("POST", ["v1", "evaluate"]) => handle_evaluate(&request.body, accepted, state),
        ("POST", ["v1", "sessions"]) => handle_create_session(&request.body, state),
        ("POST", ["v1", "sessions", id, "frames"]) => {
            handle_session_frames(id, &request.body, accepted, state)
        }
        ("DELETE", ["v1", "sessions", id]) => handle_delete_session(id, state),
        (_, ["healthz" | "metrics"])
        | (_, ["admin", "shutdown"])
        | (_, ["v1", "evaluate"])
        | (_, ["v1", "sessions"])
        | (_, ["v1", "sessions", _, "frames"])
        | (_, ["v1", "sessions", _]) => Err(ApiError::new(
            405,
            "method_not_allowed",
            format!("{method} is not supported on {}", request.path),
        )),
        _ => Err(ApiError::not_found(&request.path)),
    };
    match result {
        Ok(response) => response,
        Err(err) => Response::from_error(&err),
    }
}

fn handle_healthz(state: &State<'_>) -> Response {
    let mut w = slj_obs::JsonWriter::new();
    w.begin_object();
    w.key("ok");
    w.bool(true);
    w.key("draining");
    w.bool(state.draining());
    w.key("sessions");
    w.u64(state.sessions.len() as u64);
    w.key("uptime_ms");
    w.u64(state.clock.now_ns() / 1_000_000);
    w.end_object();
    Response::json(200, w.finish())
}

fn handle_shutdown(state: &State<'_>) -> Response {
    state.shutdown.store(true, Ordering::SeqCst);
    state.queue_cv.notify_all();
    Response::json(200, "{\"ok\":true,\"draining\":true}".to_string())
}

/// Checks the request deadline; used between frames so a slow clip
/// cannot hold a worker past its budget.
fn check_deadline(accepted: &Stopwatch, state: &State<'_>) -> Result<(), ApiError> {
    let deadline_ns = state.config.deadline_ms.saturating_mul(1_000_000);
    if accepted.elapsed_ns() >= deadline_ns {
        Err(ApiError::deadline_exceeded(
            accepted.elapsed_ns() / 1_000_000,
            state.config.deadline_ms,
        ))
    } else {
        Ok(())
    }
}

fn handle_evaluate(
    body: &[u8],
    accepted: &Stopwatch,
    state: &State<'_>,
) -> Result<Response, ApiError> {
    let images = wire::split_frames(body)?;
    if images.len() < 2 {
        return Err(ApiError::bad_request(
            "no_frames",
            "body must contain the background PPM followed by at least one frame",
        ));
    }
    let mut frames_iter = images.into_iter();
    let background = frames_iter
        .next()
        .ok_or_else(|| ApiError::bad_request("no_frames", "missing background frame"))?;
    let mut session = JumpSession::new(state.model, background).map_err(ApiError::from)?;
    session.attach_metrics(&state.registry);
    if let Some(quality) = &state.config.quality {
        session.attach_quality(quality.clone());
    }

    let mut decisions = Vec::new();
    let mut poses = Vec::new();
    for (index, frame) in frames_iter.enumerate() {
        check_deadline(accepted, state)?;
        let estimate = session.push_frame(&frame).map_err(ApiError::from)?;
        state.metrics.frames.inc();
        if let Some(decision) = session.last_decision() {
            decisions.push(wire::decision_json(
                index as u64,
                &estimate,
                &decision,
                state.model.taxonomy(),
            ));
        }
        poses.push(estimate.pose);
    }
    let faults = assess_with_taxonomy(state.model.taxonomy(), &poses);
    let quality = session.quality_report();
    if let Some(report) = &quality {
        state.metrics.record_quality(report);
    }
    Ok(Response::json(
        200,
        format!(
            "{{\"schema\":1,\"frames\":{},\"decisions\":[{}],\"faults\":{}{}}}",
            decisions.len(),
            decisions.join(","),
            wire::faults_json(&faults),
            wire::quality_suffix(quality.as_ref())
        ),
    ))
}

fn handle_create_session(body: &[u8], state: &State<'_>) -> Result<Response, ApiError> {
    if state.draining() {
        return Err(ApiError::new(
            503,
            "draining",
            "server is draining; no new sessions",
        ));
    }
    let fields = jsonin::parse_flat_object(body)?;
    for (key, _) in &fields {
        if key != "poses" && key != "ttl_ms" {
            return Err(ApiError::new(
                422,
                "unknown_field",
                format!("unknown session config field {key:?}"),
            ));
        }
    }
    if let Some(poses) = jsonin::field(&fields, "poses") {
        if poses != state.model.taxonomy().pose_count() as i64 {
            return Err(ApiError::new(
                422,
                "pose_count_mismatch",
                format!(
                    "client expects {poses} poses; this model recognises {}",
                    state.model.taxonomy().pose_count()
                ),
            ));
        }
    }
    let default_ttl_ms = state.config.session_ttl_ms;
    let ttl_ms = match jsonin::field(&fields, "ttl_ms") {
        Some(ms) if ms >= 1 && ms <= 3_600_000 => ms as u64,
        Some(ms) => {
            return Err(ApiError::new(
                422,
                "bad_field",
                format!("ttl_ms must be in 1..=3600000, got {ms}"),
            ));
        }
        None => default_ttl_ms,
    };
    let id = state
        .sessions
        .create_with_ttl(SessionState::new(), ttl_ms.saturating_mul(1_000_000))
        .map_err(|_| {
            ApiError::too_many(
                "session_limit",
                format!(
                    "session table is at its capacity of {}; retry shortly",
                    state.config.max_sessions
                ),
            )
        })?;
    state.metrics.sessions_created.inc();
    Ok(Response::json(
        201,
        format!(
            "{{\"session\":{id},\"poses\":{},\"ttl_ms\":{ttl_ms}}}",
            state.model.taxonomy().pose_count()
        ),
    ))
}

fn parse_session_id(raw: &str) -> Result<u64, ApiError> {
    raw.parse::<u64>()
        .map_err(|_| ApiError::new(404, "session_not_found", format!("no session {raw:?}")))
}

fn session_error(id: u64, err: SessionError) -> ApiError {
    match err {
        SessionError::NotFound => ApiError::new(
            404,
            "session_not_found",
            format!("no session {id} (expired, deleted, or never created)"),
        ),
        SessionError::Busy => ApiError::new(
            409,
            "session_busy",
            format!("session {id} is processing another request"),
        ),
        SessionError::TableFull => ApiError::too_many("session_limit", "session table is full"),
    }
}

fn handle_session_frames(
    raw_id: &str,
    body: &[u8],
    accepted: &Stopwatch,
    state: &State<'_>,
) -> Result<Response, ApiError> {
    let id = parse_session_id(raw_id)?;
    // Session existence is checked before the body is parsed: frames
    // for a session that expired or never existed are 404, whatever
    // their bytes look like.
    let mut session = state
        .sessions
        .checkout(id)
        .map_err(|e| session_error(id, e))?;
    // From here every path must check the session back in.
    let result = wire::split_frames(body)
        .and_then(|images| advance_session(&mut session, images, accepted, state));
    let frames_processed = session.poses.len() as u64;
    // The clip-so-far report: streaming clients see their confidence
    // degrade live instead of only at delete time.
    let quality = session
        .engine
        .as_ref()
        .and_then(|engine| engine.quality_report());
    state.sessions.checkin(id, session);
    let decisions = result?;
    Ok(Response::json(
        200,
        format!(
            "{{\"session\":{id},\"decisions\":[{}],\"frames_processed\":{frames_processed}{}}}",
            decisions.join(","),
            wire::quality_suffix(quality.as_ref())
        ),
    ))
}

/// Feeds `images` into the session: the first image becomes the
/// background when the engine is not initialised yet, the rest are
/// frames. Returns the new decision records.
fn advance_session(
    session: &mut SessionState,
    images: Vec<slj_imaging::RgbImage>,
    accepted: &Stopwatch,
    state: &State<'_>,
) -> Result<Vec<String>, ApiError> {
    let mut frames_iter = images.into_iter();
    if session.engine.is_none() {
        let background = frames_iter
            .next()
            .ok_or_else(|| ApiError::bad_request("no_frames", "missing background frame"))?;
        let mut engine = JumpSession::new(state.model, background).map_err(ApiError::from)?;
        engine.attach_metrics(&state.registry);
        if let Some(quality) = &state.config.quality {
            engine.attach_quality(quality.clone());
        }
        session.engine = Some(engine);
    }
    let engine = session
        .engine
        .as_mut()
        .ok_or_else(|| ApiError::new(500, "pipeline_error", "session engine missing after init"))?;
    let mut decisions = Vec::new();
    for frame in frames_iter {
        check_deadline(accepted, state)?;
        let frame_index = session.poses.len() as u64;
        let estimate = engine.push_frame(&frame).map_err(ApiError::from)?;
        state.metrics.frames.inc();
        if let Some(decision) = engine.last_decision() {
            decisions.push(wire::decision_json(
                frame_index,
                &estimate,
                &decision,
                state.model.taxonomy(),
            ));
        }
        session.poses.push(estimate.pose);
    }
    Ok(decisions)
}

fn handle_delete_session(raw_id: &str, state: &State<'_>) -> Result<Response, ApiError> {
    let id = parse_session_id(raw_id)?;
    let session = state
        .sessions
        .remove(id)
        .map_err(|e| session_error(id, e))?;
    state.metrics.sessions_closed.inc();
    let faults = assess_with_taxonomy(state.model.taxonomy(), &session.poses);
    // A closed streaming session is one finished clip: fold its final
    // report into serve.quality.* exactly once, here.
    let quality = session
        .engine
        .as_ref()
        .and_then(|engine| engine.quality_report());
    if let Some(report) = &quality {
        state.metrics.record_quality(report);
    }
    Ok(Response::json(
        200,
        format!(
            "{{\"session\":{id},\"frames_processed\":{},\"faults\":{}{}}}",
            session.poses.len(),
            wire::faults_json(&faults),
            wire::quality_suffix(quality.as_ref())
        ),
    ))
}
