//! Minimal JSON *input* parsing for the one endpoint that accepts JSON.
//!
//! `POST /v1/sessions` takes an optional flat configuration object —
//! integer-valued keys like `{"ttl_ms": 30000, "poses": 22}`. The
//! workspace is dependency-free, so this module hand-rolls exactly that
//! subset: one object, string keys, integer values, `null` ignored.
//! Anything else (nested objects, arrays, strings, floats) is rejected
//! with a structured error — the API surface stays small on purpose.

use crate::error::ApiError;

/// Parses an optional flat JSON object of integer fields.
///
/// An empty or whitespace-only body parses as the empty map (all
/// defaults). Duplicate keys keep the last value, matching common JSON
/// parser behaviour.
///
/// # Errors
///
/// `400 json_invalid` for anything that is not a flat object of
/// integers (including non-UTF-8 bytes).
pub fn parse_flat_object(body: &[u8]) -> Result<Vec<(String, i64)>, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("json_invalid", "body is not valid UTF-8"))?;
    let mut chars = Cursor::new(text);
    chars.skip_ws();
    if chars.done() {
        return Ok(Vec::new());
    }
    chars.consume('{')?;
    let mut fields = Vec::new();
    chars.skip_ws();
    if chars.peek() == Some('}') {
        chars.next_char();
    } else {
        loop {
            chars.skip_ws();
            let key = chars.string()?;
            chars.skip_ws();
            chars.consume(':')?;
            chars.skip_ws();
            if chars.keyword("null") {
                // tolerated and ignored: "use the default"
            } else {
                let value = chars.integer()?;
                fields.push((key, value));
            }
            chars.skip_ws();
            match chars.next_char() {
                Some(',') => continue,
                Some('}') => break,
                other => {
                    return Err(ApiError::bad_request(
                        "json_invalid",
                        format!("expected ',' or '}}', got {other:?}"),
                    ));
                }
            }
        }
    }
    chars.skip_ws();
    if !chars.done() {
        return Err(ApiError::bad_request(
            "json_invalid",
            "trailing bytes after the JSON object",
        ));
    }
    Ok(fields)
}

/// Looks up `key` in parsed fields.
pub fn field(fields: &[(String, i64)], key: &str) -> Option<i64> {
    fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| *v)
}

struct Cursor<'a> {
    rest: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor { rest: text }
    }

    fn done(&self) -> bool {
        self.rest.is_empty()
    }

    fn peek(&self) -> Option<char> {
        self.rest.chars().next()
    }

    fn next_char(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.rest = &self.rest[c.len_utf8()..];
        Some(c)
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn consume(&mut self, want: char) -> Result<(), ApiError> {
        match self.next_char() {
            Some(c) if c == want => Ok(()),
            other => Err(ApiError::bad_request(
                "json_invalid",
                format!("expected {want:?}, got {other:?}"),
            )),
        }
    }

    /// Consumes `word` if it is next; returns whether it was.
    fn keyword(&mut self, word: &str) -> bool {
        if let Some(rest) = self.rest.strip_prefix(word) {
            self.rest = rest;
            true
        } else {
            false
        }
    }

    /// A JSON string without escape support (config keys are plain
    /// identifiers; an escape is a parse error, not a silent mangle).
    fn string(&mut self) -> Result<String, ApiError> {
        self.consume('"')?;
        let mut out = String::new();
        loop {
            match self.next_char() {
                Some('"') => return Ok(out),
                Some('\\') => {
                    return Err(ApiError::bad_request(
                        "json_invalid",
                        "escape sequences are not supported in config keys",
                    ));
                }
                Some(c) => out.push(c),
                None => {
                    return Err(ApiError::bad_request("json_invalid", "unterminated string"));
                }
            }
        }
    }

    fn integer(&mut self) -> Result<i64, ApiError> {
        let digits: String = {
            let mut s = String::new();
            if self.peek() == Some('-') {
                s.push('-');
                self.next_char();
            }
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    s.push(c);
                    self.next_char();
                } else {
                    break;
                }
            }
            s
        };
        if matches!(self.peek(), Some('.') | Some('e') | Some('E')) {
            return Err(ApiError::bad_request(
                "json_invalid",
                "only integer values are accepted",
            ));
        }
        digits
            .parse::<i64>()
            .map_err(|_| ApiError::bad_request("json_invalid", format!("bad integer {digits:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_bare_object_parse_to_no_fields() {
        assert!(parse_flat_object(b"").unwrap().is_empty());
        assert!(parse_flat_object(b"  \n ").unwrap().is_empty());
        assert!(parse_flat_object(b"{}").unwrap().is_empty());
        assert!(parse_flat_object(b" { } ").unwrap().is_empty());
    }

    #[test]
    fn integer_fields_parse_in_order() {
        let fields = parse_flat_object(b"{\"ttl_ms\": 30000, \"poses\": 22}").unwrap();
        assert_eq!(field(&fields, "ttl_ms"), Some(30_000));
        assert_eq!(field(&fields, "poses"), Some(22));
        assert_eq!(field(&fields, "missing"), None);
    }

    #[test]
    fn null_values_mean_use_the_default() {
        let fields = parse_flat_object(b"{\"ttl_ms\": null, \"poses\": 22}").unwrap();
        assert_eq!(field(&fields, "ttl_ms"), None);
        assert_eq!(field(&fields, "poses"), Some(22));
    }

    #[test]
    fn duplicate_keys_keep_the_last_value() {
        let fields = parse_flat_object(b"{\"n\": 1, \"n\": 2}").unwrap();
        assert_eq!(field(&fields, "n"), Some(2));
    }

    #[test]
    fn malformed_inputs_are_structured_errors() {
        for bad in [
            &b"{"[..],
            b"{\"a\"}",
            b"{\"a\": }",
            b"{\"a\": 1.5}",
            b"{\"a\": \"text\"}",
            b"{\"a\": [1]}",
            b"{\"a\": 1} trailing",
            b"[1, 2]",
            b"{\"a\\n\": 1}",
            b"{\"unterminated: 1}",
            b"\xff\xfe not utf8",
        ] {
            let err = parse_flat_object(bad).unwrap_err();
            assert_eq!(err.status, 400, "input {bad:?}");
            assert_eq!(err.code, "json_invalid", "input {bad:?}");
        }
    }
}
