//! Error type for the execution layer.

use std::fmt;

/// Errors surfaced by the worker pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A worker closure panicked; the payload message is preserved.
    ///
    /// The pool catches the unwind, stops handing out further work, and
    /// returns this instead of poisoning shared state or aborting the
    /// process. When several workers panic, the message is the first one
    /// observed at collection time (worker order, not wall-clock order).
    WorkerPanic(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::WorkerPanic(msg) => write!(f, "worker thread panicked: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_payload() {
        let e = RuntimeError::WorkerPanic("boom".into());
        assert_eq!(e.to_string(), "worker thread panicked: boom");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RuntimeError>();
    }
}
