//! The scoped worker pool and its configuration.

use crate::error::RuntimeError;
use slj_obs::{Counter, Histogram, Registry};
use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Environment variable overriding any configured [`Parallelism`].
///
/// Accepted values: `serial` or `0` (force serial), `auto` (available
/// cores), or an explicit thread count. Unparseable values are ignored.
pub const THREADS_ENV: &str = "SLJ_THREADS";

/// How many worker threads the pool should use.
///
/// Whatever the choice, parallel output is bit-identical to serial
/// output for pure per-item work — `Serial` exists for debugging the
/// execution layer itself (and for machines where spawning threads is
/// counterproductive), not for correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// One thread, no spawning at all — the bit-exact debugging baseline.
    Serial,
    /// One worker per available core ([`std::thread::available_parallelism`]).
    #[default]
    Auto,
    /// An explicit worker count (clamped to at least 1).
    Fixed(usize),
}

impl Parallelism {
    /// Parses a `SLJ_THREADS`-style string: `serial`/`0` → [`Parallelism::Serial`],
    /// `auto` → [`Parallelism::Auto`], `1` → [`Parallelism::Serial`],
    /// `N` → [`Parallelism::Fixed`]. Returns `None` for anything else.
    pub fn parse(s: &str) -> Option<Parallelism> {
        match s.trim() {
            "serial" | "0" | "1" => Some(Parallelism::Serial),
            "auto" => Some(Parallelism::Auto),
            n => match n.parse::<usize>() {
                Ok(n) => Some(Parallelism::Fixed(n)),
                Err(_) => None,
            },
        }
    }

    /// The override from the `SLJ_THREADS` environment variable, if set
    /// to something parseable.
    pub fn from_env() -> Option<Parallelism> {
        std::env::var(THREADS_ENV)
            .ok()
            .and_then(|s| Self::parse(&s))
    }

    /// This configuration with the `SLJ_THREADS` override applied.
    pub fn effective(self) -> Parallelism {
        Self::from_env().unwrap_or(self)
    }

    /// The concrete worker count this configuration resolves to (without
    /// consulting the environment; see [`Parallelism::effective`]).
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Parallelism::Fixed(n) => n.max(1),
        }
    }
}

/// Splits `rows` into up to `bands` contiguous, near-equal ranges.
///
/// Empty bands are omitted, so the result covers `0..rows` exactly with
/// no empty ranges. The split depends only on the two arguments — never
/// on scheduling — so banded kernels partition their work identically on
/// every run.
pub fn band_ranges(rows: usize, bands: usize) -> Vec<Range<usize>> {
    let bands = bands.clamp(1, rows.max(1));
    let base = rows / bands;
    let extra = rows % bands;
    let mut out = Vec::with_capacity(bands);
    let mut start = 0;
    for b in 0..bands {
        let len = base + usize::from(b < extra);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// A scoped, work-stealing-ish worker pool over [`std::thread`].
///
/// The pool itself holds no threads — it is a resolved worker count.
/// Each call to [`ThreadPool::scoped_map`] / [`ThreadPool::scoped_run`]
/// spawns scoped workers that borrow the caller's data directly (no
/// `'static` bounds, no `Arc`), and joins them before returning. Workers
/// pull items off a shared atomic cursor (cheap dynamic load balancing),
/// but results are always **collected in input order**, which is what
/// makes parallel output bit-identical to serial output.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    threads: usize,
    obs: Option<PoolObs>,
}

/// Metric handles for one observed pool (see [`ThreadPool::observed`]).
///
/// Handles are resolved once at attach time so the dispatch paths never
/// take the registry lock; recording is a handful of relaxed atomic adds
/// and cannot influence scheduling or results.
#[derive(Debug, Clone)]
struct PoolObs {
    registry: Registry,
    /// `runtime.pool.batches` — dispatch calls (`scoped_map`/`scoped_run`).
    batches: Counter,
    /// `runtime.pool.items` — items/tasks queued across all batches.
    items: Counter,
    /// `runtime.pool.panics` — batches that surfaced a worker panic.
    panics: Counter,
    /// `runtime.pool.bands` — tasks per `scoped_run` batch (band counts).
    bands: Histogram,
    /// `runtime.pool.worker.N.items` — items claimed by each map worker.
    worker_items: Vec<Counter>,
}

impl PoolObs {
    fn new(registry: &Registry, workers: usize) -> Self {
        registry.gauge("runtime.pool.threads").set(workers as i64);
        PoolObs {
            registry: registry.clone(),
            batches: registry.counter("runtime.pool.batches"),
            items: registry.counter("runtime.pool.items"),
            panics: registry.counter("runtime.pool.panics"),
            bands: registry.histogram("runtime.pool.bands"),
            worker_items: (0..workers)
                .map(|w| registry.counter(&format!("runtime.pool.worker.{w}.items")))
                .collect(),
        }
    }
}

impl ThreadPool {
    /// Builds a pool from a configuration, with the `SLJ_THREADS`
    /// environment override applied.
    pub fn new(parallelism: Parallelism) -> Self {
        ThreadPool {
            threads: parallelism.effective().threads(),
            obs: None,
        }
    }

    /// A pool with an exact worker count, ignoring the environment —
    /// what the parity tests and benchmarks use to pin configurations.
    pub fn fixed(threads: usize) -> Self {
        ThreadPool {
            threads: threads.max(1),
            obs: None,
        }
    }

    /// The single-threaded pool (never spawns).
    pub fn serial() -> Self {
        Self::fixed(1)
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// This pool with scheduling metrics recorded into `registry`:
    /// batches dispatched, items queued, items claimed per worker, band
    /// counts per `scoped_run`, and a panic counter. Clones share the
    /// attachment. Observation never changes scheduling or results.
    pub fn observed(mut self, registry: &Registry) -> Self {
        self.obs = Some(PoolObs::new(registry, self.threads));
        self
    }

    /// The registry attached via [`ThreadPool::observed`], if any —
    /// banded kernels use it to time themselves under the same roof.
    pub fn registry(&self) -> Option<&Registry> {
        self.obs.as_ref().map(|o| &o.registry)
    }

    /// Applies `f` to every item and returns the results **in input
    /// order** — the deterministic ordered fan-out primitive.
    ///
    /// Workers claim items dynamically, so uneven per-item cost balances
    /// across threads; with one worker (or one item) the call degrades
    /// to a plain in-place loop with identical semantics.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::WorkerPanic`] when `f` panics on any item;
    /// remaining items are abandoned (workers stop claiming new ones).
    pub fn scoped_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, RuntimeError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        if let Some(obs) = &self.obs {
            obs.batches.inc();
            obs.items.add(items.len() as u64);
        }
        if workers <= 1 {
            let mut out = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                    Ok(r) => out.push(r),
                    Err(p) => {
                        if let Some(obs) = &self.obs {
                            obs.panics.inc();
                            if let Some(c) = obs.worker_items.first() {
                                c.add(out.len() as u64 + 1);
                            }
                        }
                        return Err(RuntimeError::WorkerPanic(panic_message(p.as_ref())));
                    }
                }
            }
            if let Some(obs) = &self.obs {
                if let Some(c) = obs.worker_items.first() {
                    c.add(out.len() as u64);
                }
            }
            return Ok(out);
        }

        let cursor = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let joined: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let (f, cursor, abort) = (&f, &cursor, &abort);
                    scope.spawn(move || {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        let mut panicked: Option<String> = None;
                        while !abort.load(Ordering::Relaxed) {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                                Ok(r) => local.push((i, r)),
                                Err(payload) => {
                                    panicked = Some(panic_message(payload.as_ref()));
                                    abort.store(true, Ordering::Relaxed);
                                    break;
                                }
                            }
                        }
                        (local, panicked)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });

        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        let mut first_panic: Option<String> = None;
        for (w, worker) in joined.into_iter().enumerate() {
            match worker {
                Ok((local, panicked)) => {
                    if let Some(obs) = &self.obs {
                        if let Some(c) = obs.worker_items.get(w) {
                            c.add(local.len() as u64 + u64::from(panicked.is_some()));
                        }
                    }
                    for (i, r) in local {
                        slots[i] = Some(r);
                    }
                    if first_panic.is_none() {
                        first_panic = panicked;
                    }
                }
                // The worker body catches unwinds itself, but stay safe
                // against panics outside the catch (e.g. in drop glue).
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(panic_message(payload.as_ref()));
                    }
                }
            }
        }
        if let Some(msg) = first_panic {
            if let Some(obs) = &self.obs {
                obs.panics.inc();
            }
            return Err(RuntimeError::WorkerPanic(msg));
        }
        let expected = slots.len();
        let out: Vec<R> = slots.into_iter().flatten().collect();
        if out.len() != expected {
            // A worker exited without either a result or a recorded
            // panic for some index — surface it as an error instead of
            // unwinding inside the pool.
            return Err(RuntimeError::WorkerPanic(
                "pool invariant violated: a worker dropped an index without panicking".to_string(),
            ));
        }
        Ok(out)
    }

    /// [`ThreadPool::scoped_map`] over the index range `0..n`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::WorkerPanic`] when `f` panics.
    pub fn scoped_map_n<R, F>(&self, n: usize, f: F) -> Result<Vec<R>, RuntimeError>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        // A unit-slice of length n: the items carry no data, only
        // indices. A Vec of unit ZSTs never touches the heap.
        // slj-check: allow(perf/transitive-hot-path-alloc) — vec![(); n] is a zero-sized-type Vec; no heap allocation happens
        let units = vec![(); n];
        self.scoped_map(&units, |i, _| f(i))
    }

    /// Runs one task per element of `tasks` — each task owns its input
    /// (typically a disjoint `&mut` chunk of an output buffer) — and
    /// returns the results in input order.
    ///
    /// Unlike [`ThreadPool::scoped_map`] this spawns **one thread per
    /// task**, so callers should produce at most [`ThreadPool::threads`]
    /// tasks (e.g. via [`band_ranges`]). With one worker or one task it
    /// degrades to a plain in-place loop.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::WorkerPanic`] when `f` panics on any task.
    pub fn scoped_run<T, R, F>(&self, tasks: Vec<T>, f: F) -> Result<Vec<R>, RuntimeError>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        if let Some(obs) = &self.obs {
            obs.batches.inc();
            obs.items.add(tasks.len() as u64);
            obs.bands.record(tasks.len() as u64);
        }
        if self.threads <= 1 || tasks.len() <= 1 {
            let mut out = Vec::with_capacity(tasks.len());
            for (i, task) in tasks.into_iter().enumerate() {
                match catch_unwind(AssertUnwindSafe(|| f(i, task))) {
                    Ok(r) => out.push(r),
                    Err(p) => {
                        if let Some(obs) = &self.obs {
                            obs.panics.inc();
                        }
                        return Err(RuntimeError::WorkerPanic(panic_message(p.as_ref())));
                    }
                }
            }
            return Ok(out);
        }

        let joined: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = tasks
                .into_iter()
                .enumerate()
                .map(|(i, task)| {
                    let f = &f;
                    scope.spawn(move || catch_unwind(AssertUnwindSafe(|| f(i, task))))
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });

        let mut out = Vec::with_capacity(joined.len());
        let mut first_panic: Option<String> = None;
        for worker in joined {
            match worker {
                Ok(Ok(r)) => out.push(r),
                Ok(Err(payload)) | Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(panic_message(payload.as_ref()));
                    }
                }
            }
        }
        match first_panic {
            Some(msg) => {
                if let Some(obs) = &self.obs {
                    obs.panics.inc();
                }
                Err(RuntimeError::WorkerPanic(msg))
            }
            None => Ok(out),
        }
    }
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_map_preserves_input_order() {
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::fixed(threads);
            let items: Vec<u64> = (0..57).collect();
            let out = pool.scoped_map(&items, |i, &x| x * 3 + i as u64).unwrap();
            let expected: Vec<u64> = (0..57).map(|x| x * 3 + x).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn scoped_map_matches_serial_bitwise_on_floats() {
        // Per-item float work must be bit-identical across thread counts
        // because no accumulation crosses items.
        let items: Vec<f64> = (0..200).map(|i| 0.1 + i as f64 * 0.37).collect();
        let work = |_: usize, &x: &f64| (x.sin() * x.exp()).sqrt();
        let serial = ThreadPool::serial().scoped_map(&items, work).unwrap();
        for threads in [2, 5, 16] {
            let parallel = ThreadPool::fixed(threads).scoped_map(&items, work).unwrap();
            let same = serial
                .iter()
                .zip(&parallel)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "threads={threads}: float results diverge");
        }
    }

    #[test]
    fn scoped_map_empty_and_single() {
        let pool = ThreadPool::fixed(4);
        let empty: Vec<u32> = Vec::new();
        assert_eq!(
            pool.scoped_map(&empty, |_, &x| x).unwrap(),
            Vec::<u32>::new()
        );
        assert_eq!(pool.scoped_map(&[9u32], |_, &x| x + 1).unwrap(), vec![10]);
    }

    #[test]
    fn scoped_map_propagates_panic_as_error() {
        for threads in [1, 4] {
            let pool = ThreadPool::fixed(threads);
            let items: Vec<usize> = (0..32).collect();
            let err = pool
                .scoped_map(&items, |_, &x| {
                    if x == 13 {
                        panic!("injected failure on item {x}");
                    }
                    x
                })
                .unwrap_err();
            let RuntimeError::WorkerPanic(msg) = err;
            assert!(
                msg.contains("injected failure on item 13"),
                "threads={threads}: got {msg:?}"
            );
        }
    }

    #[test]
    fn scoped_run_propagates_panic_and_orders_results() {
        let pool = ThreadPool::fixed(3);
        let out = pool
            .scoped_run(vec![10u64, 20, 30], |i, x| x + i as u64)
            .unwrap();
        assert_eq!(out, vec![10, 21, 32]);
        let err = pool
            .scoped_run(vec![1, 2, 3], |_, x| {
                if x == 2 {
                    panic!("band {x} failed");
                }
                x
            })
            .unwrap_err();
        assert!(matches!(err, RuntimeError::WorkerPanic(m) if m.contains("band 2 failed")));
    }

    #[test]
    fn scoped_run_splits_mutable_chunks() {
        let pool = ThreadPool::fixed(4);
        let mut data = vec![0u32; 17];
        let chunks: Vec<&mut [u32]> = data.chunks_mut(5).collect();
        pool.scoped_run(chunks, |i, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 100 + j) as u32;
            }
        })
        .unwrap();
        assert_eq!(data[0], 0);
        assert_eq!(data[5], 100);
        assert_eq!(data[16], 301);
    }

    #[test]
    fn scoped_map_n_counts_indices() {
        let pool = ThreadPool::fixed(2);
        assert_eq!(
            pool.scoped_map_n(5, |i| i * i).unwrap(),
            vec![0, 1, 4, 9, 16]
        );
        assert_eq!(pool.scoped_map_n(0, |i| i).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn band_ranges_cover_exactly() {
        for rows in [0usize, 1, 7, 64, 119, 120] {
            for bands in [1usize, 2, 3, 8, 200] {
                let ranges = band_ranges(rows, bands);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "rows={rows} bands={bands}");
                    assert!(!r.is_empty(), "rows={rows} bands={bands}");
                    next = r.end;
                }
                assert_eq!(next, rows, "rows={rows} bands={bands}");
                assert!(ranges.len() <= bands.max(1));
            }
        }
    }

    #[test]
    fn parallelism_parse_and_threads() {
        assert_eq!(Parallelism::parse("serial"), Some(Parallelism::Serial));
        assert_eq!(Parallelism::parse("0"), Some(Parallelism::Serial));
        assert_eq!(Parallelism::parse("1"), Some(Parallelism::Serial));
        assert_eq!(Parallelism::parse("auto"), Some(Parallelism::Auto));
        assert_eq!(Parallelism::parse(" 6 "), Some(Parallelism::Fixed(6)));
        assert_eq!(Parallelism::parse("lots"), None);
        assert_eq!(Parallelism::Serial.threads(), 1);
        assert_eq!(Parallelism::Fixed(0).threads(), 1);
        assert_eq!(Parallelism::Fixed(5).threads(), 5);
        assert!(Parallelism::Auto.threads() >= 1);
    }

    #[test]
    fn observed_pool_records_scheduling_metrics() {
        let registry = Registry::new();
        let pool = ThreadPool::fixed(3).observed(&registry);
        assert!(pool.registry().is_some());

        let items: Vec<u64> = (0..40).collect();
        let out = pool.scoped_map(&items, |_, &x| x * 2).unwrap();
        assert_eq!(out.len(), 40);
        pool.scoped_run(vec![0usize, 1, 2], |_, t| t).unwrap();

        assert_eq!(registry.counter("runtime.pool.batches").get(), 2);
        assert_eq!(registry.counter("runtime.pool.items").get(), 43);
        assert_eq!(registry.counter("runtime.pool.panics").get(), 0);
        assert_eq!(registry.histogram("runtime.pool.bands").count(), 1);
        assert_eq!(registry.gauge("runtime.pool.threads").get(), 3);
        let claimed: u64 = (0..3)
            .map(|w| {
                registry
                    .counter(&format!("runtime.pool.worker.{w}.items"))
                    .get()
            })
            .sum();
        assert_eq!(claimed, 40, "every map item credited to one worker");

        let err = pool
            .scoped_map(&items, |_, &x| {
                if x == 7 {
                    panic!("boom");
                }
                x
            })
            .unwrap_err();
        assert!(matches!(err, RuntimeError::WorkerPanic(_)));
        assert_eq!(registry.counter("runtime.pool.panics").get(), 1);

        // An unobserved pool records nothing and still works.
        let plain = ThreadPool::fixed(2);
        assert!(plain.registry().is_none());
        assert_eq!(plain.scoped_map(&items, |_, &x| x).unwrap(), items);
    }

    #[test]
    fn env_override_wins() {
        // The only test that touches SLJ_THREADS; every other test pins
        // thread counts via `fixed`, so this cannot race a reader.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(Parallelism::Auto.effective(), Parallelism::Fixed(3));
        assert_eq!(ThreadPool::new(Parallelism::Serial).threads(), 3);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert_eq!(Parallelism::Serial.effective(), Parallelism::Serial);
        std::env::remove_var(THREADS_ENV);
        assert_eq!(ThreadPool::new(Parallelism::Serial).threads(), 1);
    }
}
