//! Multi-core execution layer for the standing-long-jump system.
//!
//! The paper's pipeline is embarrassingly parallel at two granularities:
//! across clips (each ~40-frame jump is independent) and across image
//! rows inside the per-frame kernels (background subtraction, median
//! filtering). This crate provides the one primitive both need — a
//! scoped worker pool built on [`std::thread`] with **hard determinism**:
//!
//! - results are collected **in input order**, never in completion order;
//! - there are no shared floating-point accumulators — every reduction
//!   the callers perform happens serially over the ordered results;
//! - a worker panic is captured and surfaced as
//!   [`RuntimeError::WorkerPanic`] instead of aborting the process.
//!
//! Together these guarantee that for pure per-item work, the output of a
//! parallel run is **bit-identical** to a serial run — the contract the
//! parity test suite at the repository root enforces.
//!
//! Thread counts come from a [`Parallelism`] config (explicit N, `Auto` =
//! available cores, `Serial` for bit-exact debugging of the pool itself),
//! overridable at runtime via the `SLJ_THREADS` environment variable.
//!
//! # Examples
//!
//! ```
//! use slj_runtime::{Parallelism, ThreadPool};
//!
//! let pool = ThreadPool::new(Parallelism::Auto);
//! let squares = pool.scoped_map(&[1u64, 2, 3, 4], |_, &x| x * x).unwrap();
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

// Grandfathered: this crate predates the unwrap_used/expect_used policy.
// Its findings are baselined in check-baseline.json (see `slj check`);
// new code should return SljError and shrink the ratchet instead.
#![allow(clippy::unwrap_used, clippy::expect_used)]

mod error;
mod pool;

pub use error::RuntimeError;
pub use pool::{band_ranges, Parallelism, ThreadPool, THREADS_ENV};
