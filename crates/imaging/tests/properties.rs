//! Property-based tests of the imaging substrate.

use proptest::prelude::*;
use slj_imaging::binary::BinaryImage;
use slj_imaging::filter::median_filter_binary;
use slj_imaging::image::GrayImage;
use slj_imaging::integral::IntegralImage;
use slj_imaging::io::{read_pgm, write_pgm};
use slj_imaging::metrics::MaskMetrics;
use slj_imaging::morphology::{close, dilate, erode, fill_holes, open, Connectivity};

/// Strategy: a random small binary mask.
fn mask_strategy() -> impl Strategy<Value = BinaryImage> {
    (4usize..20, 4usize..20).prop_flat_map(|(w, h)| {
        proptest::collection::vec(proptest::bool::ANY, w * h)
            .prop_map(move |bits| BinaryImage::from_bits(w, h, &bits).unwrap())
    })
}

/// Strategy: a random small grayscale image.
fn gray_strategy() -> impl Strategy<Value = GrayImage> {
    (3usize..16, 3usize..16).prop_flat_map(|(w, h)| {
        proptest::collection::vec(0u8..=255, w * h)
            .prop_map(move |px| GrayImage::from_vec(w, h, px).unwrap())
    })
}

fn subset(a: &BinaryImage, b: &BinaryImage) -> bool {
    a.and(b).unwrap() == *a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Erosion shrinks, dilation grows (w.r.t. set inclusion).
    #[test]
    fn erode_subset_original_subset_dilate(mask in mask_strategy()) {
        for conn in [Connectivity::Four, Connectivity::Eight] {
            let e = erode(&mask, conn);
            let d = dilate(&mask, conn);
            prop_assert!(subset(&e, &mask));
            prop_assert!(subset(&mask, &d));
        }
    }

    /// Opening is anti-extensive everywhere; closing is extensive away
    /// from the border (out-of-bounds counts as background, so border
    /// pixels may erode in the closing's second step).
    #[test]
    fn open_close_ordering(mask in mask_strategy()) {
        let (w, h) = mask.dimensions();
        for conn in [Connectivity::Four, Connectivity::Eight] {
            prop_assert!(subset(&open(&mask, conn), &mask));
            let closed = close(&mask, conn);
            for y in 1..h.saturating_sub(1) {
                for x in 1..w.saturating_sub(1) {
                    if mask.get(x, y) {
                        prop_assert!(closed.get(x, y), "interior pixel ({x},{y}) lost by closing");
                    }
                }
            }
        }
    }

    /// Opening and closing are idempotent.
    #[test]
    fn open_close_idempotent(mask in mask_strategy()) {
        let conn = Connectivity::Eight;
        let o = open(&mask, conn);
        prop_assert_eq!(&open(&o, conn), &o);
        let c = close(&mask, conn);
        prop_assert_eq!(&close(&c, conn), &c);
    }

    /// Hole filling is extensive, idempotent, and never touches pixels
    /// reachable from the border.
    #[test]
    fn fill_holes_properties(mask in mask_strategy()) {
        let filled = fill_holes(&mask);
        prop_assert!(subset(&mask, &filled));
        prop_assert_eq!(&fill_holes(&filled), &filled);
        // Border background pixels must stay background.
        let (w, h) = mask.dimensions();
        for x in 0..w {
            for y in [0, h - 1] {
                if !mask.get(x, y) {
                    prop_assert!(!filled.get(x, y));
                }
            }
        }
    }

    /// Integral-image window sums equal brute force everywhere.
    #[test]
    fn integral_matches_brute_force(img in gray_strategy(), n in prop_oneof![Just(1usize), Just(3), Just(5)]) {
        let ii = IntegralImage::from_gray(&img);
        let (w, h) = img.dimensions();
        let r = (n / 2) as isize;
        for cy in (0..h).step_by(3) {
            for cx in (0..w).step_by(3) {
                let mut brute = 0u64;
                for dy in -r..=r {
                    for dx in -r..=r {
                        let (x, y) = (cx as isize + dx, cy as isize + dy);
                        if x >= 0 && y >= 0 && (x as usize) < w && (y as usize) < h {
                            brute += img.get(x as usize, y as usize) as u64;
                        }
                    }
                }
                prop_assert_eq!(ii.window_sum(cx, cy, n), brute);
            }
        }
    }

    /// The binary median never inverts a unanimous neighbourhood.
    #[test]
    fn median_respects_unanimity(mask in mask_strategy()) {
        let out = median_filter_binary(&mask, 3).unwrap();
        let (w, h) = mask.dimensions();
        for y in 1..h.saturating_sub(1) {
            for x in 1..w.saturating_sub(1) {
                let n = mask.neighbors8(x, y);
                if mask.get(x, y) && n.iter().all(|&b| b) {
                    prop_assert!(out.get(x, y), "unanimous set pixel flipped at ({x},{y})");
                }
                if !mask.get(x, y) && n.iter().all(|&b| !b) {
                    prop_assert!(!out.get(x, y), "unanimous clear pixel flipped at ({x},{y})");
                }
            }
        }
    }

    /// Mask metrics are consistent: IoU(a,a)=1, symmetry of IoU, and the
    /// counts partition the image.
    #[test]
    fn metrics_consistency(a in mask_strategy()) {
        let m_self = MaskMetrics::compare(&a, &a).unwrap();
        prop_assert_eq!(m_self.iou(), 1.0);
        prop_assert_eq!(m_self.fp, 0);
        prop_assert_eq!(m_self.fn_, 0);
        let total = a.width() * a.height();
        prop_assert_eq!(m_self.tp + m_self.tn, total);
    }

    /// IoU is symmetric under operand swap.
    #[test]
    fn iou_symmetric(a in mask_strategy()) {
        // Build a second mask of identical dimensions by shifting bits.
        let (w, h) = a.dimensions();
        let mut b = BinaryImage::new(w, h);
        for (x, y) in a.iter_ones() {
            b.set((x + 1) % w, y, true);
        }
        let ab = MaskMetrics::compare(&a, &b).unwrap().iou();
        let ba = MaskMetrics::compare(&b, &a).unwrap().iou();
        prop_assert!((ab - ba).abs() < 1e-12);
    }

    /// PGM serialisation round-trips any image.
    #[test]
    fn pgm_round_trip(img in gray_strategy()) {
        let mut buf = Vec::new();
        write_pgm(&mut buf, &img).unwrap();
        prop_assert_eq!(read_pgm(buf.as_slice()).unwrap(), img);
    }

    /// XOR with self is empty; OR is commutative in mass.
    #[test]
    fn bit_ops_algebra(a in mask_strategy()) {
        prop_assert!(a.xor(&a).unwrap().is_empty());
        prop_assert_eq!(a.and(&a).unwrap(), a.clone());
        prop_assert_eq!(a.or(&a).unwrap(), a);
    }
}
