//! Generic row-major raster buffer.

use crate::error::ImagingError;
use crate::pixel::Rgb;

/// A rectangular raster of pixels of type `P`, stored row-major.
///
/// `ImageBuffer` is the carrier type for every raster in the pipeline:
/// RGB video frames ([`RgbImage`]), grayscale difference images
/// ([`GrayImage`]) and `u16`/`f32` intermediates produced by the
/// background-subtraction stage.
///
/// # Examples
///
/// ```
/// use slj_imaging::image::GrayImage;
///
/// let mut img = GrayImage::new(4, 3);
/// img.set(2, 1, 200);
/// assert_eq!(img.get(2, 1), 200);
/// assert_eq!(img.iter().filter(|&&v| v > 0).count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageBuffer<P> {
    width: usize,
    height: usize,
    data: Vec<P>,
}

/// An 8-bit RGB image.
pub type RgbImage = ImageBuffer<Rgb>;
/// An 8-bit grayscale image.
pub type GrayImage = ImageBuffer<u8>;

impl<P: Copy + Default> ImageBuffer<P> {
    /// Creates an image of `width × height` pixels, all `P::default()`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(
            width > 0 && height > 0,
            "image dimensions must be non-zero, got {width}x{height}"
        );
        ImageBuffer {
            width,
            height,
            data: vec![P::default(); width * height],
        }
    }

    /// Resizes the image to `width × height` and fills it with
    /// `P::default()`, reusing the existing pixel storage when it is large
    /// enough. This is the allocation-free path for per-frame scratch
    /// buffers.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn reset(&mut self, width: usize, height: usize) {
        assert!(
            width > 0 && height > 0,
            "image dimensions must be non-zero, got {width}x{height}"
        );
        self.data.clear();
        self.data.resize(width * height, P::default());
        self.width = width;
        self.height = height;
    }

    /// Creates an image filled with `value`.
    pub fn filled(width: usize, height: usize, value: P) -> Self {
        let mut img = Self::new(width, height);
        img.data.fill(value);
        img
    }

    /// Creates an image from a row-major pixel vector.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidDimensions`] when `data.len()` does
    /// not equal `width * height` or either dimension is zero.
    pub fn from_vec(width: usize, height: usize, data: Vec<P>) -> Result<Self, ImagingError> {
        if width == 0 || height == 0 || data.len() != width * height {
            return Err(ImagingError::InvalidDimensions { width, height });
        }
        Ok(ImageBuffer {
            width,
            height,
            data,
        })
    }

    /// Builds an image by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> P) -> Self {
        let mut img = Self::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.data[y * width + x] = f(x, y);
            }
        }
        img
    }
}

impl<P: Copy> ImageBuffer<P> {
    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)` pair.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Whether `(x, y)` lies inside the image.
    pub fn in_bounds(&self, x: isize, y: isize) -> bool {
        x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height
    }

    /// Returns the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> P {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x}, {y}) out of bounds for {}x{} image",
            self.width,
            self.height
        );
        self.data[y * self.width + x]
    }

    /// Returns the pixel at `(x, y)`, or `None` when out of bounds.
    #[inline]
    pub fn try_get(&self, x: isize, y: isize) -> Option<P> {
        if self.in_bounds(x, y) {
            Some(self.data[y as usize * self.width + x as usize])
        } else {
            None
        }
    }

    /// Returns the pixel at `(x, y)` with clamp-to-edge semantics.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> P {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Writes `value` at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: P) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x}, {y}) out of bounds for {}x{} image",
            self.width,
            self.height
        );
        self.data[y * self.width + x] = value;
    }

    /// Iterator over all pixels in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, P> {
        self.data.iter()
    }

    /// Iterator over `(x, y, pixel)` triples in row-major order.
    pub fn enumerate_pixels(&self) -> impl Iterator<Item = (usize, usize, P)> + '_ {
        let w = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &p)| (i % w, i / w, p))
    }

    /// Raw row-major pixel slice.
    pub fn as_slice(&self) -> &[P] {
        &self.data
    }

    /// Mutable raw row-major pixel slice.
    pub fn as_mut_slice(&mut self) -> &mut [P] {
        &mut self.data
    }

    /// Consumes the buffer and returns the underlying pixel vector.
    pub fn into_vec(self) -> Vec<P> {
        self.data
    }

    /// Maps every pixel through `f`, producing a new image of equal size.
    pub fn map<Q: Copy + Default>(&self, mut f: impl FnMut(P) -> Q) -> ImageBuffer<Q> {
        ImageBuffer {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|&p| f(p)).collect(),
        }
    }
}

impl RgbImage {
    /// Converts to grayscale using the integer luma approximation.
    pub fn to_gray(&self) -> GrayImage {
        self.map(Rgb::luma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_default_filled() {
        let img: GrayImage = ImageBuffer::new(3, 2);
        assert_eq!(img.dimensions(), (3, 2));
        assert!(img.iter().all(|&v| v == 0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _: GrayImage = ImageBuffer::new(0, 5);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(GrayImage::from_vec(2, 2, vec![1, 2, 3]).is_err());
        let img = GrayImage::from_vec(2, 2, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(img.get(1, 1), 4);
    }

    #[test]
    fn from_fn_row_major_orientation() {
        let img = GrayImage::from_fn(3, 2, |x, y| (10 * y + x) as u8);
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(2, 0), 2);
        assert_eq!(img.get(0, 1), 10);
        assert_eq!(img.get(2, 1), 12);
    }

    #[test]
    fn try_get_boundaries() {
        let img = GrayImage::filled(2, 2, 9);
        assert_eq!(img.try_get(1, 1), Some(9));
        assert_eq!(img.try_get(-1, 0), None);
        assert_eq!(img.try_get(0, 2), None);
    }

    #[test]
    fn get_clamped_extends_edges() {
        let img = GrayImage::from_fn(2, 2, |x, y| (y * 2 + x) as u8);
        assert_eq!(img.get_clamped(-5, -5), img.get(0, 0));
        assert_eq!(img.get_clamped(10, 10), img.get(1, 1));
        assert_eq!(img.get_clamped(10, -1), img.get(1, 0));
    }

    #[test]
    fn enumerate_pixels_covers_all() {
        let img = GrayImage::from_fn(3, 3, |x, y| (x + y) as u8);
        let collected: Vec<_> = img.enumerate_pixels().collect();
        assert_eq!(collected.len(), 9);
        assert_eq!(collected[4], (1, 1, 2));
    }

    #[test]
    fn map_preserves_dimensions() {
        let img = GrayImage::filled(4, 5, 10);
        let doubled = img.map(|v| v * 2);
        assert_eq!(doubled.dimensions(), (4, 5));
        assert!(doubled.iter().all(|&v| v == 20));
    }

    #[test]
    fn rgb_to_gray_uses_luma() {
        let img = RgbImage::filled(2, 1, Rgb::WHITE);
        let gray = img.to_gray();
        assert_eq!(gray.get(0, 0), 255);
    }

    #[test]
    fn set_then_get_round_trip() {
        let mut img = RgbImage::new(3, 3);
        img.set(2, 0, Rgb::new(1, 2, 3));
        assert_eq!(img.get(2, 0), Rgb::new(1, 2, 3));
        assert_eq!(img.get(0, 2), Rgb::BLACK);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let img = GrayImage::new(2, 2);
        img.get(2, 0);
    }

    #[test]
    fn reset_clears_and_resizes() {
        let mut img = GrayImage::filled(3, 3, 77);
        img.reset(5, 2);
        assert_eq!(img.dimensions(), (5, 2));
        assert!(img.iter().all(|&v| v == 0));
        img.set(4, 1, 9);
        img.reset(2, 2);
        assert!(img.iter().all(|&v| v == 0), "stale pixels must not leak");
    }

    #[test]
    fn into_vec_round_trip() {
        let img = GrayImage::from_vec(2, 2, vec![5, 6, 7, 8]).unwrap();
        assert_eq!(img.clone().into_vec(), vec![5, 6, 7, 8]);
        assert_eq!(img.as_slice(), &[5, 6, 7, 8]);
    }
}
