//! Summed-area tables for O(1) windowed sums.
//!
//! The paper's object-extraction step averages every n×n window of both the
//! background and the current frame (its `B_ave` and `A_ave` matrices). A
//! naive implementation is O(n²) per pixel; an integral image makes each
//! window sum O(1), which is what keeps the extractor "simple and fast" as
//! the paper claims of its source algorithm.

use crate::image::{GrayImage, ImageBuffer};

/// Summed-area table over a single channel.
///
/// Entry `(x, y)` stores the sum of all pixels `(i, j)` with `i <= x` and
/// `j <= y`. Windowed sums and means are then four lookups.
///
/// # Examples
///
/// ```
/// use slj_imaging::image::GrayImage;
/// use slj_imaging::integral::IntegralImage;
///
/// let img = GrayImage::filled(10, 10, 3);
/// let ii = IntegralImage::from_gray(&img);
/// assert_eq!(ii.window_sum(2, 2, 3), 9 * 3);
/// assert!((ii.window_mean(2, 2, 3) - 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IntegralImage {
    sums: ImageBuffer<u64>,
}

impl IntegralImage {
    /// Builds the table from a grayscale image.
    pub fn from_gray(img: &GrayImage) -> Self {
        Self::from_fn(img.width(), img.height(), |x, y| img.get(x, y) as u64)
    }

    /// Builds the table from an arbitrary per-pixel value function.
    pub fn from_fn(width: usize, height: usize, value: impl FnMut(usize, usize) -> u64) -> Self {
        let mut ii = IntegralImage {
            sums: ImageBuffer::<u64>::new(width, height),
        };
        ii.fill(value);
        ii
    }

    /// Recomputes the table in place from a per-pixel value function,
    /// reusing the existing storage when it is large enough. This is the
    /// allocation-free counterpart of [`IntegralImage::from_fn`] for
    /// per-frame streaming work.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn rebuild_from_fn(
        &mut self,
        width: usize,
        height: usize,
        value: impl FnMut(usize, usize) -> u64,
    ) {
        self.sums.reset(width, height);
        self.fill(value);
    }

    fn fill(&mut self, mut value: impl FnMut(usize, usize) -> u64) {
        let (width, height) = self.sums.dimensions();
        for y in 0..height {
            let mut row_sum = 0u64;
            for x in 0..width {
                row_sum += value(x, y);
                let above = if y > 0 { self.sums.get(x, y - 1) } else { 0 };
                self.sums.set(x, y, row_sum + above);
            }
        }
    }

    /// Table width in pixels.
    pub fn width(&self) -> usize {
        self.sums.width()
    }

    /// Table height in pixels.
    pub fn height(&self) -> usize {
        self.sums.height()
    }

    /// Sum over the inclusive rectangle `[x0, x1] × [y0, y1]`, clipped to
    /// the image bounds.
    pub fn rect_sum(&self, x0: isize, y0: isize, x1: isize, y1: isize) -> u64 {
        let w = self.width() as isize;
        let h = self.height() as isize;
        let x0 = x0.max(0);
        let y0 = y0.max(0);
        let x1 = x1.min(w - 1);
        let y1 = y1.min(h - 1);
        if x0 > x1 || y0 > y1 {
            return 0;
        }
        let at = |x: isize, y: isize| -> u64 {
            if x < 0 || y < 0 {
                0
            } else {
                self.sums.get(x as usize, y as usize)
            }
        };
        at(x1, y1) + at(x0 - 1, y0 - 1) - at(x0 - 1, y1) - at(x1, y0 - 1)
    }

    /// Sum over the n×n window centred at `(cx, cy)` (n odd), with the
    /// window clipped at the image border.
    ///
    /// # Panics
    ///
    /// Panics if `n` is even or zero.
    pub fn window_sum(&self, cx: usize, cy: usize, n: usize) -> u64 {
        assert!(n % 2 == 1 && n > 0, "window size must be odd, got {n}");
        let r = (n / 2) as isize;
        let (cx, cy) = (cx as isize, cy as isize);
        self.rect_sum(cx - r, cy - r, cx + r, cy + r)
    }

    /// Mean over the n×n window centred at `(cx, cy)` (n odd), dividing by
    /// the number of in-bounds pixels so border windows stay unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `n` is even or zero.
    pub fn window_mean(&self, cx: usize, cy: usize, n: usize) -> f64 {
        assert!(n % 2 == 1 && n > 0, "window size must be odd, got {n}");
        let r = (n / 2) as isize;
        let (cxi, cyi) = (cx as isize, cy as isize);
        let x0 = (cxi - r).max(0);
        let y0 = (cyi - r).max(0);
        let x1 = (cxi + r).min(self.width() as isize - 1);
        let y1 = (cyi + r).min(self.height() as isize - 1);
        let count = ((x1 - x0 + 1) * (y1 - y0 + 1)) as f64;
        self.rect_sum(x0, y0, x1, y1) as f64 / count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(w: usize, h: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| (x + 2 * y) as u8)
    }

    fn brute_rect_sum(img: &GrayImage, x0: usize, y0: usize, x1: usize, y1: usize) -> u64 {
        let mut s = 0u64;
        for y in y0..=y1 {
            for x in x0..=x1 {
                s += img.get(x, y) as u64;
            }
        }
        s
    }

    #[test]
    fn rect_sum_matches_brute_force() {
        let img = ramp(9, 7);
        let ii = IntegralImage::from_gray(&img);
        for (x0, y0, x1, y1) in [(0, 0, 8, 6), (2, 1, 5, 4), (3, 3, 3, 3), (0, 6, 8, 6)] {
            assert_eq!(
                ii.rect_sum(x0 as isize, y0 as isize, x1 as isize, y1 as isize),
                brute_rect_sum(&img, x0, y0, x1, y1),
                "rect ({x0},{y0})-({x1},{y1})"
            );
        }
    }

    #[test]
    fn rect_sum_clips_out_of_bounds() {
        let img = ramp(4, 4);
        let ii = IntegralImage::from_gray(&img);
        assert_eq!(
            ii.rect_sum(-3, -3, 10, 10),
            brute_rect_sum(&img, 0, 0, 3, 3)
        );
        assert_eq!(ii.rect_sum(5, 5, 9, 9), 0);
        assert_eq!(ii.rect_sum(2, 2, 1, 1), 0);
    }

    #[test]
    fn window_sum_centre_and_border() {
        let img = GrayImage::filled(5, 5, 2);
        let ii = IntegralImage::from_gray(&img);
        assert_eq!(ii.window_sum(2, 2, 3), 18);
        // Corner window only covers 4 in-bounds pixels.
        assert_eq!(ii.window_sum(0, 0, 3), 8);
    }

    #[test]
    fn window_mean_is_unbiased_at_border() {
        let img = GrayImage::filled(5, 5, 7);
        let ii = IntegralImage::from_gray(&img);
        assert!((ii.window_mean(0, 0, 3) - 7.0).abs() < 1e-12);
        assert!((ii.window_mean(2, 2, 5) - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn even_window_panics() {
        let ii = IntegralImage::from_gray(&GrayImage::new(3, 3));
        ii.window_sum(1, 1, 2);
    }

    #[test]
    fn rebuild_matches_fresh_build() {
        let a = ramp(9, 7);
        let b = ramp(4, 11);
        let mut ii = IntegralImage::from_gray(&a);
        ii.rebuild_from_fn(b.width(), b.height(), |x, y| b.get(x, y) as u64);
        assert_eq!(ii, IntegralImage::from_gray(&b));
        ii.rebuild_from_fn(a.width(), a.height(), |x, y| a.get(x, y) as u64);
        assert_eq!(ii, IntegralImage::from_gray(&a));
    }

    #[test]
    fn from_fn_arbitrary_values() {
        let ii = IntegralImage::from_fn(3, 3, |x, y| (x * y) as u64);
        // Total = sum over x*y for x,y in 0..3 = (0+1+2)*(0+1+2) = 9.
        assert_eq!(ii.rect_sum(0, 0, 2, 2), 9);
    }
}
