//! Pixel types used by [`crate::image::ImageBuffer`].

use std::fmt;

/// An 8-bit RGB pixel.
///
/// The paper's object-extraction algorithm (Section 2) works on the three
/// colour channels separately (`k = 1, 2, 3` corresponding to R, G, B), so
/// the channels are exposed both as named fields and by index.
///
/// # Examples
///
/// ```
/// use slj_imaging::pixel::Rgb;
///
/// let p = Rgb::new(10, 20, 30);
/// assert_eq!(p.channel(0), 10);
/// assert_eq!(p.luma(), 18); // integer-weighted BT.601 luma
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Rgb {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb {
    /// Pure black — the studio background colour the paper shoots against.
    pub const BLACK: Rgb = Rgb { r: 0, g: 0, b: 0 };
    /// Pure white.
    pub const WHITE: Rgb = Rgb {
        r: 255,
        g: 255,
        b: 255,
    };

    /// Creates a pixel from the three channel values.
    pub fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb { r, g, b }
    }

    /// Creates a gray pixel with all three channels equal to `v`.
    pub fn gray(v: u8) -> Self {
        Rgb { r: v, g: v, b: v }
    }

    /// Returns channel `k` (0 = R, 1 = G, 2 = B).
    ///
    /// Total over all indices: every `k ≥ 2` reads the blue channel, so
    /// the per-pixel hot loops calling this stay panic-free.
    pub fn channel(self, k: usize) -> u8 {
        match k {
            0 => self.r,
            1 => self.g,
            _ => self.b,
        }
    }

    /// Sum of the absolute per-channel differences against `other`.
    ///
    /// This is the quantity the paper accumulates into its foreground
    /// matrix `D(i,j) = |C(i,j,1)| + |C(i,j,2)| + |C(i,j,3)|`.
    pub fn abs_diff_sum(self, other: Rgb) -> u16 {
        let d = |a: u8, b: u8| -> u16 { (a as i16 - b as i16).unsigned_abs() };
        d(self.r, other.r) + d(self.g, other.g) + d(self.b, other.b)
    }

    /// Integer BT.601 luma approximation `(77 R + 150 G + 29 B) / 256`.
    pub fn luma(self) -> u8 {
        ((77 * self.r as u32 + 150 * self.g as u32 + 29 * self.b as u32) >> 8) as u8
    }

    /// Component-wise saturating addition.
    pub fn saturating_add(self, other: Rgb) -> Rgb {
        Rgb {
            r: self.r.saturating_add(other.r),
            g: self.g.saturating_add(other.g),
            b: self.b.saturating_add(other.b),
        }
    }

    /// Blends `self` toward `other` by `t` in `[0, 1]`.
    pub fn lerp(self, other: Rgb, t: f32) -> Rgb {
        let t = t.clamp(0.0, 1.0);
        let mix = |a: u8, b: u8| -> u8 { (a as f32 + (b as f32 - a as f32) * t).round() as u8 };
        Rgb {
            r: mix(self.r, other.r),
            g: mix(self.g, other.g),
            b: mix(self.b, other.b),
        }
    }
}

impl fmt::Display for Rgb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }
}

impl From<(u8, u8, u8)> for Rgb {
    fn from((r, g, b): (u8, u8, u8)) -> Self {
        Rgb::new(r, g, b)
    }
}

impl From<Rgb> for (u8, u8, u8) {
    fn from(p: Rgb) -> Self {
        (p.r, p.g, p.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_indexing_matches_fields() {
        let p = Rgb::new(1, 2, 3);
        assert_eq!(p.channel(0), p.r);
        assert_eq!(p.channel(1), p.g);
        assert_eq!(p.channel(2), p.b);
    }

    #[test]
    fn channel_is_total_saturating_to_blue() {
        let p = Rgb::new(1, 2, 3);
        assert_eq!(p.channel(3), p.b);
        assert_eq!(p.channel(usize::MAX), p.b);
    }

    #[test]
    fn abs_diff_sum_is_symmetric() {
        let a = Rgb::new(10, 200, 50);
        let b = Rgb::new(30, 100, 250);
        assert_eq!(a.abs_diff_sum(b), b.abs_diff_sum(a));
        assert_eq!(a.abs_diff_sum(b), 20 + 100 + 200);
    }

    #[test]
    fn abs_diff_sum_zero_on_identical() {
        let a = Rgb::new(7, 8, 9);
        assert_eq!(a.abs_diff_sum(a), 0);
    }

    #[test]
    fn luma_of_extremes() {
        assert_eq!(Rgb::BLACK.luma(), 0);
        assert_eq!(Rgb::WHITE.luma(), 255);
    }

    #[test]
    fn luma_is_monotone_in_gray() {
        let mut prev = 0;
        for v in (0..=255u8).step_by(5) {
            let l = Rgb::gray(v).luma();
            assert!(l >= prev, "luma not monotone at gray {v}");
            prev = l;
        }
    }

    #[test]
    fn lerp_endpoints() {
        let a = Rgb::new(0, 100, 200);
        let b = Rgb::new(255, 0, 0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn lerp_clamps_parameter() {
        let a = Rgb::BLACK;
        let b = Rgb::WHITE;
        assert_eq!(a.lerp(b, -5.0), a);
        assert_eq!(a.lerp(b, 5.0), b);
    }

    #[test]
    fn saturating_add_saturates() {
        let a = Rgb::new(250, 1, 128);
        let b = Rgb::new(10, 2, 128);
        assert_eq!(a.saturating_add(b), Rgb::new(255, 3, 255));
    }

    #[test]
    fn tuple_round_trip() {
        let p = Rgb::new(9, 8, 7);
        let t: (u8, u8, u8) = p.into();
        assert_eq!(Rgb::from(t), p);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Rgb::new(255, 0, 16).to_string(), "#ff0010");
    }
}
