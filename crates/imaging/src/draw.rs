//! Raster drawing primitives for the silhouette renderer.
//!
//! The synthetic jumper is a stick figure rendered as filled disks (head)
//! and capsules — thick line segments with rounded caps — for the limbs and
//! torso. These primitives draw directly into a [`BinaryImage`] silhouette
//! mask or an RGB frame.

use crate::binary::BinaryImage;
use crate::image::RgbImage;
use crate::pixel::Rgb;

/// Fills the disk of radius `r` centred at `(cx, cy)`, clipped to the mask.
pub fn fill_disk(mask: &mut BinaryImage, cx: f64, cy: f64, r: f64) {
    if r <= 0.0 {
        return;
    }
    let x0 = ((cx - r).floor() as isize).max(0);
    let y0 = ((cy - r).floor() as isize).max(0);
    let x1 = ((cx + r).ceil() as isize).min(mask.width() as isize - 1);
    let y1 = ((cy + r).ceil() as isize).min(mask.height() as isize - 1);
    let r2 = r * r;
    for y in y0..=y1 {
        for x in x0..=x1 {
            let dx = x as f64 - cx;
            let dy = y as f64 - cy;
            if dx * dx + dy * dy <= r2 {
                mask.set(x as usize, y as usize, true);
            }
        }
    }
}

/// Fills a capsule (thick segment with rounded caps) from `(x0, y0)` to
/// `(x1, y1)` with the given `radius`, clipped to the mask.
pub fn fill_capsule(mask: &mut BinaryImage, x0: f64, y0: f64, x1: f64, y1: f64, radius: f64) {
    if radius <= 0.0 {
        return;
    }
    let min_x = ((x0.min(x1) - radius).floor() as isize).max(0);
    let min_y = ((y0.min(y1) - radius).floor() as isize).max(0);
    let max_x = ((x0.max(x1) + radius).ceil() as isize).min(mask.width() as isize - 1);
    let max_y = ((y0.max(y1) + radius).ceil() as isize).min(mask.height() as isize - 1);
    let r2 = radius * radius;
    for y in min_y..=max_y {
        for x in min_x..=max_x {
            let d2 = point_segment_dist2(x as f64, y as f64, x0, y0, x1, y1);
            if d2 <= r2 {
                mask.set(x as usize, y as usize, true);
            }
        }
    }
}

/// Squared distance from point `(px, py)` to segment `(x0, y0)-(x1, y1)`.
pub fn point_segment_dist2(px: f64, py: f64, x0: f64, y0: f64, x1: f64, y1: f64) -> f64 {
    let (vx, vy) = (x1 - x0, y1 - y0);
    let (wx, wy) = (px - x0, py - y0);
    let len2 = vx * vx + vy * vy;
    let t = if len2 <= f64::EPSILON {
        0.0
    } else {
        ((wx * vx + wy * vy) / len2).clamp(0.0, 1.0)
    };
    let (cx, cy) = (x0 + t * vx, y0 + t * vy);
    let (dx, dy) = (px - cx, py - cy);
    dx * dx + dy * dy
}

/// Fills a convex polygon given its vertices in order, clipped to the mask.
///
/// Uses a scanline point-in-convex-polygon test; the polygon may be wound
/// either way. Degenerate polygons (fewer than 3 vertices) are ignored.
pub fn fill_convex_polygon(mask: &mut BinaryImage, vertices: &[(f64, f64)]) {
    if vertices.len() < 3 {
        return;
    }
    let min_x = vertices.iter().map(|v| v.0).fold(f64::INFINITY, f64::min);
    let max_x = vertices
        .iter()
        .map(|v| v.0)
        .fold(f64::NEG_INFINITY, f64::max);
    let min_y = vertices.iter().map(|v| v.1).fold(f64::INFINITY, f64::min);
    let max_y = vertices
        .iter()
        .map(|v| v.1)
        .fold(f64::NEG_INFINITY, f64::max);
    let x0 = (min_x.floor() as isize).max(0);
    let y0 = (min_y.floor() as isize).max(0);
    let x1 = (max_x.ceil() as isize).min(mask.width() as isize - 1);
    let y1 = (max_y.ceil() as isize).min(mask.height() as isize - 1);
    for y in y0..=y1 {
        for x in x0..=x1 {
            if point_in_convex(x as f64, y as f64, vertices) {
                mask.set(x as usize, y as usize, true);
            }
        }
    }
}

fn point_in_convex(px: f64, py: f64, vertices: &[(f64, f64)]) -> bool {
    let n = vertices.len();
    let mut sign = 0i8;
    for i in 0..n {
        let (ax, ay) = vertices[i];
        let (bx, by) = vertices[(i + 1) % n];
        let cross = (bx - ax) * (py - ay) - (by - ay) * (px - ax);
        if cross.abs() < 1e-12 {
            continue;
        }
        let s = if cross > 0.0 { 1 } else { -1 };
        if sign == 0 {
            sign = s;
        } else if sign != s {
            return false;
        }
    }
    true
}

/// Paints every set pixel of `mask` into `frame` with `color`.
///
/// # Panics
///
/// Panics if the dimensions differ.
pub fn stamp_mask(frame: &mut RgbImage, mask: &BinaryImage, color: Rgb) {
    assert_eq!(
        frame.dimensions(),
        mask.dimensions(),
        "frame and mask dimensions must match"
    );
    for (x, y) in mask.iter_ones() {
        frame.set(x, y, color);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_area_approximates_pi_r_squared() {
        let mut mask = BinaryImage::new(64, 64);
        fill_disk(&mut mask, 32.0, 32.0, 10.0);
        let area = mask.count_ones() as f64;
        let expected = std::f64::consts::PI * 100.0;
        assert!(
            (area - expected).abs() / expected < 0.08,
            "disk area {area} vs expected {expected}"
        );
    }

    #[test]
    fn disk_clips_at_border() {
        let mut mask = BinaryImage::new(10, 10);
        fill_disk(&mut mask, 0.0, 0.0, 5.0);
        assert!(mask.get(0, 0));
        assert!(mask.count_ones() > 0);
    }

    #[test]
    fn zero_radius_draws_nothing() {
        let mut mask = BinaryImage::new(10, 10);
        fill_disk(&mut mask, 5.0, 5.0, 0.0);
        fill_capsule(&mut mask, 1.0, 1.0, 8.0, 8.0, 0.0);
        assert!(mask.is_empty());
    }

    #[test]
    fn capsule_connects_endpoints() {
        let mut mask = BinaryImage::new(32, 32);
        fill_capsule(&mut mask, 4.0, 4.0, 28.0, 28.0, 2.0);
        assert!(mask.get(4, 4));
        assert!(mask.get(28, 28));
        assert!(mask.get(16, 16));
        // Far corner untouched.
        assert!(!mask.get(28, 4));
    }

    #[test]
    fn capsule_degenerate_is_disk() {
        let mut cap = BinaryImage::new(20, 20);
        fill_capsule(&mut cap, 10.0, 10.0, 10.0, 10.0, 4.0);
        let mut disk = BinaryImage::new(20, 20);
        fill_disk(&mut disk, 10.0, 10.0, 4.0);
        assert_eq!(cap, disk);
    }

    #[test]
    fn capsule_width_matches_radius() {
        let mut mask = BinaryImage::new(21, 21);
        fill_capsule(&mut mask, 2.0, 10.0, 18.0, 10.0, 3.0);
        // Column through the middle: rows 7..=13 set.
        for y in 0..21 {
            let expected = (y as i32 - 10).abs() <= 3;
            assert_eq!(mask.get(10, y), expected, "row {y}");
        }
    }

    #[test]
    fn point_segment_distance_cases() {
        // Perpendicular foot inside the segment.
        assert!((point_segment_dist2(0.0, 5.0, -10.0, 0.0, 10.0, 0.0) - 25.0).abs() < 1e-9);
        // Beyond an endpoint: distance to the endpoint.
        assert!((point_segment_dist2(13.0, 4.0, -10.0, 0.0, 10.0, 0.0) - 25.0).abs() < 1e-9);
        // Degenerate segment.
        assert!((point_segment_dist2(3.0, 4.0, 0.0, 0.0, 0.0, 0.0) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn polygon_fills_triangle() {
        let mut mask = BinaryImage::new(20, 20);
        fill_convex_polygon(&mut mask, &[(2.0, 2.0), (17.0, 2.0), (2.0, 17.0)]);
        assert!(mask.get(4, 4), "inside");
        assert!(!mask.get(16, 16), "outside hypotenuse");
        // Winding direction must not matter.
        let mut rev = BinaryImage::new(20, 20);
        fill_convex_polygon(&mut rev, &[(2.0, 17.0), (17.0, 2.0), (2.0, 2.0)]);
        assert_eq!(mask, rev);
    }

    #[test]
    fn polygon_ignores_degenerate_input() {
        let mut mask = BinaryImage::new(8, 8);
        fill_convex_polygon(&mut mask, &[(1.0, 1.0), (5.0, 5.0)]);
        assert!(mask.is_empty());
    }

    #[test]
    fn stamp_mask_paints_only_set_pixels() {
        let mut frame = RgbImage::filled(4, 4, Rgb::BLACK);
        let mask = BinaryImage::from_ascii(
            "#...\n\
             ....\n\
             ....\n\
             ...#\n",
        );
        stamp_mask(&mut frame, &mask, Rgb::WHITE);
        assert_eq!(frame.get(0, 0), Rgb::WHITE);
        assert_eq!(frame.get(3, 3), Rgb::WHITE);
        assert_eq!(frame.get(1, 1), Rgb::BLACK);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn stamp_mask_rejects_mismatch() {
        let mut frame = RgbImage::new(4, 4);
        let mask = BinaryImage::new(3, 3);
        stamp_mask(&mut frame, &mask, Rgb::WHITE);
    }
}
