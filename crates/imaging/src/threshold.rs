//! Automatic threshold selection.
//!
//! The paper fixes `Th_Object = 20` ("The value of Th_Object is 20
//! here") — a magic constant tuned to their studio. Otsu's method picks
//! the threshold that maximises between-class variance of the histogram,
//! removing the constant; Experiment E13 compares the two.

use crate::image::GrayImage;

/// A 256-bin grayscale histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bins: [u32; 256],
    total: u32,
}

impl Histogram {
    /// Builds the histogram of an image.
    pub fn of(img: &GrayImage) -> Self {
        let mut bins = [0u32; 256];
        for &v in img.iter() {
            bins[v as usize] += 1;
        }
        Histogram {
            bins,
            total: (img.width() * img.height()) as u32,
        }
    }

    /// Builds a histogram from raw bin counts (total = sum of bins).
    ///
    /// Lets fused pipelines histogram values as they produce them instead
    /// of materialising an intermediate image just to rescan it.
    pub fn from_bins(bins: [u32; 256]) -> Self {
        let total = bins.iter().sum();
        Histogram { bins, total }
    }

    /// Count in bin `v`.
    pub fn count(&self, v: u8) -> u32 {
        self.bins[v as usize]
    }

    /// Total pixel count.
    pub fn total(&self) -> u32 {
        self.total
    }
}

/// Computes Otsu's threshold for `img`: the value `t` maximising the
/// between-class variance when splitting at `v > t`. Returns 0 for a
/// constant image (everything lands in the upper class for any
/// `t < v`).
///
/// # Examples
///
/// ```
/// use slj_imaging::image::GrayImage;
/// use slj_imaging::threshold::otsu_threshold;
///
/// // Two well-separated populations.
/// let img = GrayImage::from_fn(16, 16, |x, _| if x < 8 { 10 } else { 200 });
/// let t = otsu_threshold(&img);
/// assert!(t >= 10 && t < 200);
/// ```
pub fn otsu_threshold(img: &GrayImage) -> u8 {
    otsu_from_histogram(&Histogram::of(img))
}

/// Computes Otsu's threshold directly from a histogram.
///
/// `otsu_threshold` is this plus a `Histogram::of` pass; callers that
/// already hold the histogram (e.g. the fused background-subtraction
/// path) skip the image scan.
pub fn otsu_from_histogram(hist: &Histogram) -> u8 {
    let total = hist.total() as f64;
    let global_sum: f64 = (0..256)
        .map(|v| v as f64 * hist.count(v as u8) as f64)
        .sum();

    let mut best_t = 0u8;
    let mut best_var = -1.0f64;
    let mut w0 = 0.0f64; // lower-class weight
    let mut sum0 = 0.0f64; // lower-class intensity sum
    for t in 0..255usize {
        w0 += hist.count(t as u8) as f64;
        sum0 += t as f64 * hist.count(t as u8) as f64;
        if w0 == 0.0 {
            continue;
        }
        let w1 = total - w0;
        if w1 == 0.0 {
            break;
        }
        let mu0 = sum0 / w0;
        let mu1 = (global_sum - sum0) / w1;
        let between = w0 * w1 * (mu0 - mu1) * (mu0 - mu1);
        if between > best_var {
            best_var = between;
            best_t = t as u8;
        }
    }
    best_t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts() {
        let img = GrayImage::from_fn(4, 2, |x, _| (x as u8) * 10);
        let h = Histogram::of(&img);
        assert_eq!(h.total(), 8);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(30), 2);
        assert_eq!(h.count(99), 0);
    }

    #[test]
    fn bimodal_split_lands_between_modes() {
        let img = GrayImage::from_fn(32, 32, |x, _| if x < 16 { 20 } else { 220 });
        let t = otsu_threshold(&img);
        assert!(t >= 20 && t < 220, "threshold {t}");
    }

    #[test]
    fn unbalanced_bimodal_still_separates() {
        // A small bright object on a large dark background, like a
        // jumper in the difference image.
        let img = GrayImage::from_fn(40, 40, |x, y| {
            if (8..14).contains(&x) && (8..20).contains(&y) {
                180
            } else {
                5
            }
        });
        let t = otsu_threshold(&img);
        assert!(t >= 5 && t < 180, "threshold {t}");
        // Thresholding must recover the object pixels exactly.
        let mask =
            crate::binary::BinaryImage::from_gray_threshold(&img.map(|v| v), t.saturating_add(1));
        assert_eq!(mask.count_ones(), 6 * 12);
    }

    #[test]
    fn histogram_route_matches_image_route() {
        let img = GrayImage::from_fn(33, 21, |x, y| ((x * 31 + y * 57 + x * y) % 256) as u8);
        let mut bins = [0u32; 256];
        for &v in img.iter() {
            bins[v as usize] += 1;
        }
        let hist = Histogram::from_bins(bins);
        assert_eq!(hist, Histogram::of(&img));
        assert_eq!(otsu_from_histogram(&hist), otsu_threshold(&img));
    }

    #[test]
    fn constant_image_is_degenerate() {
        let img = GrayImage::filled(8, 8, 77);
        assert_eq!(otsu_threshold(&img), 0);
    }

    #[test]
    fn noise_shifts_threshold_smoothly() {
        // Adding mild spread to the modes must not move the threshold
        // outside the inter-mode gap.
        let img = GrayImage::from_fn(64, 64, |x, y| {
            let base = if x < 32 { 15 } else { 200 };
            base + ((x * 7 + y * 13) % 11) as u8
        });
        let t = otsu_threshold(&img);
        // Dark mode spans 15..=25, bright 200..=210; any `v > t` split
        // with t in [25, 199] separates them cleanly.
        assert!((25..200).contains(&t), "threshold {t}");
    }
}
