//! Mask-agreement metrics for the extraction experiments (E2).
//!
//! The paper shows extraction quality qualitatively (Figure 1); the
//! reproduction quantifies it as intersection-over-union, precision and
//! recall between the extracted silhouette and the renderer's ground-truth
//! mask.

use crate::binary::BinaryImage;
use crate::error::ImagingError;

/// Agreement statistics between a predicted mask and a ground-truth mask.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaskMetrics {
    /// True positives: set in both.
    pub tp: usize,
    /// False positives: set in prediction only.
    pub fp: usize,
    /// False negatives: set in ground truth only.
    pub fn_: usize,
    /// True negatives: clear in both.
    pub tn: usize,
}

impl MaskMetrics {
    /// Compares `predicted` against `truth`.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::DimensionMismatch`] when shapes differ.
    pub fn compare(predicted: &BinaryImage, truth: &BinaryImage) -> Result<Self, ImagingError> {
        if predicted.dimensions() != truth.dimensions() {
            return Err(ImagingError::DimensionMismatch {
                left: predicted.dimensions(),
                right: truth.dimensions(),
            });
        }
        let tp = predicted.and(truth)?.count_ones();
        let fp = predicted.count_ones() - tp;
        let fn_ = truth.count_ones() - tp;
        let total = predicted.width() * predicted.height();
        let tn = total - tp - fp - fn_;
        Ok(MaskMetrics { tp, fp, fn_, tn })
    }

    /// Intersection over union. Returns 1.0 when both masks are empty.
    pub fn iou(&self) -> f64 {
        let union = self.tp + self.fp + self.fn_;
        if union == 0 {
            1.0
        } else {
            self.tp as f64 / union as f64
        }
    }

    /// Precision `tp / (tp + fp)`. Returns 1.0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall `tp / (tp + fn)`. Returns 1.0 when the truth is empty.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Pixel accuracy `(tp + tn) / total`.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.fn_ + self.tn;
        (self.tp + self.tn) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match() {
        let a = BinaryImage::from_ascii(
            "##..\n\
             ##..\n",
        );
        let m = MaskMetrics::compare(&a, &a).unwrap();
        assert_eq!(m.tp, 4);
        assert_eq!(m.fp, 0);
        assert_eq!(m.fn_, 0);
        assert_eq!(m.tn, 4);
        assert_eq!(m.iou(), 1.0);
        assert_eq!(m.f1(), 1.0);
        assert_eq!(m.accuracy(), 1.0);
    }

    #[test]
    fn disjoint_masks() {
        let a = BinaryImage::from_ascii("##..\n");
        let b = BinaryImage::from_ascii("..##\n");
        let m = MaskMetrics::compare(&a, &b).unwrap();
        assert_eq!(m.iou(), 0.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn partial_overlap_counts() {
        let pred = BinaryImage::from_ascii("###.\n");
        let truth = BinaryImage::from_ascii(".###\n");
        let m = MaskMetrics::compare(&pred, &truth).unwrap();
        assert_eq!(m.tp, 2);
        assert_eq!(m.fp, 1);
        assert_eq!(m.fn_, 1);
        assert!((m.iou() - 0.5).abs() < 1e-12);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_masks_convention() {
        let a = BinaryImage::new(3, 3);
        let m = MaskMetrics::compare(&a, &a).unwrap();
        assert_eq!(m.iou(), 1.0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = BinaryImage::new(3, 3);
        let b = BinaryImage::new(4, 3);
        assert!(MaskMetrics::compare(&a, &b).is_err());
    }

    #[test]
    fn iou_bounded_by_precision_and_recall() {
        let pred = BinaryImage::from_ascii("####....\n");
        let truth = BinaryImage::from_ascii("..####..\n");
        let m = MaskMetrics::compare(&pred, &truth).unwrap();
        assert!(m.iou() <= m.precision() + 1e-12);
        assert!(m.iou() <= m.recall() + 1e-12);
    }
}
