//! Plain PGM/PPM (binary PNM) reading and writing.
//!
//! Used to dump intermediate artefacts — extracted silhouettes, thinning
//! results, skeleton overlays — so reproduction runs can be inspected
//! visually like the paper's Figures 1–5 and 8.

use crate::binary::BinaryImage;
use crate::error::ImagingError;
use crate::image::{GrayImage, RgbImage};
use crate::pixel::Rgb;
use std::io::{Read, Write};
use std::path::Path;

/// Writes a grayscale image as binary PGM (P5).
///
/// # Errors
///
/// Propagates underlying I/O failures as [`ImagingError::Io`].
pub fn write_pgm<W: Write>(mut w: W, img: &GrayImage) -> Result<(), ImagingError> {
    write!(w, "P5\n{} {}\n255\n", img.width(), img.height())?;
    w.write_all(img.as_slice())?;
    Ok(())
}

/// Writes an RGB image as binary PPM (P6).
///
/// # Errors
///
/// Propagates underlying I/O failures as [`ImagingError::Io`].
pub fn write_ppm<W: Write>(mut w: W, img: &RgbImage) -> Result<(), ImagingError> {
    write!(w, "P6\n{} {}\n255\n", img.width(), img.height())?;
    let mut buf = Vec::with_capacity(img.width() * img.height() * 3);
    for &p in img.iter() {
        buf.extend_from_slice(&[p.r, p.g, p.b]);
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Writes a grayscale image to `path` as PGM.
///
/// # Errors
///
/// Propagates file-creation and write failures as [`ImagingError::Io`].
pub fn save_pgm(path: impl AsRef<Path>, img: &GrayImage) -> Result<(), ImagingError> {
    let file = std::fs::File::create(path)?;
    write_pgm(std::io::BufWriter::new(file), img)
}

/// Writes an RGB image to `path` as PPM.
///
/// # Errors
///
/// Propagates file-creation and write failures as [`ImagingError::Io`].
pub fn save_ppm(path: impl AsRef<Path>, img: &RgbImage) -> Result<(), ImagingError> {
    let file = std::fs::File::create(path)?;
    write_ppm(std::io::BufWriter::new(file), img)
}

/// Writes a binary mask to `path` as PGM (set = 255).
///
/// # Errors
///
/// Propagates file-creation and write failures as [`ImagingError::Io`].
pub fn save_mask_pgm(path: impl AsRef<Path>, mask: &BinaryImage) -> Result<(), ImagingError> {
    save_pgm(path, &mask.to_gray())
}

/// Reads a binary PGM (P5, maxval 255) image.
///
/// # Errors
///
/// Returns [`ImagingError::MalformedPnm`] on a bad header and
/// [`ImagingError::Io`] on underlying read failures.
pub fn read_pgm<R: Read>(mut r: R) -> Result<GrayImage, ImagingError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    let (magic, width, height, offset) = parse_header(&bytes)?;
    if magic != "P5" {
        return Err(ImagingError::MalformedPnm(format!(
            "expected P5 magic, got {magic}"
        )));
    }
    let need = checked_payload_len(width, height, 1)?;
    let data = &bytes[offset..];
    if data.len() < need {
        return Err(ImagingError::MalformedPnm(format!(
            "pixel payload truncated: need {need} bytes, have {}",
            data.len()
        )));
    }
    GrayImage::from_vec(width, height, data[..need].to_vec())
}

/// Reads a binary PPM (P6, maxval 255) image.
///
/// # Errors
///
/// Returns [`ImagingError::MalformedPnm`] on a bad header and
/// [`ImagingError::Io`] on underlying read failures.
pub fn read_ppm<R: Read>(mut r: R) -> Result<RgbImage, ImagingError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    let (img, _consumed) = read_ppm_prefix(&bytes)?;
    Ok(img)
}

/// Parses the P6 header at the start of `bytes` without touching the
/// pixel payload.
///
/// Returns `(width, height, payload_offset)`. Callers that receive
/// untrusted bytes (the serving layer) use this to validate dimensions
/// *before* any pixel allocation happens.
///
/// # Errors
///
/// Returns [`ImagingError::MalformedPnm`] on a bad or non-P6 header.
pub fn ppm_header(bytes: &[u8]) -> Result<(usize, usize, usize), ImagingError> {
    let (magic, width, height, offset) = parse_header(bytes)?;
    if magic != "P6" {
        return Err(ImagingError::MalformedPnm(format!(
            "expected P6 magic, got {magic}"
        )));
    }
    Ok((width, height, offset))
}

/// Reads one binary PPM (P6, maxval 255) from the start of `bytes` and
/// returns the image plus the number of bytes consumed.
///
/// P6 is self-delimiting (the header fixes the payload length), so
/// concatenated PPM streams — the serving layer's clip wire format —
/// split cleanly by calling this in a loop and advancing by `consumed`.
///
/// # Errors
///
/// Returns [`ImagingError::MalformedPnm`] on a bad header or truncated
/// payload.
pub fn read_ppm_prefix(bytes: &[u8]) -> Result<(RgbImage, usize), ImagingError> {
    let (width, height, offset) = ppm_header(bytes)?;
    let need = checked_payload_len(width, height, 3)?;
    let data = &bytes[offset..];
    if data.len() < need {
        return Err(ImagingError::MalformedPnm(format!(
            "pixel payload truncated: need {need} bytes, have {}",
            data.len()
        )));
    }
    let pixels = data[..need]
        .chunks_exact(3)
        .map(|c| Rgb::new(c[0], c[1], c[2]))
        .collect();
    let img = RgbImage::from_vec(width, height, pixels)?;
    Ok((img, offset + need))
}

/// `width * height * channels` with overflow reported as a malformed
/// header instead of a wrap-around (headers can be adversarial).
fn checked_payload_len(
    width: usize,
    height: usize,
    channels: usize,
) -> Result<usize, ImagingError> {
    width
        .checked_mul(height)
        .and_then(|px| px.checked_mul(channels))
        .ok_or_else(|| ImagingError::MalformedPnm(format!("dimensions {width}x{height} overflow")))
}

/// Parses `magic, width, height, maxval`; returns the magic, dimensions,
/// and the byte offset where the pixel payload starts.
fn parse_header(bytes: &[u8]) -> Result<(String, usize, usize, usize), ImagingError> {
    let mut pos = 0usize;
    let mut tokens = Vec::new();
    // Read 4 whitespace-separated tokens, skipping '#' comments.
    while tokens.len() < 4 {
        while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if pos >= bytes.len() {
            return Err(ImagingError::MalformedPnm("truncated header".into()));
        }
        if bytes[pos] == b'#' {
            while pos < bytes.len() && bytes[pos] != b'\n' {
                pos += 1;
            }
            continue;
        }
        let start = pos;
        while pos < bytes.len() && !bytes[pos].is_ascii_whitespace() {
            pos += 1;
        }
        tokens.push(
            std::str::from_utf8(&bytes[start..pos])
                .map_err(|_| ImagingError::MalformedPnm("non-utf8 header token".into()))?
                .to_string(),
        );
    }
    // Exactly one whitespace byte separates the header from the payload.
    if pos < bytes.len() {
        pos += 1;
    }
    let magic = tokens[0].clone();
    let width: usize = tokens[1]
        .parse()
        .map_err(|_| ImagingError::MalformedPnm(format!("bad width {:?}", tokens[1])))?;
    let height: usize = tokens[2]
        .parse()
        .map_err(|_| ImagingError::MalformedPnm(format!("bad height {:?}", tokens[2])))?;
    let maxval: usize = tokens[3]
        .parse()
        .map_err(|_| ImagingError::MalformedPnm(format!("bad maxval {:?}", tokens[3])))?;
    if maxval != 255 {
        return Err(ImagingError::MalformedPnm(format!(
            "only maxval 255 supported, got {maxval}"
        )));
    }
    Ok((magic, width, height, pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_round_trip() {
        let img = GrayImage::from_fn(5, 3, |x, y| (x * 10 + y) as u8);
        let mut buf = Vec::new();
        write_pgm(&mut buf, &img).unwrap();
        let back = read_pgm(buf.as_slice()).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn ppm_round_trip() {
        let img = RgbImage::from_fn(4, 2, |x, y| Rgb::new(x as u8, y as u8, 99));
        let mut buf = Vec::new();
        write_ppm(&mut buf, &img).unwrap();
        let back = read_ppm(buf.as_slice()).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn header_comments_are_skipped() {
        let mut buf: Vec<u8> = b"P5\n# a comment\n2 1\n# another\n255\n".to_vec();
        buf.extend_from_slice(&[7, 8]);
        let img = read_pgm(buf.as_slice()).unwrap();
        assert_eq!(img.get(0, 0), 7);
        assert_eq!(img.get(1, 0), 8);
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut buf: Vec<u8> = b"P6\n2 1\n255\n".to_vec();
        buf.extend_from_slice(&[0; 6]);
        assert!(read_pgm(buf.as_slice()).is_err());
        let mut buf2: Vec<u8> = b"P5\n2 1\n255\n".to_vec();
        buf2.extend_from_slice(&[0; 2]);
        assert!(read_ppm(buf2.as_slice()).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let buf: Vec<u8> = b"P5\n4 4\n255\nxy".to_vec();
        assert!(matches!(
            read_pgm(buf.as_slice()),
            Err(ImagingError::MalformedPnm(_))
        ));
    }

    #[test]
    fn unsupported_maxval_rejected() {
        let buf: Vec<u8> = b"P5\n1 1\n65535\n\x00\x00".to_vec();
        assert!(read_pgm(buf.as_slice()).is_err());
    }

    #[test]
    fn concatenated_ppms_split_by_prefix_reads() {
        let a = RgbImage::from_fn(3, 2, |x, y| Rgb::new(x as u8, y as u8, 1));
        let b = RgbImage::from_fn(2, 2, |x, y| Rgb::new(x as u8, y as u8, 2));
        let mut buf = Vec::new();
        write_ppm(&mut buf, &a).unwrap();
        write_ppm(&mut buf, &b).unwrap();
        let (first, used) = read_ppm_prefix(&buf).unwrap();
        assert_eq!(first, a);
        let (second, used2) = read_ppm_prefix(&buf[used..]).unwrap();
        assert_eq!(second, b);
        assert_eq!(used + used2, buf.len());
        assert!(matches!(
            read_ppm_prefix(&buf[used + used2..]),
            Err(ImagingError::MalformedPnm(_))
        ));
    }

    #[test]
    fn ppm_header_reports_dims_without_reading_pixels() {
        // Header claims a huge payload that is not actually present:
        // header parsing alone must still succeed.
        let buf: Vec<u8> = b"P6\n4096 4096\n255\n".to_vec();
        let (w, h, off) = ppm_header(&buf).unwrap();
        assert_eq!((w, h), (4096, 4096));
        assert_eq!(off, buf.len());
        assert!(read_ppm_prefix(&buf).is_err());
    }

    #[test]
    fn overflowing_dimensions_rejected_not_wrapped() {
        let huge = format!("P6\n{} {}\n255\n", usize::MAX, 3);
        assert!(matches!(
            read_ppm_prefix(huge.as_bytes()),
            Err(ImagingError::MalformedPnm(_))
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("slj_imaging_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mask.pgm");
        let mask = BinaryImage::from_ascii(
            "#.#\n\
             .#.\n",
        );
        save_mask_pgm(&path, &mask).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let img = read_pgm(file).unwrap();
        assert_eq!(BinaryImage::from_gray_threshold(&img, 128), mask);
        std::fs::remove_file(&path).ok();
    }
}
