//! Image substrate for the standing-long-jump pose-estimation pipeline.
//!
//! The paper's front end (Section 2) extracts a jumper silhouette from a
//! studio video via moving-window background subtraction, thresholding and
//! median smoothing. This crate provides everything that step needs, plus
//! the raster primitives the synthetic-jumper renderer and the skeleton
//! crate build on:
//!
//! - [`image::ImageBuffer`] — a generic row-major raster over any pixel
//!   type, with [`pixel::Rgb`] and `u8` grayscale instantiations.
//! - [`binary::BinaryImage`] — a bit-packed binary mask with fast
//!   neighbourhood queries (the silhouette/skeleton representation).
//! - [`background`] — the paper's object-extraction algorithm
//!   (`Th_Object = 20`), built on [`integral::IntegralImage`] so the n×n
//!   moving-window averages cost O(1) per pixel.
//! - [`filter`] — median and box filters (Figure 1(c) smoothing).
//! - [`morphology`] — erosion/dilation/opening/closing and hole filling.
//! - [`region`] — connected-component labelling and region statistics.
//! - [`draw`] — filled disks, capsules (thick segments) and convex
//!   polygons used by the silhouette renderer.
//! - [`metrics`] — IoU / precision / recall between masks (Experiment E2).
//! - [`io`] — PGM/PPM artefact dump and load for debugging.
//!
//! # Examples
//!
//! ```
//! use slj_imaging::binary::BinaryImage;
//! use slj_imaging::draw;
//!
//! let mut mask = BinaryImage::new(64, 64);
//! draw::fill_disk(&mut mask, 32.0, 32.0, 10.0);
//! assert!(mask.count_ones() > 250);
//! ```

// Grandfathered: this crate predates the unwrap_used/expect_used policy.
// Its findings are baselined in check-baseline.json (see `slj check`);
// new code should return SljError and shrink the ratchet instead.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod background;
pub mod binary;
pub mod distance;
pub mod draw;
pub mod error;
pub mod filter;
pub mod image;
pub mod integral;
pub mod io;
pub mod metrics;
pub mod morphology;
pub mod pixel;
pub mod region;
pub mod threshold;

pub use background::{BackgroundSubtractor, ExtractScratch, ExtractionConfig};
pub use binary::BinaryImage;
pub use error::ImagingError;
pub use image::{GrayImage, ImageBuffer, RgbImage};
pub use pixel::Rgb;
