//! Chamfer distance transforms.
//!
//! The 3–4 chamfer transform approximates Euclidean distance with two
//! raster sweeps. The pipeline uses it for shape diagnostics (e.g. limb
//! thickness around skeleton pixels) and the test suites use it to
//! characterise skeleton quality: a good skeleton runs along the ridge
//! of the distance transform.

use crate::binary::BinaryImage;
use crate::image::ImageBuffer;

/// Weight of an orthogonal step in the 3–4 chamfer metric.
pub const CHAMFER_ORTHOGONAL: u32 = 3;
/// Weight of a diagonal step in the 3–4 chamfer metric.
pub const CHAMFER_DIAGONAL: u32 = 4;
/// Value assigned to pixels with no background anywhere (all-foreground
/// masks).
const UNREACHED: u32 = u32::MAX / 2;

/// Computes the 3–4 chamfer distance from every pixel to the nearest
/// *background* pixel. Background pixels get 0; out-of-frame counts as
/// background, so foreground touching the border gets distance
/// [`CHAMFER_ORTHOGONAL`].
///
/// Distances are in chamfer units: divide by [`CHAMFER_ORTHOGONAL`] for
/// an approximate pixel distance.
///
/// # Examples
///
/// ```
/// use slj_imaging::binary::BinaryImage;
/// use slj_imaging::distance::{chamfer_distance, CHAMFER_ORTHOGONAL};
///
/// let mask = BinaryImage::from_ascii(
///     ".....\n\
///      .111.\n\
///      .111.\n\
///      .111.\n\
///      .....\n",
/// );
/// let dt = chamfer_distance(&mask);
/// assert_eq!(dt.get(0, 0), 0);
/// assert_eq!(dt.get(2, 2), 2 * CHAMFER_ORTHOGONAL); // blob centre
/// assert_eq!(dt.get(1, 1), CHAMFER_ORTHOGONAL);
/// ```
pub fn chamfer_distance(mask: &BinaryImage) -> ImageBuffer<u32> {
    let (w, h) = mask.dimensions();
    let mut dist = ImageBuffer::<u32>::filled(w, h, UNREACHED);
    for y in 0..h {
        for x in 0..w {
            if !mask.get(x, y) {
                dist.set(x, y, 0);
            } else if x == 0 || y == 0 || x == w - 1 || y == h - 1 {
                // The frame border abuts implicit background.
                dist.set(x, y, CHAMFER_ORTHOGONAL.min(dist.get(x, y)));
            }
        }
    }
    // Forward sweep: propagate from NW half-neighbourhood.
    for y in 0..h {
        for x in 0..w {
            let mut best = dist.get(x, y);
            let mut relax = |nx: isize, ny: isize, wgt: u32| {
                if nx >= 0 && ny >= 0 && (nx as usize) < w && (ny as usize) < h {
                    best = best.min(dist.get(nx as usize, ny as usize).saturating_add(wgt));
                }
            };
            let (xi, yi) = (x as isize, y as isize);
            relax(xi - 1, yi, CHAMFER_ORTHOGONAL);
            relax(xi, yi - 1, CHAMFER_ORTHOGONAL);
            relax(xi - 1, yi - 1, CHAMFER_DIAGONAL);
            relax(xi + 1, yi - 1, CHAMFER_DIAGONAL);
            dist.set(x, y, best);
        }
    }
    // Backward sweep: propagate from SE half-neighbourhood.
    for y in (0..h).rev() {
        for x in (0..w).rev() {
            let mut best = dist.get(x, y);
            let mut relax = |nx: isize, ny: isize, wgt: u32| {
                if nx >= 0 && ny >= 0 && (nx as usize) < w && (ny as usize) < h {
                    best = best.min(dist.get(nx as usize, ny as usize).saturating_add(wgt));
                }
            };
            let (xi, yi) = (x as isize, y as isize);
            relax(xi + 1, yi, CHAMFER_ORTHOGONAL);
            relax(xi, yi + 1, CHAMFER_ORTHOGONAL);
            relax(xi + 1, yi + 1, CHAMFER_DIAGONAL);
            relax(xi - 1, yi + 1, CHAMFER_DIAGONAL);
            dist.set(x, y, best);
        }
    }
    dist
}

/// Mean chamfer distance (in approximate pixels) of the set pixels of
/// `probe` inside the distance field of `mask` — how deep `probe` runs
/// inside the shape. A centred skeleton scores close to the shape's
/// half-thickness; a boundary-hugging one scores near zero.
///
/// Returns `None` when `probe` is empty.
///
/// # Panics
///
/// Panics if the dimensions differ.
pub fn mean_interior_depth(mask: &BinaryImage, probe: &BinaryImage) -> Option<f64> {
    assert_eq!(
        mask.dimensions(),
        probe.dimensions(),
        "mask and probe dimensions must match"
    );
    let dt = chamfer_distance(mask);
    let mut sum = 0u64;
    let mut n = 0u64;
    for (x, y) in probe.iter_ones() {
        sum += dt.get(x, y) as u64;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum as f64 / n as f64 / CHAMFER_ORTHOGONAL as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn background_is_zero() {
        let mask = BinaryImage::from_ascii(
            "...\n\
             .#.\n\
             ...\n",
        );
        let dt = chamfer_distance(&mask);
        for (x, y) in [(0, 0), (2, 2), (1, 0)] {
            assert_eq!(dt.get(x, y), 0);
        }
        assert_eq!(dt.get(1, 1), CHAMFER_ORTHOGONAL);
    }

    #[test]
    fn distance_grows_toward_blob_centre() {
        let mut mask = BinaryImage::new(11, 11);
        for y in 1..10 {
            for x in 1..10 {
                mask.set(x, y, true);
            }
        }
        let dt = chamfer_distance(&mask);
        assert_eq!(dt.get(1, 5), CHAMFER_ORTHOGONAL);
        assert_eq!(dt.get(2, 5), 2 * CHAMFER_ORTHOGONAL);
        assert_eq!(dt.get(5, 5), 5 * CHAMFER_ORTHOGONAL);
        // Symmetry.
        assert_eq!(dt.get(5, 2), dt.get(2, 5));
        assert_eq!(dt.get(8, 5), dt.get(2, 5));
    }

    #[test]
    fn border_foreground_sees_implicit_background() {
        let mask = BinaryImage::from_ascii(
            "###\n\
             ###\n\
             ###\n",
        );
        let dt = chamfer_distance(&mask);
        assert_eq!(dt.get(0, 0), CHAMFER_ORTHOGONAL);
        assert_eq!(dt.get(1, 1), 2 * CHAMFER_ORTHOGONAL);
    }

    #[test]
    fn chamfer_approximates_euclidean() {
        let mut mask = BinaryImage::new(21, 21);
        for y in 1..20 {
            for x in 1..20 {
                mask.set(x, y, true);
            }
        }
        let dt = chamfer_distance(&mask);
        // Diagonal point: Euclidean distance to border is 4 (from (5,5)
        // to x=0 side is 5 orth, but diagonal towards corner is ~7).
        // Chamfer 3-4 of a pure diagonal run of k steps is 4k/3 ≈ 1.33k
        // vs Euclidean 1.41k: within ~6%.
        let approx = dt.get(5, 5) as f64 / CHAMFER_ORTHOGONAL as f64;
        assert!((approx - 5.0).abs() < 1.0, "approx {approx}");
    }

    #[test]
    fn mean_interior_depth_ranks_centredness() {
        let mut mask = BinaryImage::new(20, 9);
        for y in 1..8 {
            for x in 1..19 {
                mask.set(x, y, true);
            }
        }
        // Centre line vs boundary line.
        let mut centre = BinaryImage::new(20, 9);
        let mut edge = BinaryImage::new(20, 9);
        for x in 2..18 {
            centre.set(x, 4, true);
            edge.set(x, 1, true);
        }
        let dc = mean_interior_depth(&mask, &centre).unwrap();
        let de = mean_interior_depth(&mask, &edge).unwrap();
        assert!(dc > de, "centre depth {dc} <= edge depth {de}");
        assert!(mean_interior_depth(&mask, &BinaryImage::new(20, 9)).is_none());
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mean_interior_depth_rejects_mismatch() {
        let a = BinaryImage::new(4, 4);
        let b = BinaryImage::new(5, 4);
        mean_interior_depth(&a, &b);
    }
}
