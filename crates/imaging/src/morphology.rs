//! Binary mathematical morphology.
//!
//! The extracted silhouettes carry small holes and ragged borders
//! (Figure 1(b) of the paper). Besides the median filter the paper applies,
//! the simulator and the test suites use the classic morphology toolbox to
//! manufacture and repair such defects: erosion, dilation, opening,
//! closing, and background-flood hole filling.

use crate::binary::{BinaryImage, NEIGHBORS4, NEIGHBORS8};
use std::collections::VecDeque;

/// Structuring-element connectivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Connectivity {
    /// 4-connected (edge) neighbourhood — a diamond structuring element.
    Four,
    /// 8-connected (edge + corner) neighbourhood — a square structuring
    /// element.
    Eight,
}

impl Connectivity {
    fn offsets(self) -> &'static [(isize, isize)] {
        match self {
            Connectivity::Four => &NEIGHBORS4,
            Connectivity::Eight => &NEIGHBORS8,
        }
    }
}

/// Erodes the mask by one step: a pixel survives only if it and all its
/// neighbours (under `conn`) are set. Out-of-bounds counts as background,
/// so shapes touching the border erode there too.
pub fn erode(img: &BinaryImage, conn: Connectivity) -> BinaryImage {
    let mut out = BinaryImage::new(img.width(), img.height());
    for (x, y) in img.iter_ones() {
        let survives = conn
            .offsets()
            .iter()
            .all(|&(dx, dy)| img.get_or_false(x as isize + dx, y as isize + dy));
        if survives {
            out.set(x, y, true);
        }
    }
    out
}

/// Dilates the mask by one step: every neighbour (under `conn`) of a set
/// pixel becomes set.
pub fn dilate(img: &BinaryImage, conn: Connectivity) -> BinaryImage {
    let mut out = img.clone();
    for (x, y) in img.iter_ones() {
        for &(dx, dy) in conn.offsets() {
            let (nx, ny) = (x as isize + dx, y as isize + dy);
            if img.in_bounds(nx, ny) {
                out.set(nx as usize, ny as usize, true);
            }
        }
    }
    out
}

/// Morphological opening (erosion then dilation) — removes protrusions and
/// specks smaller than the structuring element.
pub fn open(img: &BinaryImage, conn: Connectivity) -> BinaryImage {
    dilate(&erode(img, conn), conn)
}

/// Morphological closing (dilation then erosion) — fills pits and gaps
/// smaller than the structuring element.
pub fn close(img: &BinaryImage, conn: Connectivity) -> BinaryImage {
    erode(&dilate(img, conn), conn)
}

/// Fills holes: background regions not connected to the image border
/// become foreground.
///
/// Background connectivity is the dual of the foreground's; silhouettes in
/// this pipeline are 8-connected, so holes are flooded 4-connected.
pub fn fill_holes(img: &BinaryImage) -> BinaryImage {
    let (w, h) = img.dimensions();
    // Flood the outside background from every border pixel.
    let mut outside = BinaryImage::new(w, h);
    let mut queue = VecDeque::new();
    let push =
        |outside: &mut BinaryImage, queue: &mut VecDeque<(usize, usize)>, x: usize, y: usize| {
            if !img.get(x, y) && !outside.get(x, y) {
                outside.set(x, y, true);
                queue.push_back((x, y));
            }
        };
    for x in 0..w {
        push(&mut outside, &mut queue, x, 0);
        push(&mut outside, &mut queue, x, h - 1);
    }
    for y in 0..h {
        push(&mut outside, &mut queue, 0, y);
        push(&mut outside, &mut queue, w - 1, y);
    }
    while let Some((x, y)) = queue.pop_front() {
        for &(dx, dy) in &NEIGHBORS4 {
            let (nx, ny) = (x as isize + dx, y as isize + dy);
            if img.in_bounds(nx, ny) {
                let (nx, ny) = (nx as usize, ny as usize);
                if !img.get(nx, ny) && !outside.get(nx, ny) {
                    outside.set(nx, ny, true);
                    queue.push_back((nx, ny));
                }
            }
        }
    }
    // Everything that is neither foreground nor outside-background is a
    // hole.
    let mut out = img.clone();
    for y in 0..h {
        for x in 0..w {
            if !img.get(x, y) && !outside.get(x, y) {
                out.set(x, y, true);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_with_hole() -> BinaryImage {
        BinaryImage::from_ascii(
            ".......\n\
             .#####.\n\
             .#####.\n\
             .##.##.\n\
             .#####.\n\
             .#####.\n\
             .......\n",
        )
    }

    #[test]
    fn erode_shrinks_square() {
        let img = BinaryImage::from_ascii(
            ".....\n\
             .###.\n\
             .###.\n\
             .###.\n\
             .....\n",
        );
        let out = erode(&img, Connectivity::Eight);
        assert_eq!(out.count_ones(), 1);
        assert!(out.get(2, 2));
    }

    #[test]
    fn erode_four_keeps_more_than_eight() {
        let img = BinaryImage::from_ascii(
            ".###.\n\
             .###.\n\
             .###.\n",
        );
        let four = erode(&img, Connectivity::Four).count_ones();
        let eight = erode(&img, Connectivity::Eight).count_ones();
        assert!(four >= eight);
    }

    #[test]
    fn dilate_grows_point_by_connectivity() {
        let mut img = BinaryImage::new(5, 5);
        img.set(2, 2, true);
        assert_eq!(dilate(&img, Connectivity::Four).count_ones(), 5);
        assert_eq!(dilate(&img, Connectivity::Eight).count_ones(), 9);
    }

    #[test]
    fn dilate_clips_at_border() {
        let mut img = BinaryImage::new(3, 3);
        img.set(0, 0, true);
        let out = dilate(&img, Connectivity::Eight);
        assert_eq!(out.count_ones(), 4);
    }

    #[test]
    fn erode_then_dilate_identity_on_big_blob_interior() {
        let img = BinaryImage::from_ascii(
            ".......\n\
             .#####.\n\
             .#####.\n\
             .#####.\n\
             .#####.\n\
             .#####.\n\
             .......\n",
        );
        let opened = open(&img, Connectivity::Four);
        // Opening with a diamond SE keeps the 5x5 square minus nothing:
        // all interior pixels must survive.
        for y in 2..5 {
            for x in 2..5 {
                assert!(opened.get(x, y));
            }
        }
    }

    #[test]
    fn open_removes_single_speck() {
        let mut img = BinaryImage::new(9, 9);
        img.set(4, 4, true);
        assert!(open(&img, Connectivity::Four).is_empty());
    }

    #[test]
    fn close_fills_one_pixel_gap() {
        let img = BinaryImage::from_ascii(
            ".......\n\
             .##.##.\n\
             .##.##.\n\
             .##.##.\n\
             .......\n",
        );
        let closed = close(&img, Connectivity::Eight);
        assert!(closed.get(3, 2), "gap column should be bridged");
    }

    #[test]
    fn fill_holes_fills_interior_only() {
        let img = square_with_hole();
        let filled = fill_holes(&img);
        assert!(filled.get(3, 3), "interior hole should be filled");
        assert!(!filled.get(0, 0), "outside must stay background");
        assert_eq!(filled.count_ones(), img.count_ones() + 1);
    }

    #[test]
    fn fill_holes_noop_without_holes() {
        let img = BinaryImage::from_ascii(
            "###\n\
             ###\n\
             ###\n",
        );
        assert_eq!(fill_holes(&img), img);
    }

    #[test]
    fn fill_holes_keeps_border_notch_open() {
        // A notch open to the border is not a hole.
        let img = BinaryImage::from_ascii(
            "##.##\n\
             ##.##\n\
             #####\n",
        );
        let filled = fill_holes(&img);
        assert!(!filled.get(2, 0));
        assert!(!filled.get(2, 1));
    }

    #[test]
    fn morphology_duality_erode_dilate_on_empty_and_full() {
        let empty = BinaryImage::new(4, 4);
        assert!(erode(&empty, Connectivity::Eight).is_empty());
        assert!(dilate(&empty, Connectivity::Eight).is_empty());
        let full = BinaryImage::from_ascii(
            "####\n\
             ####\n\
             ####\n\
             ####\n",
        );
        // Border pixels erode away because outside counts as background.
        let eroded = erode(&full, Connectivity::Eight);
        assert_eq!(eroded.count_ones(), 4);
        assert_eq!(dilate(&full, Connectivity::Eight), full);
    }
}
