//! Bit-packed binary masks (silhouettes and skeletons).

use crate::error::ImagingError;
use crate::image::GrayImage;
use std::fmt;

/// A binary image stored one bit per pixel.
///
/// This is the representation of both the extracted silhouette (Section 2
/// of the paper) and the thinned skeleton (Section 3). The 8-neighbourhood
/// accessors exist because both the Zhang-Suen thinning pass and the
/// skeleton-graph construction are defined in terms of a pixel's eight
/// neighbours, enumerated clockwise from north as `P2..P9` in the thinning
/// literature.
///
/// # Examples
///
/// ```
/// use slj_imaging::binary::BinaryImage;
///
/// let mut img = BinaryImage::new(8, 8);
/// img.set(3, 3, true);
/// img.set(4, 3, true);
/// assert_eq!(img.count_ones(), 2);
/// assert_eq!(img.neighbors8(3, 3).iter().filter(|&&b| b).count(), 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BinaryImage {
    width: usize,
    height: usize,
    words: Vec<u64>,
}

impl Default for BinaryImage {
    /// A 1×1 all-zero mask — the smallest valid placeholder, meant for
    /// scratch slots that are `reset`/`copy_from`-ed before first use.
    fn default() -> Self {
        BinaryImage::new(1, 1)
    }
}

/// Offsets of the eight neighbours in Zhang-Suen order:
/// N, NE, E, SE, S, SW, W, NW (clockwise starting from north).
pub const NEIGHBORS8: [(isize, isize); 8] = [
    (0, -1),
    (1, -1),
    (1, 0),
    (1, 1),
    (0, 1),
    (-1, 1),
    (-1, 0),
    (-1, -1),
];

/// Offsets of the four edge-connected neighbours: N, E, S, W.
pub const NEIGHBORS4: [(isize, isize); 4] = [(0, -1), (1, 0), (0, 1), (-1, 0)];

impl BinaryImage {
    /// Creates an all-zero mask.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(
            width > 0 && height > 0,
            "binary image dimensions must be non-zero, got {width}x{height}"
        );
        let words = vec![0u64; (width * height).div_ceil(64)];
        BinaryImage {
            width,
            height,
            words,
        }
    }

    /// Resizes the mask to `width × height` and clears every bit, reusing
    /// the existing word storage when it is large enough. This is the
    /// allocation-free path for per-frame scratch masks.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn reset(&mut self, width: usize, height: usize) {
        assert!(
            width > 0 && height > 0,
            "binary image dimensions must be non-zero, got {width}x{height}"
        );
        let need = (width * height).div_ceil(64);
        self.words.clear();
        self.words.resize(need, 0);
        self.width = width;
        self.height = height;
    }

    /// Makes this mask an exact copy of `src`, reusing the existing word
    /// storage when it is large enough.
    pub fn copy_from(&mut self, src: &BinaryImage) {
        self.width = src.width;
        self.height = src.height;
        self.words.clear();
        self.words.extend_from_slice(&src.words);
    }

    /// Creates a mask from a row-major boolean vector.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidDimensions`] when `bits.len()` does
    /// not equal `width * height` or either dimension is zero.
    pub fn from_bits(width: usize, height: usize, bits: &[bool]) -> Result<Self, ImagingError> {
        if width == 0 || height == 0 || bits.len() != width * height {
            return Err(ImagingError::InvalidDimensions { width, height });
        }
        let mut img = BinaryImage::new(width, height);
        for (i, &b) in bits.iter().enumerate() {
            if b {
                img.set_index(i, true);
            }
        }
        Ok(img)
    }

    /// Parses a compact ASCII art representation, `'#'`/`'1'` = set,
    /// anything else = clear; rows separated by newlines. Useful in tests.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or the input is empty.
    pub fn from_ascii(art: &str) -> Self {
        let rows: Vec<&str> = art
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        assert!(!rows.is_empty(), "ascii art must contain at least one row");
        let width = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == width),
            "ascii art rows must have equal length"
        );
        let mut img = BinaryImage::new(width, rows.len());
        for (y, row) in rows.iter().enumerate() {
            for (x, ch) in row.chars().enumerate() {
                if ch == '#' || ch == '1' {
                    img.set(x, y, true);
                }
            }
        }
        img
    }

    /// Renders the mask as ASCII art (`'#'` = set, `'.'` = clear).
    pub fn to_ascii(&self) -> String {
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                out.push(if self.get(x, y) { '#' } else { '.' });
            }
            out.push('\n');
        }
        out
    }

    /// Mask width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mask height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)` pair.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// The backing 64-bit words in row-major bit order
    /// (`bit i = y * width + x`, bit `i % 64` of word `i / 64`).
    ///
    /// Exposed for the word-level kernels (band-parallel filters, the
    /// bit-parallel thinner) that read or repack whole words at a time.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable view of the backing words (layout as in
    /// [`BinaryImage::words`]).
    ///
    /// Callers must keep the padding bits beyond `width * height` clear:
    /// [`BinaryImage::count_ones`] and the word-wise logical operations
    /// rely on them never being set.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Whether `(x, y)` lies inside the mask.
    pub fn in_bounds(&self, x: isize, y: isize) -> bool {
        x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height
    }

    #[inline]
    fn index(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y * self.width + x
    }

    #[inline]
    fn set_index(&mut self, i: usize, value: bool) {
        let (w, b) = (i / 64, i % 64);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Returns the bit at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> bool {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x}, {y}) out of bounds for {}x{} mask",
            self.width,
            self.height
        );
        let i = self.index(x, y);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Returns the bit at `(x, y)`, treating out-of-bounds as `false`.
    ///
    /// Thinning and morphology treat everything beyond the frame as
    /// background, which is what this encodes.
    #[inline]
    pub fn get_or_false(&self, x: isize, y: isize) -> bool {
        if self.in_bounds(x, y) {
            let i = y as usize * self.width + x as usize;
            (self.words[i / 64] >> (i % 64)) & 1 == 1
        } else {
            false
        }
    }

    /// Writes the bit at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: bool) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x}, {y}) out of bounds for {}x{} mask",
            self.width,
            self.height
        );
        let i = self.index(x, y);
        self.set_index(i, value);
    }

    /// The eight neighbours of `(x, y)` in Zhang-Suen order
    /// (N, NE, E, SE, S, SW, W, NW); out-of-bounds count as `false`.
    #[inline]
    pub fn neighbors8(&self, x: usize, y: usize) -> [bool; 8] {
        let (xi, yi) = (x as isize, y as isize);
        let mut out = [false; 8];
        for (k, (dx, dy)) in NEIGHBORS8.iter().enumerate() {
            out[k] = self.get_or_false(xi + dx, yi + dy);
        }
        out
    }

    /// Number of set pixels among the eight neighbours of `(x, y)`.
    #[inline]
    pub fn neighbor_count8(&self, x: usize, y: usize) -> usize {
        self.neighbors8(x, y).iter().filter(|&&b| b).count()
    }

    /// Number of set pixels in the whole mask.
    pub fn count_ones(&self) -> usize {
        // Bits beyond width*height are never set, so popcount is exact.
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no pixel is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterator over the coordinates of all set pixels, row-major.
    pub fn iter_ones(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let w = self.width;
        (0..self.width * self.height)
            .filter(move |&i| (self.words[i / 64] >> (i % 64)) & 1 == 1)
            .map(move |i| (i % w, i / w))
    }

    /// Pixel-wise logical AND.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::DimensionMismatch`] when shapes differ.
    pub fn and(&self, other: &BinaryImage) -> Result<BinaryImage, ImagingError> {
        self.check_dims(other)?;
        let mut out = self.clone();
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
        Ok(out)
    }

    /// Pixel-wise logical OR.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::DimensionMismatch`] when shapes differ.
    pub fn or(&self, other: &BinaryImage) -> Result<BinaryImage, ImagingError> {
        self.check_dims(other)?;
        let mut out = self.clone();
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
        Ok(out)
    }

    /// Pixel-wise logical XOR (the symmetric difference of the masks).
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::DimensionMismatch`] when shapes differ.
    pub fn xor(&self, other: &BinaryImage) -> Result<BinaryImage, ImagingError> {
        self.check_dims(other)?;
        let mut out = self.clone();
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w ^= o;
        }
        Ok(out)
    }

    /// Bounding box of the set pixels as `(min_x, min_y, max_x, max_y)`
    /// inclusive, or `None` when the mask is empty.
    pub fn bounding_box(&self) -> Option<(usize, usize, usize, usize)> {
        let mut bb: Option<(usize, usize, usize, usize)> = None;
        for (x, y) in self.iter_ones() {
            bb = Some(match bb {
                None => (x, y, x, y),
                Some((x0, y0, x1, y1)) => (x0.min(x), y0.min(y), x1.max(x), y1.max(y)),
            });
        }
        bb
    }

    /// Converts to a grayscale image (set = 255, clear = 0).
    pub fn to_gray(&self) -> GrayImage {
        GrayImage::from_fn(self.width, self.height, |x, y| {
            if self.get(x, y) {
                255
            } else {
                0
            }
        })
    }

    /// Builds a mask from a grayscale image by thresholding (`>= thresh`
    /// becomes set).
    pub fn from_gray_threshold(img: &GrayImage, thresh: u8) -> Self {
        let mut out = BinaryImage::new(img.width(), img.height());
        for (x, y, v) in img.enumerate_pixels() {
            if v >= thresh {
                out.set(x, y, true);
            }
        }
        out
    }

    fn check_dims(&self, other: &BinaryImage) -> Result<(), ImagingError> {
        if self.dimensions() != other.dimensions() {
            return Err(ImagingError::DimensionMismatch {
                left: self.dimensions(),
                right: other.dimensions(),
            });
        }
        Ok(())
    }
}

impl fmt::Debug for BinaryImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BinaryImage({}x{}, {} set)",
            self.width,
            self.height,
            self.count_ones()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_clear() {
        let img = BinaryImage::new(70, 3); // spans word boundaries
        assert!(img.is_empty());
        assert_eq!(img.count_ones(), 0);
    }

    #[test]
    fn set_get_round_trip_across_words() {
        let mut img = BinaryImage::new(130, 2);
        img.set(0, 0, true);
        img.set(129, 1, true);
        img.set(63, 0, true);
        img.set(64, 0, true);
        assert_eq!(img.count_ones(), 4);
        assert!(img.get(64, 0));
        img.set(64, 0, false);
        assert!(!img.get(64, 0));
        assert_eq!(img.count_ones(), 3);
    }

    #[test]
    fn ascii_round_trip() {
        let art = "\
            .#.\n\
            ###\n\
            .#.\n";
        let img = BinaryImage::from_ascii(art);
        assert_eq!(img.dimensions(), (3, 3));
        assert_eq!(img.count_ones(), 5);
        assert_eq!(img.to_ascii(), art);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ascii_ragged_rows_panic() {
        BinaryImage::from_ascii("##\n#\n");
    }

    #[test]
    fn neighbors8_order_is_clockwise_from_north() {
        // Set only the north and east neighbours of the centre.
        let img = BinaryImage::from_ascii(
            ".#.\n\
             ..#\n\
             ...\n",
        );
        let n = img.neighbors8(1, 1);
        assert!(n[0], "north");
        assert!(n[2], "east");
        assert_eq!(n.iter().filter(|&&b| b).count(), 2);
    }

    #[test]
    fn neighbors8_at_corner_treats_outside_as_false() {
        let img = BinaryImage::from_ascii(
            "##\n\
             ##\n",
        );
        // Corner (0,0): only E, SE, S inside.
        assert_eq!(img.neighbor_count8(0, 0), 3);
    }

    #[test]
    fn logical_ops() {
        let a = BinaryImage::from_ascii("##..\n");
        let b = BinaryImage::from_ascii(".##.\n");
        assert_eq!(a.and(&b).unwrap().count_ones(), 1);
        assert_eq!(a.or(&b).unwrap().count_ones(), 3);
        assert_eq!(a.xor(&b).unwrap().count_ones(), 2);
    }

    #[test]
    fn logical_ops_reject_mismatch() {
        let a = BinaryImage::new(2, 2);
        let b = BinaryImage::new(3, 2);
        assert!(a.and(&b).is_err());
        assert!(a.or(&b).is_err());
        assert!(a.xor(&b).is_err());
    }

    #[test]
    fn bounding_box_of_shape() {
        let img = BinaryImage::from_ascii(
            "....\n\
             .#..\n\
             ..#.\n\
             ....\n",
        );
        assert_eq!(img.bounding_box(), Some((1, 1, 2, 2)));
        assert_eq!(BinaryImage::new(4, 4).bounding_box(), None);
    }

    #[test]
    fn iter_ones_is_row_major() {
        let img = BinaryImage::from_ascii(
            "#..\n\
             ..#\n",
        );
        let ones: Vec<_> = img.iter_ones().collect();
        assert_eq!(ones, vec![(0, 0), (2, 1)]);
    }

    #[test]
    fn gray_round_trip() {
        let img = BinaryImage::from_ascii(
            "#.\n\
             .#\n",
        );
        let gray = img.to_gray();
        assert_eq!(gray.get(0, 0), 255);
        assert_eq!(gray.get(1, 0), 0);
        let back = BinaryImage::from_gray_threshold(&gray, 128);
        assert_eq!(back, img);
    }

    #[test]
    fn from_bits_validates() {
        assert!(BinaryImage::from_bits(2, 2, &[true, false]).is_err());
        let img = BinaryImage::from_bits(2, 1, &[true, false]).unwrap();
        assert!(img.get(0, 0));
        assert!(!img.get(1, 0));
    }

    #[test]
    fn reset_clears_and_resizes() {
        let mut img = BinaryImage::from_ascii(
            "###\n\
             ###\n",
        );
        img.reset(130, 2); // grows across word boundaries
        assert_eq!(img.dimensions(), (130, 2));
        assert!(img.is_empty());
        img.set(129, 1, true);
        img.reset(2, 2); // shrinks; stale bits must not leak
        assert_eq!(img.dimensions(), (2, 2));
        assert!(img.is_empty());
    }

    #[test]
    fn copy_from_matches_source() {
        let src = BinaryImage::from_ascii(
            "#.#\n\
             .#.\n",
        );
        let mut dst = BinaryImage::new(70, 9);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.set(0, 0, false);
        assert!(src.get(0, 0), "copy must not alias the source");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn reset_rejects_zero_dimension() {
        BinaryImage::new(2, 2).reset(0, 3);
    }

    #[test]
    fn debug_shows_count() {
        let img = BinaryImage::from_ascii("##\n");
        assert_eq!(format!("{img:?}"), "BinaryImage(2x1, 2 set)");
    }
}
