//! Error type shared by the imaging crate.

use std::fmt;

/// Errors returned by fallible imaging operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImagingError {
    /// Two images that must share dimensions do not.
    DimensionMismatch {
        /// Dimensions of the first operand `(width, height)`.
        left: (usize, usize),
        /// Dimensions of the second operand `(width, height)`.
        right: (usize, usize),
    },
    /// A requested dimension was zero or otherwise unusable.
    InvalidDimensions {
        /// Offending width.
        width: usize,
        /// Offending height.
        height: usize,
    },
    /// A window/kernel size was invalid (zero, even where odd required, or
    /// larger than the image).
    InvalidWindow {
        /// Offending window size.
        size: usize,
        /// Human-readable constraint that was violated.
        requirement: &'static str,
    },
    /// A PNM (PGM/PPM) stream could not be parsed.
    MalformedPnm(String),
    /// Underlying I/O failure while reading or writing an artefact.
    Io(String),
    /// The execution layer failed inside a parallel kernel (a worker
    /// panic, surfaced instead of aborting the process).
    Runtime(String),
}

impl fmt::Display for ImagingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImagingError::DimensionMismatch { left, right } => write!(
                f,
                "image dimensions do not match: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            ImagingError::InvalidDimensions { width, height } => {
                write!(f, "invalid image dimensions {width}x{height}")
            }
            ImagingError::InvalidWindow { size, requirement } => {
                write!(f, "invalid window size {size}: {requirement}")
            }
            ImagingError::MalformedPnm(msg) => write!(f, "malformed PNM data: {msg}"),
            ImagingError::Io(msg) => write!(f, "i/o error: {msg}"),
            ImagingError::Runtime(msg) => write!(f, "runtime error: {msg}"),
        }
    }
}

impl std::error::Error for ImagingError {}

impl From<std::io::Error> for ImagingError {
    fn from(err: std::io::Error) -> Self {
        ImagingError::Io(err.to_string())
    }
}

impl From<slj_runtime::RuntimeError> for ImagingError {
    fn from(err: slj_runtime::RuntimeError) -> Self {
        ImagingError::Runtime(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let err = ImagingError::DimensionMismatch {
            left: (4, 3),
            right: (5, 3),
        };
        assert_eq!(err.to_string(), "image dimensions do not match: 4x3 vs 5x3");
    }

    #[test]
    fn display_invalid_window() {
        let err = ImagingError::InvalidWindow {
            size: 2,
            requirement: "must be odd",
        };
        assert_eq!(err.to_string(), "invalid window size 2: must be odd");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ImagingError>();
    }

    #[test]
    fn from_runtime_error() {
        let err = ImagingError::from(slj_runtime::RuntimeError::WorkerPanic("boom".into()));
        assert!(matches!(&err, ImagingError::Runtime(m) if m.contains("boom")));
        assert!(err.to_string().contains("runtime error"));
    }

    #[test]
    fn from_io_error() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err = ImagingError::from(io);
        assert!(matches!(err, ImagingError::Io(_)));
    }
}
