//! Object extraction by background subtraction (Section 2 of the paper).
//!
//! The paper adapts a simple object-tracking algorithm: both the known
//! background `B` and the current frame `A` are smoothed with an n×n
//! moving-window average per RGB channel, the per-channel absolute
//! differences are summed into a foreground matrix `D`, `D` is shifted so
//! its maximum becomes 255 (negatives clamped to zero), and the result is
//! thresholded at `Th_Object = 20`.

use crate::binary::BinaryImage;
use crate::error::ImagingError;
use crate::filter::split_row_bands;
use crate::image::{GrayImage, RgbImage};
use crate::integral::IntegralImage;
use slj_runtime::{band_ranges, ThreadPool};

/// Configuration for [`BackgroundSubtractor`].
///
/// The defaults mirror the paper: a small smoothing window and
/// `Th_Object = 20`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractionConfig {
    /// Side length of the n×n moving-average window (odd).
    pub window: usize,
    /// Foreground threshold `Th_Object` applied to the normalised
    /// difference matrix.
    pub th_object: u8,
    /// Choose the threshold per frame with Otsu's method instead of the
    /// fixed `th_object` (an ablation of the paper's magic constant;
    /// Experiment E13).
    pub auto_threshold: bool,
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        ExtractionConfig {
            window: 3,
            th_object: 20,
            auto_threshold: false,
        }
    }
}

/// Extracts a moving-object silhouette from frames against a fixed
/// background, exactly following the eight steps of Section 2.
///
/// # Examples
///
/// ```
/// use slj_imaging::background::{BackgroundSubtractor, ExtractionConfig};
/// use slj_imaging::image::RgbImage;
/// use slj_imaging::pixel::Rgb;
///
/// let background = RgbImage::filled(16, 16, Rgb::gray(10));
/// let mut frame = background.clone();
/// for y in 4..12 {
///     for x in 6..10 {
///         frame.set(x, y, Rgb::gray(200));
///     }
/// }
/// let sub = BackgroundSubtractor::new(background, ExtractionConfig::default())?;
/// let mask = sub.extract(&frame)?;
/// assert!(mask.get(7, 8));
/// assert!(!mask.get(0, 0));
/// # Ok::<(), slj_imaging::ImagingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BackgroundSubtractor {
    config: ExtractionConfig,
    width: usize,
    height: usize,
    /// Per-channel integral images of the background.
    bg_integrals: [IntegralImage; 3],
    /// Smoothed background means cached at construction, interleaved
    /// `[r, g, b]` per pixel in row-major order. The background never
    /// changes, so the per-frame hot path looks these up instead of
    /// recomputing `window_mean` for every pixel of every frame.
    bg_means: Vec<f64>,
}

impl BackgroundSubtractor {
    /// Builds the subtractor from the studio background frame.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidWindow`] when the window is even,
    /// zero, or larger than the background's smaller dimension.
    pub fn new(background: RgbImage, config: ExtractionConfig) -> Result<Self, ImagingError> {
        if config.window == 0 || config.window % 2 == 0 {
            return Err(ImagingError::InvalidWindow {
                size: config.window,
                requirement: "must be odd and non-zero",
            });
        }
        if config.window > background.width().min(background.height()) {
            return Err(ImagingError::InvalidWindow {
                size: config.window,
                requirement: "must not exceed image dimensions",
            });
        }
        let bg_integrals = channel_integrals(&background);
        let (w, h) = (background.width(), background.height());
        let mut bg_means = Vec::with_capacity(w * h * 3);
        for y in 0..h {
            for x in 0..w {
                for ii in &bg_integrals {
                    bg_means.push(ii.window_mean(x, y, config.window));
                }
            }
        }
        Ok(BackgroundSubtractor {
            config,
            width: w,
            height: h,
            bg_integrals,
            bg_means,
        })
    }

    /// The configuration this subtractor was built with.
    pub fn config(&self) -> ExtractionConfig {
        self.config
    }

    /// Dimensions of the background frame `(width, height)`.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Computes the normalised foreground matrix `R` of steps i–vii
    /// (before thresholding). Values are the shifted, clamped absolute
    /// difference sums.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::DimensionMismatch`] when `frame` does not
    /// match the background's shape.
    pub fn foreground_matrix(&self, frame: &RgbImage) -> Result<GrayImage, ImagingError> {
        let mut out = GrayImage::new(self.width, self.height);
        self.foreground_matrix_into(frame, &mut out, &mut ExtractScratch::new())?;
        Ok(out)
    }

    /// In-place variant of [`BackgroundSubtractor::foreground_matrix`]:
    /// writes `R` into `out` (resized as needed) and reuses the per-frame
    /// integral images and difference buffer held in `scratch`.
    /// Bit-identical to the allocating version.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::DimensionMismatch`] when `frame` does not
    /// match the background's shape.
    pub fn foreground_matrix_into(
        &self,
        frame: &RgbImage,
        out: &mut GrayImage,
        scratch: &mut ExtractScratch,
    ) -> Result<(), ImagingError> {
        let max_d = self.compute_diff(frame, scratch)?;

        // Steps v-vii: shift so max(D) = 255, clamp negatives to zero.
        // When the frame equals the background (max_d == 0) there is no
        // moving object; the paper's shift would lift everything to 255,
        // so we keep R at zero instead.
        out.reset(self.width, self.height);
        if max_d != 0.0 {
            let shift = max_d - 255.0;
            let pixels = out.as_mut_slice();
            for (i, &v) in scratch.diff.iter().enumerate() {
                pixels[i] = (v - shift).clamp(0.0, 255.0).round() as u8;
            }
        }
        Ok(())
    }

    /// Steps i-iv: fills `scratch.diff` with `D(i,j) = sum_k
    /// |A_ave(i,j,k) - B_ave(i,j,k)|` and returns `max(D)`.
    ///
    /// The frame-side window means come from sliding per-channel column
    /// sums: exact integer sums over the same clamped rectangle the
    /// integral image would produce, divided by the same pixel count, so
    /// every quotient is the bit-identical `f64` that
    /// [`IntegralImage::window_mean`] returns. The background-side means
    /// come from the table cached at construction.
    fn compute_diff(
        &self,
        frame: &RgbImage,
        scratch: &mut ExtractScratch,
    ) -> Result<f64, ImagingError> {
        if frame.dimensions() != (self.width, self.height) {
            return Err(ImagingError::DimensionMismatch {
                left: (self.width, self.height),
                right: frame.dimensions(),
            });
        }
        let (w, h) = (self.width, self.height);
        let r = self.config.window / 2;
        scratch.diff.clear();
        scratch.diff.resize(w * h, 0.0);
        scratch.col_sums.resize(3 * w, 0);
        let col = &mut scratch.col_sums;
        col.fill(0);

        let pixels = frame.as_slice();
        let add_row = |col: &mut [u32], row: usize| {
            for (x, px) in pixels[row * w..(row + 1) * w].iter().enumerate() {
                for k in 0..3 {
                    col[3 * x + k] += px.channel(k) as u32;
                }
            }
        };
        let sub_row = |col: &mut [u32], row: usize| {
            for (x, px) in pixels[row * w..(row + 1) * w].iter().enumerate() {
                for k in 0..3 {
                    col[3 * x + k] -= px.channel(k) as u32;
                }
            }
        };

        // Per-channel column sums over the clamped row window of y = 0.
        for row in 0..=r.min(h - 1) {
            add_row(col, row);
        }

        let mut max_d = 0.0f64;
        for y in 0..h {
            if y > 0 {
                // Slide the column sums down one row.
                if y + r < h {
                    add_row(col, y + r);
                }
                if y > r {
                    sub_row(col, y - r - 1);
                }
            }
            let y0 = y.saturating_sub(r);
            let y1 = (y + r).min(h - 1);

            // Running window sums across the row, clamped at the edges.
            let mut s = [0u32; 3];
            for x in 0..=r.min(w - 1) {
                for k in 0..3 {
                    s[k] += col[3 * x + k];
                }
            }
            let row_base = y * w;
            for x in 0..w {
                if x > 0 {
                    if x + r < w {
                        for k in 0..3 {
                            s[k] += col[3 * (x + r) + k];
                        }
                    }
                    if x > r {
                        for k in 0..3 {
                            s[k] -= col[3 * (x - r - 1) + k];
                        }
                    }
                }
                let x0 = x.saturating_sub(r);
                let x1 = (x + r).min(w - 1);
                let count = ((x1 - x0 + 1) * (y1 - y0 + 1)) as f64;
                let bg = &self.bg_means[(row_base + x) * 3..];
                let mut sum = 0.0;
                for k in 0..3 {
                    let a = s[k] as f64 / count;
                    sum += (a - bg[k]).abs();
                }
                if sum > max_d {
                    max_d = sum;
                }
                scratch.diff[row_base + x] = sum;
            }
        }
        Ok(max_d)
    }

    /// Row-parallel variant of
    /// [`BackgroundSubtractor::foreground_matrix_into`].
    ///
    /// The per-channel integral images are rebuilt serially (prefix sums
    /// are inherently sequential); the difference pass and the
    /// normalisation pass are split into horizontal bands over `pool`.
    /// The global maximum is the fold of the per-band maxima — maximum is
    /// a selection, not an arithmetic reduction, so the result is
    /// **bit-identical** to the serial variant at every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::DimensionMismatch`] when `frame` does not
    /// match the background's shape and [`ImagingError::Runtime`] when a
    /// worker panics.
    // slj-check: allow(perf/transitive-hot-path-alloc) — Registry::histogram allocates the metric-name key once per call, outside the pixel loops
    pub fn foreground_matrix_par_into(
        &self,
        frame: &RgbImage,
        out: &mut GrayImage,
        scratch: &mut ExtractScratch,
        pool: &ThreadPool,
    ) -> Result<(), ImagingError> {
        if frame.dimensions() != (self.width, self.height) {
            return Err(ImagingError::DimensionMismatch {
                left: (self.width, self.height),
                right: frame.dimensions(),
            });
        }
        let started = pool.registry().map(|_| slj_obs::Stopwatch::start());
        let frame_integrals = match scratch.frame_integrals.as_mut() {
            Some(integrals) => {
                for (k, ii) in integrals.iter_mut().enumerate() {
                    ii.rebuild_from_fn(self.width, self.height, |x, y| {
                        frame.get(x, y).channel(k) as u64
                    });
                }
                &*integrals
            }
            None => &*scratch.frame_integrals.insert(channel_integrals(frame)),
        };
        let n = self.config.window;
        let bands = band_ranges(self.height, pool.threads());

        // Steps i-iv in bands; each worker returns its band's maximum.
        scratch.diff.clear();
        scratch.diff.resize(self.width * self.height, 0.0);
        let chunks = split_row_bands(&mut scratch.diff, self.width, &bands);
        let band_maxes = pool.scoped_run(chunks, |_, (first_row, rows)| {
            let mut band_max = 0.0f64;
            for (dy, row) in rows.chunks_mut(self.width).enumerate() {
                let y = first_row + dy;
                for (x, px) in row.iter_mut().enumerate() {
                    let mut sum = 0.0;
                    for k in 0..3 {
                        let a = frame_integrals[k].window_mean(x, y, n);
                        let b = self.bg_integrals[k].window_mean(x, y, n);
                        sum += (a - b).abs();
                    }
                    if sum > band_max {
                        band_max = sum;
                    }
                    *px = sum;
                }
            }
            band_max
        })?;
        let max_d = band_maxes.into_iter().fold(0.0f64, f64::max);

        // Steps v-vii in bands (see the serial variant for the max_d == 0
        // special case).
        out.reset(self.width, self.height);
        if max_d != 0.0 {
            let shift = max_d - 255.0;
            let diff = &scratch.diff;
            let out_chunks = split_row_bands(out.as_mut_slice(), self.width, &bands);
            pool.scoped_run(out_chunks, |_, (first_row, rows)| {
                let offset = first_row * self.width;
                for (i, px) in rows.iter_mut().enumerate() {
                    *px = (diff[offset + i] - shift).clamp(0.0, 255.0).round() as u8;
                }
            })?;
        }
        if let (Some(registry), Some(started)) = (pool.registry(), started) {
            registry
                .histogram("imaging.foreground_matrix_par.ns")
                .record_duration(started.elapsed());
        }
        Ok(())
    }

    /// Runs the full extraction (steps i–viii): the silhouette mask `Obj`
    /// where `R(i, j) > Th_Object`.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::DimensionMismatch`] when `frame` does not
    /// match the background's shape.
    pub fn extract(&self, frame: &RgbImage) -> Result<BinaryImage, ImagingError> {
        let mut mask = BinaryImage::new(self.width, self.height);
        self.extract_into(frame, &mut mask, &mut ExtractScratch::new())?;
        Ok(mask)
    }

    /// In-place variant of [`BackgroundSubtractor::extract`]: writes the
    /// silhouette into `out` (resized as needed), reusing all intermediate
    /// buffers held in `scratch`. Bit-identical to the allocating version
    /// and to [`BackgroundSubtractor::extract_reference_into`].
    ///
    /// Subtraction, normalisation, thresholding, and bit-packing are fused:
    /// the normalised foreground matrix `R` is never materialised as a
    /// [`GrayImage`]. The fixed-threshold path normalises and compares in
    /// one pass straight into the mask words; the Otsu path normalises
    /// once into a byte buffer while histogramming, picks the threshold
    /// from the histogram, then packs.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::DimensionMismatch`] when `frame` does not
    /// match the background's shape.
    pub fn extract_into(
        &self,
        frame: &RgbImage,
        out: &mut BinaryImage,
        scratch: &mut ExtractScratch,
    ) -> Result<(), ImagingError> {
        let max_d = self.compute_diff(frame, scratch)?;
        out.reset(self.width, self.height);
        if max_d == 0.0 {
            // No moving object: R stays all-zero, and zero never exceeds
            // any threshold (fixed, or Otsu's degenerate 0), so the mask
            // is empty — exactly what the unfused path produces.
            return Ok(());
        }
        let shift = max_d - 255.0;
        let total = self.width * self.height;
        let diff = &scratch.diff;
        if self.config.auto_threshold {
            scratch.norm.resize(total, 0);
            let norm = &mut scratch.norm;
            let mut bins = [0u32; 256];
            for (nv, &v) in norm.iter_mut().zip(diff.iter()) {
                let b = (v - shift).clamp(0.0, 255.0).round() as u8;
                *nv = b;
                bins[b as usize] += 1;
            }
            let threshold = crate::threshold::otsu_from_histogram(
                &crate::threshold::Histogram::from_bins(bins),
            );
            for (wi, word) in out.words_mut().iter_mut().enumerate() {
                let base = wi * 64;
                let mut bits = 0u64;
                for b in 0..64.min(total - base) {
                    if norm[base + b] > threshold {
                        bits |= 1u64 << b;
                    }
                }
                *word = bits;
            }
        } else {
            let threshold = self.config.th_object;
            for (wi, word) in out.words_mut().iter_mut().enumerate() {
                let base = wi * 64;
                let mut bits = 0u64;
                for b in 0..64.min(total - base) {
                    let v = (diff[base + b] - shift).clamp(0.0, 255.0).round() as u8;
                    if v > threshold {
                        bits |= 1u64 << b;
                    }
                }
                *word = bits;
            }
        }
        Ok(())
    }

    /// Reference extraction: the pre-fusion pipeline — per-frame integral
    /// images, per-pixel `window_mean` calls against the background
    /// integrals, a materialised normalised matrix, and a scalar
    /// set-per-pixel threshold scan. Kept as the oracle
    /// [`BackgroundSubtractor::extract_into`] is tested against and as the
    /// "before" timing for the per-kernel section of `slj bench`.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::DimensionMismatch`] when `frame` does not
    /// match the background's shape.
    pub fn extract_reference_into(
        &self,
        frame: &RgbImage,
        out: &mut BinaryImage,
        scratch: &mut ExtractScratch,
    ) -> Result<(), ImagingError> {
        if frame.dimensions() != (self.width, self.height) {
            return Err(ImagingError::DimensionMismatch {
                left: (self.width, self.height),
                right: frame.dimensions(),
            });
        }
        let frame_integrals = match scratch.frame_integrals.as_mut() {
            Some(integrals) => {
                for (k, ii) in integrals.iter_mut().enumerate() {
                    ii.rebuild_from_fn(self.width, self.height, |x, y| {
                        frame.get(x, y).channel(k) as u64
                    });
                }
                &*integrals
            }
            None => &*scratch.frame_integrals.insert(channel_integrals(frame)),
        };
        let n = self.config.window;

        scratch.diff.clear();
        scratch.diff.resize(self.width * self.height, 0.0);
        let mut max_d = 0.0f64;
        for y in 0..self.height {
            for x in 0..self.width {
                let mut sum = 0.0;
                for k in 0..3 {
                    let a = frame_integrals[k].window_mean(x, y, n);
                    let b = self.bg_integrals[k].window_mean(x, y, n);
                    sum += (a - b).abs();
                }
                if sum > max_d {
                    max_d = sum;
                }
                scratch.diff[y * self.width + x] = sum;
            }
        }

        let mut matrix = scratch
            .matrix
            .take()
            .unwrap_or_else(|| GrayImage::new(1, 1));
        matrix.reset(self.width, self.height);
        if max_d != 0.0 {
            let shift = max_d - 255.0;
            let pixels = matrix.as_mut_slice();
            for (i, &v) in scratch.diff.iter().enumerate() {
                pixels[i] = (v - shift).clamp(0.0, 255.0).round() as u8;
            }
        }
        let threshold = if self.config.auto_threshold {
            crate::threshold::otsu_threshold(&matrix)
        } else {
            self.config.th_object
        };
        out.reset(self.width, self.height);
        for (x, y, v) in matrix.enumerate_pixels() {
            if v > threshold {
                out.set(x, y, true);
            }
        }
        scratch.matrix = Some(matrix);
        Ok(())
    }
}

/// Reusable working storage for the `_into` variants of
/// [`BackgroundSubtractor`]: the per-frame channel integral images, the
/// raw difference matrix and the normalised foreground matrix.
///
/// Holding one of these across frames means per-frame extraction does no
/// buffer allocation in steady state.
#[derive(Debug, Clone, Default)]
pub struct ExtractScratch {
    /// Per-frame channel integral images (parallel and reference paths;
    /// the fused serial path uses `col_sums` instead).
    frame_integrals: Option<[IntegralImage; 3]>,
    diff: Vec<f64>,
    /// Normalised matrix buffer for the reference path.
    matrix: Option<GrayImage>,
    /// Interleaved per-channel sliding column sums of the fused path.
    col_sums: Vec<u32>,
    /// Normalised bytes of the fused Otsu path.
    norm: Vec<u8>,
}

impl ExtractScratch {
    /// Creates empty scratch storage; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

fn channel_integrals(img: &RgbImage) -> [IntegralImage; 3] {
    [0, 1, 2].map(|k| {
        IntegralImage::from_fn(img.width(), img.height(), |x, y| {
            img.get(x, y).channel(k) as u64
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::Rgb;

    fn scene() -> (RgbImage, RgbImage) {
        let background = RgbImage::from_fn(20, 20, |x, y| Rgb::gray(((x + y) % 7) as u8));
        let mut frame = background.clone();
        for y in 5..15 {
            for x in 8..12 {
                frame.set(x, y, Rgb::new(180, 170, 160));
            }
        }
        (background, frame)
    }

    #[test]
    fn extracts_bright_object_on_dark_background() {
        let (bg, frame) = scene();
        let sub = BackgroundSubtractor::new(bg, ExtractionConfig::default()).unwrap();
        let mask = sub.extract(&frame).unwrap();
        assert!(mask.get(9, 10), "object interior should be foreground");
        assert!(!mask.get(2, 2), "far background should be clear");
        let bb = mask.bounding_box().unwrap();
        // Object occupies x in [8,12), y in [5,15); smoothing may grow it
        // by at most the window radius.
        assert!(bb.0 >= 6 && bb.2 <= 13, "bbox x range {bb:?}");
        assert!(bb.1 >= 3 && bb.3 <= 16, "bbox y range {bb:?}");
    }

    #[test]
    fn identical_frame_yields_empty_mask() {
        let (bg, _) = scene();
        let sub = BackgroundSubtractor::new(bg.clone(), ExtractionConfig::default()).unwrap();
        let mask = sub.extract(&bg).unwrap();
        assert!(mask.is_empty());
    }

    #[test]
    fn foreground_matrix_max_is_255() {
        let (bg, frame) = scene();
        let sub = BackgroundSubtractor::new(bg, ExtractionConfig::default()).unwrap();
        let r = sub.foreground_matrix(&frame).unwrap();
        assert_eq!(*r.iter().max().unwrap(), 255);
    }

    #[test]
    fn rejects_even_window() {
        let bg = RgbImage::new(8, 8);
        let err = BackgroundSubtractor::new(
            bg,
            ExtractionConfig {
                window: 4,
                th_object: 20,
                auto_threshold: false,
            },
        )
        .unwrap_err();
        assert!(matches!(err, ImagingError::InvalidWindow { .. }));
    }

    #[test]
    fn rejects_oversized_window() {
        let bg = RgbImage::new(8, 8);
        let err = BackgroundSubtractor::new(
            bg,
            ExtractionConfig {
                window: 9,
                th_object: 20,
                auto_threshold: false,
            },
        )
        .unwrap_err();
        assert!(matches!(err, ImagingError::InvalidWindow { .. }));
    }

    #[test]
    fn rejects_mismatched_frame() {
        let (bg, _) = scene();
        let sub = BackgroundSubtractor::new(bg, ExtractionConfig::default()).unwrap();
        let wrong = RgbImage::new(5, 5);
        assert!(matches!(
            sub.extract(&wrong),
            Err(ImagingError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn higher_threshold_shrinks_mask() {
        let (bg, frame) = scene();
        let low = BackgroundSubtractor::new(bg.clone(), ExtractionConfig::default()).unwrap();
        let high = BackgroundSubtractor::new(
            bg,
            ExtractionConfig {
                window: 3,
                th_object: 200,
                auto_threshold: false,
            },
        )
        .unwrap();
        let low_count = low.extract(&frame).unwrap().count_ones();
        let high_count = high.extract(&frame).unwrap().count_ones();
        assert!(high_count <= low_count);
        assert!(low_count > 0);
    }

    #[test]
    fn into_variants_match_allocating_versions() {
        let (bg, frame) = scene();
        let sub = BackgroundSubtractor::new(bg.clone(), ExtractionConfig::default()).unwrap();
        let mut scratch = ExtractScratch::new();
        let mut mask = BinaryImage::new(1, 1);
        let mut matrix = GrayImage::new(1, 1);
        // Run twice so the second pass exercises the buffer-reuse path.
        for pass in 0..2 {
            for f in [&frame, &bg] {
                sub.foreground_matrix_into(f, &mut matrix, &mut scratch)
                    .unwrap();
                assert_eq!(matrix, sub.foreground_matrix(f).unwrap(), "pass {pass}");
                sub.extract_into(f, &mut mask, &mut scratch).unwrap();
                assert_eq!(mask, sub.extract(f).unwrap(), "pass {pass}");
            }
        }
    }

    #[test]
    fn par_foreground_matrix_matches_serial() {
        let (bg, frame) = scene();
        let sub = BackgroundSubtractor::new(bg.clone(), ExtractionConfig::default()).unwrap();
        let mut scratch = ExtractScratch::new();
        let mut out = GrayImage::new(1, 1);
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::fixed(threads);
            for f in [&frame, &bg] {
                let expected = sub.foreground_matrix(f).unwrap();
                sub.foreground_matrix_par_into(f, &mut out, &mut scratch, &pool)
                    .unwrap();
                assert_eq!(out, expected, "threads {threads}");
            }
        }
        let wrong = RgbImage::new(5, 5);
        let pool = ThreadPool::fixed(2);
        assert!(sub
            .foreground_matrix_par_into(&wrong, &mut out, &mut scratch, &pool)
            .is_err());
    }

    #[test]
    fn into_variant_rejects_mismatched_frame_and_keeps_scratch() {
        let (bg, frame) = scene();
        let sub = BackgroundSubtractor::new(bg, ExtractionConfig::default()).unwrap();
        let mut scratch = ExtractScratch::new();
        let mut mask = BinaryImage::new(1, 1);
        let wrong = RgbImage::new(5, 5);
        assert!(sub.extract_into(&wrong, &mut mask, &mut scratch).is_err());
        // Scratch must still be usable after an error.
        sub.extract_into(&frame, &mut mask, &mut scratch).unwrap();
        assert_eq!(mask, sub.extract(&frame).unwrap());
    }

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    #[test]
    fn fused_extract_matches_reference_on_random_frames() {
        let mut state = 0xB0A1_2026_0808u64;
        for (w, h) in [
            (1usize, 1usize),
            (5, 1),
            (1, 9),
            (20, 20),
            (67, 13),
            (64, 9),
        ] {
            let bg = RgbImage::from_fn(w, h, |x, y| {
                let _ = (x, y);
                let v = lcg(&mut state);
                Rgb::new(v as u8, (v >> 8) as u8, (v >> 16) as u8)
            });
            for window in [1usize, 3, 5] {
                if window > w.min(h) {
                    continue;
                }
                for auto_threshold in [false, true] {
                    let sub = BackgroundSubtractor::new(
                        bg.clone(),
                        ExtractionConfig {
                            window,
                            th_object: 20,
                            auto_threshold,
                        },
                    )
                    .unwrap();
                    let mut scratch = ExtractScratch::new();
                    let mut fused = BinaryImage::new(1, 1);
                    let mut reference = BinaryImage::new(1, 1);
                    for _ in 0..3 {
                        let frame = RgbImage::from_fn(w, h, |x, y| {
                            let _ = (x, y);
                            let v = lcg(&mut state);
                            Rgb::new(v as u8, (v >> 8) as u8, (v >> 16) as u8)
                        });
                        sub.extract_into(&frame, &mut fused, &mut scratch).unwrap();
                        sub.extract_reference_into(&frame, &mut reference, &mut scratch)
                            .unwrap();
                        assert_eq!(
                            fused, reference,
                            "{w}x{h} window {window} auto {auto_threshold}"
                        );
                    }
                    // The identical frame must also agree (max_d == 0 path).
                    sub.extract_into(&bg, &mut fused, &mut scratch).unwrap();
                    sub.extract_reference_into(&bg, &mut reference, &mut scratch)
                        .unwrap();
                    assert_eq!(fused, reference);
                    assert!(fused.is_empty());
                }
            }
        }
    }

    #[test]
    fn fused_extract_matches_reference_on_scene() {
        let (bg, frame) = scene();
        for auto_threshold in [false, true] {
            let sub = BackgroundSubtractor::new(
                bg.clone(),
                ExtractionConfig {
                    window: 3,
                    th_object: 20,
                    auto_threshold,
                },
            )
            .unwrap();
            let mut scratch = ExtractScratch::new();
            let mut fused = BinaryImage::new(1, 1);
            let mut reference = BinaryImage::new(1, 1);
            sub.extract_into(&frame, &mut fused, &mut scratch).unwrap();
            sub.extract_reference_into(&frame, &mut reference, &mut scratch)
                .unwrap();
            assert_eq!(fused, reference, "auto {auto_threshold}");
            assert!(!fused.is_empty());
        }
    }

    #[test]
    fn sensor_noise_below_threshold_is_suppressed() {
        // Tiny per-pixel wobble must not survive Th_Object = 20 once an
        // actual object sets the normalisation scale.
        let bg = RgbImage::filled(16, 16, Rgb::gray(10));
        let mut frame = bg.clone();
        for (i, y) in (0..16).enumerate() {
            frame.set(0, y, Rgb::gray(10 + (i % 2) as u8 * 3));
        }
        for y in 4..12 {
            for x in 6..10 {
                frame.set(x, y, Rgb::gray(250));
            }
        }
        let sub = BackgroundSubtractor::new(bg, ExtractionConfig::default()).unwrap();
        let mask = sub.extract(&frame).unwrap();
        assert!(!mask.get(0, 8), "noise pixel must not be foreground");
        assert!(mask.get(7, 8));
    }
}
