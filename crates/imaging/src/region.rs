//! Connected-component labelling and region statistics.
//!
//! After thresholding, the extracted foreground may contain stray blobs
//! (lighting flicker, shadows). The pipeline keeps only the largest
//! component — the jumper — before thinning, which is what
//! [`largest_component`] provides.

use crate::binary::{BinaryImage, NEIGHBORS4, NEIGHBORS8};
use crate::morphology::Connectivity;
use std::collections::VecDeque;

/// A connected component of a binary mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Component label (1-based, in discovery order).
    pub label: u32,
    /// Number of pixels in the component.
    pub area: usize,
    /// Inclusive bounding box `(min_x, min_y, max_x, max_y)`.
    pub bbox: (usize, usize, usize, usize),
    /// Pixel coordinates of the component, row-major discovery order.
    pub pixels: Vec<(usize, usize)>,
}

impl Region {
    /// Centroid of the component `(x, y)`.
    pub fn centroid(&self) -> (f64, f64) {
        let n = self.pixels.len() as f64;
        let (sx, sy) = self.pixels.iter().fold((0.0, 0.0), |(ax, ay), &(x, y)| {
            (ax + x as f64, ay + y as f64)
        });
        (sx / n, sy / n)
    }

    /// Renders the component alone into a mask of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any component pixel falls outside `width × height`.
    pub fn to_mask(&self, width: usize, height: usize) -> BinaryImage {
        let mut out = BinaryImage::new(width, height);
        for &(x, y) in &self.pixels {
            out.set(x, y, true);
        }
        out
    }
}

/// Labels all connected components of `img` under the given connectivity,
/// returned in discovery (row-major) order.
pub fn connected_components(img: &BinaryImage, conn: Connectivity) -> Vec<Region> {
    let offsets: &[(isize, isize)] = match conn {
        Connectivity::Four => &NEIGHBORS4,
        Connectivity::Eight => &NEIGHBORS8,
    };
    let (w, h) = img.dimensions();
    let mut visited = BinaryImage::new(w, h);
    let mut regions = Vec::new();
    let mut queue = VecDeque::new();
    for y in 0..h {
        for x in 0..w {
            if !img.get(x, y) || visited.get(x, y) {
                continue;
            }
            let label = regions.len() as u32 + 1;
            let mut pixels = Vec::new();
            let mut bbox = (x, y, x, y);
            visited.set(x, y, true);
            queue.push_back((x, y));
            while let Some((cx, cy)) = queue.pop_front() {
                pixels.push((cx, cy));
                bbox = (
                    bbox.0.min(cx),
                    bbox.1.min(cy),
                    bbox.2.max(cx),
                    bbox.3.max(cy),
                );
                for &(dx, dy) in offsets {
                    let (nx, ny) = (cx as isize + dx, cy as isize + dy);
                    if img.in_bounds(nx, ny) {
                        let (nx, ny) = (nx as usize, ny as usize);
                        if img.get(nx, ny) && !visited.get(nx, ny) {
                            visited.set(nx, ny, true);
                            queue.push_back((nx, ny));
                        }
                    }
                }
            }
            regions.push(Region {
                label,
                area: pixels.len(),
                bbox,
                pixels,
            });
        }
    }
    regions
}

/// Returns the largest connected component as a standalone mask, or `None`
/// when the image is empty. Ties break toward the earlier (row-major
/// first) component.
pub fn largest_component(img: &BinaryImage, conn: Connectivity) -> Option<BinaryImage> {
    let regions = connected_components(img, conn);
    let best = regions.iter().max_by(|a, b| {
        a.area.cmp(&b.area).then(b.label.cmp(&a.label)) // prefer smaller label on ties
    })?;
    Some(best.to_mask(img.width(), img.height()))
}

/// Returns the largest connected component, or an all-clear mask of the
/// same dimensions when the image has no foreground at all. This is the
/// pipeline's empty-silhouette fallback (e.g. frames before the jumper
/// enters the scene), shared so every caller degrades identically.
pub fn largest_component_or_empty(img: &BinaryImage, conn: Connectivity) -> BinaryImage {
    largest_component(img, conn).unwrap_or_else(|| BinaryImage::new(img.width(), img.height()))
}

/// Reusable working storage for [`largest_component_into`]: the label map,
/// the BFS queue and the per-component area table.
///
/// Holding one of these across frames means per-frame component labelling
/// does no buffer allocation in steady state.
#[derive(Debug, Clone, Default)]
pub struct LabelScratch {
    labels: Vec<u32>,
    queue: VecDeque<usize>,
    areas: Vec<usize>,
}

impl LabelScratch {
    /// Creates empty scratch storage; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// In-place variant of [`largest_component_or_empty`]: writes the largest
/// component (or an all-clear mask when there is none) into `out`, reusing
/// the labelling storage in `scratch`. Returns `true` when a component was
/// found. Bit-identical to the allocating version, including the
/// earlier-component tie-break.
pub fn largest_component_into(
    img: &BinaryImage,
    conn: Connectivity,
    out: &mut BinaryImage,
    scratch: &mut LabelScratch,
) -> bool {
    let offsets: &[(isize, isize)] = match conn {
        Connectivity::Four => &NEIGHBORS4,
        Connectivity::Eight => &NEIGHBORS8,
    };
    let (w, h) = img.dimensions();
    scratch.labels.clear();
    scratch.labels.resize(w * h, 0);
    scratch.areas.clear();
    scratch.queue.clear();
    for y in 0..h {
        for x in 0..w {
            if !img.get(x, y) || scratch.labels[y * w + x] != 0 {
                continue;
            }
            let label = scratch.areas.len() as u32 + 1;
            let mut area = 0usize;
            scratch.labels[y * w + x] = label;
            scratch.queue.push_back(y * w + x);
            while let Some(i) = scratch.queue.pop_front() {
                area += 1;
                let (cx, cy) = (i % w, i / w);
                for &(dx, dy) in offsets {
                    let (nx, ny) = (cx as isize + dx, cy as isize + dy);
                    if img.in_bounds(nx, ny) {
                        let (nx, ny) = (nx as usize, ny as usize);
                        let ni = ny * w + nx;
                        if img.get(nx, ny) && scratch.labels[ni] == 0 {
                            scratch.labels[ni] = label;
                            scratch.queue.push_back(ni);
                        }
                    }
                }
            }
            scratch.areas.push(area);
        }
    }
    out.reset(w, h);
    // Strictly-greater scan in discovery order keeps the earliest label on
    // area ties, matching `largest_component`.
    let mut best: Option<(usize, u32)> = None;
    for (k, &area) in scratch.areas.iter().enumerate() {
        if best.is_none_or(|(best_area, _)| area > best_area) {
            best = Some((area, k as u32 + 1));
        }
    }
    let Some((_, best_label)) = best else {
        return false;
    };
    for i in 0..w * h {
        if scratch.labels[i] == best_label {
            out.set(i % w, i / w, true);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_components_four_vs_eight() {
        // Two blobs touching only diagonally.
        let img = BinaryImage::from_ascii(
            "##...\n\
             ##...\n\
             ..##.\n\
             ..##.\n",
        );
        assert_eq!(connected_components(&img, Connectivity::Four).len(), 2);
        assert_eq!(connected_components(&img, Connectivity::Eight).len(), 1);
    }

    #[test]
    fn empty_image_has_no_components() {
        let img = BinaryImage::new(4, 4);
        assert!(connected_components(&img, Connectivity::Eight).is_empty());
        assert!(largest_component(&img, Connectivity::Eight).is_none());
    }

    #[test]
    fn region_statistics() {
        let img = BinaryImage::from_ascii(
            ".....\n\
             .###.\n\
             .###.\n\
             .....\n",
        );
        let regions = connected_components(&img, Connectivity::Four);
        assert_eq!(regions.len(), 1);
        let r = &regions[0];
        assert_eq!(r.area, 6);
        assert_eq!(r.bbox, (1, 1, 3, 2));
        let (cx, cy) = r.centroid();
        assert!((cx - 2.0).abs() < 1e-9);
        assert!((cy - 1.5).abs() < 1e-9);
    }

    #[test]
    fn largest_component_picks_biggest() {
        let img = BinaryImage::from_ascii(
            "#..####\n\
             #..####\n\
             .......\n\
             ##.....\n",
        );
        let largest = largest_component(&img, Connectivity::Four).unwrap();
        assert_eq!(largest.count_ones(), 8);
        assert!(largest.get(3, 0));
        assert!(!largest.get(0, 0));
        assert!(!largest.get(0, 3));
    }

    #[test]
    fn largest_component_tie_breaks_to_first() {
        let img = BinaryImage::from_ascii("##..##\n");
        let largest = largest_component(&img, Connectivity::Four).unwrap();
        assert!(largest.get(0, 0), "earlier component wins ties");
        assert!(!largest.get(4, 0));
    }

    #[test]
    fn labels_are_one_based_in_order() {
        let img = BinaryImage::from_ascii("#.#\n");
        let regions = connected_components(&img, Connectivity::Four);
        assert_eq!(regions[0].label, 1);
        assert_eq!(regions[1].label, 2);
        assert_eq!(regions[0].pixels, vec![(0, 0)]);
    }

    #[test]
    fn or_empty_falls_back_to_blank_mask() {
        let img = BinaryImage::new(5, 4);
        let out = largest_component_or_empty(&img, Connectivity::Eight);
        assert_eq!(out.dimensions(), (5, 4));
        assert!(out.is_empty());
        let img = BinaryImage::from_ascii("##.\n");
        let out = largest_component_or_empty(&img, Connectivity::Eight);
        assert_eq!(out.count_ones(), 2);
    }

    #[test]
    fn into_variant_matches_allocating_version() {
        let imgs = [
            BinaryImage::from_ascii(
                "#..####\n\
                 #..####\n\
                 .......\n\
                 ##.....\n",
            ),
            BinaryImage::from_ascii("##..##\n"), // area tie: earlier wins
            BinaryImage::from_ascii(
                "##...\n\
                 ##...\n\
                 ..##.\n\
                 ..##.\n",
            ),
            BinaryImage::new(6, 3),
        ];
        let mut out = BinaryImage::new(1, 1);
        let mut scratch = LabelScratch::new();
        for img in &imgs {
            for conn in [Connectivity::Four, Connectivity::Eight] {
                let expected = largest_component_or_empty(img, conn);
                let found = largest_component_into(img, conn, &mut out, &mut scratch);
                assert_eq!(out, expected, "{conn:?}\n{}", img.to_ascii());
                assert_eq!(found, largest_component(img, conn).is_some());
            }
        }
    }

    #[test]
    fn to_mask_round_trip() {
        let img = BinaryImage::from_ascii(
            ".#.\n\
             ###\n",
        );
        let regions = connected_components(&img, Connectivity::Eight);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].to_mask(3, 2), img);
    }
}
