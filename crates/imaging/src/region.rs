//! Connected-component labelling and region statistics.
//!
//! After thresholding, the extracted foreground may contain stray blobs
//! (lighting flicker, shadows). The pipeline keeps only the largest
//! component — the jumper — before thinning, which is what
//! [`largest_component`] provides.

use crate::binary::{BinaryImage, NEIGHBORS4, NEIGHBORS8};
use crate::morphology::Connectivity;
use std::collections::VecDeque;

/// A connected component of a binary mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Component label (1-based, in discovery order).
    pub label: u32,
    /// Number of pixels in the component.
    pub area: usize,
    /// Inclusive bounding box `(min_x, min_y, max_x, max_y)`.
    pub bbox: (usize, usize, usize, usize),
    /// Pixel coordinates of the component, row-major discovery order.
    pub pixels: Vec<(usize, usize)>,
}

impl Region {
    /// Centroid of the component `(x, y)`.
    pub fn centroid(&self) -> (f64, f64) {
        let n = self.pixels.len() as f64;
        let (sx, sy) = self.pixels.iter().fold((0.0, 0.0), |(ax, ay), &(x, y)| {
            (ax + x as f64, ay + y as f64)
        });
        (sx / n, sy / n)
    }

    /// Renders the component alone into a mask of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any component pixel falls outside `width × height`.
    pub fn to_mask(&self, width: usize, height: usize) -> BinaryImage {
        let mut out = BinaryImage::new(width, height);
        for &(x, y) in &self.pixels {
            out.set(x, y, true);
        }
        out
    }
}

/// Labels all connected components of `img` under the given connectivity,
/// returned in discovery (row-major) order.
pub fn connected_components(img: &BinaryImage, conn: Connectivity) -> Vec<Region> {
    let offsets: &[(isize, isize)] = match conn {
        Connectivity::Four => &NEIGHBORS4,
        Connectivity::Eight => &NEIGHBORS8,
    };
    let (w, h) = img.dimensions();
    let mut visited = BinaryImage::new(w, h);
    let mut regions = Vec::new();
    let mut queue = VecDeque::new();
    for y in 0..h {
        for x in 0..w {
            if !img.get(x, y) || visited.get(x, y) {
                continue;
            }
            let label = regions.len() as u32 + 1;
            let mut pixels = Vec::new();
            let mut bbox = (x, y, x, y);
            visited.set(x, y, true);
            queue.push_back((x, y));
            while let Some((cx, cy)) = queue.pop_front() {
                pixels.push((cx, cy));
                bbox = (
                    bbox.0.min(cx),
                    bbox.1.min(cy),
                    bbox.2.max(cx),
                    bbox.3.max(cy),
                );
                for &(dx, dy) in offsets {
                    let (nx, ny) = (cx as isize + dx, cy as isize + dy);
                    if img.in_bounds(nx, ny) {
                        let (nx, ny) = (nx as usize, ny as usize);
                        if img.get(nx, ny) && !visited.get(nx, ny) {
                            visited.set(nx, ny, true);
                            queue.push_back((nx, ny));
                        }
                    }
                }
            }
            regions.push(Region {
                label,
                area: pixels.len(),
                bbox,
                pixels,
            });
        }
    }
    regions
}

/// Returns the largest connected component as a standalone mask, or `None`
/// when the image is empty. Ties break toward the earlier (row-major
/// first) component.
pub fn largest_component(img: &BinaryImage, conn: Connectivity) -> Option<BinaryImage> {
    let regions = connected_components(img, conn);
    let best = regions.iter().max_by(|a, b| {
        a.area.cmp(&b.area).then(b.label.cmp(&a.label)) // prefer smaller label on ties
    })?;
    Some(best.to_mask(img.width(), img.height()))
}

/// Returns the largest connected component, or an all-clear mask of the
/// same dimensions when the image has no foreground at all. This is the
/// pipeline's empty-silhouette fallback (e.g. frames before the jumper
/// enters the scene), shared so every caller degrades identically.
pub fn largest_component_or_empty(img: &BinaryImage, conn: Connectivity) -> BinaryImage {
    largest_component(img, conn).unwrap_or_else(|| BinaryImage::new(img.width(), img.height()))
}

/// Reusable working storage for [`largest_component_into`]: the row-bit
/// buffer, run table and union-find forest of the run-based labeller,
/// plus the label map, BFS queue and area table of the retained
/// pixel-BFS reference.
///
/// Holding one of these across frames means per-frame component labelling
/// does no buffer allocation in steady state.
#[derive(Debug, Clone, Default)]
pub struct LabelScratch {
    labels: Vec<u32>,
    queue: VecDeque<usize>,
    areas: Vec<usize>,
    row: Vec<u64>,
    runs: Vec<(u32, u32, u32)>,
    parent: Vec<u32>,
}

impl LabelScratch {
    /// Creates empty scratch storage; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Union-find root lookup with path halving.
fn find(parent: &mut [u32], mut i: u32) -> u32 {
    while parent[i as usize] != i {
        parent[i as usize] = parent[parent[i as usize] as usize];
        i = parent[i as usize];
    }
    i
}

/// Unites two run labels, keeping the smaller root. Roots therefore stay
/// the minimum label of their component, which is what preserves the
/// reference's earlier-component-wins tie-break (labels are assigned in
/// row-major run order, so a component's minimum label orders exactly
/// like its first pixel in a row-major scan).
fn union(parent: &mut [u32], a: u32, b: u32) {
    let ra = find(parent, a);
    let rb = find(parent, b);
    if ra != rb {
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        parent[hi as usize] = lo;
    }
}

/// In-place variant of [`largest_component_or_empty`]: writes the largest
/// component (or an all-clear mask when there is none) into `out`, reusing
/// the labelling storage in `scratch`. Returns `true` when a component was
/// found. Bit-identical to the allocating version, including the
/// earlier-component tie-break.
///
/// Runs a run-based union-find labeller over the mask's backing words
/// instead of a per-pixel BFS: each row is decoded into maximal
/// horizontal runs with word-level bit scans, runs are united with the
/// overlapping runs of the previous row, and the winning component is
/// written back with word-level fills. The retained pixel-BFS oracle is
/// [`largest_component_into_reference`].
pub fn largest_component_into(
    img: &BinaryImage,
    conn: Connectivity,
    out: &mut BinaryImage,
    scratch: &mut LabelScratch,
) -> bool {
    let eight = matches!(conn, Connectivity::Eight);
    let (w, h) = img.dimensions();
    let words = img.words();
    let row_words = w.div_ceil(64);
    scratch.row.clear();
    scratch.row.resize(row_words, 0);
    scratch.runs.clear();
    scratch.parent.clear();

    // Pass 1: decode rows into runs, uniting each run with the runs it
    // touches in the previous row. `pad` widens the overlap test by one
    // pixel for diagonal (8-connected) adjacency.
    let pad = u32::from(eight);
    let (mut prev_lo, mut prev_hi) = (0usize, 0usize);
    for y in 0..h {
        let start_bit = y * w;
        for (k, slot) in scratch.row.iter_mut().enumerate() {
            // Rows are not word-aligned (bit i = y*w + x in one stream),
            // so each row word is stitched from up to two backing words.
            let bit = start_bit + k * 64;
            let (wi, sh) = (bit / 64, bit % 64);
            let mut v = words[wi] >> sh;
            if sh != 0 && wi + 1 < words.len() {
                v |= words[wi + 1] << (64 - sh);
            }
            *slot = v;
        }
        let used = w - (row_words - 1) * 64;
        if used < 64 {
            scratch.row[row_words - 1] &= u64::MAX >> (64 - used);
        }

        let row_lo = scratch.runs.len();
        let mut x = 0usize;
        while x < w {
            let (wi, sh) = (x / 64, x % 64);
            let v = scratch.row[wi] >> sh;
            if v == 0 {
                x = (wi + 1) * 64;
                continue;
            }
            x += v.trailing_zeros() as usize;
            let start = x;
            loop {
                let (wi, sh) = (x / 64, x % 64);
                let inv = !(scratch.row[wi] >> sh);
                if inv == 0 {
                    // Run continues to the end of this row word.
                    x = (wi + 1) * 64;
                    if x >= w {
                        x = w;
                        break;
                    }
                    continue;
                }
                x += inv.trailing_zeros() as usize;
                if x >= (wi + 1) * 64 && x < w {
                    // The shift fills the top with zeros, so hitting the
                    // word boundary only means "check the next word".
                    continue;
                }
                x = x.min(w);
                break;
            }
            let label = scratch.parent.len() as u32;
            scratch.parent.push(label);
            scratch.runs.push((start as u32, x as u32, y as u32));
        }
        let row_hi = scratch.runs.len();

        let mut pi = prev_lo;
        for ci in row_lo..row_hi {
            let (s, e, _) = scratch.runs[ci];
            // Runs in a row are disjoint and sorted, so a previous-row run
            // ending before this run can never touch a later one either.
            while pi < prev_hi && scratch.runs[pi].1 + pad <= s {
                pi += 1;
            }
            let mut pj = pi;
            while pj < prev_hi && scratch.runs[pj].0 < e + pad {
                union(&mut scratch.parent, ci as u32, pj as u32);
                pj += 1;
            }
        }
        (prev_lo, prev_hi) = (row_lo, row_hi);
    }

    // Component areas accumulate at each root; the strictly-greater scan
    // over increasing root labels keeps the earliest component on ties.
    scratch.areas.clear();
    scratch.areas.resize(scratch.parent.len(), 0);
    for i in 0..scratch.runs.len() {
        let (s, e, _) = scratch.runs[i];
        let root = find(&mut scratch.parent, i as u32);
        scratch.areas[root as usize] += (e - s) as usize;
    }
    out.reset(w, h);
    let mut best: Option<(usize, u32)> = None;
    for (r, &area) in scratch.areas.iter().enumerate() {
        if scratch.parent[r] == r as u32 && best.is_none_or(|(best_area, _)| area > best_area) {
            best = Some((area, r as u32));
        }
    }
    let Some((_, best_root)) = best else {
        return false;
    };

    // Pass 2: word-level fill of the winning component's runs.
    let out_words = out.words_mut();
    for i in 0..scratch.runs.len() {
        if find(&mut scratch.parent, i as u32) != best_root {
            continue;
        }
        let (s, e, y) = scratch.runs[i];
        let lo = y as usize * w + s as usize;
        let hi = y as usize * w + e as usize;
        let (w0, b0) = (lo / 64, lo % 64);
        let (w1, b1) = (hi / 64, hi % 64);
        if w0 == w1 {
            out_words[w0] |= ((1u64 << (b1 - b0)) - 1) << b0;
        } else {
            out_words[w0] |= u64::MAX << b0;
            for word in &mut out_words[w0 + 1..w1] {
                *word = u64::MAX;
            }
            if b1 > 0 {
                out_words[w1] |= u64::MAX >> (64 - b1);
            }
        }
    }
    true
}

/// Retained pixel-BFS oracle for [`largest_component_into`]: labels every
/// pixel with a breadth-first flood fill and renders the largest
/// component. Kept as the parity reference for the run-based rewrite.
pub fn largest_component_into_reference(
    img: &BinaryImage,
    conn: Connectivity,
    out: &mut BinaryImage,
    scratch: &mut LabelScratch,
) -> bool {
    let offsets: &[(isize, isize)] = match conn {
        Connectivity::Four => &NEIGHBORS4,
        Connectivity::Eight => &NEIGHBORS8,
    };
    let (w, h) = img.dimensions();
    scratch.labels.clear();
    scratch.labels.resize(w * h, 0);
    scratch.areas.clear();
    scratch.queue.clear();
    for y in 0..h {
        for x in 0..w {
            if !img.get(x, y) || scratch.labels[y * w + x] != 0 {
                continue;
            }
            let label = scratch.areas.len() as u32 + 1;
            let mut area = 0usize;
            scratch.labels[y * w + x] = label;
            scratch.queue.push_back(y * w + x);
            while let Some(i) = scratch.queue.pop_front() {
                area += 1;
                let (cx, cy) = (i % w, i / w);
                for &(dx, dy) in offsets {
                    let (nx, ny) = (cx as isize + dx, cy as isize + dy);
                    if img.in_bounds(nx, ny) {
                        let (nx, ny) = (nx as usize, ny as usize);
                        let ni = ny * w + nx;
                        if img.get(nx, ny) && scratch.labels[ni] == 0 {
                            scratch.labels[ni] = label;
                            scratch.queue.push_back(ni);
                        }
                    }
                }
            }
            scratch.areas.push(area);
        }
    }
    out.reset(w, h);
    // Strictly-greater scan in discovery order keeps the earliest label on
    // area ties, matching `largest_component`.
    let mut best: Option<(usize, u32)> = None;
    for (k, &area) in scratch.areas.iter().enumerate() {
        if best.is_none_or(|(best_area, _)| area > best_area) {
            best = Some((area, k as u32 + 1));
        }
    }
    let Some((_, best_label)) = best else {
        return false;
    };
    for i in 0..w * h {
        if scratch.labels[i] == best_label {
            out.set(i % w, i / w, true);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_components_four_vs_eight() {
        // Two blobs touching only diagonally.
        let img = BinaryImage::from_ascii(
            "##...\n\
             ##...\n\
             ..##.\n\
             ..##.\n",
        );
        assert_eq!(connected_components(&img, Connectivity::Four).len(), 2);
        assert_eq!(connected_components(&img, Connectivity::Eight).len(), 1);
    }

    #[test]
    fn empty_image_has_no_components() {
        let img = BinaryImage::new(4, 4);
        assert!(connected_components(&img, Connectivity::Eight).is_empty());
        assert!(largest_component(&img, Connectivity::Eight).is_none());
    }

    #[test]
    fn region_statistics() {
        let img = BinaryImage::from_ascii(
            ".....\n\
             .###.\n\
             .###.\n\
             .....\n",
        );
        let regions = connected_components(&img, Connectivity::Four);
        assert_eq!(regions.len(), 1);
        let r = &regions[0];
        assert_eq!(r.area, 6);
        assert_eq!(r.bbox, (1, 1, 3, 2));
        let (cx, cy) = r.centroid();
        assert!((cx - 2.0).abs() < 1e-9);
        assert!((cy - 1.5).abs() < 1e-9);
    }

    #[test]
    fn largest_component_picks_biggest() {
        let img = BinaryImage::from_ascii(
            "#..####\n\
             #..####\n\
             .......\n\
             ##.....\n",
        );
        let largest = largest_component(&img, Connectivity::Four).unwrap();
        assert_eq!(largest.count_ones(), 8);
        assert!(largest.get(3, 0));
        assert!(!largest.get(0, 0));
        assert!(!largest.get(0, 3));
    }

    #[test]
    fn largest_component_tie_breaks_to_first() {
        let img = BinaryImage::from_ascii("##..##\n");
        let largest = largest_component(&img, Connectivity::Four).unwrap();
        assert!(largest.get(0, 0), "earlier component wins ties");
        assert!(!largest.get(4, 0));
    }

    #[test]
    fn labels_are_one_based_in_order() {
        let img = BinaryImage::from_ascii("#.#\n");
        let regions = connected_components(&img, Connectivity::Four);
        assert_eq!(regions[0].label, 1);
        assert_eq!(regions[1].label, 2);
        assert_eq!(regions[0].pixels, vec![(0, 0)]);
    }

    #[test]
    fn or_empty_falls_back_to_blank_mask() {
        let img = BinaryImage::new(5, 4);
        let out = largest_component_or_empty(&img, Connectivity::Eight);
        assert_eq!(out.dimensions(), (5, 4));
        assert!(out.is_empty());
        let img = BinaryImage::from_ascii("##.\n");
        let out = largest_component_or_empty(&img, Connectivity::Eight);
        assert_eq!(out.count_ones(), 2);
    }

    #[test]
    fn into_variant_matches_allocating_version() {
        let imgs = [
            BinaryImage::from_ascii(
                "#..####\n\
                 #..####\n\
                 .......\n\
                 ##.....\n",
            ),
            BinaryImage::from_ascii("##..##\n"), // area tie: earlier wins
            BinaryImage::from_ascii(
                "##...\n\
                 ##...\n\
                 ..##.\n\
                 ..##.\n",
            ),
            BinaryImage::new(6, 3),
        ];
        let mut out = BinaryImage::new(1, 1);
        let mut scratch = LabelScratch::new();
        for img in &imgs {
            for conn in [Connectivity::Four, Connectivity::Eight] {
                let expected = largest_component_or_empty(img, conn);
                let found = largest_component_into(img, conn, &mut out, &mut scratch);
                assert_eq!(out, expected, "{conn:?}\n{}", img.to_ascii());
                assert_eq!(found, largest_component(img, conn).is_some());
                let found_ref = largest_component_into_reference(img, conn, &mut out, &mut scratch);
                assert_eq!(out, expected, "reference {conn:?}\n{}", img.to_ascii());
                assert_eq!(found_ref, found);
            }
        }
    }

    /// Deterministic LCG for randomized equivalence tests.
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    #[test]
    fn run_labelling_matches_reference_on_random_masks() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut out = BinaryImage::new(1, 1);
        let mut out_ref = BinaryImage::new(1, 1);
        let mut scratch = LabelScratch::new();
        for (w, h) in [(1, 1), (64, 1), (65, 3), (17, 9), (130, 2), (40, 30)] {
            // Sparse masks exercise many small components and area ties;
            // dense ones exercise runs that span word boundaries.
            for density in [2u64, 4, 7] {
                let mut img = BinaryImage::new(w, h);
                for y in 0..h {
                    for x in 0..w {
                        img.set(x, y, lcg(&mut state) % 8 < density);
                    }
                }
                for conn in [Connectivity::Four, Connectivity::Eight] {
                    let found = largest_component_into(&img, conn, &mut out, &mut scratch);
                    let found_ref =
                        largest_component_into_reference(&img, conn, &mut out_ref, &mut scratch);
                    assert_eq!(found, found_ref, "{w}x{h} density {density} {conn:?}");
                    assert_eq!(
                        out,
                        out_ref,
                        "{w}x{h} density {density} {conn:?}\n{}",
                        img.to_ascii()
                    );
                }
            }
        }
    }

    #[test]
    fn to_mask_round_trip() {
        let img = BinaryImage::from_ascii(
            ".#.\n\
             ###\n",
        );
        let regions = connected_components(&img, Connectivity::Eight);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].to_mask(3, 2), img);
    }
}
