//! Spatial filters: median smoothing (Figure 1(c)) and box means.
//!
//! The paper smooths the raw extracted silhouette with a median filter to
//! remove "small holes and ridged edges". On a binary mask the median of a
//! window is simply the majority vote, which is what
//! [`median_filter_binary`] computes; [`median_filter_gray`] is the general
//! grayscale version.

use crate::binary::BinaryImage;
use crate::error::ImagingError;
use crate::image::GrayImage;
use crate::integral::IntegralImage;

fn check_window(size: usize) -> Result<(), ImagingError> {
    if size == 0 || size % 2 == 0 {
        return Err(ImagingError::InvalidWindow {
            size,
            requirement: "must be odd and non-zero",
        });
    }
    Ok(())
}

/// Median-filters a grayscale image with an n×n window (clamped at the
/// border).
///
/// # Errors
///
/// Returns [`ImagingError::InvalidWindow`] when `window` is even or zero.
pub fn median_filter_gray(img: &GrayImage, window: usize) -> Result<GrayImage, ImagingError> {
    check_window(window)?;
    let r = (window / 2) as isize;
    let mut out = GrayImage::new(img.width(), img.height());
    let mut hist = [0u32; 256];
    let half = (window * window) as u32 / 2;
    for y in 0..img.height() {
        for x in 0..img.width() {
            hist.fill(0);
            for dy in -r..=r {
                for dx in -r..=r {
                    let v = img.get_clamped(x as isize + dx, y as isize + dy);
                    hist[v as usize] += 1;
                }
            }
            let mut acc = 0u32;
            let mut med = 0u8;
            for (v, &c) in hist.iter().enumerate() {
                acc += c;
                if acc > half {
                    med = v as u8;
                    break;
                }
            }
            out.set(x, y, med);
        }
    }
    Ok(out)
}

/// Reusable working storage for [`median_filter_binary_into`].
///
/// Holding one of these across frames means the per-frame filter does no
/// buffer allocation in steady state.
#[derive(Debug, Clone, Default)]
pub struct FilterScratch {
    integral: Option<IntegralImage>,
}

impl FilterScratch {
    /// Creates empty scratch storage; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Median-filters (majority-votes) a binary mask with an n×n window.
///
/// Out-of-bounds pixels count as background, matching the behaviour of the
/// rest of the pipeline. Uses an integral image so the cost is independent
/// of the window size.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidWindow`] when `window` is even or zero.
pub fn median_filter_binary(img: &BinaryImage, window: usize) -> Result<BinaryImage, ImagingError> {
    let mut out = BinaryImage::new(img.width(), img.height());
    median_filter_binary_into(img, window, &mut out, &mut FilterScratch::new())?;
    Ok(out)
}

/// In-place variant of [`median_filter_binary`]: writes the result into
/// `out` (resized as needed) and reuses the integral-image storage held in
/// `scratch`. Bit-identical to the allocating version.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidWindow`] when `window` is even or zero.
pub fn median_filter_binary_into(
    img: &BinaryImage,
    window: usize,
    out: &mut BinaryImage,
    scratch: &mut FilterScratch,
) -> Result<(), ImagingError> {
    check_window(window)?;
    let r = (window / 2) as isize;
    let ii =
        match scratch.integral.as_mut() {
            Some(ii) => {
                ii.rebuild_from_fn(img.width(), img.height(), |x, y| img.get(x, y) as u64);
                ii
            }
            None => scratch.integral.insert(IntegralImage::from_fn(
                img.width(),
                img.height(),
                |x, y| img.get(x, y) as u64,
            )),
        };
    out.reset(img.width(), img.height());
    let half = (window * window) as u64 / 2;
    for y in 0..img.height() {
        for x in 0..img.width() {
            let (xi, yi) = (x as isize, y as isize);
            let ones = ii.rect_sum(xi - r, yi - r, xi + r, yi + r);
            if ones > half {
                out.set(x, y, true);
            }
        }
    }
    Ok(())
}

/// Box-filters (windowed mean) a grayscale image with an n×n window.
///
/// Border windows average only in-bounds pixels.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidWindow`] when `window` is even or zero.
pub fn box_filter_gray(img: &GrayImage, window: usize) -> Result<GrayImage, ImagingError> {
    check_window(window)?;
    let ii = IntegralImage::from_gray(img);
    let mut out = GrayImage::new(img.width(), img.height());
    for y in 0..img.height() {
        for x in 0..img.width() {
            out.set(x, y, ii.window_mean(x, y, window).round() as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_median_removes_isolated_pixel() {
        let img = BinaryImage::from_ascii(
            ".....\n\
             .....\n\
             ..#..\n\
             .....\n\
             .....\n",
        );
        let out = median_filter_binary(&img, 3).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn binary_median_fills_small_hole() {
        let img = BinaryImage::from_ascii(
            "#####\n\
             #####\n\
             ##.##\n\
             #####\n\
             #####\n",
        );
        let out = median_filter_binary(&img, 3).unwrap();
        assert!(out.get(2, 2), "interior hole should be filled");
    }

    #[test]
    fn binary_median_preserves_large_blob() {
        let img = BinaryImage::from_ascii(
            ".......\n\
             .#####.\n\
             .#####.\n\
             .#####.\n\
             .#####.\n\
             .#####.\n\
             .......\n",
        );
        let out = median_filter_binary(&img, 3).unwrap();
        // Interior must survive; corners of the blob may round off.
        for y in 2..5 {
            for x in 2..5 {
                assert!(out.get(x, y));
            }
        }
    }

    #[test]
    fn gray_median_removes_salt_noise() {
        let mut img = GrayImage::filled(7, 7, 50);
        img.set(3, 3, 255);
        let out = median_filter_gray(&img, 3).unwrap();
        assert_eq!(out.get(3, 3), 50);
    }

    #[test]
    fn gray_median_is_identity_on_constant() {
        let img = GrayImage::filled(6, 6, 123);
        let out = median_filter_gray(&img, 5).unwrap();
        assert!(out.iter().all(|&v| v == 123));
    }

    #[test]
    fn gray_median_window_one_is_identity() {
        let img = GrayImage::from_fn(5, 4, |x, y| (x * y) as u8);
        let out = median_filter_gray(&img, 1).unwrap();
        assert_eq!(out, img);
    }

    #[test]
    fn box_filter_constant_is_identity() {
        let img = GrayImage::filled(8, 8, 200);
        let out = box_filter_gray(&img, 3).unwrap();
        assert!(out.iter().all(|&v| v == 200));
    }

    #[test]
    fn box_filter_smooths_step() {
        let img = GrayImage::from_fn(8, 1, |x, _| if x < 4 { 0 } else { 255 });
        let out = box_filter_gray(&img, 3).unwrap();
        let edge = out.get(4, 0);
        assert!(
            edge > 0 && edge < 255,
            "edge should be smoothed, got {edge}"
        );
    }

    #[test]
    fn into_variant_matches_allocating_version() {
        let imgs = [
            BinaryImage::from_ascii(
                ".#.#.\n\
                 ##.##\n\
                 .###.\n\
                 #...#\n",
            ),
            BinaryImage::from_ascii("###\n"),
            BinaryImage::new(7, 9),
        ];
        let mut out = BinaryImage::new(1, 1);
        let mut scratch = FilterScratch::new();
        for img in &imgs {
            for window in [1, 3, 5] {
                let expected = median_filter_binary(img, window).unwrap();
                median_filter_binary_into(img, window, &mut out, &mut scratch).unwrap();
                assert_eq!(out, expected, "window {window}");
            }
        }
    }

    #[test]
    fn into_variant_rejects_even_window() {
        let img = BinaryImage::new(4, 4);
        let mut out = BinaryImage::new(1, 1);
        let mut scratch = FilterScratch::new();
        assert!(median_filter_binary_into(&img, 2, &mut out, &mut scratch).is_err());
    }

    #[test]
    fn even_window_rejected_everywhere() {
        let g = GrayImage::new(4, 4);
        let b = BinaryImage::new(4, 4);
        assert!(median_filter_gray(&g, 2).is_err());
        assert!(median_filter_binary(&b, 0).is_err());
        assert!(box_filter_gray(&g, 4).is_err());
    }
}
