//! Spatial filters: median smoothing (Figure 1(c)) and box means.
//!
//! The paper smooths the raw extracted silhouette with a median filter to
//! remove "small holes and ridged edges". On a binary mask the median of a
//! window is simply the majority vote, which is what
//! [`median_filter_binary`] computes; [`median_filter_gray`] is the general
//! grayscale version.
//!
//! Every filter has an allocation-free `_into` variant, and the hot ones
//! additionally have a `_par` variant that splits the output into
//! horizontal bands (word-aligned spans for bit-packed masks) over a
//! [`slj_runtime::ThreadPool`]. Each output pixel depends only on the
//! read-only input, so the parallel variants are **bit-identical** to
//! their serial counterparts at every thread count.

use crate::binary::BinaryImage;
use crate::error::ImagingError;
use crate::image::GrayImage;
use crate::integral::IntegralImage;
use slj_obs::Stopwatch;
use slj_runtime::{band_ranges, ThreadPool};
use std::ops::Range;

/// Splits `data` (a row-major buffer with rows of `row_width` elements)
/// into one mutable chunk per band, tagged with the band's first row.
pub(crate) fn split_row_bands<'a, T>(
    data: &'a mut [T],
    row_width: usize,
    bands: &[Range<usize>],
) -> Vec<(usize, &'a mut [T])> {
    let mut chunks = Vec::with_capacity(bands.len());
    let mut rest = data;
    for band in bands {
        let (head, tail) = rest.split_at_mut(band.len() * row_width);
        chunks.push((band.start, head));
        rest = tail;
    }
    chunks
}

fn check_window(size: usize) -> Result<(), ImagingError> {
    if size == 0 || size % 2 == 0 {
        return Err(ImagingError::InvalidWindow {
            size,
            requirement: "must be odd and non-zero",
        });
    }
    Ok(())
}

/// Median-filters a grayscale image with an n×n window (clamped at the
/// border).
///
/// # Errors
///
/// Returns [`ImagingError::InvalidWindow`] when `window` is even or zero.
pub fn median_filter_gray(img: &GrayImage, window: usize) -> Result<GrayImage, ImagingError> {
    let mut out = GrayImage::new(img.width(), img.height());
    median_filter_gray_into(img, window, &mut out)?;
    Ok(out)
}

/// In-place variant of [`median_filter_gray`]: writes the result into
/// `out` (resized as needed). The histogram lives on the stack, so the
/// steady-state per-frame cost is allocation-free. Bit-identical to the
/// allocating version.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidWindow`] when `window` is even or zero.
pub fn median_filter_gray_into(
    img: &GrayImage,
    window: usize,
    out: &mut GrayImage,
) -> Result<(), ImagingError> {
    check_window(window)?;
    out.reset(img.width(), img.height());
    gray_median_rows(img, window, 0, out.as_mut_slice());
    Ok(())
}

/// Row-parallel variant of [`median_filter_gray_into`]: splits the image
/// into horizontal bands over `pool`. Bit-identical to the serial
/// variants at every thread count.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidWindow`] when `window` is even or zero
/// and [`ImagingError::Runtime`] when a worker panics.
// slj-check: allow(perf/transitive-hot-path-alloc) — Registry::histogram allocates the metric-name key once per call, outside the pixel loops
pub fn median_filter_gray_par_into(
    img: &GrayImage,
    window: usize,
    out: &mut GrayImage,
    pool: &ThreadPool,
) -> Result<(), ImagingError> {
    check_window(window)?;
    let started = pool.registry().map(|_| Stopwatch::start());
    out.reset(img.width(), img.height());
    let bands = band_ranges(img.height(), pool.threads());
    let chunks = split_row_bands(out.as_mut_slice(), img.width(), &bands);
    pool.scoped_run(chunks, |_, (first_row, rows)| {
        gray_median_rows(img, window, first_row, rows);
    })?;
    if let (Some(registry), Some(started)) = (pool.registry(), started) {
        registry
            .histogram("imaging.median_filter_gray_par.ns")
            .record_duration(started.elapsed());
    }
    Ok(())
}

/// Median-filters rows `first_row ..` of `img` into `out_rows` (a
/// row-major slice holding exactly the destination rows).
///
/// Huang's sliding-histogram algorithm: one 256-bin histogram per row
/// slides right by removing the departing window column and adding the
/// arriving one (O(window) per pixel instead of O(window²) plus a full
/// histogram rebuild and rescan). The median is maintained incrementally
/// via `lt` — the count of samples strictly below `med` — restoring the
/// invariant `lt <= half < lt + hist[med]`, which selects exactly the
/// value the cumulative rescan (`first v with acc > half`) would.
fn gray_median_rows(img: &GrayImage, window: usize, first_row: usize, out_rows: &mut [u8]) {
    let r = (window / 2) as isize;
    let half = (window * window) as u32 / 2;
    let mut hist = [0u32; 256];
    for (dy, row) in out_rows.chunks_mut(img.width()).enumerate() {
        let yi = (first_row + dy) as isize;
        hist.fill(0);
        for wy in -r..=r {
            for wx in -r..=r {
                hist[img.get_clamped(wx, yi + wy) as usize] += 1;
            }
        }
        let mut acc = 0u32;
        let mut med = 0usize;
        for (v, &c) in hist.iter().enumerate() {
            acc += c;
            if acc > half {
                med = v;
                break;
            }
        }
        let mut lt: u32 = hist[..med].iter().sum();
        for (x, px) in row.iter_mut().enumerate() {
            if x > 0 {
                let xo = x as isize - 1 - r;
                let xn = x as isize + r;
                for wy in -r..=r {
                    let o = img.get_clamped(xo, yi + wy) as usize;
                    hist[o] -= 1;
                    if o < med {
                        lt -= 1;
                    }
                    let n = img.get_clamped(xn, yi + wy) as usize;
                    hist[n] += 1;
                    if n < med {
                        lt += 1;
                    }
                }
                while lt > half {
                    med -= 1;
                    lt -= hist[med];
                }
                while lt + hist[med] <= half {
                    lt += hist[med];
                    med += 1;
                }
            }
            *px = med as u8;
        }
    }
}

/// Reference grayscale median: per-pixel window histogram rebuild and
/// cumulative rescan. The oracle the sliding-histogram fast path in
/// [`median_filter_gray_into`] is property-tested against, and the
/// "before" timing in `slj bench`'s per-kernel section.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidWindow`] when `window` is even or zero.
pub fn median_filter_gray_reference(
    img: &GrayImage,
    window: usize,
) -> Result<GrayImage, ImagingError> {
    check_window(window)?;
    let mut out = GrayImage::new(img.width(), img.height());
    let r = (window / 2) as isize;
    let half = (window * window) as u32 / 2;
    let mut hist = [0u32; 256];
    for y in 0..img.height() {
        for x in 0..img.width() {
            hist.fill(0);
            for wy in -r..=r {
                for wx in -r..=r {
                    let v = img.get_clamped(x as isize + wx, y as isize + wy);
                    hist[v as usize] += 1;
                }
            }
            let mut acc = 0u32;
            let mut med = 0u8;
            for (v, &c) in hist.iter().enumerate() {
                acc += c;
                if acc > half {
                    med = v as u8;
                    break;
                }
            }
            out.set(x, y, med);
        }
    }
    Ok(out)
}

/// Reusable working storage for [`median_filter_binary_into`].
///
/// Holding one of these across frames means the per-frame filter does no
/// buffer allocation in steady state.
#[derive(Debug, Clone, Default)]
pub struct FilterScratch {
    integral: Option<IntegralImage>,
    /// Per-column set-pixel counts over the current window's row range
    /// (the sliding state of [`median_filter_binary_into`]).
    col_ones: Vec<u32>,
}

impl FilterScratch {
    /// Creates empty scratch storage; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Median-filters (majority-votes) a binary mask with an n×n window.
///
/// Out-of-bounds pixels count as background, matching the behaviour of the
/// rest of the pipeline. Uses an integral image so the cost is independent
/// of the window size.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidWindow`] when `window` is even or zero.
pub fn median_filter_binary(img: &BinaryImage, window: usize) -> Result<BinaryImage, ImagingError> {
    let mut out = BinaryImage::new(img.width(), img.height());
    median_filter_binary_into(img, window, &mut out, &mut FilterScratch::new())?;
    Ok(out)
}

/// In-place variant of [`median_filter_binary`]: writes the result into
/// `out` (resized as needed) and reuses the integral-image storage held in
/// `scratch`. Bit-identical to the allocating version.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidWindow`] when `window` is even or zero.
pub fn median_filter_binary_into(
    img: &BinaryImage,
    window: usize,
    out: &mut BinaryImage,
    scratch: &mut FilterScratch,
) -> Result<(), ImagingError> {
    check_window(window)?;
    let (w, h) = (img.width(), img.height());
    out.reset(w, h);
    // Sliding column counts instead of a full integral-image rebuild:
    // `col_ones[x]` holds the set pixels of column x within the window's
    // clipped row range, updated by one added/removed row per scanline;
    // the window sum then slides across x the same way. The counts are
    // exact integers over the same clipped rectangle the integral image
    // summed, so the majority votes are identical.
    let r = window / 2;
    let half = (window * window) as u64 / 2;
    scratch.col_ones.resize(w, 0);
    let col_ones = &mut scratch.col_ones;
    col_ones.fill(0);
    let y_top = r.min(h - 1);
    for row in 0..=y_top {
        for (x, c) in col_ones.iter_mut().enumerate() {
            *c += img.get(x, row) as u32;
        }
    }
    for y in 0..h {
        if y > 0 {
            if y + r < h {
                let row = y + r;
                for (x, c) in col_ones.iter_mut().enumerate() {
                    *c += img.get(x, row) as u32;
                }
            }
            if y > r {
                let row = y - r - 1;
                for (x, c) in col_ones.iter_mut().enumerate() {
                    *c -= img.get(x, row) as u32;
                }
            }
        }
        let mut ones: u64 = col_ones[..=r.min(w - 1)].iter().map(|&c| c as u64).sum();
        for x in 0..w {
            if x > 0 {
                if x + r < w {
                    ones += col_ones[x + r] as u64;
                }
                if x > r {
                    ones -= col_ones[x - r - 1] as u64;
                }
            }
            if ones > half {
                out.set(x, y, true);
            }
        }
    }
    Ok(())
}

/// Reference binary median: integral-image rebuild plus a per-pixel
/// `rect_sum` majority vote. The oracle the sliding-count fast path in
/// [`median_filter_binary_into`] is property-tested against, and the
/// "before" timing in `slj bench`'s per-kernel section.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidWindow`] when `window` is even or zero.
pub fn median_filter_binary_reference(
    img: &BinaryImage,
    window: usize,
) -> Result<BinaryImage, ImagingError> {
    check_window(window)?;
    let r = (window / 2) as isize;
    let ii = IntegralImage::from_fn(img.width(), img.height(), |x, y| img.get(x, y) as u64);
    let mut out = BinaryImage::new(img.width(), img.height());
    let half = (window * window) as u64 / 2;
    for y in 0..img.height() {
        for x in 0..img.width() {
            let (xi, yi) = (x as isize, y as isize);
            let ones = ii.rect_sum(xi - r, yi - r, xi + r, yi + r);
            if ones > half {
                out.set(x, y, true);
            }
        }
    }
    Ok(out)
}

/// Row-parallel variant of [`median_filter_binary_into`].
///
/// The integral image is rebuilt serially (it is an inherently sequential
/// prefix sum), then the bit-packed output mask is split into word-aligned
/// spans — each 64-bit word covers 64 consecutive pixel indices, so the
/// spans are disjoint and no worker ever touches a word another worker
/// writes. Bit-identical to the serial variants at every thread count.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidWindow`] when `window` is even or zero
/// and [`ImagingError::Runtime`] when a worker panics.
// slj-check: allow(perf/transitive-hot-path-alloc) — Registry::histogram allocates the metric-name key once per call, outside the pixel loops
pub fn median_filter_binary_par_into(
    img: &BinaryImage,
    window: usize,
    out: &mut BinaryImage,
    scratch: &mut FilterScratch,
    pool: &ThreadPool,
) -> Result<(), ImagingError> {
    check_window(window)?;
    let started = pool.registry().map(|_| Stopwatch::start());
    let r = (window / 2) as isize;
    let ii =
        match scratch.integral.as_mut() {
            Some(ii) => {
                ii.rebuild_from_fn(img.width(), img.height(), |x, y| img.get(x, y) as u64);
                ii
            }
            None => scratch.integral.insert(IntegralImage::from_fn(
                img.width(),
                img.height(),
                |x, y| img.get(x, y) as u64,
            )),
        };
    let (w, h) = (img.width(), img.height());
    out.reset(w, h);
    let half = (window * window) as u64 / 2;
    let words = out.words_mut();
    let bands = band_ranges(words.len(), pool.threads());
    let chunks = split_row_bands(words, 1, &bands);
    let ii = &*ii;
    pool.scoped_run(chunks, |_, (first_word, span)| {
        for (wi, word) in span.iter_mut().enumerate() {
            let base = (first_word + wi) * 64;
            let mut bits = 0u64;
            for b in 0..64 {
                let i = base + b;
                if i >= w * h {
                    break;
                }
                let (xi, yi) = ((i % w) as isize, (i / w) as isize);
                let ones = ii.rect_sum(xi - r, yi - r, xi + r, yi + r);
                if ones > half {
                    bits |= 1 << b;
                }
            }
            *word = bits;
        }
    })?;
    if let (Some(registry), Some(started)) = (pool.registry(), started) {
        registry
            .histogram("imaging.median_filter_binary_par.ns")
            .record_duration(started.elapsed());
    }
    Ok(())
}

/// Box-filters (windowed mean) a grayscale image with an n×n window.
///
/// Border windows average only in-bounds pixels.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidWindow`] when `window` is even or zero.
pub fn box_filter_gray(img: &GrayImage, window: usize) -> Result<GrayImage, ImagingError> {
    check_window(window)?;
    let ii = IntegralImage::from_gray(img);
    let mut out = GrayImage::new(img.width(), img.height());
    for y in 0..img.height() {
        for x in 0..img.width() {
            out.set(x, y, ii.window_mean(x, y, window).round() as u8);
        }
    }
    Ok(out)
}

/// Row-parallel variant of [`box_filter_gray`]: builds the integral image
/// serially (a sequential prefix sum), then fills the output rows in
/// horizontal bands over `pool`. Bit-identical to the serial variant at
/// every thread count.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidWindow`] when `window` is even or zero
/// and [`ImagingError::Runtime`] when a worker panics.
// slj-check: allow(perf/transitive-hot-path-alloc) — Registry::histogram allocates the metric-name key once per call, outside the pixel loops
pub fn box_filter_gray_par(
    img: &GrayImage,
    window: usize,
    pool: &ThreadPool,
) -> Result<GrayImage, ImagingError> {
    check_window(window)?;
    let started = pool.registry().map(|_| Stopwatch::start());
    let ii = IntegralImage::from_gray(img);
    let mut out = GrayImage::new(img.width(), img.height());
    let bands = band_ranges(img.height(), pool.threads());
    let chunks = split_row_bands(out.as_mut_slice(), img.width(), &bands);
    pool.scoped_run(chunks, |_, (first_row, rows)| {
        for (dy, row) in rows.chunks_mut(img.width()).enumerate() {
            let y = first_row + dy;
            for (x, px) in row.iter_mut().enumerate() {
                *px = ii.window_mean(x, y, window).round() as u8;
            }
        }
    })?;
    if let (Some(registry), Some(started)) = (pool.registry(), started) {
        registry
            .histogram("imaging.box_filter_gray_par.ns")
            .record_duration(started.elapsed());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_median_removes_isolated_pixel() {
        let img = BinaryImage::from_ascii(
            ".....\n\
             .....\n\
             ..#..\n\
             .....\n\
             .....\n",
        );
        let out = median_filter_binary(&img, 3).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn binary_median_fills_small_hole() {
        let img = BinaryImage::from_ascii(
            "#####\n\
             #####\n\
             ##.##\n\
             #####\n\
             #####\n",
        );
        let out = median_filter_binary(&img, 3).unwrap();
        assert!(out.get(2, 2), "interior hole should be filled");
    }

    #[test]
    fn binary_median_preserves_large_blob() {
        let img = BinaryImage::from_ascii(
            ".......\n\
             .#####.\n\
             .#####.\n\
             .#####.\n\
             .#####.\n\
             .#####.\n\
             .......\n",
        );
        let out = median_filter_binary(&img, 3).unwrap();
        // Interior must survive; corners of the blob may round off.
        for y in 2..5 {
            for x in 2..5 {
                assert!(out.get(x, y));
            }
        }
    }

    #[test]
    fn gray_median_removes_salt_noise() {
        let mut img = GrayImage::filled(7, 7, 50);
        img.set(3, 3, 255);
        let out = median_filter_gray(&img, 3).unwrap();
        assert_eq!(out.get(3, 3), 50);
    }

    #[test]
    fn gray_median_is_identity_on_constant() {
        let img = GrayImage::filled(6, 6, 123);
        let out = median_filter_gray(&img, 5).unwrap();
        assert!(out.iter().all(|&v| v == 123));
    }

    #[test]
    fn gray_median_window_one_is_identity() {
        let img = GrayImage::from_fn(5, 4, |x, y| (x * y) as u8);
        let out = median_filter_gray(&img, 1).unwrap();
        assert_eq!(out, img);
    }

    #[test]
    fn box_filter_constant_is_identity() {
        let img = GrayImage::filled(8, 8, 200);
        let out = box_filter_gray(&img, 3).unwrap();
        assert!(out.iter().all(|&v| v == 200));
    }

    #[test]
    fn box_filter_smooths_step() {
        let img = GrayImage::from_fn(8, 1, |x, _| if x < 4 { 0 } else { 255 });
        let out = box_filter_gray(&img, 3).unwrap();
        let edge = out.get(4, 0);
        assert!(
            edge > 0 && edge < 255,
            "edge should be smoothed, got {edge}"
        );
    }

    #[test]
    fn into_variant_matches_allocating_version() {
        let imgs = [
            BinaryImage::from_ascii(
                ".#.#.\n\
                 ##.##\n\
                 .###.\n\
                 #...#\n",
            ),
            BinaryImage::from_ascii("###\n"),
            BinaryImage::new(7, 9),
        ];
        let mut out = BinaryImage::new(1, 1);
        let mut scratch = FilterScratch::new();
        for img in &imgs {
            for window in [1, 3, 5] {
                let expected = median_filter_binary(img, window).unwrap();
                median_filter_binary_into(img, window, &mut out, &mut scratch).unwrap();
                assert_eq!(out, expected, "window {window}");
            }
        }
    }

    #[test]
    fn into_variant_rejects_even_window() {
        let img = BinaryImage::new(4, 4);
        let mut out = BinaryImage::new(1, 1);
        let mut scratch = FilterScratch::new();
        assert!(median_filter_binary_into(&img, 2, &mut out, &mut scratch).is_err());
    }

    #[test]
    fn even_window_rejected_everywhere() {
        let g = GrayImage::new(4, 4);
        let b = BinaryImage::new(4, 4);
        assert!(median_filter_gray(&g, 2).is_err());
        assert!(median_filter_binary(&b, 0).is_err());
        assert!(box_filter_gray(&g, 4).is_err());
        let pool = ThreadPool::fixed(2);
        let mut bo = BinaryImage::new(1, 1);
        let mut go = GrayImage::new(1, 1);
        let mut scratch = FilterScratch::new();
        assert!(median_filter_gray_par_into(&g, 2, &mut go, &pool).is_err());
        assert!(median_filter_binary_par_into(&b, 2, &mut bo, &mut scratch, &pool).is_err());
        assert!(box_filter_gray_par(&g, 4, &pool).is_err());
    }

    #[test]
    fn gray_into_matches_allocating_version() {
        let img = GrayImage::from_fn(9, 7, |x, y| (x * 37 + y * 101) as u8);
        let mut out = GrayImage::new(1, 1);
        for window in [1, 3, 5] {
            let expected = median_filter_gray(&img, window).unwrap();
            median_filter_gray_into(&img, window, &mut out).unwrap();
            assert_eq!(out, expected, "window {window}");
        }
    }

    #[test]
    fn gray_median_par_matches_serial() {
        let img = GrayImage::from_fn(13, 11, |x, y| (x * 53 + y * 7) as u8);
        let mut out = GrayImage::new(1, 1);
        for threads in [1, 2, 3, 8, 16] {
            let pool = ThreadPool::fixed(threads);
            for window in [1, 3, 5] {
                let expected = median_filter_gray(&img, window).unwrap();
                median_filter_gray_par_into(&img, window, &mut out, &pool).unwrap();
                assert_eq!(out, expected, "threads {threads} window {window}");
            }
        }
    }

    #[test]
    fn binary_median_par_matches_serial() {
        // 17x9 = 153 pixels = 2 full words + a ragged tail word.
        let mut img = BinaryImage::new(17, 9);
        for y in 0..9 {
            for x in 0..17 {
                img.set(x, y, (x * 31 + y * 13) % 5 < 2);
            }
        }
        let mut out = BinaryImage::new(1, 1);
        let mut scratch = FilterScratch::new();
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::fixed(threads);
            for window in [1, 3, 5] {
                let expected = median_filter_binary(&img, window).unwrap();
                median_filter_binary_par_into(&img, window, &mut out, &mut scratch, &pool).unwrap();
                assert_eq!(out, expected, "threads {threads} window {window}");
            }
        }
    }

    /// Deterministic LCG for randomized equivalence tests.
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    #[test]
    fn gray_median_matches_reference_on_random_images() {
        let mut state = 0x243F_6A88_85A3_08D3u64;
        for (w, h) in [(1, 1), (5, 1), (1, 7), (8, 8), (13, 11), (31, 17)] {
            let img = GrayImage::from_fn(w, h, |_, _| lcg(&mut state) as u8);
            let mut out = GrayImage::new(1, 1);
            for window in [1, 3, 5, 9] {
                let expected = median_filter_gray_reference(&img, window).unwrap();
                median_filter_gray_into(&img, window, &mut out).unwrap();
                assert_eq!(out, expected, "{w}x{h} window {window}");
                for threads in [1, 8] {
                    let pool = ThreadPool::fixed(threads);
                    median_filter_gray_par_into(&img, window, &mut out, &pool).unwrap();
                    assert_eq!(out, expected, "{w}x{h} window {window} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn binary_median_matches_reference_on_random_masks() {
        let mut state = 0x1319_8A2E_0370_7344u64;
        for (w, h) in [(1, 1), (9, 1), (1, 9), (17, 9), (64, 3), (67, 13)] {
            let mut img = BinaryImage::new(w, h);
            for y in 0..h {
                for x in 0..w {
                    img.set(x, y, lcg(&mut state) % 3 == 0);
                }
            }
            let mut out = BinaryImage::new(1, 1);
            let mut scratch = FilterScratch::new();
            for window in [1, 3, 5, 9] {
                let expected = median_filter_binary_reference(&img, window).unwrap();
                median_filter_binary_into(&img, window, &mut out, &mut scratch).unwrap();
                assert_eq!(out, expected, "{w}x{h} window {window}");
                for threads in [1, 8] {
                    let pool = ThreadPool::fixed(threads);
                    median_filter_binary_par_into(&img, window, &mut out, &mut scratch, &pool)
                        .unwrap();
                    assert_eq!(out, expected, "{w}x{h} window {window} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn box_filter_par_matches_serial() {
        let img = GrayImage::from_fn(19, 12, |x, y| (x * 11 + y * 29) as u8);
        for threads in [1, 2, 5, 16] {
            let pool = ThreadPool::fixed(threads);
            for window in [1, 3, 7] {
                let expected = box_filter_gray(&img, window).unwrap();
                let got = box_filter_gray_par(&img, window, &pool).unwrap();
                assert_eq!(got, expected, "threads {threads} window {window}");
            }
        }
    }
}
