//! The genetic algorithm itself: tournament selection, uniform
//! crossover, clamped mutation, elitism.

use crate::chromosome::{Bounds, Chromosome};
use crate::fitness::overlap_fitness;
use rand::Rng;
use slj_imaging::binary::BinaryImage;
use slj_sim::body::BodyModel;
use slj_sim::kinematics::{solve, Skeleton2D};

/// GA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Probability that a child is produced by crossover (vs cloning the
    /// first parent).
    pub crossover_rate: f64,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Mutation step as a fraction of each gene's bound width.
    pub mutation_sigma: f64,
    /// Number of best individuals copied unchanged each generation.
    pub elitism: usize,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 60,
            generations: 40,
            tournament: 3,
            crossover_rate: 0.8,
            mutation_rate: 0.25,
            mutation_sigma: 0.12,
            elitism: 2,
        }
    }
}

/// Outcome of one GA fit.
#[derive(Debug, Clone)]
pub struct GaResult {
    /// The best chromosome found.
    pub best: Chromosome,
    /// Its overlap fitness (IoU with the target).
    pub best_fitness: f64,
    /// Best fitness per generation (monotone non-decreasing with
    /// elitism).
    pub history: Vec<f64>,
    /// Total fitness evaluations performed — the cost the paper calls
    /// "very time-consuming".
    pub evaluations: usize,
}

impl GaResult {
    /// Resolves the best chromosome into joint positions.
    pub fn skeleton(&self, body: &BodyModel) -> Skeleton2D {
        solve(
            body,
            (self.best.root_x, self.best.root_y),
            &self.best.joint_angles(),
        )
    }
}

/// Fits the stick model to silhouettes by genetic search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaFitter {
    body: BodyModel,
    config: GaConfig,
}

impl GaFitter {
    /// Creates a fitter with the user-provided stick lengths (`body`) —
    /// the manual input the paper's thinning approach eliminates.
    ///
    /// # Panics
    ///
    /// Panics on a zero population, zero tournament, or elitism larger
    /// than the population.
    pub fn new(body: BodyModel, config: GaConfig) -> Self {
        assert!(config.population > 0, "population must be non-zero");
        assert!(config.tournament > 0, "tournament must be non-zero");
        assert!(
            config.elitism <= config.population,
            "elitism cannot exceed the population"
        );
        GaFitter { body, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> GaConfig {
        self.config
    }

    /// Runs the GA against a target silhouette.
    pub fn fit<R: Rng>(&self, target: &BinaryImage, rng: &mut R) -> GaResult {
        let bounds = Bounds::for_frame(target.width(), target.height());
        let mut evaluations = 0usize;
        let eval = |c: &Chromosome, evals: &mut usize| -> f64 {
            *evals += 1;
            overlap_fitness(&self.body, c, target)
        };
        // Seed the population near the silhouette's centroid-ish bounding
        // box when available (a fair initialisation the original system
        // would also use).
        let seed_center = target
            .bounding_box()
            .map(|(x0, y0, x1, y1)| ((x0 + x1) as f64 / 2.0, (y0 + y1) as f64 / 2.0));
        let mut population: Vec<Chromosome> = (0..self.config.population)
            .map(|i| {
                let mut c = Chromosome::random(&bounds, rng);
                if let Some((cx, cy)) = seed_center {
                    if i % 2 == 0 {
                        c.root_x = (cx + rng.gen_range(-10.0..10.0)).clamp(bounds.x.0, bounds.x.1);
                        c.root_y = (cy + rng.gen_range(-10.0..10.0)).clamp(bounds.y.0, bounds.y.1);
                    }
                }
                c
            })
            .collect();
        let mut fitness: Vec<f64> = population
            .iter()
            .map(|c| eval(c, &mut evaluations))
            .collect();
        let mut history = Vec::with_capacity(self.config.generations);

        for _ in 0..self.config.generations {
            // Rank for elitism.
            let mut order: Vec<usize> = (0..population.len()).collect();
            order.sort_by(|&a, &b| fitness[b].partial_cmp(&fitness[a]).unwrap());
            history.push(fitness[order[0]]);

            let mut next: Vec<Chromosome> = order[..self.config.elitism]
                .iter()
                .map(|&i| population[i])
                .collect();
            let mut next_fitness: Vec<f64> = order[..self.config.elitism]
                .iter()
                .map(|&i| fitness[i])
                .collect();

            while next.len() < self.config.population {
                let p1 = self.tournament_pick(&fitness, rng);
                let child = if rng.gen::<f64>() < self.config.crossover_rate {
                    let p2 = self.tournament_pick(&fitness, rng);
                    population[p1].crossover(&population[p2], rng)
                } else {
                    population[p1]
                };
                let child = child.mutate(
                    &bounds,
                    self.config.mutation_rate,
                    self.config.mutation_sigma,
                    rng,
                );
                next_fitness.push(eval(&child, &mut evaluations));
                next.push(child);
            }
            population = next;
            fitness = next_fitness;
        }
        let (best_idx, &best_fitness) = fitness
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("non-empty population");
        history.push(best_fitness);
        GaResult {
            best: population[best_idx],
            best_fitness,
            history,
            evaluations,
        }
    }

    fn tournament_pick<R: Rng>(&self, fitness: &[f64], rng: &mut R) -> usize {
        let mut best = rng.gen_range(0..fitness.len());
        for _ in 1..self.config.tournament {
            let challenger = rng.gen_range(0..fitness.len());
            if fitness[challenger] > fitness[best] {
                best = challenger;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use slj_sim::pose::PoseClass;
    use slj_sim::render::Renderer;

    fn target_mask(pose: PoseClass) -> (BodyModel, BinaryImage) {
        let body = BodyModel::default();
        let skeleton = solve(&body, (70.0, 60.0), &pose.canonical_angles());
        (body, Renderer::new(160, 120).silhouette(&body, &skeleton))
    }

    fn small_config() -> GaConfig {
        GaConfig {
            population: 30,
            generations: 15,
            ..GaConfig::default()
        }
    }

    #[test]
    fn fit_improves_over_generations() {
        let (body, mask) = target_mask(PoseClass::StandingHandsSwungForward);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let result = GaFitter::new(body, small_config()).fit(&mask, &mut rng);
        assert!(
            result.history.last().unwrap() >= result.history.first().unwrap(),
            "fitness must not regress with elitism"
        );
        assert!(result.best_fitness > 0.45, "got {}", result.best_fitness);
    }

    #[test]
    fn elitism_makes_history_monotone() {
        let (body, mask) = target_mask(PoseClass::AirborneTuck);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let result = GaFitter::new(body, small_config()).fit(&mask, &mut rng);
        for w in result.history.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-12,
                "history regressed: {:?}",
                result.history
            );
        }
    }

    #[test]
    fn evaluation_count_is_reported() {
        let (body, mask) = target_mask(PoseClass::StandingHandsOverlap);
        let config = small_config();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let result = GaFitter::new(body, config).fit(&mask, &mut rng);
        let expected =
            config.population + config.generations * (config.population - config.elitism);
        assert_eq!(result.evaluations, expected);
    }

    #[test]
    fn deterministic_with_seed() {
        let (body, mask) = target_mask(PoseClass::LandingAbsorb);
        let run = |seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            GaFitter::new(body, small_config()).fit(&mask, &mut rng)
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.best, b.best);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn skeleton_of_best_is_resolvable() {
        let (body, mask) = target_mask(PoseClass::StandingHandsOverlap);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let result = GaFitter::new(body, small_config()).fit(&mask, &mut rng);
        let s = result.skeleton(&body);
        assert!(s.head.1 < s.foot_front.1.max(s.foot_back.1));
    }

    #[test]
    #[should_panic(expected = "population")]
    fn zero_population_panics() {
        GaFitter::new(
            BodyModel::default(),
            GaConfig {
                population: 0,
                ..GaConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "elitism")]
    fn oversized_elitism_panics() {
        GaFitter::new(
            BodyModel::default(),
            GaConfig {
                population: 4,
                elitism: 5,
                ..GaConfig::default()
            },
        );
    }
}
