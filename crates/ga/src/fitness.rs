//! Silhouette-overlap fitness.

use crate::chromosome::Chromosome;
use slj_imaging::binary::BinaryImage;
use slj_imaging::metrics::MaskMetrics;
use slj_sim::body::BodyModel;
use slj_sim::kinematics::solve;
use slj_sim::render::Renderer;

/// Renders the stick model posed by `chromosome` into a silhouette of
/// the given dimensions.
pub fn render_chromosome(
    body: &BodyModel,
    chromosome: &Chromosome,
    width: usize,
    height: usize,
) -> BinaryImage {
    let skeleton = solve(
        body,
        (chromosome.root_x, chromosome.root_y),
        &chromosome.joint_angles(),
    );
    Renderer::new(width, height).silhouette(body, &skeleton)
}

/// Fitness of a chromosome against the target silhouette:
/// intersection-over-union of the rendered stick model and the target.
///
/// # Panics
///
/// Panics if the target dimensions are zero (renderer precondition).
pub fn overlap_fitness(body: &BodyModel, chromosome: &Chromosome, target: &BinaryImage) -> f64 {
    let rendered = render_chromosome(body, chromosome, target.width(), target.height());
    MaskMetrics::compare(&rendered, target)
        .expect("rendered mask matches target dimensions")
        .iou()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_sim::pose::PoseClass;

    fn target(pose: PoseClass, hip: (f64, f64)) -> (BodyModel, BinaryImage, Chromosome) {
        let body = BodyModel::default();
        let skeleton = solve(&body, hip, &pose.canonical_angles());
        let mask = Renderer::new(160, 120).silhouette(&body, &skeleton);
        let a = pose.canonical_angles();
        let truth = Chromosome {
            root_x: hip.0,
            root_y: hip.1,
            angles: [
                a.torso_lean,
                a.shoulder,
                a.elbow,
                a.hip_front,
                a.knee_front,
                a.hip_back,
                a.knee_back,
            ],
        };
        (body, mask, truth)
    }

    #[test]
    fn true_pose_scores_one() {
        let (body, mask, truth) = target(PoseClass::StandingHandsSwungForward, (60.0, 60.0));
        let f = overlap_fitness(&body, &truth, &mask);
        assert!(
            (f - 1.0).abs() < 1e-12,
            "self-overlap must be perfect, got {f}"
        );
    }

    #[test]
    fn displaced_pose_scores_less() {
        let (body, mask, truth) = target(PoseClass::StandingHandsSwungForward, (60.0, 60.0));
        let shifted = Chromosome {
            root_x: truth.root_x + 25.0,
            ..truth
        };
        let f = overlap_fitness(&body, &shifted, &mask);
        assert!(f < 0.5, "a 25px shift should hurt badly, got {f}");
    }

    #[test]
    fn wrong_pose_scores_less_than_right_pose() {
        let (body, mask, truth) = target(PoseClass::AirborneTuck, (70.0, 50.0));
        let a = PoseClass::StandingHandsOverlap.canonical_angles();
        let wrong = Chromosome {
            angles: [
                a.torso_lean,
                a.shoulder,
                a.elbow,
                a.hip_front,
                a.knee_front,
                a.hip_back,
                a.knee_back,
            ],
            ..truth
        };
        assert!(overlap_fitness(&body, &wrong, &mask) < overlap_fitness(&body, &truth, &mask));
    }

    #[test]
    fn fitness_is_monotone_in_displacement() {
        let (body, mask, truth) = target(PoseClass::StandingHandsOverlap, (60.0, 60.0));
        let f = |dx: f64| {
            overlap_fitness(
                &body,
                &Chromosome {
                    root_x: truth.root_x + dx,
                    ..truth
                },
                &mask,
            )
        };
        assert!(f(0.0) > f(5.0));
        assert!(f(5.0) > f(15.0));
        // Far displacements may both bottom out at zero overlap.
        assert!(f(15.0) >= f(40.0));
        assert!(f(0.0) > f(40.0));
    }
}
