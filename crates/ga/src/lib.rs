//! Genetic-algorithm stick-model fitting — the authors' *previous*
//! approach, reimplemented as the baseline the paper motivates against.
//!
//! Section 1 of the paper: "In our previous work, the genetic algorithm
//! was used to construct a skeleton from the extracted silhouette of the
//! jumper. [...] However, the size of each stick needs to be given by the
//! user beforehand. Also, the search process of the genetic algorithm is
//! very time-consuming. Therefore, the thinning algorithm is utilized
//! instead."
//!
//! This crate reproduces that baseline so Experiment E6 can quantify the
//! trade-off: a chromosome encodes the stick model's root position and
//! joint angles, fitness is silhouette overlap (IoU), and a tournament GA
//! with elitism searches the pose space. The stick segment lengths are
//! the *user-provided* [`slj_sim::body::BodyModel`] — exactly the manual
//! input the paper complains about.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use slj_ga::{GaConfig, GaFitter};
//! use slj_sim::body::BodyModel;
//! use slj_sim::kinematics::solve;
//! use slj_sim::pose::PoseClass;
//! use slj_sim::render::Renderer;
//!
//! // Render a target silhouette, then fit the stick model to it.
//! let body = BodyModel::default();
//! let renderer = Renderer::new(120, 120);
//! let skeleton = solve(&body, (60.0, 60.0), &PoseClass::StandingHandsOverlap.canonical_angles());
//! let target = renderer.silhouette(&body, &skeleton);
//!
//! let config = GaConfig { population: 20, generations: 5, ..GaConfig::default() };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let result = GaFitter::new(body, config).fit(&target, &mut rng);
//! assert!(result.best_fitness > 0.2);
//! ```

// Grandfathered: this crate predates the unwrap_used/expect_used policy.
// Its findings are baselined in check-baseline.json (see `slj check`);
// new code should return SljError and shrink the ratchet instead.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod chromosome;
pub mod fitness;
pub mod ga;

pub use chromosome::Chromosome;
pub use fitness::{overlap_fitness, render_chromosome};
pub use ga::{GaConfig, GaFitter, GaResult};
