//! The GA's pose encoding.

use rand::Rng;
use slj_sim::kinematics::JointAngles;

/// Number of genes: root x, root y, and seven joint angles.
pub const GENE_COUNT: usize = 9;

/// One candidate stick-model pose: root (hip) position plus joint angles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chromosome {
    /// Hip x in pixels.
    pub root_x: f64,
    /// Hip y in pixels.
    pub root_y: f64,
    /// Joint angles (radians), in [`JointAngles`] field order.
    pub angles: [f64; 7],
}

/// Search-space bounds for chromosome sampling and mutation clamping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Root x range.
    pub x: (f64, f64),
    /// Root y range.
    pub y: (f64, f64),
    /// Torso-lean range.
    pub torso_lean: (f64, f64),
    /// Shoulder range.
    pub shoulder: (f64, f64),
    /// Elbow range.
    pub elbow: (f64, f64),
    /// Hip range (both legs).
    pub hip: (f64, f64),
    /// Knee-flexion range (both legs).
    pub knee: (f64, f64),
}

impl Bounds {
    /// Bounds appropriate for a `width × height` frame and the full
    /// range of jump poses.
    pub fn for_frame(width: usize, height: usize) -> Self {
        Bounds {
            x: (0.0, width as f64),
            y: (0.0, height as f64),
            torso_lean: (-0.6, 1.4),
            shoulder: (-1.4, 3.0),
            elbow: (-0.3, 1.2),
            hip: (-0.5, 1.8),
            knee: (-0.2, 2.2),
        }
    }

    fn gene_range(&self, gene: usize) -> (f64, f64) {
        match gene {
            0 => self.x,
            1 => self.y,
            2 => self.torso_lean,
            3 => self.shoulder,
            4 => self.elbow,
            5 | 7 => self.hip,
            6 | 8 => self.knee,
            _ => panic!("gene index {gene} out of range (0..{GENE_COUNT})"),
        }
    }
}

impl Chromosome {
    /// Samples a uniformly random chromosome within `bounds`.
    pub fn random<R: Rng>(bounds: &Bounds, rng: &mut R) -> Self {
        let mut genes = [0.0f64; GENE_COUNT];
        for (i, g) in genes.iter_mut().enumerate() {
            let (lo, hi) = bounds.gene_range(i);
            *g = rng.gen_range(lo..hi);
        }
        Self::from_genes(&genes)
    }

    /// Flattens to the gene vector.
    pub fn genes(&self) -> [f64; GENE_COUNT] {
        [
            self.root_x,
            self.root_y,
            self.angles[0],
            self.angles[1],
            self.angles[2],
            self.angles[3],
            self.angles[4],
            self.angles[5],
            self.angles[6],
        ]
    }

    /// Rebuilds from a gene vector.
    pub fn from_genes(genes: &[f64; GENE_COUNT]) -> Self {
        Chromosome {
            root_x: genes[0],
            root_y: genes[1],
            angles: [
                genes[2], genes[3], genes[4], genes[5], genes[6], genes[7], genes[8],
            ],
        }
    }

    /// The joint-angle view of the chromosome.
    pub fn joint_angles(&self) -> JointAngles {
        JointAngles {
            torso_lean: self.angles[0],
            shoulder: self.angles[1],
            elbow: self.angles[2],
            hip_front: self.angles[3],
            knee_front: self.angles[4],
            hip_back: self.angles[5],
            knee_back: self.angles[6],
        }
    }

    /// Uniform crossover: each gene comes from either parent with equal
    /// probability.
    pub fn crossover<R: Rng>(&self, other: &Chromosome, rng: &mut R) -> Chromosome {
        let a = self.genes();
        let b = other.genes();
        let mut child = [0.0f64; GENE_COUNT];
        for i in 0..GENE_COUNT {
            child[i] = if rng.gen::<bool>() { a[i] } else { b[i] };
        }
        Chromosome::from_genes(&child)
    }

    /// Gaussian-ish mutation: each gene is perturbed with probability
    /// `rate` by up to `sigma` × its bound width, then clamped.
    pub fn mutate<R: Rng>(
        &self,
        bounds: &Bounds,
        rate: f64,
        sigma: f64,
        rng: &mut R,
    ) -> Chromosome {
        let mut genes = self.genes();
        for (i, g) in genes.iter_mut().enumerate() {
            if rng.gen::<f64>() < rate {
                let (lo, hi) = bounds.gene_range(i);
                let width = hi - lo;
                *g = (*g + rng.gen_range(-1.0..1.0) * sigma * width).clamp(lo, hi);
            }
        }
        Chromosome::from_genes(&genes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn bounds() -> Bounds {
        Bounds::for_frame(160, 120)
    }

    #[test]
    fn random_respects_bounds() {
        let b = bounds();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let c = Chromosome::random(&b, &mut rng);
            let genes = c.genes();
            for (i, &g) in genes.iter().enumerate() {
                let (lo, hi) = b.gene_range(i);
                assert!(g >= lo && g < hi, "gene {i} = {g} outside [{lo}, {hi})");
            }
        }
    }

    #[test]
    fn genes_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let c = Chromosome::random(&bounds(), &mut rng);
        assert_eq!(Chromosome::from_genes(&c.genes()), c);
    }

    #[test]
    fn joint_angles_view() {
        let c = Chromosome {
            root_x: 10.0,
            root_y: 20.0,
            angles: [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7],
        };
        let ja = c.joint_angles();
        assert_eq!(ja.torso_lean, 0.1);
        assert_eq!(ja.shoulder, 0.2);
        assert_eq!(ja.knee_back, 0.7);
    }

    #[test]
    fn crossover_picks_parent_genes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = Chromosome::from_genes(&[1.0; GENE_COUNT]);
        let b = Chromosome::from_genes(&[2.0; GENE_COUNT]);
        let child = a.crossover(&b, &mut rng);
        for &g in &child.genes() {
            assert!(g == 1.0 || g == 2.0);
        }
    }

    #[test]
    fn mutation_clamps_to_bounds() {
        let b = bounds();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let c = Chromosome::random(&b, &mut rng);
        for _ in 0..50 {
            let m = c.mutate(&b, 1.0, 2.0, &mut rng);
            for (i, &g) in m.genes().iter().enumerate() {
                let (lo, hi) = b.gene_range(i);
                assert!(g >= lo && g <= hi);
            }
        }
    }

    #[test]
    fn zero_rate_mutation_is_identity() {
        let b = bounds();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let c = Chromosome::random(&b, &mut rng);
        assert_eq!(c.mutate(&b, 0.0, 0.5, &mut rng), c);
    }
}
