//! The versioned `slj-corpus v1` archive text format.
//!
//! Line-oriented like the workspace's other persisted artifacts
//! (`slj-taxonomy v1`, model files): a magic first line, the owning
//! taxonomy embedded verbatim, one block per clip with five
//! delta/bit-packed columns ([`crate::encode`]) plus the fault table,
//! and a trailing footer index recording every clip's header line — a
//! reader can seek the index without decoding any column, and a
//! truncated file can never pass as complete.
//!
//! ```text
//! slj-corpus v1
//! meta clips=2 frames=88
//! taxonomy lines=31
//! slj-taxonomy v1
//! ...30 more embedded lines...
//! clip id=0 source=clip_000 seed=0 frames=44 score_micro=987500
//! column pose n=44 first=0 bits=2
//! data 0123456789abcdef ...
//! column stage ...
//! column online ...
//! column margin ...
//! column flags ...
//! faults fired=1,3 spans=2
//! span rule=1 start=10 end=17
//! span rule=3 start=40 end=43
//! end clip
//! ...
//! footer clips=2 frames=88
//! index id=0 line=35 frames=44
//! index id=1 line=47 frames=44
//! end slj-corpus
//! ```
//!
//! Parsing is strict: every deviation is rejected with a `corpus/*`
//! rule code (`corpus/magic` for the first line, `corpus/column` for
//! data blocks, `corpus/footer` for index disagreements,
//! `corpus/taxonomy` for vocabulary violations, `corpus/format` for
//! everything structural). Round trips are bit-exact:
//! `parse(write(c)) == c` and `write(parse(s)) == s` for canonical `s`.

use crate::encode::{decode_column, encode_column, hex_to_words, words_to_hex, EncodedColumn};
use crate::record::{ClipRecord, Corpus, FaultSpan};
use crate::{CorpusError, RULE_FOOTER, RULE_FORMAT, RULE_MAGIC, RULE_TAXONOMY};
use slj_taxonomy::Taxonomy;
use std::fmt::Write as _;

/// Magic first line of every archive.
pub const MAGIC: &str = "slj-corpus v1";

/// The five per-frame columns, in on-disk order.
const COLUMNS: [&str; 5] = ["pose", "stage", "online", "margin", "flags"];

fn format_err(line: usize, message: impl Into<String>) -> CorpusError {
    CorpusError::new(RULE_FORMAT, format!("line {line}: {}", message.into()))
}

/// Splits `key=value` with an expected key, rejecting anything else.
fn kv<'a>(token: Option<&'a str>, key: &str, line: usize) -> Result<&'a str, CorpusError> {
    let token = token.ok_or_else(|| format_err(line, format!("missing field {key}=")))?;
    token
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| format_err(line, format!("expected {key}=..., got {token:?}")))
}

fn kv_num<T: std::str::FromStr>(
    token: Option<&str>,
    key: &str,
    line: usize,
) -> Result<T, CorpusError> {
    let raw = kv(token, key, line)?;
    raw.parse()
        .map_err(|_| format_err(line, format!("bad number for {key}: {raw:?}")))
}

impl Corpus {
    /// Serialises the corpus in canonical archive form.
    pub fn to_archive_string(&self) -> String {
        let mut out = String::new();
        let mut line = 0usize;
        let mut push = |out: &mut String, text: &str| {
            out.push_str(text);
            out.push('\n');
            line += 1;
            line
        };
        push(&mut out, MAGIC);
        push(
            &mut out,
            &format!(
                "meta clips={} frames={}",
                self.clips.len(),
                self.total_frames()
            ),
        );
        let taxonomy_text = self.taxonomy.to_artifact_string();
        let taxonomy_lines: Vec<&str> = taxonomy_text.lines().collect();
        push(
            &mut out,
            &format!("taxonomy lines={}", taxonomy_lines.len()),
        );
        for tline in &taxonomy_lines {
            push(&mut out, tline);
        }
        let mut index: Vec<(u64, usize, usize)> = Vec::with_capacity(self.clips.len());
        for clip in &self.clips {
            let header_line = push(
                &mut out,
                &format!(
                    "clip id={} source={} seed={} frames={} score_micro={}",
                    clip.id,
                    clip.source,
                    clip.seed,
                    clip.frames(),
                    clip.score_micro
                ),
            );
            index.push((clip.id, header_line, clip.frames()));
            for (name, values) in COLUMNS.iter().zip([
                &clip.pose,
                &clip.stage,
                &clip.online,
                &clip.margin,
                &clip.flags,
            ]) {
                let encoded = encode_column(values);
                push(
                    &mut out,
                    &format!(
                        "column {name} n={} first={} bits={}",
                        encoded.len, encoded.first, encoded.bits
                    ),
                );
                if !encoded.words.is_empty() {
                    push(&mut out, &format!("data {}", words_to_hex(&encoded.words)));
                }
            }
            let fired = if clip.fired.is_empty() {
                "-".to_string()
            } else {
                clip.fired
                    .iter()
                    .map(u32::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            };
            push(
                &mut out,
                &format!("faults fired={fired} spans={}", clip.spans.len()),
            );
            for span in &clip.spans {
                push(
                    &mut out,
                    &format!(
                        "span rule={} start={} end={}",
                        span.rule, span.start, span.end
                    ),
                );
            }
            push(&mut out, "end clip");
        }
        push(
            &mut out,
            &format!(
                "footer clips={} frames={}",
                self.clips.len(),
                self.total_frames()
            ),
        );
        for (id, header_line, frames) in &index {
            push(
                &mut out,
                &format!("index id={id} line={header_line} frames={frames}"),
            );
        }
        push(&mut out, "end slj-corpus");
        out
    }

    /// Parses an archive, validating structure, footer index and every
    /// index against the embedded taxonomy.
    ///
    /// # Errors
    ///
    /// `corpus/magic`, `corpus/format`, `corpus/column`,
    /// `corpus/footer` or `corpus/taxonomy`, each with the 1-based line
    /// number of the violation.
    pub fn from_archive_str(text: &str) -> Result<Self, CorpusError> {
        let lines: Vec<&str> = text.lines().collect();
        let mut cursor = Cursor {
            lines: &lines,
            at: 0,
        };

        let magic = cursor.next_any()?;
        if magic != MAGIC {
            return Err(CorpusError::new(
                RULE_MAGIC,
                format!("line 1: expected {MAGIC:?}, got {magic:?}"),
            ));
        }
        let meta = cursor.next_tagged("meta")?;
        let meta_clips: usize = kv_num(meta.tokens.first().copied(), "clips", meta.line)?;
        let meta_frames: u64 = kv_num(meta.tokens.get(1).copied(), "frames", meta.line)?;

        let tax_header = cursor.next_tagged("taxonomy")?;
        let tax_lines: usize =
            kv_num(tax_header.tokens.first().copied(), "lines", tax_header.line)?;
        let mut taxonomy_text = String::new();
        for _ in 0..tax_lines {
            let _ = writeln!(taxonomy_text, "{}", cursor.next_any()?);
        }
        let taxonomy = Taxonomy::from_artifact_str(&taxonomy_text).map_err(|e| {
            CorpusError::new(
                RULE_TAXONOMY,
                format!("embedded taxonomy rejected: {} ({})", e.message, e.code),
            )
        })?;

        let mut clips = Vec::with_capacity(meta_clips);
        let mut index_expect: Vec<(u64, usize, usize)> = Vec::with_capacity(meta_clips);
        loop {
            let row = cursor.next_any_line()?;
            if row.text.starts_with("footer ") {
                cursor.back();
                break;
            }
            if !row.text.starts_with("clip ") {
                return Err(format_err(
                    row.line,
                    format!("expected a clip or footer line, got {:?}", row.text),
                ));
            }
            let tokens: Vec<&str> = row.text["clip ".len()..].split(' ').collect();
            let id: u64 = kv_num(tokens.first().copied(), "id", row.line)?;
            let source = kv(tokens.get(1).copied(), "source", row.line)?.to_string();
            let seed: u64 = kv_num(tokens.get(2).copied(), "seed", row.line)?;
            let frames: usize = kv_num(tokens.get(3).copied(), "frames", row.line)?;
            let score_micro: i64 = kv_num(tokens.get(4).copied(), "score_micro", row.line)?;
            index_expect.push((id, row.line, frames));

            let mut columns: Vec<Vec<i64>> = Vec::with_capacity(COLUMNS.len());
            for expected_name in COLUMNS {
                let header = cursor.next_tagged("column")?;
                let name = *header
                    .tokens
                    .first()
                    .ok_or_else(|| format_err(header.line, "column line is missing its name"))?;
                if name != expected_name {
                    return Err(format_err(
                        header.line,
                        format!("expected column {expected_name:?}, got {name:?}"),
                    ));
                }
                let len: usize = kv_num(header.tokens.get(1).copied(), "n", header.line)?;
                let first: i64 = kv_num(header.tokens.get(2).copied(), "first", header.line)?;
                let bits: u32 = kv_num(header.tokens.get(3).copied(), "bits", header.line)?;
                if len != frames {
                    return Err(CorpusError::new(
                        crate::RULE_COLUMN,
                        format!(
                            "line {}: column {name} has n={len}, clip {id} declares \
                             {frames} frame(s)",
                            header.line
                        ),
                    ));
                }
                let words = if bits > 0 && len > 1 {
                    let data = cursor.next_any_line()?;
                    let payload = data.text.strip_prefix("data ").ok_or_else(|| {
                        CorpusError::new(
                            crate::RULE_COLUMN,
                            format!(
                                "line {}: column {name} (bits={bits}) has no data line",
                                data.line
                            ),
                        )
                    })?;
                    hex_to_words(payload).map_err(|e| {
                        CorpusError::new(e.code, format!("line {}: {}", data.line, e.message))
                    })?
                } else {
                    Vec::new()
                };
                let encoded = EncodedColumn {
                    len,
                    first,
                    bits,
                    words,
                };
                let values = decode_column(&encoded).map_err(|e| {
                    CorpusError::new(
                        e.code,
                        format!("line {}: column {name}: {}", header.line, e.message),
                    )
                })?;
                columns.push(values);
            }

            let faults = cursor.next_tagged("faults")?;
            let fired_raw = kv(faults.tokens.first().copied(), "fired", faults.line)?;
            let fired: Vec<u32> = if fired_raw == "-" {
                Vec::new()
            } else {
                fired_raw
                    .split(',')
                    .map(|t| {
                        t.parse().map_err(|_| {
                            format_err(faults.line, format!("bad fired rule index {t:?}"))
                        })
                    })
                    .collect::<Result<_, _>>()?
            };
            let span_count: usize = kv_num(faults.tokens.get(1).copied(), "spans", faults.line)?;
            let mut spans = Vec::with_capacity(span_count);
            for _ in 0..span_count {
                let span = cursor.next_tagged("span")?;
                spans.push(FaultSpan {
                    rule: kv_num(span.tokens.first().copied(), "rule", span.line)?,
                    start: kv_num(span.tokens.get(1).copied(), "start", span.line)?,
                    end: kv_num(span.tokens.get(2).copied(), "end", span.line)?,
                });
            }
            let terminator = cursor.next_any_line()?;
            if terminator.text != "end clip" {
                return Err(format_err(
                    terminator.line,
                    format!("expected \"end clip\", got {:?}", terminator.text),
                ));
            }

            let mut columns = columns.into_iter();
            let record = ClipRecord {
                id,
                source,
                seed,
                score_micro,
                pose: columns.next().unwrap_or_default(),
                stage: columns.next().unwrap_or_default(),
                online: columns.next().unwrap_or_default(),
                margin: columns.next().unwrap_or_default(),
                flags: columns.next().unwrap_or_default(),
                fired,
                spans,
            };
            record.validate(&taxonomy)?;
            clips.push(record);
        }

        let footer = cursor.next_tagged("footer")?;
        let footer_clips: usize = kv_num(footer.tokens.first().copied(), "clips", footer.line)?;
        let footer_frames: u64 = kv_num(footer.tokens.get(1).copied(), "frames", footer.line)?;
        let body_frames: u64 = clips.iter().map(|c| c.frames() as u64).sum();
        if footer_clips != clips.len() || footer_frames != body_frames {
            return Err(CorpusError::new(
                RULE_FOOTER,
                format!(
                    "line {}: footer declares {footer_clips} clip(s) / {footer_frames} \
                     frame(s), body has {} / {body_frames}",
                    footer.line,
                    clips.len()
                ),
            ));
        }
        if meta_clips != clips.len() || meta_frames != body_frames {
            return Err(CorpusError::new(
                RULE_FOOTER,
                format!(
                    "meta declares {meta_clips} clip(s) / {meta_frames} frame(s), \
                     body has {} / {body_frames}",
                    clips.len()
                ),
            ));
        }
        for expected in &index_expect {
            let row = cursor.next_tagged("index")?;
            let id: u64 = kv_num(row.tokens.first().copied(), "id", row.line)?;
            let line_no: usize = kv_num(row.tokens.get(1).copied(), "line", row.line)?;
            let frames: usize = kv_num(row.tokens.get(2).copied(), "frames", row.line)?;
            if (id, line_no, frames) != *expected {
                return Err(CorpusError::new(
                    RULE_FOOTER,
                    format!(
                        "line {}: index row (id={id} line={line_no} frames={frames}) \
                         disagrees with clip {} at line {} ({} frame(s))",
                        row.line, expected.0, expected.1, expected.2
                    ),
                ));
            }
        }
        let tail = cursor.next_any_line()?;
        if tail.text != "end slj-corpus" {
            return Err(CorpusError::new(
                RULE_FOOTER,
                format!(
                    "line {}: expected \"end slj-corpus\", got {:?}",
                    tail.line, tail.text
                ),
            ));
        }
        if let Some(extra) = cursor.peek() {
            return Err(format_err(
                cursor.at + 1,
                format!("trailing content after the terminator: {extra:?}"),
            ));
        }
        Ok(Corpus { taxonomy, clips })
    }
}

/// One consumed line with its 1-based number.
struct Row<'a> {
    text: &'a str,
    line: usize,
}

/// A tagged line split into its `key=value` tokens.
struct Tagged<'a> {
    tokens: Vec<&'a str>,
    line: usize,
}

struct Cursor<'a> {
    lines: &'a [&'a str],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn next_any_line(&mut self) -> Result<Row<'a>, CorpusError> {
        let text = self
            .lines
            .get(self.at)
            .copied()
            .ok_or_else(|| format_err(self.at + 1, "unexpected end of archive"))?;
        self.at += 1;
        Ok(Row {
            text,
            line: self.at,
        })
    }

    fn next_any(&mut self) -> Result<&'a str, CorpusError> {
        Ok(self.next_any_line()?.text)
    }

    fn next_tagged(&mut self, tag: &str) -> Result<Tagged<'a>, CorpusError> {
        let row = self.next_any_line()?;
        let rest = row.text.strip_prefix(tag).and_then(|r| r.strip_prefix(' '));
        match rest {
            Some(rest) => Ok(Tagged {
                tokens: rest.split(' ').collect(),
                line: row.line,
            }),
            None => Err(format_err(
                row.line,
                format!("expected a {tag:?} line, got {:?}", row.text),
            )),
        }
    }

    fn back(&mut self) {
        self.at = self.at.saturating_sub(1);
    }

    fn peek(&self) -> Option<&'a str> {
        self.lines.get(self.at).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::UNKNOWN;

    fn sample_corpus() -> Corpus {
        let taxonomy = slj_sim::default_taxonomy();
        let clip = |id: u64, n: usize| {
            let pose: Vec<i64> = (0..n).map(|f| (f % 4) as i64).collect();
            let stage: Vec<i64> = pose.iter().map(|_| 0i64).collect();
            let online: Vec<i64> = pose
                .iter()
                .map(|&p| if p == 3 { UNKNOWN } else { p })
                .collect();
            let margin: Vec<i64> = (0..n).map(|f| 120_000 - 7_000 * f as i64).collect();
            let flags: Vec<i64> = (0..n).map(|f| if f % 5 == 0 { 1 } else { 0 }).collect();
            let (fired, spans) = crate::record::assess_spans(&taxonomy, &stage, &pose);
            ClipRecord {
                id,
                source: format!("clip_{id:03}"),
                seed: id,
                score_micro: 900_000 + id as i64,
                pose,
                stage,
                online,
                margin,
                flags,
                fired,
                spans,
            }
        };
        Corpus {
            clips: vec![clip(0, 9), clip(1, 13)],
            taxonomy,
        }
    }

    #[test]
    fn archive_round_trip_is_bit_exact() {
        let corpus = sample_corpus();
        let text = corpus.to_archive_string();
        assert!(text.starts_with("slj-corpus v1\n"));
        let parsed = Corpus::from_archive_str(&text).unwrap();
        assert_eq!(parsed, corpus);
        assert_eq!(parsed.to_archive_string(), text, "canonical re-serialise");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let text = sample_corpus()
            .to_archive_string()
            .replace("slj-corpus v1", "slj-corpus v9");
        let err = Corpus::from_archive_str(&text).unwrap_err();
        assert_eq!(err.code, crate::RULE_MAGIC);
    }

    #[test]
    fn truncated_column_data_is_rejected() {
        let corpus = sample_corpus();
        let text = corpus.to_archive_string();
        // Drop the last word of the first data line.
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let data_at = lines
            .iter()
            .position(|l| l.starts_with("data "))
            .expect("a data line");
        let shortened = lines[data_at]
            .rsplit_once(' ')
            .map(|(head, _)| head.to_string())
            .expect("multi-token data line");
        lines[data_at] = shortened;
        let err = Corpus::from_archive_str(&(lines.join("\n") + "\n")).unwrap_err();
        assert_eq!(err.code, crate::RULE_COLUMN, "{err}");
    }

    #[test]
    fn footer_count_mismatch_is_rejected() {
        let corpus = sample_corpus();
        let text = corpus
            .to_archive_string()
            .replace("footer clips=2", "footer clips=3");
        let err = Corpus::from_archive_str(&text).unwrap_err();
        assert_eq!(err.code, crate::RULE_FOOTER);
    }

    #[test]
    fn index_line_drift_is_rejected() {
        let corpus = sample_corpus();
        let text = corpus.to_archive_string();
        let drifted: String = text
            .lines()
            .map(|l| {
                if l.starts_with("index id=1 ") {
                    "index id=1 line=9999 frames=13".to_string()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        let err = Corpus::from_archive_str(&drifted).unwrap_err();
        assert_eq!(err.code, crate::RULE_FOOTER);
    }

    #[test]
    fn out_of_range_pose_is_a_taxonomy_error() {
        let mut corpus = sample_corpus();
        corpus.clips[0].pose[0] = 999;
        let text = corpus.to_archive_string();
        let err = Corpus::from_archive_str(&text).unwrap_err();
        assert_eq!(err.code, crate::RULE_TAXONOMY);
    }

    #[test]
    fn truncated_archive_is_rejected() {
        let corpus = sample_corpus();
        let text = corpus.to_archive_string();
        let cut: String = text.lines().take(10).collect::<Vec<_>>().join("\n");
        let err = Corpus::from_archive_str(&cut).unwrap_err();
        assert!(
            err.code == crate::RULE_FORMAT || err.code == crate::RULE_TAXONOMY,
            "{err}"
        );
    }

    #[test]
    fn pseudo_random_corpora_round_trip() {
        let taxonomy = slj_sim::default_taxonomy();
        let poses = taxonomy.pose_count() as i64;
        let stages = taxonomy.stage_count() as i64;
        let mut state = 7u64;
        let mut next = move |modulus: i64| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 33) as i64).rem_euclid(modulus)
        };
        for id in 0..20u64 {
            let n = 1 + next(60) as usize;
            let pose: Vec<i64> = (0..n).map(|_| next(poses + 1) - 1).collect();
            let stage: Vec<i64> = (0..n).map(|_| next(stages)).collect();
            let (fired, spans) = crate::record::assess_spans(&taxonomy, &stage, &pose);
            let corpus = Corpus {
                taxonomy: taxonomy.clone(),
                clips: vec![ClipRecord {
                    id,
                    source: format!("rand_{id}"),
                    seed: id * 31,
                    score_micro: next(2_000_001) - 1_000_000,
                    online: pose.clone(),
                    margin: (0..n).map(|_| next(4_000_001) - 2_000_000).collect(),
                    flags: (0..n).map(|_| next(129) - 1).collect(),
                    pose,
                    stage,
                    fired,
                    spans,
                }],
            };
            let text = corpus.to_archive_string();
            let parsed = Corpus::from_archive_str(&text).unwrap();
            assert_eq!(parsed, corpus, "corpus {id}");
            assert_eq!(parsed.to_archive_string(), text, "corpus {id}");
        }
    }
}
