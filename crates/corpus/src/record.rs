//! The in-memory row model behind `slj-corpus` archives.
//!
//! One [`ClipRecord`] per stored clip: five per-frame columns (decoded
//! pose/stage from the offline Viterbi pass, online committed pose,
//! quantized `Th_Pose` margin, quality-flag mask), the clip-level
//! quality score, the fault rules that fired, and the frame spans where
//! they manifested. Scores and margins are quantized to millionths
//! (`*_micro`) so columns stay integers and round-trip bit-exactly.

use crate::{CorpusError, RULE_TAXONOMY};
use slj_taxonomy::{Polarity, Taxonomy};

/// Sentinel for "no value": an Unknown pose, an unscored flag column,
/// or a clip ingested without quality diagnostics.
pub const UNKNOWN: i64 = -1;

/// Scale of the `*_micro` fixed-point fields (1.0 → 1_000_000).
pub const MICRO: f64 = 1e6;

/// A maximal run of frames where a fired fault rule manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpan {
    /// Index into [`Taxonomy::faults`].
    pub rule: u32,
    /// First frame of the run (0-based).
    pub start: u32,
    /// Last frame of the run, inclusive.
    pub end: u32,
}

impl FaultSpan {
    /// Number of frames the span covers.
    pub fn len(&self) -> u32 {
        self.end.saturating_sub(self.start) + 1
    }

    /// Whether the span is degenerate (never true for computed spans).
    pub fn is_empty(&self) -> bool {
        self.end < self.start
    }
}

/// Per-frame decision columns and clip-level outcomes for one clip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClipRecord {
    /// Archive-unique clip id (dense, in ingestion order).
    pub id: u64,
    /// Source label: the `clip_*` directory name or trace clip id.
    /// Whitespace-free by construction.
    pub source: String,
    /// Simulator seed that re-synthesizes an equivalent request body
    /// (`slj loadgen --replay`).
    pub seed: u64,
    /// Clip quality score in micro-units, or [`UNKNOWN`] when the clip
    /// was ingested without quality diagnostics.
    pub score_micro: i64,
    /// Offline-decoded pose per frame ([`UNKNOWN`] = no decode, e.g. a
    /// trace-sourced clip's sub-threshold frame).
    pub pose: Vec<i64>,
    /// Offline-decoded jumping stage per frame.
    pub stage: Vec<i64>,
    /// Online committed pose per frame ([`UNKNOWN`] = frame left Unknown).
    pub online: Vec<i64>,
    /// `Th_Pose` margin per frame, in micro-units (may be negative).
    pub margin: Vec<i64>,
    /// Quality-flag mask per frame ([`UNKNOWN`] = frame not scored).
    pub flags: Vec<i64>,
    /// Indices of the fault rules that fired on the decoded sequence.
    pub fired: Vec<u32>,
    /// Frame spans where fired rules manifest, in (rule, start) order.
    pub spans: Vec<FaultSpan>,
}

impl ClipRecord {
    /// Number of frames in the clip.
    pub fn frames(&self) -> usize {
        self.pose.len()
    }

    /// Clip quality score in `[0, 1]`, or `None` when unscored.
    pub fn score(&self) -> Option<f64> {
        (self.score_micro >= 0).then(|| self.score_micro as f64 / MICRO)
    }

    /// Validates internal consistency against `taxonomy`: equal column
    /// lengths and in-range pose/stage/rule indices.
    ///
    /// # Errors
    ///
    /// `corpus/taxonomy` on any out-of-range index; `corpus/format` is
    /// never produced here — length mismatches are reported as
    /// `corpus/taxonomy` too since they make index checks meaningless.
    pub fn validate(&self, taxonomy: &Taxonomy) -> Result<(), CorpusError> {
        let n = self.pose.len();
        let bad_len = [&self.stage, &self.online, &self.margin, &self.flags]
            .iter()
            .any(|c| c.len() != n);
        if bad_len {
            return Err(CorpusError::new(
                RULE_TAXONOMY,
                format!("clip {}: column lengths disagree", self.id),
            ));
        }
        let poses = taxonomy.pose_count() as i64;
        let stages = taxonomy.stage_count() as i64;
        let rules = taxonomy.faults().len() as u32;
        for (name, column, limit) in [
            ("pose", &self.pose, poses),
            ("stage", &self.stage, stages),
            ("online", &self.online, poses),
        ] {
            if let Some(v) = column.iter().find(|&&v| v < UNKNOWN || v >= limit) {
                return Err(CorpusError::new(
                    RULE_TAXONOMY,
                    format!(
                        "clip {}: {name} index {v} outside the taxonomy's range \
                         [-1, {limit})",
                        self.id
                    ),
                ));
            }
        }
        for rule in self.fired.iter().chain(self.spans.iter().map(|s| &s.rule)) {
            if *rule >= rules {
                return Err(CorpusError::new(
                    RULE_TAXONOMY,
                    format!(
                        "clip {}: fault rule {rule} outside the taxonomy's {rules} rule(s)",
                        self.id
                    ),
                ));
            }
        }
        if let Some(span) = self.spans.iter().find(|s| s.end as usize >= n.max(1)) {
            return Err(CorpusError::new(
                RULE_TAXONOMY,
                format!(
                    "clip {}: span [{}, {}] exceeds the clip's {n} frame(s)",
                    self.id, span.start, span.end
                ),
            ));
        }
        Ok(())
    }
}

/// A full archive: the owning taxonomy plus every clip record.
#[derive(Debug, Clone, PartialEq)]
pub struct Corpus {
    /// The vocabulary all pose/stage/rule indices resolve through.
    pub taxonomy: Taxonomy,
    /// Clip records, ordered by id.
    pub clips: Vec<ClipRecord>,
}

impl Corpus {
    /// Total frames across all clips.
    pub fn total_frames(&self) -> u64 {
        self.clips.iter().map(|c| c.frames() as u64).sum()
    }
}

/// Runs the taxonomy's fault rules over a decoded `(stage, pose)`
/// sequence and localizes each fired rule to frame spans.
///
/// The fired set is exactly [`Taxonomy::assess`] over the pose column.
/// Spans are maximal runs of *evidence* frames: for a `Forbid` rule the
/// frames showing a forbidden pose; for a `Require` rule the frames
/// spent in the rule's stage without one of the required poses (the
/// region where the missing pose should have appeared). A fired rule
/// whose stage never occurs contributes no span — `fired` still records
/// it, so count-style queries see it.
pub fn assess_spans(
    taxonomy: &Taxonomy,
    stage: &[i64],
    pose: &[i64],
) -> (Vec<u32>, Vec<FaultSpan>) {
    let as_options: Vec<Option<usize>> = pose.iter().map(|&p| usize::try_from(p).ok()).collect();
    let fired: Vec<u32> = taxonomy
        .assess(&as_options)
        .into_iter()
        .map(|r| r as u32)
        .collect();
    let mut spans = Vec::new();
    for &rule_idx in &fired {
        let rule = &taxonomy.faults()[rule_idx as usize];
        let evidence = |f: usize| -> bool {
            let in_rule_pose = as_options[f].is_some_and(|p| rule.poses.contains(&p));
            match rule.polarity {
                Polarity::Forbid => in_rule_pose,
                Polarity::Require => stage[f] == rule.stage as i64 && !in_rule_pose,
            }
        };
        let mut f = 0;
        while f < pose.len() {
            if evidence(f) {
                let start = f;
                while f < pose.len() && evidence(f) {
                    f += 1;
                }
                spans.push(FaultSpan {
                    rule: rule_idx,
                    start: start as u32,
                    end: (f - 1) as u32,
                });
            } else {
                f += 1;
            }
        }
    }
    spans.sort_by_key(|s| (s.rule, s.start));
    (fired, spans)
}

/// Quantizes a score or margin to micro-units.
pub fn to_micro(v: f64) -> i64 {
    (v * MICRO).round() as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_taxonomy::{FaultRule, PoseInfo, StageInfo};

    /// Two stages, three poses: pose 0|1 in stage 0, pose 2 in stage 1.
    /// Rule 0 requires pose 1 in stage 0; rule 1 forbids pose 2.
    fn toy_taxonomy() -> Taxonomy {
        Taxonomy::new(
            "toy",
            2,
            vec![
                StageInfo {
                    ident: "prep".into(),
                    display: "Prep".into(),
                },
                StageInfo {
                    ident: "fly".into(),
                    display: "Fly".into(),
                },
            ],
            vec![
                PoseInfo {
                    ident: "stand".into(),
                    display: "Stand".into(),
                    stage: 0,
                },
                PoseInfo {
                    ident: "crouch".into(),
                    display: "Crouch".into(),
                    stage: 0,
                },
                PoseInfo {
                    ident: "tuck".into(),
                    display: "Tuck".into(),
                    stage: 1,
                },
            ],
            0,
            None,
            vec![vec![0.5, 0.5], vec![0.0, 1.0]],
            vec![
                FaultRule {
                    ident: "no_crouch".into(),
                    display: "No crouch".into(),
                    stage: 0,
                    polarity: Polarity::Require,
                    poses: vec![1],
                    min_frames: 2,
                    advice: "crouch first".into(),
                },
                FaultRule {
                    ident: "no_tuck_allowed".into(),
                    display: "Tuck forbidden".into(),
                    stage: 1,
                    polarity: Polarity::Forbid,
                    poses: vec![2],
                    min_frames: 2,
                    advice: "keep straight".into(),
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn spans_localize_fired_rules() {
        let taxonomy = toy_taxonomy();
        // Stage 0 without any crouch (rule 0 fires), then two tuck
        // frames in stage 1 (rule 1 fires).
        let stage = vec![0, 0, 0, 1, 1, 1];
        let pose = vec![0, 0, 0, 2, 2, 0];
        let (fired, spans) = assess_spans(&taxonomy, &stage, &pose);
        assert_eq!(fired, vec![0, 1]);
        assert_eq!(
            spans,
            vec![
                FaultSpan {
                    rule: 0,
                    start: 0,
                    end: 2
                },
                FaultSpan {
                    rule: 1,
                    start: 3,
                    end: 4
                },
            ]
        );
        assert_eq!(spans[0].len(), 3);
    }

    #[test]
    fn satisfied_rules_produce_no_spans() {
        let taxonomy = toy_taxonomy();
        let stage = vec![0, 0, 0, 1];
        let pose = vec![0, 1, 1, 0];
        let (fired, spans) = assess_spans(&taxonomy, &stage, &pose);
        assert!(fired.is_empty(), "{fired:?}");
        assert!(spans.is_empty(), "{spans:?}");
    }

    #[test]
    fn unknown_frames_count_as_missing_required_evidence() {
        let taxonomy = toy_taxonomy();
        let stage = vec![0, 0, 0];
        let pose = vec![UNKNOWN, UNKNOWN, UNKNOWN];
        let (fired, spans) = assess_spans(&taxonomy, &stage, &pose);
        assert_eq!(fired, vec![0]);
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].start, spans[0].end), (0, 2));
    }

    #[test]
    fn validate_rejects_out_of_range_indices() {
        let taxonomy = toy_taxonomy();
        let mut record = ClipRecord {
            id: 0,
            source: "clip_000".into(),
            seed: 0,
            score_micro: 990_000,
            pose: vec![0, 1],
            stage: vec![0, 0],
            online: vec![0, UNKNOWN],
            margin: vec![120_000, -3_000],
            flags: vec![0, 0],
            fired: vec![],
            spans: vec![],
        };
        assert!(record.validate(&taxonomy).is_ok());
        record.pose[1] = 3;
        assert_eq!(record.validate(&taxonomy).unwrap_err().code, RULE_TAXONOMY);
        record.pose[1] = 1;
        record.fired = vec![9];
        assert_eq!(record.validate(&taxonomy).unwrap_err().code, RULE_TAXONOMY);
    }

    #[test]
    fn micro_quantization_is_symmetric_enough() {
        assert_eq!(to_micro(0.5), 500_000);
        assert_eq!(to_micro(-0.051), -51_000);
        let record = ClipRecord {
            id: 1,
            source: "s".into(),
            seed: 2,
            score_micro: to_micro(0.875),
            pose: vec![0],
            stage: vec![0],
            online: vec![0],
            margin: vec![0],
            flags: vec![0],
            fired: vec![],
            spans: vec![],
        };
        assert_eq!(record.score(), Some(0.875));
    }
}
