//! Batch ingestion: stored clips (or a recorded trace) → [`Corpus`].
//!
//! The clip path replays each stored clip through a streaming
//! [`JumpSession`] — exactly the engine a live server runs — collecting
//! the online decisions, per-frame quality flags and the encoded
//! feature sequence, then re-decodes the features offline with the
//! model's Viterbi decoder for the hindsight `pose`/`stage` columns.
//! Clips fan out over the [`ThreadPool`]; results return in input
//! order, so the produced corpus is bit-identical at every thread
//! count.
//!
//! The trace bridge accepts an `slj trace` JSONL stream (schema
//! [`BRIDGE_TRACE_SCHEMA`]) instead, so production traces are minable
//! without re-running the pipeline; there the online columns double as
//! the decoded ones (no features are recorded to re-decode) and the
//! quality score is left unset.

use crate::record::{assess_spans, to_micro, ClipRecord, Corpus, UNKNOWN};
use crate::{CorpusError, RULE_INGEST};
use slj_core::engine::JumpSession;
use slj_core::model::PoseModel;
use slj_obs::{Registry, Stopwatch};
use slj_quality::{QualityConfig, Reason};
use slj_runtime::ThreadPool;
use slj_sim::io::StoredClip;
use slj_taxonomy::Taxonomy;

/// The `slj trace` JSONL schema the bridge understands. Checked against
/// every record; `slj check --schemas` cross-verifies this constant
/// against the committed trace fixture, so a trace-schema bump that
/// forgets the bridge fails fast.
pub const BRIDGE_TRACE_SCHEMA: u64 = 3;

/// One ingestion work item: a stored clip plus its identity.
#[derive(Debug, Clone)]
pub struct IngestClip {
    /// Source label written into the archive (e.g. the `clip_*`
    /// directory name). Must be whitespace-free.
    pub source: String,
    /// Seed recorded for replay body re-synthesis.
    pub seed: u64,
    /// The clip itself.
    pub clip: StoredClip,
}

/// Ingestion knobs.
#[derive(Debug, Clone, Default)]
pub struct IngestOptions {
    /// Quality diagnostics to attach per session; `None` leaves the
    /// score and flag columns unset ([`UNKNOWN`]).
    pub quality: Option<QualityConfig>,
}

fn ingest_err(context: &str, e: impl std::fmt::Display) -> CorpusError {
    CorpusError::new(RULE_INGEST, format!("{context}: {e}"))
}

/// Runs one clip through the engine and the offline decoder.
fn ingest_one(
    model: &PoseModel,
    id: u64,
    item: &IngestClip,
    options: &IngestOptions,
) -> Result<ClipRecord, CorpusError> {
    if item.clip.frames.is_empty() {
        return Err(CorpusError::new(
            RULE_INGEST,
            format!("{}: clip has no frames", item.source),
        ));
    }
    if item.source.is_empty() || item.source.contains(char::is_whitespace) {
        return Err(CorpusError::new(
            RULE_INGEST,
            format!(
                "source label {:?} must be non-empty without whitespace",
                item.source
            ),
        ));
    }
    let mut session = JumpSession::new(model, item.clip.background.clone())
        .map_err(|e| ingest_err(&item.source, e))?;
    if let Some(config) = &options.quality {
        session.attach_quality(config.clone());
    }
    let n = item.clip.frames.len();
    let mut features = Vec::with_capacity(n);
    let mut online = Vec::with_capacity(n);
    let mut margin = Vec::with_capacity(n);
    let mut flags = Vec::with_capacity(n);
    for frame in &item.clip.frames {
        let estimate = session
            .push_frame(frame)
            .map_err(|e| ingest_err(&item.source, e))?;
        features.push(session.slots().features);
        online.push(estimate.pose.map_or(UNKNOWN, |p| p as i64));
        margin.push(to_micro(
            session.last_decision().map_or(0.0, |d| d.th_margin),
        ));
        flags.push(session.last_quality_flags().map_or(UNKNOWN, i64::from));
    }
    let decoded = model
        .decode_clip(&features)
        .map_err(|e| ingest_err(&item.source, e))?;
    let stage: Vec<i64> = decoded.iter().map(|&(s, _)| s as i64).collect();
    let pose: Vec<i64> = decoded.iter().map(|&(_, p)| p as i64).collect();
    let score_micro = session
        .quality_report()
        .map_or(UNKNOWN, |r| to_micro(r.clip_score));
    let (fired, spans) = assess_spans(model.taxonomy(), &stage, &pose);
    Ok(ClipRecord {
        id,
        source: item.source.clone(),
        seed: item.seed,
        score_micro,
        pose,
        stage,
        online,
        margin,
        flags,
        fired,
        spans,
    })
}

/// Batch-ingests stored clips into a corpus, clip-parallel over `pool`.
///
/// When `registry` is given, records `corpus.ingest.clips`,
/// `corpus.ingest.frames` and the per-clip `corpus.ingest.clip_ns`
/// histogram. Observation never changes the produced corpus.
///
/// # Errors
///
/// `corpus/ingest` on any pipeline failure, empty clip, bad source
/// label, or a worker-pool fault.
pub fn ingest_stored_clips(
    model: &PoseModel,
    items: &[IngestClip],
    options: &IngestOptions,
    pool: &ThreadPool,
    registry: Option<&Registry>,
) -> Result<Corpus, CorpusError> {
    let clip_ns = registry.map(|r| r.histogram("corpus.ingest.clip_ns"));
    let results = pool
        .scoped_map(items, |index, item| {
            let watch = Stopwatch::start();
            let record = ingest_one(model, index as u64, item, options);
            if let Some(h) = &clip_ns {
                h.record(watch.elapsed_ns());
            }
            record
        })
        .map_err(|e| ingest_err("worker pool", e))?;
    let clips = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    if let Some(registry) = registry {
        registry
            .counter("corpus.ingest.clips")
            .add(clips.len() as u64);
        registry
            .counter("corpus.ingest.frames")
            .add(clips.iter().map(|c| c.frames() as u64).sum());
    }
    Ok(Corpus {
        taxonomy: model.taxonomy().clone(),
        clips,
    })
}

/// Extracts the raw text of `"key":<scalar>` from a flat JSON line.
fn json_scalar<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = &text[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn json_u64(text: &str, key: &str) -> Option<u64> {
    json_scalar(text, key)?.parse().ok()
}

fn json_f64(text: &str, key: &str) -> Option<f64> {
    json_scalar(text, key)?.parse().ok()
}

/// Reads `"key":"value"` as a string, `None` on `null` or absence.
fn json_string<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    json_scalar(text, key)?
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
}

/// Reads the `"quality_flags"` reason-code array back into a mask;
/// `None` when the field is `null` or absent.
fn json_flags(text: &str, line: usize) -> Result<Option<u32>, CorpusError> {
    let needle = "\"quality_flags\":";
    let Some(start) = text.find(needle) else {
        return Ok(None);
    };
    let rest = text[start + needle.len()..].trim_start();
    if !rest.starts_with('[') {
        return Ok(None); // null (or a non-array: tolerated as unscored)
    }
    let Some(end) = rest.find(']') else {
        return Err(CorpusError::new(
            RULE_INGEST,
            format!("record {line}: unterminated quality_flags array"),
        ));
    };
    let mut mask = 0u32;
    for code in rest[1..end].split(',') {
        let code = code.trim().trim_matches('"');
        if code.is_empty() {
            continue;
        }
        let reason = Reason::from_code(code).ok_or_else(|| {
            CorpusError::new(
                RULE_INGEST,
                format!("record {line}: unknown quality reason code {code:?}"),
            )
        })?;
        mask |= reason.bit();
    }
    Ok(Some(mask))
}

/// Accumulates one trace clip's columns before sealing a record.
#[derive(Default)]
struct TraceClip {
    clip_id: Option<u64>,
    pose: Vec<i64>,
    margin: Vec<i64>,
    flags: Vec<i64>,
    stage: Vec<i64>,
}

impl TraceClip {
    fn seal(self, id: u64, taxonomy: &Taxonomy) -> ClipRecord {
        let source_id = self.clip_id.unwrap_or(id);
        let (fired, spans) = assess_spans(taxonomy, &self.stage, &self.pose);
        ClipRecord {
            id,
            source: format!("trace_{source_id}"),
            seed: source_id,
            score_micro: UNKNOWN,
            online: self.pose.clone(),
            pose: self.pose,
            stage: self.stage,
            margin: self.margin,
            flags: self.flags,
            fired,
            spans,
        }
    }
}

/// Bridges a recorded `slj trace` JSONL stream (schema
/// [`BRIDGE_TRACE_SCHEMA`]) into a corpus without re-decoding: the
/// recorded online decisions stand in for the offline columns, and the
/// clip score stays unset.
///
/// # Errors
///
/// `corpus/ingest` on an empty stream, a schema mismatch, or a record
/// whose pose/stage name the taxonomy does not know.
pub fn ingest_trace(text: &str, taxonomy: &Taxonomy) -> Result<Corpus, CorpusError> {
    let mut clips: Vec<ClipRecord> = Vec::new();
    let mut current = TraceClip::default();
    let mut any = false;
    for (index, line) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let schema = json_u64(line, "schema").ok_or_else(|| {
            CorpusError::new(
                RULE_INGEST,
                format!("record {line_no}: no \"schema\" field"),
            )
        })?;
        if schema != BRIDGE_TRACE_SCHEMA {
            return Err(CorpusError::new(
                RULE_INGEST,
                format!(
                    "record {line_no}: trace schema {schema}, bridge expects \
                     {BRIDGE_TRACE_SCHEMA}"
                ),
            ));
        }
        let clip_id = json_u64(line, "clip");
        if any && clip_id != current.clip_id {
            let sealed = std::mem::take(&mut current);
            clips.push(sealed.seal(clips.len() as u64, taxonomy));
        }
        current.clip_id = clip_id;
        any = true;
        let pose = match json_string(line, "pose") {
            None => UNKNOWN,
            Some(name) => taxonomy.pose_index(name).map(|p| p as i64).ok_or_else(|| {
                CorpusError::new(
                    RULE_INGEST,
                    format!("record {line_no}: unknown pose {name:?}"),
                )
            })?,
        };
        let stage_name = json_string(line, "stage").ok_or_else(|| {
            CorpusError::new(RULE_INGEST, format!("record {line_no}: no \"stage\" field"))
        })?;
        let stage = taxonomy
            .stage_index(stage_name)
            .map(|s| s as i64)
            .ok_or_else(|| {
                CorpusError::new(
                    RULE_INGEST,
                    format!("record {line_no}: unknown stage {stage_name:?}"),
                )
            })?;
        let th_margin = json_f64(line, "th_margin").ok_or_else(|| {
            CorpusError::new(
                RULE_INGEST,
                format!("record {line_no}: no \"th_margin\" field"),
            )
        })?;
        current.pose.push(pose);
        current.stage.push(stage);
        current.margin.push(to_micro(th_margin));
        current
            .flags
            .push(json_flags(line, line_no)?.map_or(UNKNOWN, i64::from));
    }
    if !any {
        return Err(CorpusError::new(RULE_INGEST, "trace has no records"));
    }
    clips.push(current.seal(clips.len() as u64, taxonomy));
    Ok(Corpus {
        taxonomy: taxonomy.clone(),
        clips,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_line(clip: u64, frame: u64, pose: Option<&str>, flags: Option<&str>) -> String {
        let taxonomy = slj_sim::default_taxonomy();
        let stage = taxonomy.stage_ident(0);
        let pose_json = pose.map_or("null".to_string(), |p| format!("\"{p}\""));
        let flags_json = flags.map_or("null".to_string(), |f| f.to_string());
        format!(
            "{{\"schema\":3,\"clip\":{clip},\"frame\":{frame},\"pose\":{pose_json},\
             \"best_prob\":0.9,\"th_margin\":0.125,\"accepted\":true,\
             \"carry_forward\":false,\"stage\":\"{stage}\",\"foreground_px\":100,\
             \"quality_flags\":{flags_json}}}"
        )
    }

    #[test]
    fn trace_bridge_builds_columns() {
        let taxonomy = slj_sim::default_taxonomy();
        let pose0 = taxonomy.pose_ident(0).to_string();
        let text = [
            trace_line(0, 0, Some(&pose0), Some("[]")),
            trace_line(0, 1, None, Some("[\"temporal_jump\"]")),
            trace_line(1, 0, Some(&pose0), None),
        ]
        .join("\n");
        let corpus = ingest_trace(&text, &taxonomy).unwrap();
        assert_eq!(corpus.clips.len(), 2);
        let first = &corpus.clips[0];
        assert_eq!(first.source, "trace_0");
        assert_eq!(first.pose, vec![0, UNKNOWN]);
        assert_eq!(first.online, first.pose);
        assert_eq!(first.margin, vec![125_000, 125_000]);
        assert_eq!(first.flags, vec![0, i64::from(Reason::TemporalJump.bit())]);
        let second = &corpus.clips[1];
        assert_eq!(second.id, 1);
        assert_eq!(second.flags, vec![UNKNOWN]);
        // The bridged corpus serialises like any other.
        let round = Corpus::from_archive_str(&corpus.to_archive_string()).unwrap();
        assert_eq!(round, corpus);
    }

    #[test]
    fn trace_bridge_rejects_schema_drift() {
        let taxonomy = slj_sim::default_taxonomy();
        let text = trace_line(0, 0, None, None).replace("\"schema\":3", "\"schema\":4");
        let err = ingest_trace(&text, &taxonomy).unwrap_err();
        assert_eq!(err.code, RULE_INGEST);
        assert!(err.message.contains("schema 4"), "{err}");
    }

    #[test]
    fn trace_bridge_rejects_unknown_names_and_empty_streams() {
        let taxonomy = slj_sim::default_taxonomy();
        assert_eq!(ingest_trace("", &taxonomy).unwrap_err().code, RULE_INGEST);
        let bad_pose = trace_line(0, 0, Some("NotAPose"), None);
        assert!(ingest_trace(&bad_pose, &taxonomy)
            .unwrap_err()
            .message
            .contains("unknown pose"));
        let bad_flag = trace_line(0, 0, None, Some("[\"not_a_reason\"]"));
        assert!(ingest_trace(&bad_flag, &taxonomy)
            .unwrap_err()
            .message
            .contains("unknown quality reason"));
    }

    #[test]
    fn json_helpers_parse_flat_records() {
        let line = "{\"a\":3,\"b\":\"x\",\"c\":null,\"d\":0.5}";
        assert_eq!(json_u64(line, "a"), Some(3));
        assert_eq!(json_string(line, "b"), Some("x"));
        assert_eq!(json_string(line, "c"), None);
        assert_eq!(json_f64(line, "d"), Some(0.5));
        assert_eq!(json_flags("{\"quality_flags\":null}", 1).unwrap(), None);
        assert_eq!(json_flags("{\"quality_flags\":[]}", 1).unwrap(), Some(0));
    }
}
