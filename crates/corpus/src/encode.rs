//! Delta + zigzag + bit-packed integer column codec.
//!
//! Archive columns are sequences of small signed integers with strong
//! frame-to-frame correlation (pose indices, stage indices, quantized
//! margins). The codec stores the first value verbatim, then the
//! consecutive deltas zigzag-mapped to unsigned and packed LSB-first at
//! the minimum uniform bit width into 64-bit words, serialized as
//! 16-digit lowercase hex. The representation is exact for every `i64`,
//! so encode → decode is bit-identical by construction.

use crate::{CorpusError, RULE_COLUMN};

/// Maps a signed delta to an unsigned value with small magnitudes small.
fn zigzag(v: i64) -> u64 {
    ((v as u64) << 1) ^ ((v >> 63) as u64)
}

/// Inverse of [`zigzag`].
fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// The encoded form of one column: header fields plus packed words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedColumn {
    /// Number of values in the column.
    pub len: usize,
    /// The first value, stored verbatim.
    pub first: i64,
    /// Uniform bit width of the packed deltas (0 = constant column).
    pub bits: u32,
    /// The packed delta words, LSB-first within each word.
    pub words: Vec<u64>,
}

/// Encodes `values` as first + bit-packed zigzag deltas.
pub fn encode_column(values: &[i64]) -> EncodedColumn {
    let first = values.first().copied().unwrap_or(0);
    let deltas: Vec<u64> = values
        .windows(2)
        .map(|w| zigzag(w[1].wrapping_sub(w[0])))
        .collect();
    let bits = deltas
        .iter()
        .map(|&d| 64 - d.leading_zeros())
        .max()
        .unwrap_or(0);
    let mut words = Vec::new();
    if bits > 0 {
        let total_bits = deltas.len() * bits as usize;
        words = vec![0u64; total_bits.div_ceil(64)];
        for (i, &d) in deltas.iter().enumerate() {
            let bit = i * bits as usize;
            let (word, off) = (bit / 64, (bit % 64) as u32);
            words[word] |= d.wrapping_shl(off);
            if off + bits > 64 {
                words[word + 1] |= d >> (64 - off);
            }
        }
    }
    EncodedColumn {
        len: values.len(),
        first,
        bits,
        words,
    }
}

/// Decodes a column back to its values.
///
/// # Errors
///
/// `corpus/column` when the word count does not match `len` and `bits`
/// (a truncated or padded data block), or when `bits > 64`.
pub fn decode_column(encoded: &EncodedColumn) -> Result<Vec<i64>, CorpusError> {
    if encoded.bits > 64 {
        return Err(CorpusError::new(
            RULE_COLUMN,
            format!("bit width {} exceeds 64", encoded.bits),
        ));
    }
    if encoded.len == 0 {
        if !encoded.words.is_empty() {
            return Err(CorpusError::new(RULE_COLUMN, "empty column carries data"));
        }
        return Ok(Vec::new());
    }
    let deltas = encoded.len - 1;
    let expected_words = if encoded.bits == 0 {
        0
    } else {
        (deltas * encoded.bits as usize).div_ceil(64)
    };
    if encoded.words.len() != expected_words {
        return Err(CorpusError::new(
            RULE_COLUMN,
            format!(
                "column block has {} data word(s), expected {expected_words} \
                 for {deltas} delta(s) at {} bit(s)",
                encoded.words.len(),
                encoded.bits
            ),
        ));
    }
    let mut values = Vec::with_capacity(encoded.len);
    values.push(encoded.first);
    let mask = if encoded.bits == 64 {
        u64::MAX
    } else {
        (1u64 << encoded.bits) - 1
    };
    for i in 0..deltas {
        let delta = if encoded.bits == 0 {
            0
        } else {
            let bit = i * encoded.bits as usize;
            let (word, off) = (bit / 64, (bit % 64) as u32);
            let mut raw = encoded.words[word] >> off;
            if off + encoded.bits > 64 {
                raw |= encoded.words[word + 1].wrapping_shl(64 - off);
            }
            raw & mask
        };
        let prev = values[i];
        values.push(prev.wrapping_add(unzigzag(delta)));
    }
    Ok(values)
}

/// Renders packed words as space-separated 16-digit lowercase hex.
pub fn words_to_hex(words: &[u64]) -> String {
    words
        .iter()
        .map(|w| format!("{w:016x}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Parses a [`words_to_hex`] line back into words.
///
/// # Errors
///
/// `corpus/column` on malformed hex or wrong digit counts.
pub fn hex_to_words(text: &str) -> Result<Vec<u64>, CorpusError> {
    text.split_whitespace()
        .map(|tok| {
            if tok.len() != 16 {
                return Err(CorpusError::new(
                    RULE_COLUMN,
                    format!("data word {tok:?} is not 16 hex digits"),
                ));
            }
            u64::from_str_radix(tok, 16)
                .map_err(|_| CorpusError::new(RULE_COLUMN, format!("bad hex word {tok:?}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[i64]) {
        let encoded = encode_column(values);
        let decoded = decode_column(&encoded).unwrap();
        assert_eq!(decoded, values, "direct round trip");
        let words = hex_to_words(&words_to_hex(&encoded.words)).unwrap();
        assert_eq!(words, encoded.words, "hex round trip");
    }

    #[test]
    fn round_trips_typical_columns() {
        round_trip(&[]);
        round_trip(&[42]);
        round_trip(&[5, 5, 5, 5, 5]);
        round_trip(&[0, 1, 2, 3, 2, 1, 0, -1, -2]);
        round_trip(&[-1, -1, 3, 3, 7, 21, 20, -1]);
        round_trip(&[1_000_000, -2_000_000, 0, 999_999]);
    }

    #[test]
    fn round_trips_extremes() {
        round_trip(&[i64::MIN, i64::MAX, 0, i64::MIN, -1, 1]);
        round_trip(&[i64::MAX; 7]);
    }

    #[test]
    fn round_trips_pseudo_random_columns() {
        // Deterministic LCG sweep over widths and lengths, property-style.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state
        };
        for len in [2usize, 3, 7, 31, 64, 65, 200] {
            for shift in [0u32, 1, 7, 20, 40, 63] {
                let values: Vec<i64> = (0..len).map(|_| (next() >> shift) as i64).collect();
                round_trip(&values);
            }
        }
    }

    #[test]
    fn constant_columns_pack_to_zero_words() {
        let encoded = encode_column(&[9, 9, 9, 9]);
        assert_eq!(encoded.bits, 0);
        assert!(encoded.words.is_empty());
    }

    #[test]
    fn truncated_blocks_are_rejected() {
        let mut encoded = encode_column(&[0, 100, -100, 7_000, 12]);
        assert!(encoded.bits > 0);
        encoded.words.pop();
        let err = decode_column(&encoded).unwrap_err();
        assert_eq!(err.code, RULE_COLUMN);
        let padded = EncodedColumn {
            words: vec![0, 0, 0],
            ..encode_column(&[1, 2])
        };
        assert_eq!(decode_column(&padded).unwrap_err().code, RULE_COLUMN);
    }

    #[test]
    fn bad_hex_is_rejected() {
        assert_eq!(hex_to_words("zzzz").unwrap_err().code, RULE_COLUMN);
        assert_eq!(hex_to_words("abc").unwrap_err().code, RULE_COLUMN);
        assert_eq!(
            hex_to_words("00000000000000ff 00000000000000")
                .unwrap_err()
                .code,
            RULE_COLUMN
        );
    }

    #[test]
    fn zigzag_orders_by_magnitude() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for v in [-5i64, 0, 3, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
