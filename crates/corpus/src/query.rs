//! Batch mining over a parsed [`Corpus`]: a small predicate language,
//! clip-parallel evaluation, and whole-archive statistics.
//!
//! A query is a whitespace-separated conjunction of predicates, e.g.
//!
//! ```text
//! fault=knee_bend stage=landing min_run=5
//! clip_score<0.8 flag=temporal_jump
//! ```
//!
//! Keys and operators:
//!
//! | key          | ops              | matches clips where…                        |
//! |--------------|------------------|---------------------------------------------|
//! | `fault`      | `=`              | the named fault rule fired                  |
//! | `stage`      | `=`              | some decoded frame is in the named stage    |
//! | `pose`       | `=`              | some decoded frame shows the named pose     |
//! | `flag`       | `=`              | some frame raised the named quality reason  |
//! | `min_run`    | `=`              | a fault span (of a `fault=` rule if given)  |
//! |              |                  | lasts at least N frames                     |
//! | `clip_score` | `=` `<` `<=` `>` `>=` | the clip quality score compares so    |
//! | `margin`     | `=` `<` `<=` `>` `>=` | the clip's minimum `Th_Pose` margin   |
//! |              |                  | compares so                                 |
//!
//! Numeric comparisons happen in micro-units on both sides, so they are
//! exact; evaluation fans clips out over the [`ThreadPool`] and merges
//! in input order, so reports are bit-identical at every thread count.

use crate::record::{ClipRecord, Corpus, MICRO, UNKNOWN};
use crate::{CorpusError, RULE_QUERY};
use slj_obs::{JsonWriter, Registry, Stopwatch};
use slj_quality::Reason;
use slj_runtime::ThreadPool;
use slj_taxonomy::Taxonomy;

/// Report schema version for `QueryReport::to_json` / `ArchiveStats::to_json`.
pub const QUERY_SCHEMA_VERSION: u64 = 1;

/// Comparison operator of a numeric predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Eq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Op {
    fn apply(self, lhs: i64, rhs: i64) -> bool {
        match self {
            Op::Eq => lhs == rhs,
            Op::Lt => lhs < rhs,
            Op::Le => lhs <= rhs,
            Op::Gt => lhs > rhs,
            Op::Ge => lhs >= rhs,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            Op::Eq => "=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
        }
    }
}

/// One parsed predicate; idents stay unresolved until evaluation binds
/// them against the archive's taxonomy.
#[derive(Debug, Clone, PartialEq)]
enum Predicate {
    Fault(String),
    Stage(String),
    Pose(String),
    Flag(String),
    MinRun(u32),
    ClipScore(Op, i64),
    Margin(Op, i64),
}

/// A parsed conjunction of predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    predicates: Vec<Predicate>,
    text: String,
}

fn query_err(message: impl Into<String>) -> CorpusError {
    CorpusError::new(RULE_QUERY, message)
}

fn split_token(token: &str) -> Result<(&str, Op, &str), CorpusError> {
    for (symbol, op) in [
        ("<=", Op::Le),
        (">=", Op::Ge),
        ("<", Op::Lt),
        (">", Op::Gt),
        ("=", Op::Eq),
    ] {
        if let Some(at) = token.find(symbol) {
            let (key, rest) = token.split_at(at);
            let value = &rest[symbol.len()..];
            if key.is_empty() || value.is_empty() {
                return Err(query_err(format!(
                    "predicate {token:?} needs both a key and a value"
                )));
            }
            return Ok((key, op, value));
        }
    }
    Err(query_err(format!(
        "predicate {token:?} has no operator (=, <, <=, >, >=)"
    )))
}

fn parse_micro(key: &str, value: &str) -> Result<i64, CorpusError> {
    let v: f64 = value
        .parse()
        .map_err(|_| query_err(format!("{key} value {value:?} is not a number")))?;
    if !v.is_finite() {
        return Err(query_err(format!("{key} value {value:?} is not finite")));
    }
    Ok((v * MICRO).round() as i64)
}

fn require_eq(key: &str, op: Op) -> Result<(), CorpusError> {
    if op == Op::Eq {
        Ok(())
    } else {
        Err(query_err(format!(
            "{key} only supports '=', not {:?}",
            op.symbol()
        )))
    }
}

impl Query {
    /// Parses a whitespace-separated predicate conjunction.
    ///
    /// # Errors
    ///
    /// `corpus/query` on an empty query, an unknown key, an operator a
    /// key does not support, or a malformed numeric value.
    pub fn parse(text: &str) -> Result<Query, CorpusError> {
        let mut predicates = Vec::new();
        for token in text.split_whitespace() {
            let (key, op, value) = split_token(token)?;
            let predicate = match key {
                "fault" => {
                    require_eq(key, op)?;
                    Predicate::Fault(value.to_string())
                }
                "stage" => {
                    require_eq(key, op)?;
                    Predicate::Stage(value.to_string())
                }
                "pose" => {
                    require_eq(key, op)?;
                    Predicate::Pose(value.to_string())
                }
                "flag" => {
                    require_eq(key, op)?;
                    Predicate::Flag(value.to_string())
                }
                "min_run" => {
                    require_eq(key, op)?;
                    let n: u32 = value.parse().map_err(|_| {
                        query_err(format!("min_run value {value:?} is not a frame count"))
                    })?;
                    if n == 0 {
                        return Err(query_err("min_run must be at least 1"));
                    }
                    Predicate::MinRun(n)
                }
                "clip_score" => Predicate::ClipScore(op, parse_micro(key, value)?),
                "margin" => Predicate::Margin(op, parse_micro(key, value)?),
                _ => {
                    return Err(query_err(format!(
                        "unknown key {key:?} (expected fault, stage, pose, flag, \
                         min_run, clip_score or margin)"
                    )))
                }
            };
            predicates.push(predicate);
        }
        if predicates.is_empty() {
            return Err(query_err("query has no predicates"));
        }
        Ok(Query {
            predicates,
            text: text.split_whitespace().collect::<Vec<_>>().join(" "),
        })
    }

    /// The normalized query text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Resolves idents against `taxonomy`, producing the matcher.
    fn bind(&self, taxonomy: &Taxonomy) -> Result<Bound, CorpusError> {
        let mut bound = Bound::default();
        for predicate in &self.predicates {
            match predicate {
                Predicate::Fault(ident) => {
                    let rule = taxonomy
                        .faults()
                        .iter()
                        .position(|r| r.ident == *ident)
                        .ok_or_else(|| {
                            query_err(format!("taxonomy has no fault rule {ident:?}"))
                        })?;
                    bound.faults.push(rule as u32);
                }
                Predicate::Stage(ident) => {
                    let stage = taxonomy
                        .stage_index(ident)
                        .ok_or_else(|| query_err(format!("taxonomy has no stage {ident:?}")))?;
                    bound.stages.push(stage as i64);
                }
                Predicate::Pose(ident) => {
                    let pose = taxonomy
                        .pose_index(ident)
                        .ok_or_else(|| query_err(format!("taxonomy has no pose {ident:?}")))?;
                    bound.poses.push(pose as i64);
                }
                Predicate::Flag(code) => {
                    let reason = Reason::from_code(code).ok_or_else(|| {
                        query_err(format!("unknown quality reason code {code:?}"))
                    })?;
                    bound.flag_bits.push(reason.bit());
                }
                Predicate::MinRun(n) => {
                    bound.min_run = Some(bound.min_run.map_or(*n, |m: u32| m.max(*n)));
                }
                Predicate::ClipScore(op, micro) => bound.scores.push((*op, *micro)),
                Predicate::Margin(op, micro) => bound.margins.push((*op, *micro)),
            }
        }
        Ok(bound)
    }

    /// Evaluates the query clip-parallel over `pool`.
    ///
    /// When `registry` is given, records `corpus.query.clips`,
    /// `corpus.query.matched` and `corpus.query.eval_ns`.
    ///
    /// # Errors
    ///
    /// `corpus/query` when an ident does not resolve in the archive's
    /// taxonomy, or on a worker-pool fault.
    pub fn evaluate(
        &self,
        corpus: &Corpus,
        pool: &ThreadPool,
        registry: Option<&Registry>,
    ) -> Result<QueryReport, CorpusError> {
        let watch = Stopwatch::start();
        let bound = self.bind(&corpus.taxonomy)?;
        let verdicts = pool
            .scoped_map(&corpus.clips, |_, clip| bound.matches(clip))
            .map_err(|e| query_err(format!("worker pool: {e}")))?;
        let mut matches = Vec::new();
        let mut cohorts: Vec<Cohort> = corpus
            .taxonomy
            .faults()
            .iter()
            .map(|r| Cohort {
                ident: r.ident.clone(),
                clips: 0,
                scored: 0,
                score_micro_sum: 0,
            })
            .collect();
        for (clip, hit) in corpus.clips.iter().zip(&verdicts) {
            if !hit {
                continue;
            }
            for &rule in &clip.fired {
                let cohort = &mut cohorts[rule as usize];
                cohort.clips += 1;
                if clip.score_micro >= 0 {
                    cohort.scored += 1;
                    cohort.score_micro_sum += i128::from(clip.score_micro);
                }
            }
            matches.push(MatchedClip {
                id: clip.id,
                source: clip.source.clone(),
                seed: clip.seed,
                frames: clip.frames() as u64,
                score_micro: clip.score_micro,
                faults: clip
                    .fired
                    .iter()
                    .map(|&r| corpus.taxonomy.faults()[r as usize].ident.clone())
                    .collect(),
            });
        }
        if let Some(registry) = registry {
            registry
                .counter("corpus.query.clips")
                .add(corpus.clips.len() as u64);
            registry
                .counter("corpus.query.matched")
                .add(matches.len() as u64);
            registry
                .histogram("corpus.query.eval_ns")
                .record(watch.elapsed_ns());
        }
        Ok(QueryReport {
            query: self.text.clone(),
            clips_scanned: corpus.clips.len() as u64,
            matches,
            cohorts,
        })
    }
}

/// The ident-resolved matcher.
#[derive(Debug, Default)]
struct Bound {
    faults: Vec<u32>,
    stages: Vec<i64>,
    poses: Vec<i64>,
    flag_bits: Vec<u32>,
    min_run: Option<u32>,
    scores: Vec<(Op, i64)>,
    margins: Vec<(Op, i64)>,
}

impl Bound {
    fn matches(&self, clip: &ClipRecord) -> bool {
        for &rule in &self.faults {
            if !clip.fired.contains(&rule) {
                return false;
            }
            if let Some(n) = self.min_run {
                let long_enough = clip.spans.iter().any(|s| s.rule == rule && s.len() >= n);
                if !long_enough {
                    return false;
                }
            }
        }
        if self.faults.is_empty() {
            if let Some(n) = self.min_run {
                if !clip.spans.iter().any(|s| s.len() >= n) {
                    return false;
                }
            }
        }
        if !self
            .stages
            .iter()
            .all(|s| clip.stage.iter().any(|f| f == s))
        {
            return false;
        }
        if !self.poses.iter().all(|p| clip.pose.iter().any(|f| f == p)) {
            return false;
        }
        let flag_hit = |bit: u32| {
            clip.flags
                .iter()
                .any(|&m| m != UNKNOWN && (m as u64) & u64::from(bit) != 0)
        };
        if !self.flag_bits.iter().all(|&b| flag_hit(b)) {
            return false;
        }
        for &(op, micro) in &self.scores {
            if clip.score_micro < 0 || !op.apply(clip.score_micro, micro) {
                return false;
            }
        }
        if !self.margins.is_empty() {
            let Some(&min_margin) = clip.margin.iter().min() else {
                return false;
            };
            if !self.margins.iter().all(|&(op, m)| op.apply(min_margin, m)) {
                return false;
            }
        }
        true
    }
}

/// One matched clip in a [`QueryReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct MatchedClip {
    /// Archive clip id.
    pub id: u64,
    /// Source label.
    pub source: String,
    /// Replay seed.
    pub seed: u64,
    /// Frame count.
    pub frames: u64,
    /// Quality score in micro-units, [`UNKNOWN`] when unscored.
    pub score_micro: i64,
    /// Idents of the fault rules the clip fired.
    pub faults: Vec<String>,
}

/// Per-fault-rule aggregate over the matched clips.
#[derive(Debug, Clone, PartialEq)]
struct Cohort {
    ident: String,
    clips: u64,
    scored: u64,
    score_micro_sum: i128,
}

/// The result of evaluating a [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReport {
    /// Normalized query text.
    pub query: String,
    /// Total clips examined.
    pub clips_scanned: u64,
    /// Matched clips, in archive order.
    pub matches: Vec<MatchedClip>,
    cohorts: Vec<Cohort>,
}

impl QueryReport {
    /// Number of matched clips.
    pub fn matched(&self) -> u64 {
        self.matches.len() as u64
    }

    /// Renders the report as deterministic JSON, listing at most
    /// `limit` matched clips (aggregates always cover every match).
    pub fn to_json(&self, limit: usize) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema");
        w.u64(QUERY_SCHEMA_VERSION);
        w.key("query");
        w.string(&self.query);
        w.key("clips_scanned");
        w.u64(self.clips_scanned);
        w.key("clips_matched");
        w.u64(self.matched());
        w.key("listed");
        w.u64(self.matches.len().min(limit) as u64);
        w.key("matches");
        w.begin_array();
        for clip in self.matches.iter().take(limit) {
            w.begin_object();
            w.key("id");
            w.u64(clip.id);
            w.key("source");
            w.string(&clip.source);
            w.key("seed");
            w.u64(clip.seed);
            w.key("frames");
            w.u64(clip.frames);
            w.key("score");
            if clip.score_micro >= 0 {
                w.f64(clip.score_micro as f64 / MICRO);
            } else {
                w.null();
            }
            w.key("faults");
            w.begin_array();
            for ident in &clip.faults {
                w.string(ident);
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.key("cohorts");
        w.begin_object();
        for cohort in &self.cohorts {
            if cohort.clips == 0 {
                continue;
            }
            w.key(&cohort.ident);
            w.begin_object();
            w.key("clips");
            w.u64(cohort.clips);
            w.key("mean_score");
            if cohort.scored > 0 {
                let mean = cohort.score_micro_sum as f64 / cohort.scored as f64 / MICRO;
                w.f64(mean);
            } else {
                w.null();
            }
            w.end_object();
        }
        w.end_object();
        w.end_object();
        w.finish()
    }
}

/// Whole-archive aggregates, computed clip-parallel.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveStats {
    /// Clip count.
    pub clips: u64,
    /// Total frames.
    pub frames: u64,
    /// Clips carrying a quality score.
    pub scored_clips: u64,
    /// Mean quality score over scored clips, micro-units.
    pub mean_score_micro: i64,
    /// Frames whose decoded pose is [`UNKNOWN`].
    pub unknown_pose_frames: u64,
    /// Frames with at least one quality flag raised.
    pub flagged_frames: u64,
    /// Decoded frames per stage, indexed like the taxonomy's stages.
    pub stage_frames: Vec<u64>,
    /// Decoded frames per pose, indexed like the taxonomy's poses.
    pub pose_frames: Vec<u64>,
    /// Clips firing each fault rule, indexed like `taxonomy.faults()`.
    pub fault_clips: Vec<u64>,
    /// Idents for the rows above, copied from the taxonomy.
    pub stage_idents: Vec<String>,
    /// Pose idents, copied from the taxonomy.
    pub pose_idents: Vec<String>,
    /// Fault idents, copied from the taxonomy.
    pub fault_idents: Vec<String>,
}

#[derive(Default)]
struct StatsPartial {
    frames: u64,
    scored: u64,
    score_micro_sum: i128,
    unknown_pose: u64,
    flagged: u64,
    stage_frames: Vec<u64>,
    pose_frames: Vec<u64>,
    fault_clips: Vec<u64>,
}

impl ArchiveStats {
    /// Scans the archive, fanning clips out over `pool`. The merge is
    /// sequential in clip order, so results are thread-count-invariant.
    ///
    /// # Errors
    ///
    /// `corpus/query` on a worker-pool fault.
    pub fn compute(corpus: &Corpus, pool: &ThreadPool) -> Result<ArchiveStats, CorpusError> {
        let stages = corpus.taxonomy.stage_count();
        let poses = corpus.taxonomy.pose_count();
        let rules = corpus.taxonomy.faults().len();
        let partials = pool
            .scoped_map(&corpus.clips, |_, clip| {
                let mut p = StatsPartial {
                    stage_frames: vec![0; stages],
                    pose_frames: vec![0; poses],
                    fault_clips: vec![0; rules],
                    ..StatsPartial::default()
                };
                p.frames = clip.frames() as u64;
                if clip.score_micro >= 0 {
                    p.scored = 1;
                    p.score_micro_sum = i128::from(clip.score_micro);
                }
                for &v in &clip.pose {
                    match usize::try_from(v) {
                        Ok(pose) => p.pose_frames[pose] += 1,
                        Err(_) => p.unknown_pose += 1,
                    }
                }
                for &v in &clip.stage {
                    if let Ok(stage) = usize::try_from(v) {
                        p.stage_frames[stage] += 1;
                    }
                }
                p.flagged = clip.flags.iter().filter(|&&m| m > 0).count() as u64;
                for &rule in &clip.fired {
                    p.fault_clips[rule as usize] += 1;
                }
                p
            })
            .map_err(|e| query_err(format!("worker pool: {e}")))?;
        let mut stats = ArchiveStats {
            clips: corpus.clips.len() as u64,
            frames: 0,
            scored_clips: 0,
            mean_score_micro: 0,
            unknown_pose_frames: 0,
            flagged_frames: 0,
            stage_frames: vec![0; stages],
            pose_frames: vec![0; poses],
            fault_clips: vec![0; rules],
            stage_idents: (0..stages)
                .map(|s| corpus.taxonomy.stage_ident(s).to_string())
                .collect(),
            pose_idents: (0..poses)
                .map(|p| corpus.taxonomy.pose_ident(p).to_string())
                .collect(),
            fault_idents: corpus
                .taxonomy
                .faults()
                .iter()
                .map(|r| r.ident.clone())
                .collect(),
        };
        let mut score_sum: i128 = 0;
        for p in &partials {
            stats.frames += p.frames;
            stats.scored_clips += p.scored;
            score_sum += p.score_micro_sum;
            stats.unknown_pose_frames += p.unknown_pose;
            stats.flagged_frames += p.flagged;
            for (acc, v) in stats.stage_frames.iter_mut().zip(&p.stage_frames) {
                *acc += v;
            }
            for (acc, v) in stats.pose_frames.iter_mut().zip(&p.pose_frames) {
                *acc += v;
            }
            for (acc, v) in stats.fault_clips.iter_mut().zip(&p.fault_clips) {
                *acc += v;
            }
        }
        if stats.scored_clips > 0 {
            stats.mean_score_micro = (score_sum / i128::from(stats.scored_clips)) as i64;
        }
        Ok(stats)
    }

    /// Renders the stats as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema");
        w.u64(QUERY_SCHEMA_VERSION);
        w.key("clips");
        w.u64(self.clips);
        w.key("frames");
        w.u64(self.frames);
        w.key("scored_clips");
        w.u64(self.scored_clips);
        w.key("mean_score");
        if self.scored_clips > 0 {
            w.f64(self.mean_score_micro as f64 / MICRO);
        } else {
            w.null();
        }
        w.key("unknown_pose_frames");
        w.u64(self.unknown_pose_frames);
        w.key("flagged_frames");
        w.u64(self.flagged_frames);
        for (key, idents, rows) in [
            ("stages", &self.stage_idents, &self.stage_frames),
            ("poses", &self.pose_idents, &self.pose_frames),
            ("faults", &self.fault_idents, &self.fault_clips),
        ] {
            w.key(key);
            w.begin_object();
            for (ident, count) in idents.iter().zip(rows) {
                w.key(ident);
                w.u64(*count);
            }
            w.end_object();
        }
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FaultSpan;

    fn sample_corpus() -> Corpus {
        let taxonomy = slj_sim::default_taxonomy();
        let rules = taxonomy.faults().len() as u32;
        assert!(rules >= 1, "default taxonomy must define fault rules");
        let clip = |id: u64, score: i64, fired: Vec<u32>, spans: Vec<FaultSpan>| ClipRecord {
            id,
            source: format!("clip_{id:03}"),
            seed: id,
            score_micro: score,
            pose: vec![0, 0, UNKNOWN, 1],
            stage: vec![0, 0, 0, 0],
            online: vec![0, UNKNOWN, UNKNOWN, 1],
            margin: vec![200_000, -5_000, 1_000, 90_000],
            flags: vec![0, 2, UNKNOWN, 0],
            fired,
            spans,
        };
        Corpus {
            taxonomy,
            clips: vec![
                clip(0, 950_000, vec![], vec![]),
                clip(
                    1,
                    600_000,
                    vec![0],
                    vec![FaultSpan {
                        rule: 0,
                        start: 0,
                        end: 2,
                    }],
                ),
                clip(
                    2,
                    UNKNOWN,
                    vec![0],
                    vec![FaultSpan {
                        rule: 0,
                        start: 1,
                        end: 1,
                    }],
                ),
            ],
        }
    }

    #[test]
    fn parse_accepts_the_documented_language() {
        let q = Query::parse("  fault=knee_bend   stage=landing min_run=5 ").unwrap();
        assert_eq!(q.text(), "fault=knee_bend stage=landing min_run=5");
        Query::parse("clip_score<0.8").unwrap();
        Query::parse("clip_score>=0.25 margin>0").unwrap();
    }

    #[test]
    fn parse_rejects_malformed_queries() {
        for bad in [
            "",
            "   ",
            "fault",
            "fault=",
            "=x",
            "weirdkey=3",
            "fault<knee_bend",
            "min_run=0",
            "min_run=abc",
            "clip_score<abc",
            "clip_score<inf",
        ] {
            let err = Query::parse(bad).unwrap_err();
            assert_eq!(err.code, RULE_QUERY, "query {bad:?}");
        }
    }

    #[test]
    fn evaluate_filters_by_fault_and_span_length() {
        let corpus = sample_corpus();
        let pool = ThreadPool::fixed(2);
        let fault = corpus.taxonomy.faults()[0].ident.clone();
        let q = Query::parse(&format!("fault={fault}")).unwrap();
        let report = q.evaluate(&corpus, &pool, None).unwrap();
        assert_eq!(report.matched(), 2);
        assert_eq!(report.matches[0].id, 1);
        let q = Query::parse(&format!("fault={fault} min_run=3")).unwrap();
        let report = q.evaluate(&corpus, &pool, None).unwrap();
        assert_eq!(report.matched(), 1);
        assert_eq!(report.matches[0].id, 1);
    }

    #[test]
    fn evaluate_filters_by_score_flags_and_margin() {
        let corpus = sample_corpus();
        let pool = ThreadPool::fixed(1);
        let report = Query::parse("clip_score<0.8")
            .unwrap()
            .evaluate(&corpus, &pool, None)
            .unwrap();
        // Clip 2 is unscored, so only clip 1 qualifies.
        assert_eq!(report.matched(), 1);
        assert_eq!(report.matches[0].id, 1);
        let code = Reason::ALL[1].code();
        let report = Query::parse(&format!("flag={code}"))
            .unwrap()
            .evaluate(&corpus, &pool, None)
            .unwrap();
        assert_eq!(report.matched(), 3, "all clips raise flag bit 2");
        let report = Query::parse("margin>=0")
            .unwrap()
            .evaluate(&corpus, &pool, None)
            .unwrap();
        assert_eq!(report.matched(), 0, "every clip has a negative min margin");
        let report = Query::parse("margin>=-0.005")
            .unwrap()
            .evaluate(&corpus, &pool, None)
            .unwrap();
        assert_eq!(report.matched(), 3);
    }

    #[test]
    fn evaluate_rejects_unknown_idents() {
        let corpus = sample_corpus();
        let pool = ThreadPool::fixed(1);
        for bad in ["fault=nope", "stage=nope", "pose=nope", "flag=nope"] {
            let err = Query::parse(bad)
                .unwrap()
                .evaluate(&corpus, &pool, None)
                .unwrap_err();
            assert_eq!(err.code, RULE_QUERY, "query {bad:?}");
        }
    }

    #[test]
    fn reports_are_thread_count_invariant() {
        let corpus = sample_corpus();
        let fault = corpus.taxonomy.faults()[0].ident.clone();
        let q = Query::parse(&format!("fault={fault} clip_score<=1.0")).unwrap();
        let one = q
            .evaluate(&corpus, &ThreadPool::fixed(1), None)
            .unwrap()
            .to_json(usize::MAX);
        let eight = q
            .evaluate(&corpus, &ThreadPool::fixed(8), None)
            .unwrap()
            .to_json(usize::MAX);
        assert_eq!(one, eight);
        let s1 = ArchiveStats::compute(&corpus, &ThreadPool::fixed(1)).unwrap();
        let s8 = ArchiveStats::compute(&corpus, &ThreadPool::fixed(8)).unwrap();
        assert_eq!(s1.to_json(), s8.to_json());
    }

    #[test]
    fn stats_aggregate_the_archive() {
        let corpus = sample_corpus();
        let stats = ArchiveStats::compute(&corpus, &ThreadPool::fixed(2)).unwrap();
        assert_eq!(stats.clips, 3);
        assert_eq!(stats.frames, 12);
        assert_eq!(stats.scored_clips, 2);
        assert_eq!(stats.mean_score_micro, 775_000);
        assert_eq!(stats.unknown_pose_frames, 3);
        assert_eq!(stats.flagged_frames, 3);
        assert_eq!(stats.fault_clips[0], 2);
        let json = stats.to_json();
        assert!(json.starts_with("{\"schema\":1,\"clips\":3,"), "{json}");
        assert!(json.contains("\"mean_score\":0.775"), "{json}");
    }

    #[test]
    fn query_report_json_lists_and_truncates() {
        let corpus = sample_corpus();
        let pool = ThreadPool::fixed(1);
        let fault = corpus.taxonomy.faults()[0].ident.clone();
        let report = Query::parse(&format!("fault={fault}"))
            .unwrap()
            .evaluate(&corpus, &pool, None)
            .unwrap();
        let full = report.to_json(usize::MAX);
        assert!(full.contains("\"clips_matched\":2"), "{full}");
        assert!(
            full.contains(&format!("\"cohorts\":{{\"{fault}\":{{\"clips\":2")),
            "{full}"
        );
        let truncated = report.to_json(1);
        assert!(truncated.contains("\"listed\":1"), "{truncated}");
        assert!(truncated.contains("\"clips_matched\":2"), "{truncated}");
    }
}
