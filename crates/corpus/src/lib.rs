//! Columnar decision-record archives for batch mining and replay.
//!
//! The online pipeline answers one clip at a time; evaluating a *season*
//! of recordings needs the opposite shape — run every stored clip
//! through the pipeline once, keep the per-frame decisions in a compact
//! queryable form, and mine them later without re-decoding video. This
//! crate provides that layer in four pieces:
//!
//! - [`ingest`] — batch-runs stored clip directories through the
//!   [`slj_runtime::ThreadPool`], replaying each clip through a
//!   [`slj_core::engine::JumpSession`] for the online decisions and
//!   quality score, then re-decoding the collected feature sequence
//!   offline with the model's Viterbi decoder
//!   ([`slj_core::model::PoseModel::decode_clip`]). A recorded
//!   `slj trace` JSONL stream (schema 3) is accepted as an alternative
//!   source, so production traces are minable without the frames.
//! - [`archive`] — the versioned `slj-corpus v1` text format: one
//!   delta/bit-packed column block per per-frame series (decoded pose
//!   and stage, online pose, `Th_Pose` margin, quality flags), a
//!   per-clip fault-span table, the owning [`slj_taxonomy::Taxonomy`]
//!   embedded verbatim, and a trailing footer index over the clips.
//!   Parsing is strict: every failure carries a `corpus/*` rule code.
//! - [`query`] — a small predicate language
//!   (`fault=knee_bend min_run=5 clip_score<0.8`) evaluated clip-parallel
//!   over an archive with bit-identical results at every thread count,
//!   plus whole-archive stats aggregation.
//! - [`record`] — the in-memory row model shared by all of the above.
//!
//! Everything is dependency-free and deterministic: the same archive
//! bytes parse to the same records, and the same query over the same
//! archive renders the same report at 1 thread or 8.

pub mod archive;
pub mod encode;
pub mod ingest;
pub mod query;
pub mod record;

pub use archive::MAGIC;
pub use ingest::{
    ingest_stored_clips, ingest_trace, IngestClip, IngestOptions, BRIDGE_TRACE_SCHEMA,
};
pub use query::{ArchiveStats, Query, QueryReport};
pub use record::{ClipRecord, Corpus, FaultSpan};

use std::fmt;

/// Error codes, mirroring the `taxonomy/*` artifact style: every way an
/// archive or query can be rejected has a stable `corpus/*` rule code.
pub const RULE_MAGIC: &str = "corpus/magic";
/// Structural errors: unknown/missing lines, bad key=value fields.
pub const RULE_FORMAT: &str = "corpus/format";
/// Column-block errors: bad width, word-count mismatch, non-hex data.
pub const RULE_COLUMN: &str = "corpus/column";
/// Footer errors: clip/frame counts or index lines disagreeing with the body.
pub const RULE_FOOTER: &str = "corpus/footer";
/// Embedded-taxonomy errors, including out-of-range pose/stage/rule indices.
pub const RULE_TAXONOMY: &str = "corpus/taxonomy";
/// Query-language parse errors.
pub const RULE_QUERY: &str = "corpus/query";
/// Ingestion-source errors (pipeline failures, bad trace records).
pub const RULE_INGEST: &str = "corpus/ingest";

/// An error from the corpus layer, tagged with its `corpus/*` rule code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusError {
    /// Stable rule code (`corpus/magic`, `corpus/column`, ...).
    pub code: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl CorpusError {
    /// Builds an error with the given rule code.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        CorpusError {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for CorpusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_includes_rule_code() {
        let err = CorpusError::new(RULE_MAGIC, "not an archive");
        assert_eq!(err.to_string(), "corpus/magic: not an archive");
    }
}
