//! E3 — skeleton-graph clean-up ablation (paper Figures 2–4).
//!
//! Figure 2 shows the raw thinning defects (loops, corners, redundant
//! branches); Figure 3 the maximum-spanning-tree loop cut; Figure 4 the
//! one-branch-at-a-time pruning. This experiment counts those defects on
//! real extracted silhouettes after each clean-up stage.

use slj_bench::{print_table, MASTER_SEED};
use slj_core::config::PipelineConfig;
use slj_core::pipeline::FrameProcessor;
use slj_sim::{ClipSpec, JumpSimulator, NoiseConfig};
use slj_skeleton::pipeline::{SkeletonConfig, SkeletonPipeline};
use slj_skeleton::prune::short_branch_count;

fn main() {
    let sim = JumpSimulator::new(MASTER_SEED);
    let clip = sim.generate_clip(&ClipSpec {
        total_frames: 44,
        seed: 3,
        noise: NoiseConfig::default(),
        ..ClipSpec::default()
    });
    let core_config = PipelineConfig::default();
    let mut processor =
        FrameProcessor::new(clip.background.clone(), &core_config).expect("processor");

    let configs: [(&str, SkeletonConfig); 3] = [
        (
            "thinning only",
            SkeletonConfig {
                cut_loops: false,
                prune: false,
                ..SkeletonConfig::default()
            },
        ),
        (
            "+ loop cut (Fig 3)",
            SkeletonConfig {
                cut_loops: true,
                prune: false,
                ..SkeletonConfig::default()
            },
        ),
        ("+ pruning (Fig 4)", SkeletonConfig::default()),
    ];

    let mut rows = Vec::new();
    for (label, sk_config) in configs {
        let pipeline = SkeletonPipeline::new(sk_config);
        let mut adjacent = 0usize;
        let mut loops = 0usize;
        let mut short_branches = 0usize;
        let mut pixels = 0usize;
        let n = clip.frames.len();
        for frame in &clip.frames {
            let silhouette = processor.extract_silhouette(frame).expect("extract");
            let result = pipeline.run(&silhouette);
            adjacent += result.stats.adjacent_junctions_before;
            loops += result.graph.cycle_rank();
            short_branches += short_branch_count(&result.graph, sk_config.min_branch_len);
            pixels += result.skeleton.count_ones();
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", adjacent as f64 / n as f64),
            format!("{:.2}", loops as f64 / n as f64),
            format!("{:.2}", short_branches as f64 / n as f64),
            format!("{:.0}", pixels as f64 / n as f64),
        ]);
    }
    print_table(
        "E3: skeleton defects per frame after each clean-up stage (paper Figures 2-4)",
        &[
            "stage",
            "adj. junctions (raw thinning)",
            "loops remaining",
            "short branches remaining",
            "skeleton px",
        ],
        &rows,
    );
    println!("expected shape: loop cut drives loops to 0; pruning drives short branches to 0");
}
