//! E1 — the paper's headline evaluation (Section 5).
//!
//! "Twelve video clips are used as the training set and three others are
//! used as the test set [...] 522 frames in the training set and 135
//! frames in the test set. [...] The overall accuracy is from 81% to 87%
//! for the three test video clips."

use slj_bench::{default_setup, pct, print_table, run_headline, MASTER_SEED};

fn main() {
    let (noise, config) = default_setup();
    let result = run_headline(MASTER_SEED, &noise, &config).expect("headline run");
    let mut rows: Vec<Vec<String>> = result
        .per_clip
        .iter()
        .enumerate()
        .map(|(i, &acc)| {
            vec![
                format!("test clip {}", i + 1),
                result.report.clips[i].total.to_string(),
                pct(acc),
                "81%-87%".to_string(),
            ]
        })
        .collect();
    rows.push(vec![
        "overall".into(),
        result
            .report
            .clips
            .iter()
            .map(|c| c.total)
            .sum::<usize>()
            .to_string(),
        pct(result.overall),
        "81%-87%".into(),
    ]);
    print_table(
        "E1: per-clip pose-estimation accuracy (paper Section 5)",
        &["clip", "frames", "measured", "paper"],
        &rows,
    );
    println!(
        "unknown frames: {}   (12 train clips / 522 frames, 3 test clips / 135 frames)",
        result.unknown
    );
    let in_band = result
        .per_clip
        .iter()
        .filter(|&&a| (0.78..=0.92).contains(&a))
        .count();
    println!("clips within +/-3pp of the paper's band: {in_band}/3");
}
