//! E5 — the value of the temporal structure (paper Figure 7).
//!
//! Figure 7(a) is the static per-pose BN; Figure 7(b) adds the previous
//! pose and the jumping-stage flag. The paper argues both additions are
//! needed ("poses belonging to 'before jumping' and poses belonging to
//! 'landing' cannot occur consecutively"). This experiment ablates them,
//! and additionally compares the two evidence pathways (part assignments
//! vs area occupancy through the noisy-OR nodes).

use slj_bench::{pct, print_table, run_headline, MASTER_SEED};
use slj_core::config::{ObservationMode, PipelineConfig, TemporalMode};
use slj_sim::NoiseConfig;

fn main() {
    let noise = NoiseConfig::default();
    let mut rows = Vec::new();
    for (label, mode) in [
        ("static BN (Fig 7a)", TemporalMode::Static),
        ("+ previous pose", TemporalMode::PrevPose),
        ("+ stage flag = full DBN (Fig 7b)", TemporalMode::Full),
    ] {
        let config = PipelineConfig {
            temporal: mode,
            ..PipelineConfig::default()
        };
        let result = run_headline(MASTER_SEED, &noise, &config).expect("run");
        rows.push(vec![
            label.to_string(),
            result
                .per_clip
                .iter()
                .map(|&a| pct(a))
                .collect::<Vec<_>>()
                .join(" / "),
            pct(result.overall),
        ]);
    }
    print_table(
        "E5a: temporal-structure ablation (paper Figure 7)",
        &["model", "per-clip accuracy", "overall"],
        &rows,
    );
    println!("expected shape: temporal structure dominates (static BN collapses).");
    println!("note: the stage flag's increment sits within seed noise here, because the");
    println!("learned pose-transition matrix already encodes the stage order implicitly");
    println!("(training sequences never cross stages backwards).");

    let mut rows2 = Vec::new();
    for (label, obs) in [
        (
            "part assignments (testing-phase reading)",
            ObservationMode::PartAssignment,
        ),
        (
            "area occupancy via noisy-OR (literal Fig 7)",
            ObservationMode::AreaOccupancy,
        ),
    ] {
        let config = PipelineConfig {
            observation: obs,
            ..PipelineConfig::default()
        };
        let result = run_headline(MASTER_SEED, &noise, &config).expect("run");
        rows2.push(vec![label.to_string(), pct(result.overall)]);
    }
    print_table(
        "E5b: evidence-pathway comparison",
        &["observation model", "overall accuracy"],
        &rows2,
    );
    println!("expected shape: part assignments beat occupancy-only evidence");
}
