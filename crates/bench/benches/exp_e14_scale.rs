//! E14 — jumper-size invariance (extension).
//!
//! The paper's feature encoding is purely angular: key points are coded
//! by which area of the waist-centred plane they occupy, so the features
//! should be invariant to the jumper's size. This experiment verifies
//! that design property end-to-end: train on medium-sized jumpers, test
//! on smaller and larger ones.

use slj_bench::{pct, print_table, MASTER_SEED};
use slj_core::config::PipelineConfig;
use slj_core::evaluation::evaluate;
use slj_core::training::Trainer;
use slj_sim::{ClipSpec, JumpSimulator, NoiseConfig};

fn main() {
    let sim = JumpSimulator::new(MASTER_SEED);
    let noise = NoiseConfig::default();
    // Train on the paper's dataset (body scales 0.92–1.04).
    let data = sim.paper_dataset(&noise);
    let model = Trainer::new(PipelineConfig::default())
        .expect("config")
        .train(&data.train)
        .expect("train");

    let mut rows = Vec::new();
    for (label, scale) in [
        ("smaller child (0.80x)", 0.80f64),
        ("small child (0.90x)", 0.90),
        ("training range (1.00x)", 1.00),
        ("larger child (1.12x)", 1.12),
        ("out of range (1.25x)", 1.25),
    ] {
        let clips: Vec<_> = (0..3)
            .map(|i| {
                sim.generate_clip(&ClipSpec {
                    total_frames: 45,
                    seed: 7000 + i,
                    body_scale: scale,
                    noise,
                    rare_poses: i == 1,
                    ..ClipSpec::default()
                })
            })
            .collect();
        let report = evaluate(&model, &clips).expect("evaluate");
        rows.push(vec![
            label.to_string(),
            report
                .per_clip_accuracy()
                .iter()
                .map(|&a| pct(a))
                .collect::<Vec<_>>()
                .join(" / "),
            pct(report.overall_accuracy()),
        ]);
    }
    print_table(
        "E14: accuracy vs jumper size (trained on 0.92x-1.04x bodies)",
        &["test jumper size", "per-clip accuracy", "overall"],
        &rows,
    );
    println!("expected shape: the angular area encoding is scale-invariant, so accuracy");
    println!("stays within a few points of the in-range value across the whole size sweep;");
    println!("mild degradation at the extremes comes from the pipeline's absolute-pixel");
    println!("constants (the 10-px branch prune threshold, limb thickness vs thinning)");
}
