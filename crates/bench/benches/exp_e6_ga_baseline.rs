//! E6 — the genetic-algorithm baseline the thinning approach replaces
//! (paper Section 1).
//!
//! "The search process of the genetic algorithm is very time-consuming.
//! Therefore, the thinning algorithm is utilized instead [...] Although
//! the generated skeleton is somewhat rough and not as precise as the
//! predefined stick model, the result still can provide meaningful
//! information about the pose."
//!
//! Measured: per-frame wall time and key-point error for the GA
//! stick-model fit vs the full thinning pipeline, on the same extracted
//! silhouettes.

use rand::SeedableRng;
use slj_bench::{print_table, MASTER_SEED};
use slj_core::config::PipelineConfig;
use slj_core::pipeline::FrameProcessor;
use slj_ga::{GaConfig, GaFitter};
use slj_sim::body::BodyModel;
use slj_sim::{ClipSpec, JumpSimulator, NoiseConfig};
use std::time::Instant;

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

fn main() {
    let sim = JumpSimulator::new(MASTER_SEED);
    let clip = sim.generate_clip(&ClipSpec {
        total_frames: 44,
        seed: 11,
        noise: NoiseConfig::default(),
        ..ClipSpec::default()
    });
    let config = PipelineConfig::default();
    let mut processor = FrameProcessor::new(clip.background.clone(), &config).expect("processor");

    // Sample every 4th frame to keep the GA runtime reasonable.
    let sample: Vec<usize> = (0..clip.len()).step_by(4).collect();
    let body = BodyModel::default().scaled(1.0);
    let fitter = GaFitter::new(body, GaConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(MASTER_SEED);

    let mut ga_time = 0.0f64;
    let mut ga_err = 0.0f64;
    let mut ga_points = 0usize;
    let mut thin_time = 0.0f64;
    let mut thin_err = 0.0f64;
    let mut thin_points = 0usize;

    for &i in &sample {
        let truth = &clip.truth[i];
        let gt = &truth.skeleton;
        let gt_foot = if gt.foot_front.1 >= gt.foot_back.1 {
            gt.foot_front
        } else {
            gt.foot_back
        };
        let silhouette = processor
            .extract_silhouette(&clip.frames[i])
            .expect("extract");

        // GA baseline.
        let t0 = Instant::now();
        let fit = fitter.fit(&silhouette, &mut rng);
        ga_time += t0.elapsed().as_secs_f64();
        let s = fit.skeleton(&body);
        for (found, truth_pt) in [
            (s.head, gt.head),
            (s.hand, gt.hand),
            (s.knee_front, gt.knee_front),
            (s.foot_front, gt_foot),
        ] {
            ga_err += dist(found, truth_pt);
            ga_points += 1;
        }

        // Thinning pipeline (extraction excluded from both timings).
        let t1 = Instant::now();
        let processed = processor.process_silhouette(&silhouette);
        thin_time += t1.elapsed().as_secs_f64();
        let kp = processed.keypoints;
        for (found, truth_pt) in [
            (kp.head, gt.head),
            (kp.hand, gt.hand),
            (kp.knee, gt.knee_front),
            (kp.foot, gt_foot),
        ] {
            if let Some(p) = found {
                thin_err += dist(p, truth_pt);
                thin_points += 1;
            }
        }
    }

    let n = sample.len() as f64;
    let rows = vec![
        vec![
            "GA stick-model fit [1]".to_string(),
            format!("{:.1} ms", 1000.0 * ga_time / n),
            format!("{:.1} px", ga_err / ga_points as f64),
            "yes (stick sizes)".to_string(),
        ],
        vec![
            "Z-S thinning pipeline (this paper)".to_string(),
            format!("{:.1} ms", 1000.0 * thin_time / n),
            format!("{:.1} px", thin_err / thin_points.max(1) as f64),
            "no".to_string(),
        ],
    ];
    print_table(
        "E6: GA baseline vs thinning pipeline (paper Section 1 motivation)",
        &[
            "method",
            "per-frame time",
            "mean key-point error",
            "needs user input",
        ],
        &rows,
    );
    println!(
        "speedup: {:.0}x   ({} frames sampled; GA: pop {}, {} generations)",
        ga_time / thin_time.max(1e-9),
        sample.len(),
        GaConfig::default().population,
        GaConfig::default().generations,
    );
    println!("expected shape: thinning orders of magnitude faster at comparable error");
}
