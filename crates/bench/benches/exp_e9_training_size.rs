//! E9 — training-set size sensitivity (paper Sections 5 & 6).
//!
//! "One reason for such a not-so-satisfied result is that the number of
//! training samples is small. [...] More training data with better
//! definitions of poses are needed." This experiment trains on growing
//! prefixes of the training pool and evaluates on the fixed paper test
//! set.

use slj_bench::{pct, print_table, MASTER_SEED};
use slj_core::config::PipelineConfig;
use slj_core::evaluation::evaluate;
use slj_core::training::Trainer;
use slj_sim::{JumpSimulator, LabeledClip, NoiseConfig};

fn main() {
    let sim = JumpSimulator::new(MASTER_SEED);
    let noise = NoiseConfig::default();
    let data = sim.paper_dataset(&noise);
    let extra = sim.extra_training_clips(12, &noise);
    let mut pool: Vec<LabeledClip> = data.train.clone();
    pool.extend(extra);

    let trainer = Trainer::new(PipelineConfig::default()).expect("config");
    let mut rows = Vec::new();
    for &k in &[3usize, 6, 9, 12, 18, 24] {
        let clips = &pool[..k];
        let frames: usize = clips.iter().map(LabeledClip::len).sum();
        let model = trainer.train(clips).expect("train");
        let report = evaluate(&model, &data.test).expect("evaluate");
        let marker = if k == 12 { " (paper)" } else { "" };
        rows.push(vec![
            format!("{k}{marker}"),
            frames.to_string(),
            report
                .per_clip_accuracy()
                .iter()
                .map(|&a| pct(a))
                .collect::<Vec<_>>()
                .join(" / "),
            pct(report.overall_accuracy()),
        ]);
    }
    print_table(
        "E9: accuracy vs training-set size (paper: 'the number of training samples is small')",
        &[
            "train clips",
            "train frames",
            "per-clip accuracy",
            "overall",
        ],
        &rows,
    );
    println!("expected shape: accuracy grows with clips and is not saturated at the paper's 12");
}
