//! E10 — incorrect-movement identification, the system's end use
//! (paper Sections 1 & 6).
//!
//! "With the determined poses in all the frames, bad movements can thus
//! be identified. Such a system can further be used as a tutor for the
//! student to do self-training." Clips with injected standards
//! violations are classified with the trained model and the recognised
//! pose sequences assessed against the standard.
//!
//! Two protocols are reported: per single attempt, and per student with
//! a 2-of-3-attempts majority (the tutor setting — one attempt's
//! misclassification burst should not become advice).

use slj_bench::{pct, print_table, MASTER_SEED};
use slj_core::config::PipelineConfig;
use slj_core::evaluation::evaluate_clip;
use slj_core::model::PoseModel;
use slj_core::scoring::assess_pose_sequence;
use slj_core::training::Trainer;
use slj_sim::{ClipSpec, JumpFault, JumpSimulator, NoiseConfig};

const STUDENTS: usize = 4;
const ATTEMPTS: usize = 3;

fn detected_faults(
    model: &PoseModel,
    sim: &JumpSimulator,
    noise: NoiseConfig,
    seed: u64,
    fault: Option<JumpFault>,
) -> Vec<JumpFault> {
    let clip = sim.generate_clip(&ClipSpec {
        total_frames: 44,
        seed,
        noise,
        fault,
        ..ClipSpec::default()
    });
    let report = evaluate_clip(model, &clip).expect("classify");
    let predicted: Vec<_> = report.estimates.iter().map(|e| e.pose).collect();
    assess_pose_sequence(&predicted)
        .into_iter()
        .map(|d| d.fault)
        .collect()
}

fn main() {
    let sim = JumpSimulator::new(MASTER_SEED);
    let noise = NoiseConfig::default();
    let data = sim.paper_dataset(&noise);
    let model = Trainer::new(PipelineConfig::default())
        .expect("config")
        .train(&data.train)
        .expect("train");

    // cases[i] = injected fault (None = clean control group).
    let cases: Vec<Option<JumpFault>> = std::iter::once(None)
        .chain(JumpFault::ALL.into_iter().map(Some))
        .collect();
    let fault_idx = |f: JumpFault| JumpFault::ALL.iter().position(|&g| g == f).unwrap();

    // Counters per fault kind, for both protocols:
    // [tp, fn, fp on clean controls, fp on other-fault clips].
    let mut single = [[0usize; 4]; 5];
    let mut majority = [[0usize; 4]; 5];

    for (case_no, injected) in cases.iter().enumerate() {
        for student in 0..STUDENTS {
            let mut votes = [0usize; 5];
            for attempt in 0..ATTEMPTS {
                let seed = 5000 + (case_no * STUDENTS + student) as u64 * 10 + attempt as u64;
                let found = detected_faults(&model, &sim, noise, seed, *injected);
                for fault in JumpFault::ALL {
                    let i = fault_idx(fault);
                    let was_injected = *injected == Some(fault);
                    let was_detected = found.contains(&fault);
                    votes[i] += was_detected as usize;
                    match (was_injected, was_detected) {
                        (true, true) => single[i][0] += 1,
                        (true, false) => single[i][1] += 1,
                        (false, true) if injected.is_none() => single[i][2] += 1,
                        (false, true) => single[i][3] += 1,
                        (false, false) => {}
                    }
                }
            }
            for fault in JumpFault::ALL {
                let i = fault_idx(fault);
                let was_injected = *injected == Some(fault);
                let was_detected = votes[i] * 2 > ATTEMPTS;
                match (was_injected, was_detected) {
                    (true, true) => majority[i][0] += 1,
                    (true, false) => majority[i][1] += 1,
                    (false, true) if injected.is_none() => majority[i][2] += 1,
                    (false, true) => majority[i][3] += 1,
                    (false, false) => {}
                }
            }
        }
    }

    let table = |counts: &[[usize; 4]; 5]| -> Vec<Vec<String>> {
        JumpFault::ALL
            .iter()
            .map(|&fault| {
                let i = fault_idx(fault);
                let [tp, fn_, fp_clean, fp_other] = counts[i];
                let recall = if tp + fn_ == 0 {
                    1.0
                } else {
                    tp as f64 / (tp + fn_) as f64
                };
                vec![
                    fault.to_string(),
                    format!("{tp}/{}", tp + fn_),
                    fp_clean.to_string(),
                    fp_other.to_string(),
                    pct(recall),
                ]
            })
            .collect()
    };

    print_table(
        "E10a: per single attempt (one clip per decision)",
        &[
            "injected fault",
            "detected",
            "fa (clean)",
            "fa (other fault)",
            "recall",
        ],
        &table(&single),
    );
    print_table(
        "E10b: per student, 2-of-3-attempt majority (the tutor protocol)",
        &[
            "injected fault",
            "detected",
            "fa (clean)",
            "fa (other fault)",
            "recall",
        ],
        &table(&majority),
    );
    println!(
        "{STUDENTS} students per case, {ATTEMPTS} attempts each; one clean control case + one case per fault kind;"
    );
    println!(
        "detection runs on the *predicted* pose sequences of a model trained on correct jumps"
    );
    println!("fa (clean) = false alarms on correct jumps; fa (other fault) = spill-over alarms on");
    println!("clips whose unusual (differently-faulty) sequences get misclassified");
    println!("expected shape: majority voting lifts recall; clean jumps raise almost no alarms");
}
