//! E11 — online filtering vs offline Viterbi decoding (extension).
//!
//! The paper's classifier is strictly online: each frame is decided
//! immediately and the decision is handed to the next frame, which is
//! why "a misclassified frame will still affect the classification of
//! its subsequent frames" (Section 5). A teacher reviewing a recorded
//! clip has hindsight: Viterbi decoding finds the jointly most probable
//! (stage, pose) sequence given *all* frames. This experiment measures
//! what that hindsight is worth — an ablation of the paper's online
//! constraint, not a paper result.

use slj_bench::{pct, print_table, MASTER_SEED};
use slj_core::config::PipelineConfig;
use slj_core::pipeline::FrameProcessor;
use slj_core::training::Trainer;
use slj_sim::{JumpSimulator, NoiseConfig};

fn main() {
    let sim = JumpSimulator::new(MASTER_SEED);
    let noise = NoiseConfig::default();
    let data = sim.paper_dataset(&noise);
    let model = Trainer::new(PipelineConfig::default())
        .expect("config")
        .train(&data.train)
        .expect("train");

    let mut rows = Vec::new();
    let mut online_total = (0usize, 0usize);
    let mut offline_total = (0usize, 0usize);
    let mut smoothed_total = (0usize, 0usize);
    let mut online_bursts: Vec<usize> = Vec::new();
    let mut offline_bursts: Vec<usize> = Vec::new();

    for (i, clip) in data.test.iter().enumerate() {
        let mut processor =
            FrameProcessor::new(clip.background.clone(), model.config()).expect("processor");
        let features: Vec<_> = clip
            .frames
            .iter()
            .map(|f| processor.process(f).expect("process").features)
            .collect();

        // Online (the paper's classifier).
        let mut clf = model.start_clip();
        let online: Vec<_> = features
            .iter()
            .map(|fv| clf.step(fv).expect("step").pose)
            .collect();
        // Offline (Viterbi with hindsight) and smoothed marginals.
        let offline = model.decode_clip(&features).expect("decode");
        let smoothed = model.smooth_clip(&features).expect("smooth");

        let mut on_correct = 0usize;
        let mut off_correct = 0usize;
        let mut sm_correct = 0usize;
        let mut on_run = 0usize;
        let mut off_run = 0usize;
        for (t, truth) in clip.truth.iter().enumerate() {
            if online[t] == Some(truth.pose) {
                if on_run > 0 {
                    online_bursts.push(on_run);
                }
                on_run = 0;
                on_correct += 1;
            } else {
                on_run += 1;
            }
            if offline[t].1 == truth.pose {
                if off_run > 0 {
                    offline_bursts.push(off_run);
                }
                off_run = 0;
                off_correct += 1;
            } else {
                off_run += 1;
            }
            if smoothed[t].1 == truth.pose {
                sm_correct += 1;
            }
        }
        if on_run > 0 {
            online_bursts.push(on_run);
        }
        if off_run > 0 {
            offline_bursts.push(off_run);
        }
        online_total.0 += on_correct;
        online_total.1 += clip.len();
        offline_total.0 += off_correct;
        offline_total.1 += clip.len();
        smoothed_total.0 += sm_correct;
        smoothed_total.1 += clip.len();
        rows.push(vec![
            format!("test clip {}", i + 1),
            pct(on_correct as f64 / clip.len() as f64),
            pct(sm_correct as f64 / clip.len() as f64),
            pct(off_correct as f64 / clip.len() as f64),
        ]);
    }
    rows.push(vec![
        "overall".into(),
        pct(online_total.0 as f64 / online_total.1 as f64),
        pct(smoothed_total.0 as f64 / smoothed_total.1 as f64),
        pct(offline_total.0 as f64 / offline_total.1 as f64),
    ]);
    print_table(
        "E11: online filtering (the paper) vs offline decoding (extension)",
        &[
            "clip",
            "online (per-frame commit)",
            "smoothed marginals",
            "Viterbi sequence",
        ],
        &rows,
    );
    let longest = |b: &[usize]| b.iter().copied().max().unwrap_or(0);
    println!(
        "longest error burst: online {} frames, offline {} frames",
        longest(&online_bursts),
        longest(&offline_bursts)
    );
    println!("expected shape: hindsight shortens the consecutive-error bursts the paper reports");
}
