//! E12 — thinning-algorithm ablation (extension).
//!
//! The paper motivates the Z-S algorithm as "fast" and free of the
//! break-line problem but never compares alternatives. This experiment
//! swaps in Guo-Hall (the other classical two-sub-iteration parallel
//! thinning) and measures skeleton shape, centredness (mean chamfer
//! depth inside the silhouette), per-frame cost and end-to-end headline
//! accuracy.

use slj_bench::{pct, print_table, run_headline, MASTER_SEED};
use slj_core::config::PipelineConfig;
use slj_core::pipeline::FrameProcessor;
use slj_imaging::distance::mean_interior_depth;
use slj_sim::{ClipSpec, JumpSimulator, NoiseConfig};
use slj_skeleton::pipeline::SkeletonConfig;
use slj_skeleton::thinning::ThinningAlgorithm;
use std::time::Instant;

fn main() {
    let sim = JumpSimulator::new(MASTER_SEED);
    let noise = NoiseConfig::default();
    let clip = sim.generate_clip(&ClipSpec {
        total_frames: 44,
        seed: 17,
        noise,
        ..ClipSpec::default()
    });

    let mut rows = Vec::new();
    for (label, algorithm) in [
        ("Zhang-Suen (the paper)", ThinningAlgorithm::ZhangSuen),
        ("Guo-Hall", ThinningAlgorithm::GuoHall),
    ] {
        let config = PipelineConfig {
            skeleton: SkeletonConfig {
                algorithm,
                ..SkeletonConfig::default()
            },
            ..PipelineConfig::default()
        };
        let mut processor =
            FrameProcessor::new(clip.background.clone(), &config).expect("processor");
        let mut px = 0usize;
        let mut passes = 0usize;
        let mut depth = 0.0f64;
        let mut depth_n = 0usize;
        let t0 = Instant::now();
        for frame in &clip.frames {
            let silhouette = processor.extract_silhouette(frame).expect("extract");
            let result =
                slj_skeleton::pipeline::SkeletonPipeline::new(config.skeleton).run(&silhouette);
            px += result.skeleton.count_ones();
            passes += result.stats.thinning_passes;
            if let Some(d) = mean_interior_depth(&silhouette, &result.skeleton) {
                depth += d;
                depth_n += 1;
            }
        }
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1000.0 / clip.len() as f64;
        let headline = run_headline(MASTER_SEED, &noise, &config).expect("headline");
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", px as f64 / clip.len() as f64),
            format!("{:.1}", passes as f64 / clip.len() as f64),
            format!("{:.2} px", depth / depth_n.max(1) as f64),
            format!("{elapsed_ms:.2} ms"),
            pct(headline.overall),
        ]);
    }
    print_table(
        "E12: thinning-algorithm ablation (Zhang-Suen vs Guo-Hall)",
        &[
            "algorithm",
            "skeleton px/frame",
            "passes/frame",
            "mean interior depth",
            "front-end time/frame",
            "headline accuracy",
        ],
        &rows,
    );
    println!("expected shape: both algorithms support the pipeline; the paper's Z-S choice is");
    println!("not load-bearing (any connectivity-preserving parallel thinning works)");
}
