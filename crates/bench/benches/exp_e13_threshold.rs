//! E13 — the `Th_Object` constant (extension).
//!
//! Section 2 fixes "The value of Th_Object is 20 here" with no
//! justification. This experiment sweeps the constant and compares
//! against per-frame Otsu threshold selection: how sensitive is the
//! system to the magic number, and does removing it cost anything?

use slj_bench::{pct, print_table, run_headline, MASTER_SEED};
use slj_core::config::PipelineConfig;
use slj_imaging::background::{BackgroundSubtractor, ExtractionConfig};
use slj_imaging::metrics::MaskMetrics;
use slj_sim::{ClipSpec, JumpSimulator, NoiseConfig};

fn main() {
    let sim = JumpSimulator::new(MASTER_SEED);
    let noise = NoiseConfig::default();
    let clip = sim.generate_clip(&ClipSpec {
        total_frames: 44,
        seed: 23,
        noise,
        ..ClipSpec::default()
    });

    let mut rows = Vec::new();
    let cases: Vec<(String, ExtractionConfig)> = [5u8, 10, 20, 40, 80, 140]
        .into_iter()
        .map(|th| {
            (
                format!(
                    "fixed Th_Object = {th}{}",
                    if th == 20 { " (paper)" } else { "" }
                ),
                ExtractionConfig {
                    th_object: th,
                    ..ExtractionConfig::default()
                },
            )
        })
        .chain(std::iter::once((
            "Otsu per frame (automatic)".to_string(),
            ExtractionConfig {
                auto_threshold: true,
                ..ExtractionConfig::default()
            },
        )))
        .collect();

    for (label, extraction) in cases {
        let sub =
            BackgroundSubtractor::new(clip.background.clone(), extraction).expect("extractor");
        let mut iou = 0.0;
        for (frame, truth) in clip.frames.iter().zip(&clip.truth) {
            let mask = sub.extract(frame).expect("extract");
            iou += MaskMetrics::compare(&mask, &truth.silhouette)
                .expect("metrics")
                .iou();
        }
        let config = PipelineConfig {
            extraction,
            ..PipelineConfig::default()
        };
        let headline = run_headline(MASTER_SEED, &noise, &config).expect("headline");
        rows.push(vec![
            label,
            format!("{:.3}", iou / clip.len() as f64),
            pct(headline.overall),
        ]);
    }
    print_table(
        "E13: Th_Object sensitivity and automatic (Otsu) thresholding",
        &["threshold", "raw silhouette IoU", "headline accuracy"],
        &rows,
    );
    println!("expected shape: a broad plateau around the paper's 20 — the normalisation step");
    println!("makes the exact constant uncritical, and accuracy only collapses when the");
    println!("threshold starts eating the body itself. Otsu splits mid-gradient on the");
    println!("window-averaged soft borders (lower silhouette IoU), but the angular encoding");
    println!("is robust to the thinner silhouette, so end-to-end accuracy stays on the");
    println!("plateau: the magic constant buys nothing over automatic selection");
}
