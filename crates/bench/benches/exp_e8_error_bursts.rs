//! E8 — error locality and the carry-forward rule (paper Section 5).
//!
//! "When an 'Unknown' or a misclassification appears, it will affect the
//! inference of the subsequent frame. So the previous pose for the next
//! frame should be set to the pose that is recognized most recently
//! instead of 'Unknown' [...] But a misclassified frame will still
//! affect the classification of its subsequent frames. Most errors in
//! our experiments occurred in consecutive frames."

use slj_bench::{pct, print_table, run_headline, MASTER_SEED};
use slj_core::config::PipelineConfig;
use slj_sim::NoiseConfig;

fn main() {
    let noise = NoiseConfig::default();

    // Part 1: burst-length histogram at the default threshold.
    let result = run_headline(MASTER_SEED, &noise, &PipelineConfig::default()).expect("run");
    let bursts = result.report.error_bursts();
    let max_len = bursts.iter().copied().max().unwrap_or(0);
    let mut rows = Vec::new();
    for len in 1..=max_len {
        let count = bursts.iter().filter(|&&b| b == len).count();
        if count > 0 {
            rows.push(vec![
                len.to_string(),
                count.to_string(),
                (len * count).to_string(),
            ]);
        }
    }
    print_table(
        "E8a: error-burst length histogram (paper: 'most errors occurred in consecutive frames')",
        &["burst length", "bursts", "error frames"],
        &rows,
    );
    println!(
        "fraction of error frames inside bursts of >=2 consecutive errors: {}",
        pct(result.report.burst_error_fraction(2))
    );

    // Part 2: carry-forward ablation at a stricter threshold (which
    // produces Unknown frames for the rule to act on).
    let mut rows2 = Vec::new();
    for th in [0.25f64, 0.5, 0.7] {
        for carry in [true, false] {
            let config = PipelineConfig {
                th_pose: th,
                carry_forward: carry,
                ..PipelineConfig::default()
            };
            let r = run_headline(MASTER_SEED, &noise, &config).expect("run");
            rows2.push(vec![
                format!("{th:.2}"),
                if carry {
                    "carry last recognised"
                } else {
                    "commit rejected argmax"
                }
                .to_string(),
                pct(r.overall),
                r.unknown.to_string(),
            ]);
        }
    }
    print_table(
        "E8b: Th_Pose and the carry-forward rule for Unknown frames",
        &[
            "Th_Pose",
            "unknown handling",
            "overall accuracy",
            "unknown frames",
        ],
        &rows2,
    );
    println!("expected shape: errors cluster in bursts; higher thresholds create Unknowns and carry-forward limits the damage");
}
