//! Criterion micro-benchmarks for the pipeline's building blocks.
//!
//! These back the performance claims: the paper picked Zhang-Suen
//! thinning for being "fast", the Section 2 extractor for being "simple
//! and fast", and replaced the GA because it was "very time-consuming".

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use slj_bayes::inference::VariableElimination;
use slj_bayes::network::BayesNetBuilder;
use slj_core::config::PipelineConfig;
use slj_core::pipeline::FrameProcessor;
use slj_core::training::Trainer;
use slj_ga::{GaConfig, GaFitter};
use slj_imaging::background::{BackgroundSubtractor, ExtractScratch};
use slj_imaging::filter::{
    box_filter_gray, box_filter_gray_par, median_filter_binary, median_filter_binary_into,
    median_filter_binary_par_into, FilterScratch,
};
use slj_runtime::ThreadPool;
use slj_sim::body::BodyModel;
use slj_sim::{ClipSpec, JumpSimulator, NoiseConfig};
use slj_skeleton::thinning::{guo_hall, zhang_suen};

fn fixtures() -> (slj_sim::LabeledClip, PipelineConfig) {
    let sim = JumpSimulator::new(slj_bench::MASTER_SEED);
    let clip = sim.generate_clip(&ClipSpec {
        total_frames: 44,
        seed: 1,
        noise: NoiseConfig::default(),
        ..ClipSpec::default()
    });
    (clip, PipelineConfig::default())
}

fn bench_extraction(c: &mut Criterion) {
    let (clip, config) = fixtures();
    let sub = BackgroundSubtractor::new(clip.background.clone(), config.extraction).unwrap();
    let frame = clip.frames[20].clone();
    c.bench_function("background_subtraction_160x120", |b| {
        b.iter(|| sub.extract(&frame).unwrap())
    });
}

fn bench_median(c: &mut Criterion) {
    let (clip, _) = fixtures();
    let mask = clip.truth[20].silhouette.clone();
    c.bench_function("median_filter_binary_3x3", |b| {
        b.iter(|| median_filter_binary(&mask, 3).unwrap())
    });
}

fn bench_thinning(c: &mut Criterion) {
    let (clip, _) = fixtures();
    let mask = clip.truth[20].silhouette.clone();
    c.bench_function("zhang_suen_thinning", |b| b.iter(|| zhang_suen(&mask)));
    c.bench_function("guo_hall_thinning", |b| b.iter(|| guo_hall(&mask)));
    c.bench_function("chamfer_distance_transform", |b| {
        b.iter(|| slj_imaging::distance::chamfer_distance(&mask))
    });
}

fn bench_offline_decoding(c: &mut Criterion) {
    let (clip, config) = fixtures();
    let sim = JumpSimulator::new(slj_bench::MASTER_SEED);
    let data = sim.paper_dataset(&NoiseConfig::default());
    let model = Trainer::new(config.clone())
        .expect("config")
        .train(&data.train[..4])
        .unwrap();
    let mut processor = FrameProcessor::new(clip.background.clone(), &config).unwrap();
    let features: Vec<_> = clip
        .frames
        .iter()
        .map(|f| processor.process(f).unwrap().features)
        .collect();
    let mut group = c.benchmark_group("offline");
    group.sample_size(20);
    group.bench_function("viterbi_decode_44_frames", |b| {
        b.iter(|| model.decode_clip(&features).unwrap())
    });
    group.finish();
}

fn bench_model_io(c: &mut Criterion) {
    let (_, config) = fixtures();
    let sim = JumpSimulator::new(slj_bench::MASTER_SEED);
    let data = sim.paper_dataset(&NoiseConfig::default());
    let model = Trainer::new(config)
        .expect("config")
        .train(&data.train[..4])
        .unwrap();
    let text = slj_core::model_io::to_string(&model);
    c.bench_function("model_serialize", |b| {
        b.iter(|| slj_core::model_io::to_string(&model))
    });
    c.bench_function("model_parse", |b| {
        b.iter(|| slj_core::model_io::from_str(&text).unwrap())
    });
}

fn bench_full_frame(c: &mut Criterion) {
    let (clip, config) = fixtures();
    let mut processor = FrameProcessor::new(clip.background.clone(), &config).unwrap();
    let frame = clip.frames[20].clone();
    c.bench_function("frame_to_features_full_front_end", |b| {
        b.iter(|| processor.process(&frame).unwrap())
    });
}

fn bench_streaming_steady_state(c: &mut Criterion) {
    use slj_core::engine::JumpSession;
    let (clip, config) = fixtures();
    let sim = JumpSimulator::new(slj_bench::MASTER_SEED);
    let data = sim.paper_dataset(&NoiseConfig::default());
    let model = Trainer::new(config)
        .expect("config")
        .train(&data.train[..4])
        .unwrap();
    let mut session = JumpSession::new(&model, clip.background.clone()).unwrap();
    // Warm up past the first few frames so every scratch buffer has
    // reached its steady-state capacity; the measured loop then does no
    // per-frame image-buffer allocation.
    for frame in &clip.frames[..8] {
        session.push_frame(frame).unwrap();
    }
    let mut cursor = 0usize;
    c.bench_function("streaming_push_frame_steady_state", |b| {
        b.iter(|| {
            let frame = &clip.frames[8 + cursor % (clip.frames.len() - 8)];
            cursor += 1;
            session.push_frame(frame).unwrap()
        })
    });
}

fn bench_classifier_step(c: &mut Criterion) {
    let (clip, config) = fixtures();
    let sim = JumpSimulator::new(slj_bench::MASTER_SEED);
    let data = sim.paper_dataset(&NoiseConfig::default());
    let model = Trainer::new(config.clone())
        .expect("config")
        .train(&data.train[..4])
        .unwrap();
    let mut processor = FrameProcessor::new(clip.background.clone(), &config).unwrap();
    let features = processor.process(&clip.frames[20]).unwrap().features;
    c.bench_function("dbn_filter_step_per_frame", |b| {
        b.iter_batched(
            || model.start_clip(),
            |mut clf| clf.step(&features).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

/// Serial vs parallel imaging kernels: the same work at pool sizes
/// {1, 2, 4}. Size 1 uses the serial in-place kernels, so the delta
/// against `x1` is the pure fan-out benefit (or overhead, on few cores).
fn bench_parallel_kernels(c: &mut Criterion) {
    let (clip, config) = fixtures();
    let mask = clip.truth[20].silhouette.clone();
    let gray = mask.to_gray();
    let frame = clip.frames[20].clone();
    let sub = BackgroundSubtractor::new(clip.background.clone(), config.extraction).unwrap();
    let mut group = c.benchmark_group("parallel_kernels");
    let mut bin_out = slj_imaging::binary::BinaryImage::new(1, 1);
    let mut gray_out = slj_imaging::image::GrayImage::new(1, 1);
    let mut fscratch = FilterScratch::new();
    let mut escratch = ExtractScratch::new();
    group.bench_function("median_binary_3x3_serial", |b| {
        b.iter(|| median_filter_binary_into(&mask, 3, &mut bin_out, &mut fscratch).unwrap())
    });
    group.bench_function("box_gray_5x5_serial", |b| {
        b.iter(|| box_filter_gray(&gray, 5).unwrap())
    });
    group.bench_function("foreground_matrix_serial", |b| {
        b.iter(|| {
            sub.foreground_matrix_into(&frame, &mut gray_out, &mut escratch)
                .unwrap()
        })
    });
    for threads in [2usize, 4] {
        let pool = ThreadPool::fixed(threads);
        group.bench_function(&format!("median_binary_3x3_x{threads}"), |b| {
            b.iter(|| {
                median_filter_binary_par_into(&mask, 3, &mut bin_out, &mut fscratch, &pool).unwrap()
            })
        });
        group.bench_function(&format!("box_gray_5x5_x{threads}"), |b| {
            b.iter(|| box_filter_gray_par(&gray, 5, &pool).unwrap())
        });
        group.bench_function(&format!("foreground_matrix_x{threads}"), |b| {
            b.iter(|| {
                sub.foreground_matrix_par_into(&frame, &mut gray_out, &mut escratch, &pool)
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// Serial vs parallel clip-set evaluation — the headline fan-out of the
/// execution layer (one worker per clip, ordered collection).
fn bench_parallel_evaluate(c: &mut Criterion) {
    use slj_core::evaluation::evaluate_with;
    let (_, config) = fixtures();
    let sim = JumpSimulator::new(slj_bench::MASTER_SEED);
    let data = sim.paper_dataset(&NoiseConfig::default());
    let model = Trainer::new(config)
        .expect("config")
        .train(&data.train[..4])
        .unwrap();
    let clips = &data.train[..8];
    let mut group = c.benchmark_group("parallel_evaluate");
    group.sample_size(10);
    group.bench_function("evaluate_8_clips_serial", |b| {
        b.iter(|| evaluate_with(&model, clips, &ThreadPool::serial()).unwrap())
    });
    for threads in [2usize, 4] {
        let pool = ThreadPool::fixed(threads);
        group.bench_function(&format!("evaluate_8_clips_x{threads}"), |b| {
            b.iter(|| evaluate_with(&model, clips, &pool).unwrap())
        });
    }
    group.finish();
}

fn bench_variable_elimination(c: &mut Criterion) {
    let mut builder = BayesNetBuilder::new();
    let vars: Vec<_> = (0..8)
        .map(|i| builder.variable(format!("x{i}"), 3))
        .collect();
    builder.table_cpd(vars[0], &[], &[0.2, 0.3, 0.5]).unwrap();
    for i in 1..8 {
        let mut table = Vec::new();
        for p in 0..3 {
            let w = 0.2 + 0.2 * p as f64;
            table.extend([w, 1.0 - w - 0.1, 0.1]);
        }
        builder.table_cpd(vars[i], &[vars[i - 1]], &table).unwrap();
    }
    let net = builder.build().unwrap();
    let last = vars[7];
    let first = vars[0];
    c.bench_function("variable_elimination_chain8", |b| {
        b.iter(|| {
            VariableElimination::new(&net)
                .posterior(first, &[(last, 2)])
                .unwrap()
        })
    });
}

fn bench_ga_fit(c: &mut Criterion) {
    let (clip, _) = fixtures();
    let mask = clip.truth[20].silhouette.clone();
    let fitter = GaFitter::new(
        BodyModel::default(),
        GaConfig {
            population: 30,
            generations: 10,
            ..GaConfig::default()
        },
    );
    let mut group = c.benchmark_group("ga");
    group.sample_size(10);
    group.bench_function("ga_fit_30pop_10gen", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            fitter.fit(&mask, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_extraction,
    bench_median,
    bench_thinning,
    bench_full_frame,
    bench_streaming_steady_state,
    bench_classifier_step,
    bench_parallel_kernels,
    bench_parallel_evaluate,
    bench_offline_decoding,
    bench_model_io,
    bench_variable_elimination,
    bench_ga_fit
);
criterion_main!(benches);
