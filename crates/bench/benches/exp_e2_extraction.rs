//! E2 — object-extraction quality (paper Figure 1).
//!
//! Figure 1 shows the raw extracted silhouette with "small holes and
//! ridged edges" (1b) and the median-smoothed version (1c). This
//! experiment quantifies the full extraction stack as IoU against the
//! renderer's ground-truth mask across noise levels, and ablates the two
//! smoothing mechanisms (the extractor's n×n moving-average window and
//! the median filter) at the paper's noise level.

use slj_bench::{print_table, MASTER_SEED};
use slj_core::config::PipelineConfig;
use slj_imaging::background::{BackgroundSubtractor, ExtractionConfig};
use slj_imaging::binary::BinaryImage;
use slj_imaging::filter::median_filter_binary;
use slj_imaging::metrics::MaskMetrics;
use slj_imaging::morphology::Connectivity;
use slj_imaging::region::largest_component_or_empty;
use slj_sim::{ClipSpec, JumpSimulator, LabeledClip, NoiseConfig};

fn mean_iou(
    clip: &LabeledClip,
    extraction: ExtractionConfig,
    median: Option<usize>,
    keep_largest: bool,
) -> f64 {
    let sub = BackgroundSubtractor::new(clip.background.clone(), extraction).expect("extractor");
    let mut total = 0.0;
    for (frame, truth) in clip.frames.iter().zip(&clip.truth) {
        let mut mask: BinaryImage = sub.extract(frame).expect("extract");
        if let Some(w) = median {
            mask = median_filter_binary(&mask, w).expect("median");
        }
        if keep_largest {
            mask = largest_component_or_empty(&mask, Connectivity::Eight);
        }
        total += MaskMetrics::compare(&mask, &truth.silhouette)
            .expect("metrics")
            .iou();
    }
    total / clip.frames.len() as f64
}

fn main() {
    let config = PipelineConfig::default();
    let sim = JumpSimulator::new(MASTER_SEED);
    let clip_at = |scale: f64| {
        sim.generate_clip(&ClipSpec {
            total_frames: 44,
            seed: 7,
            noise: NoiseConfig::default().scaled(scale),
            ..ClipSpec::default()
        })
    };

    // Part 1: the paper's full stack across noise levels.
    let mut rows = Vec::new();
    for scale in [0.0, 0.5, 1.0, 1.5, 2.0] {
        let clip = clip_at(scale);
        let raw = mean_iou(&clip, config.extraction, None, false);
        let full = mean_iou(&clip, config.extraction, Some(config.median_window), true);
        rows.push(vec![
            format!("{scale:.1}"),
            format!("{raw:.3}"),
            format!("{full:.3}"),
            format!("{:+.3}", full - raw),
        ]);
    }
    print_table(
        "E2a: extraction IoU vs ground truth across noise (Figure 1b raw vs 1c smoothed)",
        &[
            "noise scale",
            "raw extraction",
            "+ median + largest comp.",
            "gain",
        ],
        &rows,
    );

    // Part 2: smoothing ablation at the paper's noise level. The
    // extractor's n×n moving-average window and the median filter are
    // partially redundant; this shows each one's contribution.
    let clip = clip_at(1.0);
    let window1 = ExtractionConfig {
        window: 1,
        ..config.extraction
    };
    let mut rows2 = Vec::new();
    for (label, extraction, median) in [
        ("no window, no median", window1, None),
        ("no window, median 3x3", window1, Some(3)),
        (
            "3x3 window, no median (step i-viii only)",
            config.extraction,
            None,
        ),
        (
            "3x3 window + median 3x3 (the paper)",
            config.extraction,
            Some(3),
        ),
    ] {
        // No largest-component pass here, so the smoothing filters get
        // sole credit for removing stray fragments.
        let iou = mean_iou(&clip, extraction, median, false);
        rows2.push(vec![label.to_string(), format!("{iou:.3}")]);
    }
    print_table(
        "E2b: smoothing ablation at noise 1.0 (window average vs median filter)",
        &["configuration", "IoU"],
        &rows2,
    );

    // Part 3: the qualitative Figure 1 story — counts of defects (stray
    // foreground fragments and interior holes) before/after the median.
    let sub =
        BackgroundSubtractor::new(clip.background.clone(), config.extraction).expect("extractor");
    let count_defects = |mask: &BinaryImage| -> (usize, usize) {
        use slj_imaging::morphology::fill_holes;
        let fragments = slj_imaging::region::connected_components(mask, Connectivity::Eight)
            .len()
            .saturating_sub(1);
        let holes = {
            let filled = fill_holes(mask);
            slj_imaging::region::connected_components(
                &filled.xor(mask).expect("same dims"),
                Connectivity::Four,
            )
            .len()
        };
        (fragments, holes)
    };
    let (mut raw_frag, mut raw_holes, mut med_frag, mut med_holes) = (0, 0, 0, 0);
    for frame in &clip.frames {
        let raw = sub.extract(frame).expect("extract");
        let (f, h) = count_defects(&raw);
        raw_frag += f;
        raw_holes += h;
        let med = median_filter_binary(&raw, 3).expect("median");
        let (f, h) = count_defects(&med);
        med_frag += f;
        med_holes += h;
    }
    let n = clip.frames.len() as f64;
    print_table(
        "E2c: extraction defects per frame (the Figure 1(b) -> 1(c) repair)",
        &["stage", "stray fragments", "interior holes"],
        &[
            vec![
                "raw extraction (Fig 1b)".into(),
                format!("{:.2}", raw_frag as f64 / n),
                format!("{:.2}", raw_holes as f64 / n),
            ],
            vec![
                "median filtered (Fig 1c)".into(),
                format!("{:.2}", med_frag as f64 / n),
                format!("{:.2}", med_holes as f64 / n),
            ],
        ],
    );
    println!("expected shape: the median removes stray fragments and small holes;");
    println!("the extractor's window average and the median are partially redundant");
}
