//! E4 — key-point quality per jump stage (paper Figures 5 and 8).
//!
//! Figure 8 shows thinning skeletons "represent their respective poses
//! pretty well" across a whole test clip. This experiment quantifies
//! that: per jump stage, how often each body-part key point is detected
//! and how far it lands from the ground-truth joint.

use slj_bench::{print_table, MASTER_SEED};
use slj_core::config::PipelineConfig;
use slj_core::pipeline::FrameProcessor;
use slj_sim::stage::JumpStage;
use slj_sim::{JumpSimulator, NoiseConfig};

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

fn main() {
    let sim = JumpSimulator::new(MASTER_SEED);
    let data = sim.paper_dataset(&NoiseConfig::default());
    let config = PipelineConfig::default();

    // Per stage: [detections, error sums, frame counts] for the five
    // parts (head, chest, hand, knee, foot) + waist.
    let mut detect = [[0usize; 6]; 4];
    let mut err = [[0.0f64; 6]; 4];
    let mut frames = [0usize; 4];

    for clip in &data.test {
        let mut processor =
            FrameProcessor::new(clip.background.clone(), &config).expect("processor");
        for (frame, truth) in clip.frames.iter().zip(&clip.truth) {
            let processed = processor.process(frame).expect("process");
            let kp = processed.keypoints;
            let s = truth.stage.index();
            frames[s] += 1;
            let gt = &truth.skeleton;
            // Ground-truth foot: the lower of the two feet.
            let gt_foot = if gt.foot_front.1 >= gt.foot_back.1 {
                gt.foot_front
            } else {
                gt.foot_back
            };
            let pairs: [(Option<(f64, f64)>, (f64, f64)); 6] = [
                (kp.head, gt.head),
                (kp.chest, gt.chest),
                (kp.hand, gt.hand),
                (kp.knee, gt.knee_front),
                (kp.foot, gt_foot),
                (kp.waist, gt.hip),
            ];
            for (i, (found, truth_pt)) in pairs.iter().enumerate() {
                if let Some(p) = found {
                    detect[s][i] += 1;
                    err[s][i] += dist(*p, *truth_pt);
                }
            }
        }
    }

    let part_names = ["head", "chest", "hand", "knee", "foot", "waist"];
    let mut rows = Vec::new();
    for stage in JumpStage::ALL {
        let s = stage.index();
        let mut cells = vec![stage.to_string(), frames[s].to_string()];
        for i in 0..6 {
            let rate = detect[s][i] as f64 / frames[s].max(1) as f64;
            let mean_err = if detect[s][i] > 0 {
                err[s][i] / detect[s][i] as f64
            } else {
                f64::NAN
            };
            cells.push(format!("{:.0}%/{:.1}px", 100.0 * rate, mean_err));
        }
        rows.push(cells);
    }
    let mut headers = vec!["stage", "frames"];
    headers.extend(part_names);
    print_table(
        "E4: key-point detection rate / mean position error per stage (paper Figures 5 & 8)",
        &headers,
        &rows,
    );
    println!("expected shape: head/foot/waist near-always found; hand intermittent (arms overlap the torso in several poses)");
}
