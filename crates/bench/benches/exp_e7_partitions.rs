//! E7 — feature-encoding granularity (paper Section 6, future work).
//!
//! "Also, more partitions instead of just eight as shown in Figure 6 can
//! be used for feature encoding. More information would further improve
//! the classification results." This experiment sweeps the partition
//! count.

use slj_bench::{pct, print_table, run_headline, MASTER_SEED};
use slj_core::config::PipelineConfig;
use slj_sim::NoiseConfig;

fn main() {
    let noise = NoiseConfig::default();
    let mut rows = Vec::new();
    for partitions in [4u8, 6, 8, 12, 16] {
        let config = PipelineConfig {
            partitions,
            ..PipelineConfig::default()
        };
        let result = run_headline(MASTER_SEED, &noise, &config).expect("run");
        let marker = if partitions == 8 { " (paper)" } else { "" };
        rows.push(vec![
            format!("{partitions}{marker}"),
            result
                .per_clip
                .iter()
                .map(|&a| pct(a))
                .collect::<Vec<_>>()
                .join(" / "),
            pct(result.overall),
            result.unknown.to_string(),
        ]);
    }
    print_table(
        "E7: accuracy vs number of angular areas (paper Section 6 future work)",
        &["partitions", "per-clip accuracy", "overall", "unknown"],
        &rows,
    );
    println!("expected shape: finer encodings help up to a point, then data sparsity (522 training frames) bites");
}
