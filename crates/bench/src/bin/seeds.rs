//! Multi-seed headline check used during calibration.
use slj_bench::run_headline;
use slj_core::config::PipelineConfig;
use slj_sim::NoiseConfig;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1.0);
    let noise = NoiseConfig::default().scaled(scale);
    let mut accs = Vec::new();
    for seed in [20080617u64, 1, 2, 3, 4, 5] {
        let r = run_headline(seed, &noise, &PipelineConfig::default()).unwrap();
        println!(
            "seed {seed}: per-clip {:?} overall {:.3}",
            r.per_clip
                .iter()
                .map(|a| (a * 1000.0).round() / 10.0)
                .collect::<Vec<_>>(),
            r.overall
        );
        accs.push(r.overall);
    }
    println!("mean {:.3}", accs.iter().sum::<f64>() / accs.len() as f64);
}
