//! Calibration utility: sweeps the noise scale and `Th_Pose` to see
//! where the headline accuracy lands relative to the paper's 81–87%
//! band. Not part of the reproduction itself — a tool for choosing the
//! defaults recorded in EXPERIMENTS.md.

use slj_bench::{pct, print_table, run_headline, MASTER_SEED};
use slj_core::config::PipelineConfig;
use slj_sim::NoiseConfig;

fn main() {
    let scales: Vec<f64> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let scales = if scales.is_empty() {
        vec![0.5, 1.0, 1.5]
    } else {
        scales
    };
    let mut rows = Vec::new();
    for &scale in &scales {
        let noise = NoiseConfig::default().scaled(scale);
        let config = PipelineConfig::default();
        let start = std::time::Instant::now();
        match run_headline(MASTER_SEED, &noise, &config) {
            Ok(result) => {
                rows.push(vec![
                    format!("{scale:.2}"),
                    result
                        .per_clip
                        .iter()
                        .map(|&a| pct(a))
                        .collect::<Vec<_>>()
                        .join(" / "),
                    pct(result.overall),
                    result.unknown.to_string(),
                    format!("{:.1}s", start.elapsed().as_secs_f64()),
                ]);
            }
            Err(e) => rows.push(vec![
                format!("{scale:.2}"),
                format!("error: {e}"),
                String::new(),
                String::new(),
                String::new(),
            ]),
        }
    }
    print_table(
        "calibration: noise scale vs headline accuracy (paper band: 81-87%)",
        &["noise", "per-clip", "overall", "unknown", "time"],
        &rows,
    );

    // Diagnostic: top confusions at the default noise.
    if std::env::var("CONFUSION").is_ok() {
        let result = run_headline(
            MASTER_SEED,
            &NoiseConfig::default(),
            &PipelineConfig::default(),
        )
        .expect("headline run");
        let mut confusions: Vec<(u32, usize, usize)> = Vec::new();
        for (t, row) in result.report.confusion.iter().enumerate() {
            for (p, &c) in row.iter().enumerate() {
                if t != p && c > 0 {
                    confusions.push((c, t, p));
                }
            }
        }
        confusions.sort_unstable_by(|a, b| b.cmp(a));
        use slj_sim::PoseClass;
        println!("\ntop confusions (truth -> predicted):");
        for &(c, t, p) in confusions.iter().take(15) {
            let pred = if p == PoseClass::COUNT {
                "UNKNOWN".to_string()
            } else {
                PoseClass::from_index(p).to_string()
            };
            println!("  {c:3}  {} -> {}", PoseClass::from_index(t), pred);
        }
    }
}
