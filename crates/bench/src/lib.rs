//! Shared experiment harness for the paper-reproduction benches.
//!
//! Every figure and the Section 5 evaluation of the paper map to an
//! `exp_*` bench target (see `DESIGN.md` §4); the heavy lifting lives
//! here so the bench mains stay thin and the calibration binary can
//! reuse the same code paths.

// Grandfathered: this crate predates the unwrap_used/expect_used policy.
// Its findings are baselined in check-baseline.json (see `slj check`);
// new code should return SljError and shrink the ratchet instead.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use slj_core::config::{PipelineConfig, TemporalMode};
use slj_core::evaluation::{evaluate, EvalReport};
use slj_core::training::Trainer;
use slj_core::SljError;
use slj_sim::{JumpSimulator, NoiseConfig};

/// Canonical master seed for all experiments (reported in
/// EXPERIMENTS.md).
pub const MASTER_SEED: u64 = 20080617;

/// Result of the headline experiment (paper Section 5).
#[derive(Debug, Clone)]
pub struct HeadlineResult {
    /// Accuracy per test clip.
    pub per_clip: Vec<f64>,
    /// Overall accuracy over all test frames.
    pub overall: f64,
    /// Number of Unknown frames on the test set.
    pub unknown: usize,
    /// The full evaluation report.
    pub report: EvalReport,
}

/// Trains on the paper's 12-clip set and evaluates on its 3-clip test
/// set, with the given configuration and noise.
///
/// # Errors
///
/// Propagates training/evaluation failures.
pub fn run_headline(
    seed: u64,
    noise: &NoiseConfig,
    config: &PipelineConfig,
) -> Result<HeadlineResult, SljError> {
    let sim = JumpSimulator::new(seed);
    let data = sim.paper_dataset(noise);
    let model = Trainer::new(config.clone())?.train(&data.train)?;
    let report = evaluate(&model, &data.test)?;
    Ok(HeadlineResult {
        per_clip: report.per_clip_accuracy(),
        overall: report.overall_accuracy(),
        unknown: report.unknown_frames(),
        report,
    })
}

/// Convenience: the paper's default configuration and noise.
pub fn default_setup() -> (NoiseConfig, PipelineConfig) {
    (NoiseConfig::default(), PipelineConfig::default())
}

/// Runs the headline experiment under a specific temporal mode (E5).
///
/// # Errors
///
/// Propagates training/evaluation failures.
pub fn run_with_temporal_mode(
    seed: u64,
    noise: &NoiseConfig,
    mode: TemporalMode,
) -> Result<HeadlineResult, SljError> {
    let config = PipelineConfig {
        temporal: mode,
        ..PipelineConfig::default()
    };
    run_headline(seed, noise, &config)
}

/// Prints a fixed-width table with a title, headers and rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!(
                "{:<width$}  ",
                cell,
                width = widths[i.min(widths.len() - 1)]
            ));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.815), "81.5%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
