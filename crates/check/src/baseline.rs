//! The ratchet: grandfathered finding counts that may only decrease.
//!
//! `check-baseline.json` commits the current number of active findings
//! **per rule, per file**. Per-file granularity matters: with a single
//! per-rule total, a new `unwrap()` in one file could hide behind an
//! unrelated cleanup in another and the gate would still pass. With
//! per-file counts, any file that gets *worse* fails CI regardless of
//! improvements elsewhere.
//!
//! Schema (written with [`slj_obs::JsonWriter`], parsed by the tiny
//! reader below — the workspace has no serde):
//!
//! ```json
//! {"schema":2,"rules":{"robustness/no-panic-in-lib":{"crates/core/src/model.rs":12}}}
//! ```
//!
//! Schema 2 is byte-compatible with schema 1; the bump marks the point
//! where the interprocedural rules (`robustness/panic-reachable-from-api`
//! and friends) started feeding the same ratchet. v1 files still load —
//! the parser accepts both versions — so pre-PR-9 baselines migrate by
//! simply being rewritten with `--write-baseline`.

use std::collections::BTreeMap;
use std::path::Path;

use slj_obs::JsonWriter;

use crate::report::Finding;
use crate::CheckError;

/// Baseline file schema version (`"schema"` key in `check-baseline.json`).
///
/// v2 = same layout as v1, with the interprocedural rules included in
/// the counts. [`Baseline::parse`] accepts v1 and v2.
pub const BASELINE_SCHEMA_VERSION: u64 = 2;

/// Per-rule, per-file active finding counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// rule id → (file → active finding count).
    pub rules: BTreeMap<String, BTreeMap<String, u64>>,
}

/// One (rule, file) cell where current differs from the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatchetDelta {
    /// Rule id.
    pub rule: String,
    /// Repo-relative file.
    pub file: String,
    /// Count recorded in the baseline (0 when the cell is new).
    pub baseline: u64,
    /// Count observed now.
    pub current: u64,
}

/// Outcome of comparing current findings against a baseline.
#[derive(Debug, Clone, Default)]
pub struct RatchetReport {
    /// Cells that got worse — these fail the gate.
    pub regressions: Vec<RatchetDelta>,
    /// Cells that improved — the baseline should be regenerated.
    pub improvements: Vec<RatchetDelta>,
}

impl Baseline {
    /// Builds a baseline from the active (unsuppressed error) findings.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut rules: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        for f in findings.iter().filter(|f| f.is_active()) {
            *rules
                .entry(f.rule.clone())
                .or_default()
                .entry(f.file.clone())
                .or_insert(0) += 1;
        }
        Baseline { rules }
    }

    /// Serialises the baseline (`"schema":2`, keys sorted).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema");
        w.u64(BASELINE_SCHEMA_VERSION);
        w.key("rules");
        w.begin_object();
        for (rule, files) in &self.rules {
            w.key(rule);
            w.begin_object();
            for (file, count) in files {
                w.key(file);
                w.u64(*count);
            }
            w.end_object();
        }
        w.end_object();
        w.end_object();
        w.finish()
    }

    /// Parses baseline JSON produced by [`Baseline::to_json`].
    pub fn parse(text: &str) -> Result<Baseline, CheckError> {
        let mut p = Parser::new(text);
        p.skip_ws();
        p.eat('{')?;
        let mut baseline = Baseline::default();
        let mut first = true;
        loop {
            p.skip_ws();
            if p.peek() == Some('}') {
                p.next();
                break;
            }
            if !first {
                p.eat(',')?;
                p.skip_ws();
            }
            first = false;
            let key = p.string()?;
            p.skip_ws();
            p.eat(':')?;
            p.skip_ws();
            match key.as_str() {
                "schema" => {
                    let v = p.number()?;
                    // v1 (pre-interprocedural) files still load: the
                    // layout never changed, only what feeds the counts.
                    if v != 1 && v != BASELINE_SCHEMA_VERSION {
                        return Err(CheckError::Parse(format!(
                            "unsupported baseline schema {v}; expected 1 or {BASELINE_SCHEMA_VERSION}"
                        )));
                    }
                }
                "rules" => {
                    baseline.rules = p.rule_map()?;
                }
                other => {
                    return Err(CheckError::Parse(format!(
                        "unexpected baseline key {other:?}"
                    )))
                }
            }
        }
        Ok(baseline)
    }

    /// Loads and parses a baseline file.
    pub fn load(path: &Path) -> Result<Baseline, CheckError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CheckError::Io(format!("read {}: {e}", path.display())))?;
        Baseline::parse(&text)
    }

    /// Compares `current` against this baseline.
    pub fn compare(&self, current: &Baseline) -> RatchetReport {
        let mut report = RatchetReport::default();
        // Union of (rule, file) cells on either side, in sorted order.
        let mut cells: Vec<(&str, &str)> = Vec::new();
        for (rule, files) in self.rules.iter().chain(current.rules.iter()) {
            for file in files.keys() {
                cells.push((rule.as_str(), file.as_str()));
            }
        }
        cells.sort_unstable();
        cells.dedup();
        for (rule, file) in cells {
            let base = self
                .rules
                .get(rule)
                .and_then(|f| f.get(file))
                .copied()
                .unwrap_or(0);
            let now = current
                .rules
                .get(rule)
                .and_then(|f| f.get(file))
                .copied()
                .unwrap_or(0);
            let delta = RatchetDelta {
                rule: rule.to_string(),
                file: file.to_string(),
                baseline: base,
                current: now,
            };
            if now > base {
                report.regressions.push(delta);
            } else if now < base {
                report.improvements.push(delta);
            }
        }
        report
    }
}

/// Minimal recursive-descent reader for the baseline's JSON subset:
/// objects, strings with `\"`/`\\` escapes, and unsigned integers.
struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    _text: &'a str,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            chars: text.chars().collect(),
            pos: 0,
            _text: text,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(char::is_whitespace) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, ch: char) -> Result<(), CheckError> {
        self.skip_ws();
        match self.next() {
            Some(c) if c == ch => Ok(()),
            other => Err(CheckError::Parse(format!(
                "baseline JSON: expected {ch:?} at position {}, found {other:?}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, CheckError> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                Some('"') => return Ok(out),
                Some('\\') => match self.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some(c) => out.push(c),
                    None => {
                        return Err(CheckError::Parse(
                            "baseline JSON: unterminated escape".into(),
                        ))
                    }
                },
                Some(c) => out.push(c),
                None => {
                    return Err(CheckError::Parse(
                        "baseline JSON: unterminated string".into(),
                    ))
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, CheckError> {
        self.skip_ws();
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(CheckError::Parse(format!(
                "baseline JSON: expected a number at position {start}"
            )));
        }
        let digits: String = self.chars[start..self.pos].iter().collect();
        digits
            .parse::<u64>()
            .map_err(|e| CheckError::Parse(format!("baseline JSON: bad number {digits:?}: {e}")))
    }

    /// Parses `{"rule":{"file":count,...},...}`.
    fn rule_map(&mut self) -> Result<BTreeMap<String, BTreeMap<String, u64>>, CheckError> {
        self.eat('{')?;
        let mut rules = BTreeMap::new();
        let mut first = true;
        loop {
            self.skip_ws();
            if self.peek() == Some('}') {
                self.next();
                return Ok(rules);
            }
            if !first {
                self.eat(',')?;
                self.skip_ws();
            }
            first = false;
            let rule = self.string()?;
            self.eat(':')?;
            self.eat('{')?;
            let mut files = BTreeMap::new();
            let mut file_first = true;
            loop {
                self.skip_ws();
                if self.peek() == Some('}') {
                    self.next();
                    break;
                }
                if !file_first {
                    self.eat(',')?;
                    self.skip_ws();
                }
                file_first = false;
                let file = self.string()?;
                self.eat(':')?;
                let count = self.number()?;
                files.insert(file, count);
            }
            rules.insert(rule, files);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, file: &str) -> Finding {
        Finding::error(rule, file, 1, "x".into())
    }

    #[test]
    fn roundtrip() {
        let findings = vec![
            finding("robustness/no-panic-in-lib", "crates/a/src/lib.rs"),
            finding("robustness/no-panic-in-lib", "crates/a/src/lib.rs"),
            finding("obs/no-print", "crates/b/src/lib.rs"),
        ];
        let b = Baseline::from_findings(&findings);
        let json = b.to_json();
        assert!(json.starts_with("{\"schema\":2"));
        let parsed = Baseline::parse(&json).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(
            parsed.rules["robustness/no-panic-in-lib"]["crates/a/src/lib.rs"],
            2
        );
    }

    #[test]
    fn suppressed_findings_not_counted() {
        let mut f = finding("obs/no-print", "crates/b/src/lib.rs");
        f.allowed = Some("reason".into());
        let b = Baseline::from_findings(&[f]);
        assert!(b.rules.is_empty());
    }

    #[test]
    fn compare_flags_regressions_and_improvements() {
        let base = Baseline::parse(r#"{"schema":1,"rules":{"r":{"a.rs":2,"b.rs":1}}}"#).unwrap();
        let current =
            Baseline::parse(r#"{"schema":1,"rules":{"r":{"a.rs":3},"s":{"c.rs":1}}}"#).unwrap();
        let report = base.compare(&current);
        assert_eq!(report.regressions.len(), 2); // a.rs 2→3, c.rs 0→1
        assert_eq!(report.improvements.len(), 1); // b.rs 1→0
        assert!(report
            .regressions
            .iter()
            .any(|d| d.file == "a.rs" && d.baseline == 2 && d.current == 3));
    }

    #[test]
    fn per_file_counts_prevent_cross_file_masking() {
        // One file gets worse, another improves by the same amount: the
        // rule-level total is unchanged but the gate must still fail.
        let base = Baseline::parse(r#"{"schema":1,"rules":{"r":{"a.rs":1,"b.rs":1}}}"#).unwrap();
        let current = Baseline::parse(r#"{"schema":1,"rules":{"r":{"a.rs":2}}}"#).unwrap();
        let report = base.compare(&current);
        assert_eq!(report.regressions.len(), 1);
    }

    #[test]
    fn v1_baselines_still_load() {
        let b = Baseline::parse(
            r#"{"schema":1,"rules":{"robustness/no-panic-in-lib":{"crates/a/src/lib.rs":4}}}"#,
        )
        .unwrap();
        assert_eq!(
            b.rules["robustness/no-panic-in-lib"]["crates/a/src/lib.rs"],
            4
        );
        // Rewriting migrates to the current version.
        assert!(b.to_json().starts_with("{\"schema\":2"));
    }

    #[test]
    fn bad_schema_rejected() {
        assert!(Baseline::parse(r#"{"schema":3,"rules":{}}"#).is_err());
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse(r#"{"schema":1"#).is_err());
    }
}
