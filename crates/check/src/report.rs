//! Findings and their rendering.
//!
//! Both analyzers (the source linter and the model auditor) produce the
//! same [`Finding`] shape, so the CLI, the baseline ratchet, and the CI
//! job share one output path: a human-readable line per finding, and a
//! JSON document (`"schema": 1`) written with [`slj_obs::JsonWriter`].

use slj_obs::JsonWriter;

use crate::baseline::RatchetDelta;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Violation of a hard invariant: fails the gate unless baselined.
    Error,
    /// Advisory: reported but never fails the gate.
    Warning,
}

impl Severity {
    /// Lowercase label used in both output formats.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier, e.g. `determinism/no-hash-iteration`.
    pub rule: String,
    /// Severity of the finding.
    pub severity: Severity,
    /// Repo-relative source path or artifact path.
    pub file: String,
    /// 1-based line number (0 when the finding is file-scoped).
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// `Some(reason)` when suppressed by `// slj-check: allow(rule) — reason`.
    pub allowed: Option<String>,
}

impl Finding {
    /// Builds an active (unsuppressed) error finding.
    pub fn error(rule: &str, file: &str, line: u32, message: String) -> Finding {
        Finding {
            rule: rule.to_string(),
            severity: Severity::Error,
            file: file.to_string(),
            line,
            message,
            allowed: None,
        }
    }

    /// Whether the finding counts against the gate (error and not allowed).
    pub fn is_active(&self) -> bool {
        self.severity == Severity::Error && self.allowed.is_none()
    }
}

/// Renders findings one per line, `file:line: severity[rule] message`.
///
/// Suppressed findings are shown with their allow reason so reviewers can
/// audit the escape hatches without reading every file.
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.file);
        if f.line > 0 {
            out.push(':');
            out.push_str(&f.line.to_string());
        }
        out.push_str(": ");
        out.push_str(f.severity.label());
        out.push('[');
        out.push_str(&f.rule);
        out.push_str("] ");
        out.push_str(&f.message);
        if let Some(reason) = &f.allowed {
            out.push_str(" (allowed: ");
            out.push_str(reason);
            out.push(')');
        }
        out.push('\n');
    }
    out
}

/// Serialises a findings report as JSON (`"schema": 1`).
///
/// Layout:
///
/// ```json
/// {
///   "schema": 1,
///   "tool": "slj-check",
///   "ok": false,
///   "findings": [
///     {"rule": "...", "severity": "error", "file": "...", "line": 7,
///      "message": "...", "allowed": null}
///   ],
///   "ratchet": {"regressions": [{"rule": "...", "file": "...",
///                                "baseline": 3, "current": 4}],
///               "improvements": []}
/// }
/// ```
///
/// The `ratchet` key is present only when a baseline comparison ran.
pub fn render_json(
    findings: &[Finding],
    ratchet: Option<(&[RatchetDelta], &[RatchetDelta])>,
    ok: bool,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.u64(1);
    w.key("tool");
    w.string("slj-check");
    w.key("ok");
    w.bool(ok);
    w.key("findings");
    w.begin_array();
    for f in findings {
        w.begin_object();
        w.key("rule");
        w.string(&f.rule);
        w.key("severity");
        w.string(f.severity.label());
        w.key("file");
        w.string(&f.file);
        w.key("line");
        w.u64(u64::from(f.line));
        w.key("message");
        w.string(&f.message);
        w.key("allowed");
        match &f.allowed {
            Some(reason) => w.string(reason),
            None => w.null(),
        }
        w.end_object();
    }
    w.end_array();
    if let Some((regressions, improvements)) = ratchet {
        w.key("ratchet");
        w.begin_object();
        w.key("regressions");
        write_deltas(&mut w, regressions);
        w.key("improvements");
        write_deltas(&mut w, improvements);
        w.end_object();
    }
    w.end_object();
    w.finish()
}

fn write_deltas(w: &mut JsonWriter, deltas: &[RatchetDelta]) {
    w.begin_array();
    for d in deltas {
        w.begin_object();
        w.key("rule");
        w.string(&d.rule);
        w.key("file");
        w.string(&d.file);
        w.key("baseline");
        w.u64(d.baseline);
        w.key("current");
        w.u64(d.current);
        w.end_object();
    }
    w.end_array();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_rendering_includes_rule_and_reason() {
        let mut f = Finding::error(
            "obs/no-print",
            "crates/x/src/lib.rs",
            9,
            "println! used".into(),
        );
        f.allowed = Some("demo binary".into());
        let text = render_human(&[f]);
        assert!(text.contains("crates/x/src/lib.rs:9"));
        assert!(text.contains("error[obs/no-print]"));
        assert!(text.contains("(allowed: demo binary)"));
    }

    #[test]
    fn json_has_schema_and_findings() {
        let f = Finding::error(
            "determinism/no-wall-clock",
            "a.rs",
            3,
            "Instant::now".into(),
        );
        let json = render_json(&[f], None, false);
        assert!(json.contains("\"schema\":1"));
        assert!(json.contains("\"rule\":\"determinism/no-wall-clock\""));
        assert!(json.contains("\"line\":3"));
        assert!(json.contains("\"ok\":false"));
        assert!(json.contains("\"allowed\":null"));
        assert!(!json.contains("\"ratchet\""));
    }

    #[test]
    fn json_ratchet_section() {
        let reg = RatchetDelta {
            rule: "robustness/no-panic-in-lib".into(),
            file: "crates/core/src/model.rs".into(),
            baseline: 2,
            current: 3,
        };
        let json = render_json(&[], Some((std::slice::from_ref(&reg), &[])), false);
        assert!(json.contains("\"ratchet\""));
        assert!(json.contains("\"baseline\":2"));
        assert!(json.contains("\"current\":3"));
    }
}
