//! Findings and their rendering.
//!
//! Both analyzers (the source linter and the model auditor) produce the
//! same [`Finding`] shape, so the CLI, the baseline ratchet, and the CI
//! job share one output path: a human-readable line per finding, and a
//! JSON document (`"schema": 1`) written with [`slj_obs::JsonWriter`].

use slj_obs::JsonWriter;

use crate::baseline::RatchetDelta;

/// Report JSON schema version (`"schema"` key in [`render_json`]).
///
/// v2 added the optional per-finding `"chain"` array produced by the
/// interprocedural rules.
pub const REPORT_SCHEMA_VERSION: u64 = 2;

/// One step of the call chain behind an interprocedural finding.
#[derive(Debug, Clone)]
pub struct Hop {
    /// Function label (`Type::name` or `name`), or the effect text for
    /// the final hop (`".unwrap()"`, `"Instant::now()"`, …).
    pub name: String,
    /// Repo-relative file the hop lives in.
    pub file: String,
    /// 1-based line (fn declaration, or the effect site for the last hop).
    pub line: u32,
}

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Violation of a hard invariant: fails the gate unless baselined.
    Error,
    /// Advisory: reported but never fails the gate.
    Warning,
}

impl Severity {
    /// Lowercase label used in both output formats.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier, e.g. `determinism/no-hash-iteration`.
    pub rule: String,
    /// Severity of the finding.
    pub severity: Severity,
    /// Repo-relative source path or artifact path.
    pub file: String,
    /// 1-based line number (0 when the finding is file-scoped).
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// `Some(reason)` when suppressed by `// slj-check: allow(rule) — reason`.
    pub allowed: Option<String>,
    /// Call chain for interprocedural findings (empty for direct rules):
    /// first hop is the root function, last hop the offending effect.
    pub chain: Vec<Hop>,
}

impl Finding {
    /// Builds an active (unsuppressed) error finding.
    pub fn error(rule: &str, file: &str, line: u32, message: String) -> Finding {
        Finding {
            rule: rule.to_string(),
            severity: Severity::Error,
            file: file.to_string(),
            line,
            message,
            allowed: None,
            chain: Vec::new(),
        }
    }

    /// Whether the finding counts against the gate (error and not allowed).
    pub fn is_active(&self) -> bool {
        self.severity == Severity::Error && self.allowed.is_none()
    }
}

/// Renders findings one per line, `file:line: severity[rule] message`.
///
/// Suppressed findings are shown with their allow reason so reviewers can
/// audit the escape hatches without reading every file.
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.file);
        if f.line > 0 {
            out.push(':');
            out.push_str(&f.line.to_string());
        }
        out.push_str(": ");
        out.push_str(f.severity.label());
        out.push('[');
        out.push_str(&f.rule);
        out.push_str("] ");
        out.push_str(&f.message);
        if let Some(reason) = &f.allowed {
            out.push_str(" (allowed: ");
            out.push_str(reason);
            out.push(')');
        }
        out.push('\n');
        for hop in &f.chain {
            out.push_str("    via ");
            out.push_str(&hop.name);
            out.push_str(" (");
            out.push_str(&hop.file);
            out.push(':');
            out.push_str(&hop.line.to_string());
            out.push_str(")\n");
        }
    }
    out
}

/// Serialises a findings report as JSON
/// (`"schema": `[`REPORT_SCHEMA_VERSION`]).
///
/// Layout:
///
/// ```json
/// {
///   "schema": 2,
///   "tool": "slj-check",
///   "ok": false,
///   "findings": [
///     {"rule": "...", "severity": "error", "file": "...", "line": 7,
///      "message": "...", "allowed": null,
///      "chain": [{"fn": "push_frame", "file": "...", "line": 715}]}
///   ],
///   "ratchet": {"regressions": [{"rule": "...", "file": "...",
///                                "baseline": 3, "current": 4}],
///               "improvements": []}
/// }
/// ```
///
/// The `chain` key is present only on interprocedural findings; the
/// `ratchet` key is present only when a baseline comparison ran.
pub fn render_json(
    findings: &[Finding],
    ratchet: Option<(&[RatchetDelta], &[RatchetDelta])>,
    ok: bool,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.u64(REPORT_SCHEMA_VERSION);
    w.key("tool");
    w.string("slj-check");
    w.key("ok");
    w.bool(ok);
    w.key("findings");
    w.begin_array();
    for f in findings {
        w.begin_object();
        w.key("rule");
        w.string(&f.rule);
        w.key("severity");
        w.string(f.severity.label());
        w.key("file");
        w.string(&f.file);
        w.key("line");
        w.u64(u64::from(f.line));
        w.key("message");
        w.string(&f.message);
        w.key("allowed");
        match &f.allowed {
            Some(reason) => w.string(reason),
            None => w.null(),
        }
        if !f.chain.is_empty() {
            w.key("chain");
            w.begin_array();
            for hop in &f.chain {
                w.begin_object();
                w.key("fn");
                w.string(&hop.name);
                w.key("file");
                w.string(&hop.file);
                w.key("line");
                w.u64(u64::from(hop.line));
                w.end_object();
            }
            w.end_array();
        }
        w.end_object();
    }
    w.end_array();
    if let Some((regressions, improvements)) = ratchet {
        w.key("ratchet");
        w.begin_object();
        w.key("regressions");
        write_deltas(&mut w, regressions);
        w.key("improvements");
        write_deltas(&mut w, improvements);
        w.end_object();
    }
    w.end_object();
    w.finish()
}

fn write_deltas(w: &mut JsonWriter, deltas: &[RatchetDelta]) {
    w.begin_array();
    for d in deltas {
        w.begin_object();
        w.key("rule");
        w.string(&d.rule);
        w.key("file");
        w.string(&d.file);
        w.key("baseline");
        w.u64(d.baseline);
        w.key("current");
        w.u64(d.current);
        w.end_object();
    }
    w.end_array();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_rendering_includes_rule_and_reason() {
        let mut f = Finding::error(
            "obs/no-print",
            "crates/x/src/lib.rs",
            9,
            "println! used".into(),
        );
        f.allowed = Some("demo binary".into());
        let text = render_human(&[f]);
        assert!(text.contains("crates/x/src/lib.rs:9"));
        assert!(text.contains("error[obs/no-print]"));
        assert!(text.contains("(allowed: demo binary)"));
    }

    #[test]
    fn json_has_schema_and_findings() {
        let f = Finding::error(
            "determinism/no-wall-clock",
            "a.rs",
            3,
            "Instant::now".into(),
        );
        let json = render_json(&[f], None, false);
        assert!(json.contains(&format!("\"schema\":{REPORT_SCHEMA_VERSION}")));
        assert!(json.contains("\"rule\":\"determinism/no-wall-clock\""));
        assert!(json.contains("\"line\":3"));
        assert!(json.contains("\"ok\":false"));
        assert!(json.contains("\"allowed\":null"));
        assert!(!json.contains("\"ratchet\""));
        assert!(!json.contains("\"chain\""));
    }

    #[test]
    fn chain_rendered_in_both_formats() {
        let mut f = Finding::error(
            "robustness/panic-reachable-from-api",
            "crates/a/src/lib.rs",
            4,
            "pub fn `api` can reach .unwrap()".into(),
        );
        f.chain = vec![
            Hop {
                name: "api".into(),
                file: "crates/a/src/lib.rs".into(),
                line: 4,
            },
            Hop {
                name: ".unwrap()".into(),
                file: "crates/a/src/util.rs".into(),
                line: 9,
            },
        ];
        let json = render_json(std::slice::from_ref(&f), None, false);
        assert!(json.contains("\"chain\":[{\"fn\":\"api\""));
        assert!(json.contains("\"fn\":\".unwrap()\""));
        let human = render_human(&[f]);
        assert!(human.contains("via api (crates/a/src/lib.rs:4)"));
        assert!(human.contains("via .unwrap() (crates/a/src/util.rs:9)"));
    }

    #[test]
    fn json_ratchet_section() {
        let reg = RatchetDelta {
            rule: "robustness/no-panic-in-lib".into(),
            file: "crates/core/src/model.rs".into(),
            baseline: 2,
            current: 3,
        };
        let json = render_json(&[], Some((std::slice::from_ref(&reg), &[])), false);
        assert!(json.contains("\"ratchet\""));
        assert!(json.contains("\"baseline\":2"));
        assert!(json.contains("\"current\":3"));
    }
}
