//! Item-level parsing on top of the flat token stream.
//!
//! The interprocedural rules need to know *which function* each token
//! belongs to, which `impl` block owns it, whether it is `pub`, and
//! whether it is test code. This module derives all of that in a single
//! forward pass over the lexer's output — no `syn`, no AST. The output
//! is deliberately minimal:
//!
//! - [`FnDecl`] — one function/method item: name, enclosing impl type,
//!   visibility, test-ness, and the line it is declared on;
//! - [`ParsedFile`] — the comment-free token stream plus a parallel
//!   `owner` vector mapping every token to its *innermost* enclosing
//!   function (tokens at file or impl level own nothing).
//!
//! Known approximations (all conservative for the rules built on top):
//! trait-method declarations without bodies are kept as functions with no
//! tokens; `impl Trait for Type` resolves to `Type`; visibility is `pub`
//! only for bare `pub` (restricted `pub(crate)`/`pub(super)` does not
//! count as API surface).

use crate::lexer::{lex, Tok, TokKind};
use crate::lint::{parse_allow, Allow};

/// One `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// Function name as written.
    pub name: String,
    /// Enclosing `impl` type (`None` for free functions).
    pub self_type: Option<String>,
    /// Declared with bare `pub` (restricted visibilities excluded).
    pub is_pub: bool,
    /// Inside `#[test]` / `#[cfg(test)]` code.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// One parsed source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Repo-relative `/`-separated path.
    pub path: String,
    /// Comment-free token stream.
    pub code: Vec<Tok>,
    /// Functions declared in the file, in source order.
    pub fns: Vec<FnDecl>,
    /// Per-token index into [`ParsedFile::fns`] of the innermost
    /// enclosing function (`None` at file/impl level).
    pub owner: Vec<Option<usize>>,
    /// `// slj-check: allow(...)` directives found in the file.
    pub allows: Vec<Allow>,
}

/// Lexes and parses one source file.
pub fn parse_file(path: &str, source: &str) -> ParsedFile {
    let toks = lex(source);
    let mut allows = Vec::new();
    for t in &toks {
        if t.kind == TokKind::Comment {
            if let Some(a) = parse_allow(t) {
                allows.push(a);
            }
        }
    }
    let code: Vec<Tok> = toks
        .into_iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    let (fns, owner) = scan_items(&code);
    ParsedFile {
        path: path.to_string(),
        code,
        fns,
        owner,
        allows,
    }
}

/// Reads the self type out of an `impl` header starting after the `impl`
/// keyword: skips generic parameters, and for `impl Trait for Type` takes
/// the type after `for`. Returns the last path segment before any generic
/// arguments (`imaging::Mask<'a>` → `Mask`).
fn impl_self_type(code: &[Tok], mut i: usize) -> Option<String> {
    // Skip `<...>` generic parameters (watching for `->` inside bounds).
    if code.get(i).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0usize;
        while i < code.len() {
            let t = &code[i];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !(i > 0 && code[i - 1].is_punct('-')) {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    let mut last: Option<String> = None;
    while i < code.len() {
        let t = &code[i];
        if t.is_punct('{') || t.is_ident("where") {
            break;
        }
        if t.is_ident("for") {
            // `impl Trait for Type`: what came before was the trait.
            last = None;
        } else if t.is_punct('<') {
            // Generic arguments of the type we already captured.
            let mut depth = 0usize;
            while i < code.len() {
                let t = &code[i];
                if t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct('>') && !(i > 0 && code[i - 1].is_punct('-')) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                i += 1;
            }
        } else if t.kind == TokKind::Ident && !matches!(t.text.as_str(), "dyn" | "mut" | "const") {
            last = Some(t.text.clone());
        }
        i += 1;
    }
    last
}

/// The single forward pass: function items + per-token ownership.
fn scan_items(code: &[Tok]) -> (Vec<FnDecl>, Vec<Option<usize>>) {
    let mut fns: Vec<FnDecl> = Vec::new();
    let mut owner: Vec<Option<usize>> = Vec::with_capacity(code.len());

    let mut depth = 0usize;
    // (fn index, depth of its body's opening brace)
    let mut fn_stack: Vec<(usize, usize)> = Vec::new();
    // (self type, depth of the impl body's opening brace)
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    let mut test_stack: Vec<usize> = Vec::new();
    // fn declared, body brace not yet seen.
    let mut pending_fn: Option<usize> = None;
    let mut awaiting_fn_name = false;
    let mut pending_test = false;
    let mut pending_impl: Option<String> = None;
    // Paren/bracket nesting, to tell a trait-decl-terminating `;` from
    // one inside a signature type like `[u8; 16]`.
    let mut group_depth = 0usize;

    let mut i = 0usize;
    while i < code.len() {
        let t = &code[i];

        // Attribute: scan its bracket group for test markers (`#[test]`,
        // `#[cfg(test)]`, but not `#[cfg(not(test))]`), then skip it.
        if t.is_punct('#') && code.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            let current = pending_fn.or_else(|| fn_stack.last().map(|&(f, _)| f));
            let mut j = i + 1;
            let mut bracket_depth = 0usize;
            let mut saw_test = false;
            let mut saw_not = false;
            while j < code.len() {
                let a = &code[j];
                if a.is_punct('[') {
                    bracket_depth += 1;
                } else if a.is_punct(']') {
                    bracket_depth -= 1;
                    if bracket_depth == 0 {
                        break;
                    }
                } else if a.kind == TokKind::Ident {
                    if a.text == "test" || a.text == "bench" {
                        saw_test = true;
                    } else if a.text == "not" {
                        saw_not = true;
                    }
                }
                j += 1;
            }
            if saw_test && !saw_not {
                pending_test = true;
            }
            for _ in i..=j.min(code.len().saturating_sub(1)) {
                owner.push(current);
            }
            i = j + 1;
            continue;
        }

        if t.is_ident("impl") {
            pending_impl = impl_self_type(code, i + 1);
        } else if t.is_ident("fn") {
            awaiting_fn_name = true;
        } else if awaiting_fn_name && t.kind == TokKind::Ident {
            awaiting_fn_name = false;
            let is_pub = {
                // Walk back over qualifiers (`const unsafe extern "C"`)
                // to find a bare `pub`; `pub(crate)` leaves a `)` here
                // and correctly does not count.
                let mut j = i - 1; // the `fn` keyword
                let qualifier = |t: &Tok| {
                    t.kind == TokKind::Literal
                        || ["const", "unsafe", "async", "extern"]
                            .iter()
                            .any(|q| t.is_ident(q))
                };
                while j > 0 && qualifier(&code[j - 1]) {
                    j -= 1;
                }
                j > 0 && code[j - 1].is_ident("pub")
            };
            let self_type = impl_stack.last().map(|(ty, _)| ty.clone());
            fns.push(FnDecl {
                name: t.text.clone(),
                self_type,
                is_pub,
                is_test: pending_test || !test_stack.is_empty(),
                line: t.line,
            });
            pending_fn = Some(fns.len() - 1);
        } else if awaiting_fn_name && t.is_punct('(') {
            // `fn(u32) -> u32` function-pointer type: no name follows.
            awaiting_fn_name = false;
        } else if t.is_punct('(') || t.is_punct('[') {
            group_depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            group_depth = group_depth.saturating_sub(1);
        } else if t.is_punct(';') && group_depth == 0 {
            // Trait method declaration without a body, or a braceless
            // item after an attribute: drop whatever was pending.
            pending_fn = None;
            pending_test = false;
            pending_impl = None;
        } else if t.is_punct('{') {
            depth += 1;
            if pending_test {
                test_stack.push(depth);
                pending_test = false;
            }
            if let Some(f) = pending_fn.take() {
                fn_stack.push((f, depth));
            } else if let Some(ty) = pending_impl.take() {
                impl_stack.push((ty, depth));
            }
        }

        owner.push(pending_fn.or_else(|| fn_stack.last().map(|&(f, _)| f)));

        if t.is_punct('}') {
            if fn_stack.last().is_some_and(|&(_, d)| d == depth) {
                fn_stack.pop();
            }
            if impl_stack.last().is_some_and(|(_, d)| *d == depth) {
                impl_stack.pop();
            }
            if test_stack.last().is_some_and(|&d| d == depth) {
                test_stack.pop();
            }
            depth = depth.saturating_sub(1);
        }
        i += 1;
    }
    (fns, owner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(src: &str) -> ParsedFile {
        parse_file("crates/x/src/lib.rs", src)
    }

    #[test]
    fn free_and_method_fns() {
        let f = parsed(
            "pub fn free() {}\n\
             struct S;\n\
             impl S { fn method(&self) {} pub fn api(&self) {} }\n\
             impl std::fmt::Display for S { fn fmt(&self) {} }\n",
        );
        let names: Vec<(&str, Option<&str>, bool)> = f
            .fns
            .iter()
            .map(|d| (d.name.as_str(), d.self_type.as_deref(), d.is_pub))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None, true),
                ("method", Some("S"), false),
                ("api", Some("S"), true),
                ("fmt", Some("S"), false),
            ]
        );
    }

    #[test]
    fn restricted_pub_is_not_api() {
        let f = parsed("pub(crate) fn internal() {}\npub const fn fast() -> u32 { 1 }\n");
        assert!(!f.fns[0].is_pub);
        assert!(f.fns[1].is_pub);
    }

    #[test]
    fn generic_impl_headers() {
        let f = parsed(
            "impl<'a, T: Fn() -> u32> Holder<'a, T> { fn get(&self) {} }\n\
             impl<T> From<T> for Wrapper<T> where T: Clone { fn from(t: T) -> Self { todo() } }\n",
        );
        assert_eq!(f.fns[0].self_type.as_deref(), Some("Holder"));
        assert_eq!(f.fns[1].self_type.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn owner_is_innermost_fn() {
        let f = parsed("fn outer() { fn inner() { leaf(); } body(); }\n");
        let leaf_idx = f.code.iter().position(|t| t.is_ident("leaf")).unwrap();
        let body_idx = f.code.iter().position(|t| t.is_ident("body")).unwrap();
        assert_eq!(f.fns[f.owner[leaf_idx].unwrap()].name, "inner");
        assert_eq!(f.fns[f.owner[body_idx].unwrap()].name, "outer");
    }

    #[test]
    fn test_regions_marked() {
        let f = parsed(
            "fn real() {}\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn check() {}\n    fn helper() {}\n}\n",
        );
        let by_name: std::collections::BTreeMap<&str, bool> =
            f.fns.iter().map(|d| (d.name.as_str(), d.is_test)).collect();
        assert_eq!(by_name["real"], false);
        assert_eq!(by_name["check"], true);
        assert_eq!(by_name["helper"], true);
    }

    #[test]
    fn trait_decls_without_bodies_claim_no_tokens() {
        let f = parsed("trait T { fn sig(&self); }\nfn after() { work(); }\n");
        let work_idx = f.code.iter().position(|t| t.is_ident("work")).unwrap();
        assert_eq!(f.fns[f.owner[work_idx].unwrap()].name, "after");
    }
}
