//! The per-workspace symbol table: every function the parser found,
//! indexed by name for call resolution.

use std::collections::BTreeMap;

use crate::parse::{parse_file, ParsedFile};

/// One function in the workspace-wide table.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Index into [`SymbolTable::files`].
    pub file: usize,
    /// Index into that file's [`ParsedFile::fns`].
    pub local: usize,
    /// Crate the file belongs to (`crates/<name>/…` → `<name>`, the
    /// umbrella `src/lib.rs` → `slj`).
    pub crate_name: String,
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type for methods.
    pub self_type: Option<String>,
    /// Bare-`pub` visibility.
    pub is_pub: bool,
    /// Inside test code.
    pub is_test: bool,
    /// 1-based declaration line.
    pub line: u32,
}

/// Parsed files plus the function index built over them.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// All parsed files, in the order given.
    pub files: Vec<ParsedFile>,
    /// All functions across all files.
    pub syms: Vec<FnSym>,
    /// name → indices into [`SymbolTable::syms`].
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Per file, per local fn index → global sym index.
    pub global_of: Vec<Vec<usize>>,
}

/// Crate name for a repo-relative path.
pub fn crate_of(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("slj")
        .to_string()
}

impl SymbolTable {
    /// Parses `(path, source)` pairs and builds the table.
    pub fn build(sources: &[(String, String)]) -> SymbolTable {
        let mut table = SymbolTable::default();
        for (path, source) in sources {
            let parsed = parse_file(path, source);
            let file_idx = table.files.len();
            let crate_name = crate_of(path);
            let mut locals = Vec::with_capacity(parsed.fns.len());
            for (local, decl) in parsed.fns.iter().enumerate() {
                let sym = table.syms.len();
                table.syms.push(FnSym {
                    file: file_idx,
                    local,
                    crate_name: crate_name.clone(),
                    name: decl.name.clone(),
                    self_type: decl.self_type.clone(),
                    is_pub: decl.is_pub,
                    is_test: decl.is_test,
                    line: decl.line,
                });
                table
                    .by_name
                    .entry(decl.name.clone())
                    .or_default()
                    .push(sym);
                locals.push(sym);
            }
            table.global_of.push(locals);
            table.files.push(parsed);
        }
        table
    }

    /// Repo-relative path of the file a symbol lives in.
    pub fn path_of(&self, sym: usize) -> &str {
        &self.files[self.syms[sym].file].path
    }

    /// `Type::name` or plain `name` label for display.
    pub fn label(&self, sym: usize) -> String {
        let s = &self.syms[sym];
        match &s.self_type {
            Some(ty) => format!("{ty}::{}", s.name),
            None => s.name.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_names() {
        assert_eq!(crate_of("crates/serve/src/server.rs"), "serve");
        assert_eq!(crate_of("src/lib.rs"), "slj");
    }

    #[test]
    fn build_indexes_by_name() {
        let sources = vec![
            (
                "crates/a/src/lib.rs".to_string(),
                "pub fn go() {}\nimpl S { fn go(&self) {} }".to_string(),
            ),
            ("crates/b/src/lib.rs".to_string(), "fn go() {}".to_string()),
        ];
        let table = SymbolTable::build(&sources);
        assert_eq!(table.syms.len(), 3);
        assert_eq!(table.by_name["go"].len(), 3);
        assert_eq!(table.label(1), "S::go");
        assert_eq!(table.path_of(2), "crates/b/src/lib.rs");
    }
}
