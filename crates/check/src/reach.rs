//! The interprocedural rules: reachability over the call graph.
//!
//! Four transitive-closure rules lift the PR 4 direct rules to call
//! chains, plus a lock-ordering analysis:
//!
//! | rule | roots | effect looked for |
//! |---|---|---|
//! | `robustness/panic-reachable-from-api` | every bare-`pub` library fn | `unwrap`/`expect`/`panic!`-family |
//! | `perf/transitive-hot-path-alloc` | the `HOT_FN_NAMES` / `_into` / `_par` kernels | allocation (cold error paths excluded) |
//! | `determinism/wall-clock-reachable` | streaming/inference entry points | `Instant::now`/`SystemTime` |
//! | `determinism/hash-iteration-reachable` | streaming/inference entry points | hash-container iteration |
//! | `concurrency/lock-order` | — | a cycle in the lock-acquisition-order graph |
//!
//! Every reachability finding requires **at least one call hop**: a
//! function's *direct* effects are already covered (and ratcheted) by the
//! direct rules, so the transitive rules only report what those cannot
//! see. Each finding carries the shortest witness chain, printable via
//! `slj check --why`.
//!
//! Allows apply at two points: at the **root** (the finding's own line,
//! using the transitive rule id) and at the **effect site** (using either
//! the direct rule id — one annotation serves both analyses — or the
//! transitive rule id). Effect-site allows, like all allows, must carry a
//! reason to count.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::Path;

use crate::callgraph::{locks_eventually, CallGraph, Site};
use crate::lint::{
    collect_rs, is_hot_fn, scope_for, RULE_HASH_ITER, RULE_HOT_ALLOC, RULE_LIB_PANIC,
    RULE_WALL_CLOCK,
};
use crate::report::{Finding, Hop};
use crate::symbols::SymbolTable;
use crate::CheckError;

/// `robustness/panic-reachable-from-api` rule id.
pub const RULE_PANIC_REACH: &str = "robustness/panic-reachable-from-api";
/// `perf/transitive-hot-path-alloc` rule id.
pub const RULE_ALLOC_REACH: &str = "perf/transitive-hot-path-alloc";
/// `determinism/wall-clock-reachable` rule id.
pub const RULE_WALL_REACH: &str = "determinism/wall-clock-reachable";
/// `determinism/hash-iteration-reachable` rule id.
pub const RULE_HASH_REACH: &str = "determinism/hash-iteration-reachable";
/// `concurrency/lock-order` rule id.
pub const RULE_LOCK_ORDER: &str = "concurrency/lock-order";

/// Interprocedural rule ids with one-line descriptions (`--list-rules`).
pub const REACH_RULES: &[(&str, &str)] = &[
    (
        RULE_PANIC_REACH,
        "no panic/unwrap transitively reachable from a pub library fn",
    ),
    (
        RULE_ALLOC_REACH,
        "no allocation transitively reachable from a hot-path kernel",
    ),
    (
        RULE_WALL_REACH,
        "no wall-clock read transitively reachable from push_frame/inference entry points",
    ),
    (
        RULE_HASH_REACH,
        "no hash iteration transitively reachable from push_frame/inference entry points",
    ),
    (
        RULE_LOCK_ORDER,
        "no cycles in the Mutex/RwLock acquisition-order graph (serve + runtime)",
    ),
];

/// Determinism entry points, matched by name: the streaming frame entry
/// and the inference-layer entry points whose outputs must be
/// bit-reproducible.
const ENTRY_FN_NAMES: &[&str] = &[
    "push_frame",
    "step",
    "step_with_likelihood",
    "smooth",
    "decode",
];

/// Which effect kind a reachability rule looks for.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Effect {
    Panic,
    Alloc,
    Wall,
    Hash,
}

impl Effect {
    /// The direct-rule id whose site allow also suppresses this effect.
    fn direct_rule(self) -> &'static str {
        match self {
            Effect::Panic => RULE_LIB_PANIC,
            Effect::Alloc => RULE_HOT_ALLOC,
            Effect::Wall => RULE_WALL_CLOCK,
            Effect::Hash => RULE_HASH_ITER,
        }
    }

    fn reach_rule(self) -> &'static str {
        match self {
            Effect::Panic => RULE_PANIC_REACH,
            Effect::Alloc => RULE_ALLOC_REACH,
            Effect::Wall => RULE_WALL_REACH,
            Effect::Hash => RULE_HASH_REACH,
        }
    }
}

/// Runs every interprocedural rule over in-memory `(path, source)` pairs.
///
/// Findings are positioned at the root function (or the first lock site
/// of a cycle) and carry the witness chain. Suppressed findings are
/// returned with [`Finding::allowed`] set, mirroring the direct linter.
pub fn analyze_sources(sources: &[(String, String)]) -> Vec<Finding> {
    let table = SymbolTable::build(sources);
    let graph = CallGraph::build(&table);
    let mut findings = Vec::new();
    reach_findings(&table, &graph, &mut findings);
    lock_order_findings(&table, &graph, &mut findings);
    apply_root_allows(&table, &mut findings);
    findings.sort_by(|a, b| {
        (a.file.clone(), a.line, a.rule.clone()).cmp(&(b.file.clone(), b.line, b.rule.clone()))
    });
    findings
}

/// Runs the interprocedural rules over the workspace's lint set (the same
/// file set as [`lint::lint_workspace`]).
pub fn analyze_workspace(root: &Path) -> Result<Vec<Finding>, CheckError> {
    Ok(analyze_sources(&workspace_sources(root)?))
}

/// Collects `(repo-relative path, source)` for every lint-set file.
pub fn workspace_sources(root: &Path) -> Result<Vec<(String, String)>, CheckError> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        collect_rs(&crates_dir, &mut files)?;
    }
    let umbrella = root.join("src").join("lib.rs");
    if umbrella.is_file() {
        files.push(umbrella);
    }
    files.sort();
    let mut sources = Vec::new();
    for file in &files {
        let rel: String = file
            .strip_prefix(root)
            .unwrap_or(file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        if scope_for(&rel).is_none() {
            continue;
        }
        let source = std::fs::read_to_string(file)
            .map_err(|e| CheckError::Io(format!("read {}: {e}", file.display())))?;
        sources.push((rel, source));
    }
    Ok(sources)
}

/// Whether an effect at `line` of `file_idx` is suppressed by a
/// reasoned allow for the direct or transitive rule.
fn site_allowed(table: &SymbolTable, file_idx: usize, line: u32, eff: Effect) -> bool {
    table.files[file_idx].allows.iter().any(|a| {
        a.reason.is_some()
            && (a.rule == eff.direct_rule() || a.rule == eff.reach_rule())
            && (a.line == line || a.line + 1 == line)
    })
}

/// First unsuppressed effect site of `kind` in `sym`, if any.
fn effect_site<'g>(
    table: &SymbolTable,
    graph: &'g CallGraph,
    sym: usize,
    kind: Effect,
) -> Option<&'g Site> {
    let list = match kind {
        Effect::Panic => &graph.effects[sym].panics,
        Effect::Alloc => &graph.effects[sym].allocs,
        Effect::Wall => &graph.effects[sym].wall,
        Effect::Hash => &graph.effects[sym].hash,
    };
    let file_idx = table.syms[sym].file;
    list.iter()
        .find(|s| !site_allowed(table, file_idx, s.line, kind))
}

/// The four reachability rules: per root, BFS the call graph once and
/// report the shortest ≥1-hop chain to each effect kind the root's rules
/// care about.
fn reach_findings(table: &SymbolTable, graph: &CallGraph, findings: &mut Vec<Finding>) {
    for root in 0..table.syms.len() {
        let s = &table.syms[root];
        if s.is_test {
            continue;
        }
        let mut kinds: Vec<Effect> = Vec::new();
        if s.is_pub {
            kinds.push(Effect::Panic);
        }
        if is_hot_fn(&s.name) {
            kinds.push(Effect::Alloc);
        }
        if ENTRY_FN_NAMES.contains(&s.name.as_str()) {
            kinds.push(Effect::Wall);
            kinds.push(Effect::Hash);
        }
        if kinds.is_empty() {
            continue;
        }

        // BFS from the root; parent pointers give the shortest chain.
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut order: Vec<usize> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        parent.insert(root, root);
        queue.push_back(root);
        while let Some(cur) = queue.pop_front() {
            for &next in &graph.callees[cur] {
                if !parent.contains_key(&next) {
                    parent.insert(next, cur);
                    order.push(next);
                    queue.push_back(next);
                }
            }
        }

        for kind in kinds {
            // `order` is BFS order, so the first hit has the shortest
            // chain; the root itself is excluded (direct rules own it).
            let hit = order
                .iter()
                .copied()
                .find_map(|sym| effect_site(table, graph, sym, kind).map(|site| (sym, site)));
            let Some((target, site)) = hit else { continue };

            let mut chain_syms = vec![target];
            let mut cur = target;
            while cur != root {
                cur = parent[&cur];
                chain_syms.push(cur);
            }
            chain_syms.reverse();

            let labels: Vec<String> = chain_syms.iter().map(|&s| table.label(s)).collect();
            let mut chain: Vec<Hop> = chain_syms
                .iter()
                .map(|&s| Hop {
                    name: table.label(s),
                    file: table.path_of(s).to_string(),
                    line: table.syms[s].line,
                })
                .collect();
            let site_file = table.path_of(target).to_string();
            chain.push(Hop {
                name: site.what.clone(),
                file: site_file.clone(),
                line: site.line,
            });

            let what = &site.what;
            let message = match kind {
                Effect::Panic => format!(
                    "pub fn `{}` can reach {what} ({site_file}:{}) via {}",
                    table.label(root),
                    site.line,
                    labels.join(" → "),
                ),
                Effect::Alloc => format!(
                    "hot fn `{}` can reach allocation {what} ({site_file}:{}) via {}",
                    table.label(root),
                    site.line,
                    labels.join(" → "),
                ),
                Effect::Wall => format!(
                    "entry point `{}` can reach {what} ({site_file}:{}) via {}",
                    table.label(root),
                    site.line,
                    labels.join(" → "),
                ),
                Effect::Hash => format!(
                    "entry point `{}` can reach hash iteration {what} ({site_file}:{}) via {}",
                    table.label(root),
                    site.line,
                    labels.join(" → "),
                ),
            };
            let mut f = Finding::error(
                kind.reach_rule(),
                table.path_of(root),
                table.syms[root].line,
                message,
            );
            f.chain = chain;
            findings.push(f);
        }
    }
}

/// One witnessed acquisition-order edge `from → to`.
struct LockEdge {
    /// Sym holding `from` when `to` is (possibly transitively) acquired.
    sym: usize,
    /// Line where `from` is acquired.
    from_line: u32,
    /// Line where `to` is acquired (or where the call that eventually
    /// acquires it is made).
    to_line: u32,
}

/// `concurrency/lock-order`: build the acquisition-order graph over lock
/// ids and report each cycle once, at its lexicographically-first edge.
fn lock_order_findings(table: &SymbolTable, graph: &CallGraph, findings: &mut Vec<Finding>) {
    let ev = locks_eventually(table, graph);
    let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();

    for sym in 0..table.syms.len() {
        if table.syms[sym].is_test {
            continue;
        }
        let locks = &graph.effects[sym].locks;
        // Intra-function: lock B acquired while guard A is live.
        for a in locks {
            for b in locks {
                if b.pos > a.pos && b.pos <= a.live_end && b.id != a.id {
                    edges
                        .entry((a.id.clone(), b.id.clone()))
                        .or_insert(LockEdge {
                            sym,
                            from_line: a.line,
                            to_line: b.line,
                        });
                }
            }
            // Interprocedural: a call made while guard A is live, where
            // the callee eventually acquires other locks.
            for &(pos, callee) in &graph.call_sites[sym] {
                if pos > a.pos && pos <= a.live_end {
                    let call_line = table.files[table.syms[sym].file].code[pos].line;
                    for id in &ev[callee] {
                        if *id != a.id {
                            edges.entry((a.id.clone(), id.clone())).or_insert(LockEdge {
                                sym,
                                from_line: a.line,
                                to_line: call_line,
                            });
                        }
                    }
                }
            }
        }
    }

    // Cycle detection over the lock-id digraph (tiny): DFS with an
    // on-path stack; each cycle reported once, keyed by its id set.
    let mut succ: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        succ.entry(from).or_default().push(to);
    }
    let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    let nodes: Vec<&str> = succ.keys().copied().collect();
    for &start in &nodes {
        let mut path: Vec<&str> = vec![start];
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)]; // (path idx, next succ idx)
        loop {
            let Some(&(pi, si)) = stack.last() else { break };
            let node = path[pi];
            let nexts: &[&str] = succ.get(node).map(Vec::as_slice).unwrap_or(&[]);
            if si >= nexts.len() {
                stack.pop();
                path.pop();
                continue;
            }
            if let Some(top) = stack.last_mut() {
                top.1 += 1;
            }
            let next = nexts[si];
            if let Some(at) = path.iter().position(|&n| n == next) {
                let cycle: Vec<&str> = path[at..].to_vec();
                let key: BTreeSet<String> = cycle.iter().map(|s| s.to_string()).collect();
                if reported.insert(key) {
                    findings.push(cycle_finding(table, &edges, &cycle));
                }
            } else if path.len() < 16 {
                path.push(next);
                stack.push((path.len() - 1, 0));
            }
        }
    }
}

/// Builds the finding for one lock cycle: placed at the witness of its
/// first edge, chain hops naming every `A then B` acquisition.
fn cycle_finding(
    table: &SymbolTable,
    edges: &BTreeMap<(String, String), LockEdge>,
    cycle: &[&str],
) -> Finding {
    let mut chain: Vec<Hop> = Vec::new();
    let mut parts: Vec<String> = Vec::new();
    for k in 0..cycle.len() {
        let from = cycle[k];
        let to = cycle[(k + 1) % cycle.len()];
        let e = &edges[&(from.to_string(), to.to_string())];
        let file = table.path_of(e.sym).to_string();
        parts.push(format!(
            "`{}` acquires {from} then {to} ({file}:{})",
            table.label(e.sym),
            e.to_line
        ));
        chain.push(Hop {
            name: format!("{}: {from} → {to}", table.label(e.sym)),
            file,
            line: e.to_line,
        });
    }
    let first = &edges[&(cycle[0].to_string(), cycle[1 % cycle.len()].to_string())];
    let mut f = Finding::error(
        RULE_LOCK_ORDER,
        table.path_of(first.sym),
        first.from_line,
        format!(
            "lock-order cycle {} → {}: {}",
            cycle.join(" → "),
            cycle[0],
            parts.join("; ")
        ),
    );
    f.chain = chain;
    f
}

/// Applies root-level allows: a reasoned allow for the finding's own rule
/// on the finding's line (or the line above) suppresses it.
fn apply_root_allows(table: &SymbolTable, findings: &mut Vec<Finding>) {
    let by_path: BTreeMap<&str, usize> = table
        .files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.path.as_str(), i))
        .collect();
    for f in findings {
        let Some(&file_idx) = by_path.get(f.file.as_str()) else {
            continue;
        };
        for a in &table.files[file_idx].allows {
            if a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line) {
                if let Some(reason) = &a.reason {
                    f.allowed = Some(reason.clone());
                }
            }
        }
    }
}

/// Renders the full call graph, one line per function with outgoing
/// edges, for `slj check --call-graph`.
pub fn render_call_graph(sources: &[(String, String)]) -> String {
    let table = SymbolTable::build(sources);
    let graph = CallGraph::build(&table);
    let mut out = String::new();
    for sym in 0..table.syms.len() {
        if table.syms[sym].is_test || graph.callees[sym].is_empty() {
            continue;
        }
        out.push_str(&format!(
            "{} ({}:{})\n",
            table.label(sym),
            table.path_of(sym),
            table.syms[sym].line
        ));
        for &callee in &graph.callees[sym] {
            out.push_str(&format!(
                "  -> {} ({}:{})\n",
                table.label(callee),
                table.path_of(callee),
                table.syms[callee].line
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        analyze_sources(&sources)
    }

    #[test]
    fn transitive_panic_found_with_chain() {
        let f = analyze(&[(
            "crates/a/src/lib.rs",
            "pub fn api(x: Option<u8>) -> u8 { helper(x) }\n\
             fn helper(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )]);
        let hit = f.iter().find(|f| f.rule == RULE_PANIC_REACH).unwrap();
        assert_eq!(hit.line, 1);
        assert!(hit.message.contains("api → helper"), "{}", hit.message);
        assert_eq!(hit.chain.len(), 3); // api, helper, .unwrap()
        assert_eq!(hit.chain[2].line, 2);
    }

    #[test]
    fn direct_effects_are_not_reach_findings() {
        // Direct unwrap in the root: the direct rule's territory.
        let f = analyze(&[(
            "crates/a/src/lib.rs",
            "pub fn api(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )]);
        assert!(f.iter().all(|f| f.rule != RULE_PANIC_REACH));
    }

    #[test]
    fn two_hop_hot_alloc_found() {
        let f = analyze(&[(
            "crates/a/src/lib.rs",
            "pub fn push_frame() { mid(); }\n\
             fn mid() { leaf(); }\n\
             fn leaf() { let v = Vec::new(); sink(v); }\n",
        )]);
        let hit = f.iter().find(|f| f.rule == RULE_ALLOC_REACH).unwrap();
        assert!(
            hit.message.contains("push_frame → mid → leaf"),
            "{}",
            hit.message
        );
    }

    #[test]
    fn wall_clock_behind_helper_found_and_site_allow_suppresses() {
        let src_bad =
            "pub fn step() { now_ms(); }\nfn now_ms() { let t = Instant::now(); sink(t); }\n";
        let f = analyze(&[("crates/a/src/lib.rs", src_bad)]);
        assert!(f.iter().any(|f| f.rule == RULE_WALL_REACH));

        let src_allowed = "pub fn step() { now_ms(); }\n\
             // slj-check: allow(determinism/wall-clock-reachable) — metrics only\n\
             fn now_ms() { let t = Instant::now(); sink(t); }\n";
        let f = analyze(&[("crates/a/src/lib.rs", src_allowed)]);
        // Allow sits the line above the effect: the site is suppressed
        // and no finding is emitted at all.
        assert!(f.iter().all(|f| f.rule != RULE_WALL_REACH));
    }

    #[test]
    fn root_allow_marks_finding_allowed() {
        let src = "// slj-check: allow(robustness/panic-reachable-from-api) — demo api\n\
                   pub fn api(x: Option<u8>) -> u8 { helper(x) }\n\
                   fn helper(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let f = analyze(&[("crates/a/src/lib.rs", src)]);
        let hit = f.iter().find(|f| f.rule == RULE_PANIC_REACH).unwrap();
        assert_eq!(hit.allowed.as_deref(), Some("demo api"));
    }

    #[test]
    fn ab_ba_lock_cycle_found() {
        let f = analyze(&[(
            "crates/serve/src/server.rs",
            "struct S;\n\
             impl S {\n\
               fn ab(&self) { let a = lock_unpoisoned(&self.alpha); let b = lock_unpoisoned(&self.beta); use2(a, b); }\n\
               fn ba(&self) { let b = lock_unpoisoned(&self.beta); let a = lock_unpoisoned(&self.alpha); use2(a, b); }\n\
             }",
        )]);
        let hit = f.iter().find(|f| f.rule == RULE_LOCK_ORDER).unwrap();
        assert!(hit.message.contains("lock-order cycle"), "{}", hit.message);
        assert!(hit.message.contains("S.alpha"), "{}", hit.message);
        assert!(hit.message.contains("S.beta"), "{}", hit.message);
        assert_eq!(hit.chain.len(), 2);
    }

    #[test]
    fn interprocedural_lock_cycle_found() {
        // `ab` holds alpha and calls a helper that takes beta; `ba` does
        // the reverse directly.
        let f = analyze(&[(
            "crates/serve/src/server.rs",
            "struct S;\n\
             impl S {\n\
               fn ab(&self) { let a = lock_unpoisoned(&self.alpha); self.take_beta(); use_it(a); }\n\
               fn take_beta(&self) { let b = lock_unpoisoned(&self.beta); use_it(b); }\n\
               fn ba(&self) { let b = lock_unpoisoned(&self.beta); let a = lock_unpoisoned(&self.alpha); use2(a, b); }\n\
             }",
        )]);
        assert!(f.iter().any(|f| f.rule == RULE_LOCK_ORDER));
    }

    #[test]
    fn nested_same_order_locks_are_clean() {
        let f = analyze(&[(
            "crates/serve/src/server.rs",
            "struct S;\n\
             impl S {\n\
               fn ab1(&self) { let a = lock_unpoisoned(&self.alpha); let b = lock_unpoisoned(&self.beta); use2(a, b); }\n\
               fn ab2(&self) { let a = lock_unpoisoned(&self.alpha); let b = lock_unpoisoned(&self.beta); use2(b, a); }\n\
             }",
        )]);
        assert!(f.iter().all(|f| f.rule != RULE_LOCK_ORDER));
    }

    #[test]
    fn temporary_guard_does_not_order_later_locks() {
        // The first guard is a temporary dropped at its `;`; the second
        // acquisition happens after it is gone — no edge, no cycle.
        let f = analyze(&[(
            "crates/serve/src/server.rs",
            "struct S;\n\
             impl S {\n\
               fn ab(&self) { lock_unpoisoned(&self.alpha).touch(); let b = lock_unpoisoned(&self.beta); use_it(b); }\n\
               fn ba(&self) { lock_unpoisoned(&self.beta).touch(); let a = lock_unpoisoned(&self.alpha); use_it(a); }\n\
             }",
        )]);
        assert!(f.iter().all(|f| f.rule != RULE_LOCK_ORDER));
    }

    #[test]
    fn clean_sources_have_no_findings() {
        let f = analyze(&[(
            "crates/a/src/lib.rs",
            "pub fn api(x: Option<u8>) -> Option<u8> { helper(x) }\n\
             fn helper(x: Option<u8>) -> Option<u8> { x }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }
}
